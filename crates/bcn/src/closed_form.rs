//! Exact region-local solutions of the linearised BCN subsystems.
//!
//! Inside one control region the linearised dynamics are
//! `dz/dt = J z` with `J` the companion matrix of
//! `lambda^2 + k n lambda + n = 0` (paper Eq. 35). This module provides:
//!
//! * [`RegionFlow`] — the exact flow `z(t) = e^{Jt} z(0)` through the
//!   spectrally robust matrix exponential, valid in all three eigenvalue
//!   cases, plus first-crossing solvers for the switching line and for
//!   `y = 0` (queue extrema).
//! * [`SpiralForm`], [`NodeForm`], [`CriticalForm`] — the paper's explicit
//!   solution forms (Eqs. 12, 21, 29) with branch-corrected coefficients,
//!   kept as an executable transcription of the paper and cross-checked
//!   against [`RegionFlow`] in the test suite.

use phaseplane::{Eigen2, Mat2};

/// Spectral data of one region's companion matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Spectrum {
    /// Complex pair `alpha ± i beta` (`beta > 0`): spiral region.
    Focus {
        /// Real part (negative for BCN).
        alpha: f64,
        /// Imaginary part (positive).
        beta: f64,
    },
    /// Distinct real `l1 < l2 < 0`: node region.
    Node {
        /// Smaller (more negative) eigenvalue.
        l1: f64,
        /// Larger eigenvalue.
        l2: f64,
    },
    /// Repeated real eigenvalue `l = -1/k`: critical region.
    Critical {
        /// The eigenvalue.
        l: f64,
    },
}

/// The exact linear flow of one BCN control region.
///
/// # Example
///
/// ```
/// use bcn::closed_form::RegionFlow;
///
/// // lambda^2 + 2 lambda + 10: stable focus at -1 ± 3i.
/// let flow = RegionFlow::from_mn(2.0, 10.0);
/// let z = flow.at(0.0, [1.0, 0.0]);
/// assert_eq!(z, [1.0, 0.0]);
/// // After a long time the state decays towards the origin.
/// let z = flow.at(10.0, [1.0, 0.0]);
/// assert!(z[0].abs() < 1e-3 && z[1].abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionFlow {
    j: Mat2,
    spectrum: Spectrum,
}

impl RegionFlow {
    /// Builds the flow of `lambda^2 + m lambda + n = 0` in phase
    /// variables (companion form `[[0, 1], [-n, -m]]`).
    ///
    /// # Panics
    ///
    /// Panics unless `n` is positive and `m` non-negative, both finite
    /// (all BCN regions satisfy this; paper Proposition 1 — `m = 0` is
    /// the undamped `w = 0` center case).
    #[must_use]
    pub fn from_mn(m: f64, n: f64) -> Self {
        assert!(m.is_finite() && m >= 0.0, "m must be non-negative");
        assert!(n.is_finite() && n > 0.0, "n must be positive");
        let j = Mat2::companion(m, n);
        let spectrum = match j.eigen() {
            Eigen2::Complex { re, im } => Spectrum::Focus { alpha: re, beta: im },
            Eigen2::RealDistinct { l1, l2, .. } => Spectrum::Node { l1, l2 },
            Eigen2::RealRepeated { l, .. } => Spectrum::Critical { l },
        };
        Self { j, spectrum }
    }

    /// Builds the flow of a BCN region from its `k` and `n` constants
    /// (`m = k n`; paper Eq. 35).
    #[must_use]
    pub fn from_kn(k: f64, n: f64) -> Self {
        Self::from_mn(k * n, n)
    }

    /// The region's Jacobian (companion matrix).
    #[must_use]
    pub fn jacobian(&self) -> Mat2 {
        self.j
    }

    /// The spectral decomposition driving the flow.
    #[must_use]
    pub fn spectrum(&self) -> Spectrum {
        self.spectrum
    }

    /// The matrix exponential `e^{J t}`.
    #[must_use]
    pub fn exp(&self, t: f64) -> Mat2 {
        let i = Mat2::identity();
        match self.spectrum {
            Spectrum::Focus { alpha, beta } => {
                // e^{Jt} = e^{alpha t} [cos(beta t) I + sin(beta t)/beta (J - alpha I)]
                let e = (alpha * t).exp();
                let (s, c) = (beta * t).sin_cos();
                let shifted = self.j.add(&i.scale(-alpha));
                i.scale(c).add(&shifted.scale(s / beta)).scale(e)
            }
            Spectrum::Node { l1, l2 } => {
                // e^{Jt} = [e^{l2 t}(J - l1 I) - e^{l1 t}(J - l2 I)] / (l2 - l1)
                let e1 = (l1 * t).exp();
                let e2 = (l2 * t).exp();
                let m1 = self.j.add(&i.scale(-l1)).scale(e2);
                let m2 = self.j.add(&i.scale(-l2)).scale(e1);
                m1.add(&m2.scale(-1.0)).scale(1.0 / (l2 - l1))
            }
            Spectrum::Critical { l } => {
                // e^{Jt} = e^{l t} [I + t (J - l I)]
                let e = (l * t).exp();
                i.add(&self.j.add(&i.scale(-l)).scale(t)).scale(e)
            }
        }
    }

    /// The state at time `t` starting from `z0` at time zero.
    #[must_use]
    pub fn at(&self, t: f64, z0: [f64; 2]) -> [f64; 2] {
        self.exp(t).mul_vec(z0)
    }

    /// A natural time scale of the flow: one eighth of the rotation
    /// period for a focus, or the slow time constant for a node, used to
    /// pace crossing scans.
    #[must_use]
    pub fn scan_step(&self) -> f64 {
        match self.spectrum {
            Spectrum::Focus { beta, .. } => std::f64::consts::PI / (8.0 * beta),
            Spectrum::Node { l2, .. } => 0.125 / l2.abs(),
            Spectrum::Critical { l } => 0.125 / l.abs(),
        }
    }

    /// The first strictly positive time at which the scalar observable
    /// `g(z(t))` crosses zero, found by scanning at [`Self::scan_step`]
    /// resolution up to `t_max` and bisecting the first sign change.
    ///
    /// A sign-change scan alone silently skips any crossing *narrower
    /// than the scan step* (the observable dips through zero and back
    /// between two samples). A refinement pass guards against that: when
    /// three consecutive samples of the same sign form a dip towards
    /// zero, the dip's extremum is located by golden-section search and,
    /// if it pierces zero, the first crossing inside the dip is bisected.
    ///
    /// Returns `None` if no crossing occurs before `t_max` (e.g. an
    /// asymptotic node approach, the paper's Case 3 decrease leg).
    ///
    /// This is the general-observable solver; the switching-line
    /// observable of the BCN hot paths has a closed-form crossing time in
    /// [`crate::propagate::crossing_time`], which should be preferred.
    pub fn first_zero<G: Fn([f64; 2]) -> f64>(
        &self,
        z0: [f64; 2],
        g: G,
        t_max: f64,
    ) -> Option<f64> {
        let dt = self.scan_step();
        let eval = |t: f64| g(self.at(t, z0));
        let mut t_prev = 0.0;
        let mut g_prev = g(z0);
        // If we start exactly on the zero set, step off it first.
        if g_prev == 0.0 {
            t_prev = 1e-9 * dt;
            g_prev = eval(t_prev);
            if g_prev == 0.0 {
                return None; // degenerate: the observable vanishes identically
            }
        }
        // The sample before (t_prev, g_prev): the left shoulder of a
        // potential dip.
        let mut back: Option<(f64, f64)> = None;
        let mut t = dt;
        while t <= t_max {
            let g_now = eval(t);
            if g_now == 0.0 {
                return Some(t);
            }
            if g_now.signum() != g_prev.signum() {
                return Some(bisect_sign_change(&eval, t_prev, t));
            }
            // Refinement pass: |g| has a sampled local minimum at t_prev
            // with all three samples of one sign — a crossing narrower
            // than the scan step may hide between the shoulders.
            if let Some((t_back, g_back)) = back {
                let sign = g_prev.signum();
                if sign * (g_back - g_prev) > 0.0 && sign * (g_now - g_prev) > 0.0 {
                    let h = |tt: f64| sign * eval(tt);
                    let t_dip = golden_min(&h, t_back, t);
                    let h_dip = h(t_dip);
                    if h_dip == 0.0 {
                        return Some(t_dip);
                    }
                    if h_dip < 0.0 {
                        // The dip pierces zero: the first crossing lies
                        // between the left shoulder and the dip bottom.
                        return Some(bisect_sign_change(&eval, t_back, t_dip));
                    }
                }
            }
            back = Some((t_prev, g_prev));
            t_prev = t;
            g_prev = g_now;
            t += dt;
        }
        None
    }

    /// First positive time the flow from `z0` reaches the switching line
    /// `x + k y = 0`.
    #[must_use]
    pub fn time_to_switching_line(&self, z0: [f64; 2], k: f64, t_max: f64) -> Option<f64> {
        self.first_zero(z0, |z| z[0] + k * z[1], t_max)
    }

    /// First positive time at which `y = dx/dt` vanishes — i.e. the first
    /// queue extremum (paper's `t*`).
    #[must_use]
    pub fn time_to_extremum(&self, z0: [f64; 2], t_max: f64) -> Option<f64> {
        self.first_zero(z0, |z| z[1], t_max)
    }
}

/// Bisects a bracketed sign change of `eval` down to floating-point
/// resolution. `eval(lo)` and `eval(hi)` must have opposite signs.
fn bisect_sign_change<F: Fn(f64) -> f64>(eval: &F, mut lo: f64, mut hi: f64) -> f64 {
    let mut g_lo = eval(lo);
    if g_lo == 0.0 {
        return lo;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        let gm = eval(mid);
        if gm == 0.0 {
            return mid;
        }
        if gm.signum() == g_lo.signum() {
            lo = mid;
            g_lo = gm;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Golden-section search for the minimiser of a unimodal `h` on
/// `[lo, hi]`.
fn golden_min<F: Fn(f64) -> f64>(h: &F, mut lo: f64, mut hi: f64) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut c = hi - INV_PHI * (hi - lo);
    let mut d = lo + INV_PHI * (hi - lo);
    let mut hc = h(c);
    let mut hd = h(d);
    for _ in 0..80 {
        if hc <= hd {
            hi = d;
            d = c;
            hd = hc;
            c = hi - INV_PHI * (hi - lo);
            hc = h(c);
        } else {
            lo = c;
            c = d;
            hc = hd;
            d = lo + INV_PHI * (hi - lo);
            hd = h(d);
        }
        if hi - lo <= f64::EPSILON * hi.abs().max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// The paper's explicit spiral solution (Eq. 12):
/// `x(t) = A e^{alpha t} cos(beta t + phi)`.
///
/// The amplitude `A` and phase `phi` follow the paper's definitions but
/// with the phase computed by `atan2`, which repairs the branch ambiguity
/// of the printed `-arctan(...)` formula for initial points with
/// `x(0) <= 0` (such as the canonical start `(-q0, 0)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpiralForm {
    /// Real part of the eigenvalues.
    pub alpha: f64,
    /// Imaginary part of the eigenvalues.
    pub beta: f64,
    /// Amplitude coefficient `A >= 0`.
    pub a_coef: f64,
    /// Phase `phi`.
    pub phi: f64,
}

impl SpiralForm {
    /// Builds the spiral form for the focus with the given spectrum and
    /// initial point.
    ///
    /// # Panics
    ///
    /// Panics if `beta <= 0`.
    #[must_use]
    pub fn new(alpha: f64, beta: f64, z0: [f64; 2]) -> Self {
        assert!(beta > 0.0, "spiral form requires a complex pair (beta > 0)");
        let [x0, y0] = z0;
        // cos(phi) = x0 / A, sin(phi) = (alpha x0 - y0)/(A beta).
        let c = x0;
        let s = (alpha * x0 - y0) / beta;
        let a_coef = (c * c + s * s).sqrt();
        let phi = s.atan2(c);
        Self { alpha, beta, a_coef, phi }
    }

    /// Evaluates `(x(t), y(t))` from Eq. 12.
    #[must_use]
    pub fn at(&self, t: f64) -> [f64; 2] {
        let e = (self.alpha * t).exp();
        let th = self.beta * t + self.phi;
        let (sin, cos) = th.sin_cos();
        let x = self.a_coef * e * cos;
        let y = self.a_coef * e * (self.alpha * cos - self.beta * sin);
        [x, y]
    }

    /// The logarithmic-spiral radius at winding angle `theta` (paper
    /// Eq. 17): `r(theta) = sqrt(c1) e^{(alpha/beta) theta}` with
    /// `r^2 = (beta x)^2 + (alpha x - y)^2`.
    #[must_use]
    pub fn radius_at_angle(&self, theta: f64) -> f64 {
        // r(phi) corresponds to t = (theta - phi)/beta.
        self.a_coef * self.beta * ((self.alpha / self.beta) * (theta - self.phi)).exp()
    }

    /// The polar radius of a state `(x, y)` in this region's spiral
    /// coordinates.
    #[must_use]
    pub fn radius_of(&self, z: [f64; 2]) -> f64 {
        let u = self.beta * z[0];
        let v = self.alpha * z[0] - z[1];
        (u * u + v * v).sqrt()
    }
}

/// The paper's explicit node solution (Eq. 21):
/// `x(t) = A1 e^{l1 t} + A2 e^{l2 t}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeForm {
    /// Smaller eigenvalue (`l1 < l2 < 0`).
    pub l1: f64,
    /// Larger eigenvalue.
    pub l2: f64,
    /// Coefficient of the fast mode `e^{l1 t}`.
    pub a1: f64,
    /// Coefficient of the slow mode `e^{l2 t}`.
    pub a2: f64,
}

impl NodeForm {
    /// Builds the node form for eigenvalues `l1 < l2` and initial point.
    ///
    /// # Panics
    ///
    /// Panics if `l1 >= l2`.
    #[must_use]
    pub fn new(l1: f64, l2: f64, z0: [f64; 2]) -> Self {
        assert!(l1 < l2, "node form requires distinct eigenvalues");
        let [x0, y0] = z0;
        let a1 = (l2 * x0 - y0) / (l2 - l1);
        let a2 = (l1 * x0 - y0) / (l1 - l2);
        Self { l1, l2, a1, a2 }
    }

    /// Evaluates `(x(t), y(t))` from Eq. 21.
    #[must_use]
    pub fn at(&self, t: f64) -> [f64; 2] {
        let e1 = (self.l1 * t).exp();
        let e2 = (self.l2 * t).exp();
        [self.a1 * e1 + self.a2 * e2, self.a1 * self.l1 * e1 + self.a2 * self.l2 * e2]
    }

    /// Whether the initial point lies on one of the straight-line
    /// eigendirection trajectories `y = l1 x` or `y = l2 x`
    /// (paper Eqs. 24–25).
    #[must_use]
    pub fn on_eigenline(&self) -> bool {
        self.a1 == 0.0 || self.a2 == 0.0
    }
}

/// The paper's explicit critical solution (Eq. 29):
/// `x(t) = (A3 + A4 t) e^{l t}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalForm {
    /// The repeated eigenvalue.
    pub l: f64,
    /// Coefficient `A3 = x(0)`.
    pub a3: f64,
    /// Coefficient `A4 = y(0) - l x(0)`.
    pub a4: f64,
}

impl CriticalForm {
    /// Builds the critical form for the repeated eigenvalue `l` and
    /// initial point.
    #[must_use]
    pub fn new(l: f64, z0: [f64; 2]) -> Self {
        let [x0, y0] = z0;
        Self { l, a3: x0, a4: y0 - l * x0 }
    }

    /// Evaluates `(x(t), y(t))` from Eq. 29.
    #[must_use]
    pub fn at(&self, t: f64) -> [f64; 2] {
        let e = (self.l * t).exp();
        [(self.a3 + self.a4 * t) * e, (self.a3 * self.l + self.a4 + self.a4 * self.l * t) * e]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    fn assert_close(a: [f64; 2], b: [f64; 2], scale: f64) {
        assert!(
            (a[0] - b[0]).abs() <= TOL * scale && (a[1] - b[1]).abs() <= TOL * scale,
            "{a:?} vs {b:?}"
        );
    }

    #[test]
    fn exp_at_zero_is_identity() {
        for (m, n) in [(2.0, 10.0), (3.0, 2.0), (4.0, 4.0)] {
            let f = RegionFlow::from_mn(m, n);
            let e = f.exp(0.0);
            assert_close([e.a, e.b], [1.0, 0.0], 1.0);
            assert_close([e.c, e.d], [0.0, 1.0], 1.0);
        }
    }

    #[test]
    fn exp_semigroup_property() {
        for (m, n) in [(2.0, 10.0), (3.0, 2.0), (4.0, 4.0)] {
            let f = RegionFlow::from_mn(m, n);
            let z0 = [1.5, -0.3];
            let z_two_hops = f.at(0.7, f.at(0.4, z0));
            let z_direct = f.at(1.1, z0);
            assert_close(z_two_hops, z_direct, 1.0);
        }
    }

    #[test]
    fn flow_satisfies_the_ode() {
        // Finite-difference derivative of the flow matches J z.
        for (m, n) in [(2.0, 10.0), (3.0, 2.0), (4.0, 4.0)] {
            let f = RegionFlow::from_mn(m, n);
            let z0 = [0.8, 0.5];
            let t = 0.6;
            let h = 1e-6;
            let zp = f.at(t + h, z0);
            let zm = f.at(t - h, z0);
            let dz = [(zp[0] - zm[0]) / (2.0 * h), (zp[1] - zm[1]) / (2.0 * h)];
            let z = f.at(t, z0);
            let expect = f.jacobian().mul_vec(z);
            assert!((dz[0] - expect[0]).abs() < 1e-5 * (1.0 + expect[0].abs()));
            assert!((dz[1] - expect[1]).abs() < 1e-5 * (1.0 + expect[1].abs()));
        }
    }

    #[test]
    fn spiral_form_matches_matrix_exponential() {
        let (m, n) = (2.0, 10.0); // alpha = -1, beta = 3
        let f = RegionFlow::from_mn(m, n);
        let Spectrum::Focus { alpha, beta } = f.spectrum() else { panic!("expected focus") };
        // Include the troublesome x0 <= 0 starts the paper's printed
        // arctan form mishandles.
        for z0 in [[1.0, 0.0], [-1.0, 0.0], [-2.0, 3.0], [0.5, -4.0], [0.0, 1.0], [0.0, -2.0]] {
            let s = SpiralForm::new(alpha, beta, z0);
            for t in [0.0, 0.1, 0.5, 1.3, 2.9] {
                assert_close(s.at(t), f.at(t, z0), 10.0);
            }
        }
    }

    #[test]
    fn node_form_matches_matrix_exponential() {
        let (m, n) = (3.0, 2.0); // l = -1, -2
        let f = RegionFlow::from_mn(m, n);
        let Spectrum::Node { l1, l2 } = f.spectrum() else { panic!("expected node") };
        assert!((l1 + 2.0).abs() < 1e-12 && (l2 + 1.0).abs() < 1e-12);
        for z0 in [[1.0, 0.0], [-1.0, 2.0], [0.3, -0.9]] {
            let nf = NodeForm::new(l1, l2, z0);
            for t in [0.0, 0.2, 1.0, 4.0] {
                assert_close(nf.at(t), f.at(t, z0), 10.0);
            }
        }
    }

    #[test]
    fn node_eigenline_trajectories_are_straight() {
        let f = RegionFlow::from_mn(3.0, 2.0);
        let Spectrum::Node { l1, l2 } = f.spectrum() else { panic!() };
        for l in [l1, l2] {
            let z0 = [1.0, l]; // on the eigenline y = l x
            let nf = NodeForm::new(l1, l2, z0);
            assert!(nf.on_eigenline());
            for t in [0.5, 2.0] {
                let z = f.at(t, z0);
                assert!((z[1] - l * z[0]).abs() < 1e-12, "left eigenline: {z:?}");
            }
        }
    }

    #[test]
    fn critical_form_matches_matrix_exponential() {
        let (m, n) = (4.0, 4.0); // repeated l = -2
        let f = RegionFlow::from_mn(m, n);
        let Spectrum::Critical { l } = f.spectrum() else { panic!("expected critical") };
        assert!((l + 2.0).abs() < 1e-12);
        for z0 in [[1.0, 0.0], [-1.0, 0.5], [0.0, -1.0]] {
            let cf = CriticalForm::new(l, z0);
            for t in [0.0, 0.3, 1.7] {
                assert_close(cf.at(t), f.at(t, z0), 10.0);
            }
        }
    }

    #[test]
    fn spiral_radius_decays_per_eq17() {
        let f = RegionFlow::from_mn(2.0, 10.0);
        let Spectrum::Focus { alpha, beta } = f.spectrum() else { panic!() };
        let z0 = [-1.0, 0.0];
        let s = SpiralForm::new(alpha, beta, z0);
        // After one full revolution the radius shrinks by e^{2 pi alpha/beta}.
        let t_rev = std::f64::consts::TAU / beta;
        let r0 = s.radius_of(f.at(0.0, z0));
        let r1 = s.radius_of(f.at(t_rev, z0));
        let expect = (alpha / beta * std::f64::consts::TAU).exp();
        assert!((r1 / r0 - expect).abs() < 1e-9, "ratio {} vs {expect}", r1 / r0);
    }

    #[test]
    fn first_zero_finds_switching_crossing() {
        // Focus flow starting at (-1, 0) with line x + k y = 0, k small:
        // crossing when x ~ -k y, close to the y-axis crossing.
        let f = RegionFlow::from_mn(2.0, 10.0);
        let k = 0.01;
        let t = f.time_to_switching_line([-1.0, 0.0], k, 10.0).expect("crossing");
        let z = f.at(t, [-1.0, 0.0]);
        assert!((z[0] + k * z[1]).abs() < 1e-6, "not on line: {z:?}");
        assert!(z[1] > 0.0, "first crossing is in the upper half plane");
    }

    #[test]
    fn first_zero_reports_none_for_asymptotes() {
        // Node flow along an eigendirection with the observable the other
        // eigenline: never crossed.
        let f = RegionFlow::from_mn(3.0, 2.0);
        let Spectrum::Node { l1, l2 } = f.spectrum() else { panic!() };
        let z0 = [1.0, l2 * 1.0];
        let hit = f.first_zero(z0, |z| z[1] - l1 * z[0], 50.0);
        assert!(hit.is_none());
    }

    #[test]
    fn time_to_extremum_matches_derivative_zero() {
        let f = RegionFlow::from_mn(2.0, 10.0);
        let z0 = [-1.0, 2.0];
        let t = f.time_to_extremum(z0, 10.0).expect("extremum");
        let z = f.at(t, z0);
        assert!(z[1].abs() < 1e-8, "y at extremum {z:?}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_coefficients() {
        let _ = RegionFlow::from_mn(1.0, -1.0);
    }

    #[test]
    fn undamped_center_flow_is_periodic() {
        // m = 0 (the w = 0 BCN edge case): pure rotation with period
        // 2 pi / sqrt(n); the orbit closes on itself.
        let f = RegionFlow::from_mn(0.0, 4.0);
        let z0 = [1.0, 0.5];
        let period = std::f64::consts::TAU / 2.0;
        let z = f.at(period, z0);
        assert!((z[0] - z0[0]).abs() < 1e-9 && (z[1] - z0[1]).abs() < 1e-9, "{z:?}");
    }

    #[test]
    fn first_zero_catches_crossing_narrower_than_scan_step() {
        // Regression for the crossing-miss hazard: a weakly damped focus
        // whose observable `g = x - c` dips below zero only inside a
        // window narrower than the scan step. The threshold `c` is placed
        // strictly between the trajectory's first dip minimum and the
        // lowest value any scan-grid sample reaches, so a pure
        // sign-change scan at scan_step resolution (the old behaviour,
        // simulated below) sees a positive observable everywhere and
        // reports no crossing — yet two genuine crossings exist.
        let f = RegionFlow::from_mn(0.2, 10.0); // alpha = -0.1, beta ~ 3.16
        let z0 = [1.0, 0.3]; // y0 != 0 keeps the dip off the scan grid
        let dt = f.scan_step();
        let t_max = 4.0;

        // Locate the first dip of x(t) on a fine grid.
        let fine = dt / 2048.0;
        let mut t_star = 0.0;
        let mut x_min = f64::INFINITY;
        let mut tt = fine;
        while tt <= t_max {
            let x = f.at(tt, z0)[0];
            if x < x_min {
                x_min = x;
                t_star = tt;
            } else if x > x_min + 0.5 {
                break; // well past the first dip
            }
            tt += fine;
        }
        // Lowest scan-grid sample over the horizon.
        let mut grid_min = f.at(0.0, z0)[0];
        let mut tg = dt;
        while tg <= t_max {
            grid_min = grid_min.min(f.at(tg, z0)[0]);
            tg += dt;
        }
        assert!(
            grid_min - x_min > 1e-3,
            "construction degenerate: grid sample hit the dip bottom \
             (grid {grid_min} vs true {x_min})"
        );
        let c = 0.5 * (x_min + grid_min);
        let g = |z: [f64; 2]| z[0] - c;

        // The old sign-change-only scan misses it: every grid sample is
        // positive.
        let mut tg = dt;
        let mut old_scan_sees_crossing = g(z0) <= 0.0;
        while tg <= t_max {
            old_scan_sees_crossing |= g(f.at(tg, z0)) <= 0.0;
            tg += dt;
        }
        assert!(!old_scan_sees_crossing, "dip must be invisible at scan_step resolution");

        // The refinement pass catches it, before the dip bottom.
        let t_hit = f.first_zero(z0, g, t_max).expect("refined scan must find the hidden dip");
        let x_hit = f.at(t_hit, z0)[0];
        assert!((x_hit - c).abs() < 1e-9, "crossing value x = {x_hit} vs threshold {c}");
        assert!(t_hit < t_star, "must report the dip's *first* crossing (t = {t_hit})");
        assert!(t_hit > t_star - 2.0 * dt, "crossing should sit inside the dip window");
    }

    #[test]
    fn starting_on_observable_zero_steps_off() {
        // Start exactly on the switching line; the next crossing must be a
        // genuinely later one, not t = 0.
        let f = RegionFlow::from_mn(2.0, 10.0);
        let k = 0.05;
        let y0 = 1.0;
        let z0 = [-k * y0, y0];
        let t = f.time_to_switching_line(z0, k, 20.0).expect("returns to line");
        assert!(t > 1e-3, "t = {t} suspiciously small");
    }
}
