//! Zero-dependency parallel execution for the DCE-BCN workspace.
//!
//! Every heavy evaluation in this reproduction is an embarrassingly
//! parallel grid: criterion atlases over `(Gi, Gd)`, buffer-sizing
//! frontier scans, vector-field sampling, multi-seed packet runs. This
//! crate fans that work out over `std::thread::scope` workers with:
//!
//! * **work stealing** — the index range is split into chunks dealt to
//!   per-worker queues; a worker that drains its own queue steals from
//!   the back of the busiest peer, so skewed per-cell cost (cheap
//!   formula cells vs long switched-ODE integrations) cannot idle cores;
//! * **deterministic placement** — result `i` of [`par_map_indexed`]
//!   always lands at output index `i`, whatever thread computed it, so
//!   parallel output is byte-identical to the serial run;
//! * **a graceful serial fallback** — at one worker no threads are
//!   spawned at all; the closure runs inline in input order;
//! * **configurable width** — [`set_threads`] (wired to the CLI's
//!   `--threads`), the `DCE_BCN_THREADS` environment variable, and
//!   [`std::thread::available_parallelism`] in that order of precedence.
//!
//! The closure contract for determinism: `f(i)` must be a pure function
//! of the index (and immutable captures). With [`par_map_init`], the
//! per-worker scratch state is a *buffer*, not a carrier of information
//! between indices — the closure must overwrite every field it reads.
//!
//! ```
//! let squares = parkit::par_map_indexed(8, |i| i * i);
//! assert_eq!(squares, [0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Chunks dealt per worker when splitting an index range. More chunks
/// mean finer stealing granularity; fewer mean less queue traffic. Four
/// per worker keeps the steal path cold while bounding tail latency to
/// a quarter of a worker's share.
const CHUNKS_PER_WORKER: usize = 4;

/// Process-wide worker-count override set by [`set_threads`]
/// (0 = no override).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for every subsequent `par_*` call in this
/// process (the CLI wires `--threads` here). Passing 0 clears the
/// override, restoring the `DCE_BCN_THREADS` / auto-detect resolution.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Parses a `DCE_BCN_THREADS`-style value: a positive integer, or
/// `None` for anything else (empty, zero, garbage).
#[must_use]
pub fn parse_threads(s: &str) -> Option<usize> {
    match s.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// The worker count `par_*` calls will use right now: the
/// [`set_threads`] override if set, else `DCE_BCN_THREADS` if it parses
/// to a positive integer, else [`std::thread::available_parallelism`]
/// (1 when even that is unavailable).
#[must_use]
pub fn configured_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => {}
        n => return n,
    }
    if let Ok(v) = std::env::var("DCE_BCN_THREADS") {
        if let Some(n) = parse_threads(&v) {
            return n;
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A worker's dealt range of chunk indices `[lo, hi)`. The owner pops
/// from the front (preserving cache-friendly forward traversal); a
/// thief pops from the back. The mutex is held only for the two-word
/// range update — per *chunk*, not per index — so it is far off the
/// hot path.
struct ChunkQueue {
    range: Mutex<(usize, usize)>,
}

impl ChunkQueue {
    fn new(lo: usize, hi: usize) -> Self {
        Self { range: Mutex::new((lo, hi)) }
    }

    fn pop_front(&self) -> Option<usize> {
        let mut r = self.range.lock().expect("chunk queue poisoned");
        if r.0 < r.1 {
            let c = r.0;
            r.0 += 1;
            Some(c)
        } else {
            None
        }
    }

    fn steal_back(&self) -> Option<usize> {
        let mut r = self.range.lock().expect("chunk queue poisoned");
        if r.0 < r.1 {
            r.1 -= 1;
            Some(r.1)
        } else {
            None
        }
    }

    fn remaining(&self) -> usize {
        let r = self.range.lock().expect("chunk queue poisoned");
        r.1 - r.0
    }
}

/// Steals one chunk from the peer with the most work left (skipping the
/// thief's own queue, which is already empty).
fn steal(queues: &[ChunkQueue], me: usize) -> Option<usize> {
    let victim = queues
        .iter()
        .enumerate()
        .filter(|&(w, q)| w != me && q.remaining() > 0)
        .max_by_key(|&(_, q)| q.remaining())?
        .0;
    queues[victim].steal_back()
}

/// Maps `f` over `0..len` on `threads` workers, returning results in
/// index order. The core primitive every other `par_*` entry point
/// funnels into; `init` builds one per-worker scratch value, passed
/// mutably to every `f` call that worker makes.
///
/// At `threads <= 1` (or `len <= 1`) no threads are spawned: the
/// closure runs inline, in order, with a single scratch — the serial
/// path is the parallel path at width one, so output is identical by
/// construction.
///
/// # Panics
///
/// Propagates a panic from any worker (after the remaining workers
/// drain their queues).
pub fn par_map_init_in<S, T, I, F>(threads: usize, len: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = threads.clamp(1, len.max(1));
    if workers == 1 {
        let mut scratch = init();
        return (0..len).map(|i| f(&mut scratch, i)).collect();
    }

    // Deal contiguous chunk ranges to the workers.
    let chunk_len = (len / (workers * CHUNKS_PER_WORKER)).max(1);
    let n_chunks = len.div_ceil(chunk_len);
    let queues: Vec<ChunkQueue> = (0..workers)
        .map(|w| {
            let lo = n_chunks * w / workers;
            let hi = n_chunks * (w + 1) / workers;
            ChunkQueue::new(lo, hi)
        })
        .collect();

    // Finished chunks parked by index; assembled in order afterwards.
    let done: Mutex<Vec<Option<Vec<T>>>> =
        Mutex::new(std::iter::repeat_with(|| None).take(n_chunks).collect());

    std::thread::scope(|s| {
        for me in 0..workers {
            let queues = &queues;
            let done = &done;
            let init = &init;
            let f = &f;
            s.spawn(move || {
                let mut scratch = init();
                while let Some(c) = queues[me].pop_front().or_else(|| steal(queues, me)) {
                    let lo = c * chunk_len;
                    let hi = (lo + chunk_len).min(len);
                    let mut out = Vec::with_capacity(hi - lo);
                    for i in lo..hi {
                        out.push(f(&mut scratch, i));
                    }
                    done.lock().expect("result store poisoned")[c] = Some(out);
                }
            });
        }
    });

    let chunks = done.into_inner().expect("result store poisoned");
    let mut out = Vec::with_capacity(len);
    for c in chunks {
        out.extend(c.expect("all chunks were claimed and completed"));
    }
    out
}

/// [`par_map_init_in`] at the configured worker count
/// (see [`configured_threads`]).
pub fn par_map_init<S, T, I, F>(len: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    par_map_init_in(configured_threads(), len, init, f)
}

/// Maps `f` over `0..len` on an explicit worker count, results in index
/// order.
pub fn par_map_indexed_in<T, F>(threads: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_init_in(threads, len, || (), |(), i| f(i))
}

/// Maps `f` over `0..len` at the configured worker count, results in
/// index order.
pub fn par_map_indexed<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_indexed_in(configured_threads(), len, f)
}

/// Maps `f` over a slice at the configured worker count, results in
/// input order.
pub fn par_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_land_in_input_order() {
        for threads in [1, 2, 3, 8] {
            let out = par_map_indexed_in(threads, 100, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_ranges() {
        assert_eq!(par_map_indexed_in(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed_in(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_workers_than_items() {
        let out = par_map_indexed_in(64, 5, |i| i);
        assert_eq!(out, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn par_map_over_slice_preserves_order() {
        let items = ["a", "bb", "ccc"];
        let out = par_map(&items, |s| s.len());
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn scratch_state_is_per_worker_and_reused() {
        // Count how many inits happen: at most one per worker.
        let inits = AtomicUsize::new(0);
        let out = par_map_init_in(
            3,
            50,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |calls, i| {
                *calls += 1;
                i
            },
        );
        assert_eq!(out, (0..50).collect::<Vec<_>>());
        assert!(inits.load(Ordering::Relaxed) <= 3);
    }

    #[test]
    fn float_results_identical_across_widths() {
        let reference = par_map_indexed_in(1, 257, |i| (i as f64 * 0.731).sin().exp());
        for threads in [2, 3, 5, 8] {
            let out = par_map_indexed_in(threads, 257, |i| (i as f64 * 0.731).sin().exp());
            let same = reference.iter().zip(&out).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "bitwise drift at threads={threads}");
        }
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 12 "), Some(12));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-3"), None);
        assert_eq!(parse_threads("four"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn set_threads_overrides_and_clears() {
        set_threads(3);
        assert_eq!(configured_threads(), 3);
        set_threads(0);
        assert!(configured_threads() >= 1);
    }
}
