//! Regenerates the Theorem 1 worked example and sweeps.

fn main() {
    if let Err(e) = bench::figures::thm1::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
