//! The [`Stepper`] abstraction: one accepted integration step at a time.

use crate::{Ode, SolveError};

/// Result of attempting a single step from `(t, y)`.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome<const N: usize> {
    /// Time at the end of the accepted step.
    pub t_new: f64,
    /// State at the end of the accepted step.
    pub y_new: [f64; N],
    /// Derivative `f(t_new, y_new)` at the end of the step (used for
    /// Hermite dense output and FSAL steppers).
    pub f_new: [f64; N],
    /// Step size the stepper suggests for the next attempt.
    pub h_next: f64,
}

/// A one-step integration method.
///
/// A `Stepper` holds only numerical-control state (e.g. error-controller
/// memory); the problem itself is passed to every call so one stepper can be
/// reused across systems of the same dimension.
pub trait Stepper<const N: usize> {
    /// Advances the solution by one *accepted* step of size at most `h`,
    /// starting from `(t, y)` with known derivative `f = rhs(t, y)`.
    ///
    /// Adaptive implementations may internally retry with smaller sizes
    /// until the local error estimate passes; the step actually taken is
    /// `outcome.t_new - t` which is `<= h` but always `> 0`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::StepSizeUnderflow`] if no acceptable step
    /// exists above the floating-point resolution, and
    /// [`SolveError::NonFiniteState`] if the RHS produced NaN/inf.
    fn step(
        &mut self,
        ode: &dyn Ode<N>,
        t: f64,
        y: &[f64; N],
        f: &[f64; N],
        h: f64,
    ) -> Result<StepOutcome<N>, SolveError>;

    /// Resets any internal controller memory (call when the vector field
    /// changes discontinuously, e.g. after a hybrid-mode switch).
    fn reset(&mut self) {}

    /// Returns the number of trial steps rejected since the last call and
    /// resets the counter. Fixed-step methods never reject (default 0).
    fn take_rejections(&mut self) -> u32 {
        0
    }

    /// Scaled error-norm estimate of the most recent accepted step
    /// (`<= 1` means the step passed the tolerance test), or NaN for
    /// methods without an embedded error estimate.
    fn last_error_estimate(&self) -> f64 {
        f64::NAN
    }

    /// An initial step-size guess for a problem starting at `(t0, y0)` with
    /// derivative `f0`, integrating towards `t_end`.
    fn initial_step(&self, t0: f64, y0: &[f64; N], f0: &[f64; N], t_end: f64) -> f64 {
        let span = (t_end - t0).abs().max(f64::MIN_POSITIVE);
        let ynorm = crate::vecn::norm_inf(y0).max(1e-6);
        let fnorm = crate::vecn::norm_inf(f0);
        let by_slope = if fnorm > 0.0 { 0.01 * ynorm / fnorm } else { span / 100.0 };
        by_slope.min(span / 10.0).max(span * 1e-12)
    }
}
