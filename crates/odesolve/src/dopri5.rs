//! Adaptive Dormand–Prince 5(4) embedded Runge–Kutta pair.

use crate::stepper::{StepOutcome, Stepper};
use crate::vecn::{all_finite, axpy_mut, error_norm};
use crate::{Ode, SolveError};

// Butcher tableau of the Dormand–Prince 5(4) pair (Hairer, Nørsett & Wanner,
// "Solving Ordinary Differential Equations I", Table 5.2).
const C: [f64; 7] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];
const A: [[f64; 6]; 7] = [
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
    [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
    [19372.0 / 6561.0, -25360.0 / 2187.0, 64448.0 / 6561.0, -212.0 / 729.0, 0.0, 0.0],
    [9017.0 / 3168.0, -355.0 / 33.0, 46732.0 / 5247.0, 49.0 / 176.0, -5103.0 / 18656.0, 0.0],
    [35.0 / 384.0, 0.0, 500.0 / 1113.0, 125.0 / 192.0, -2187.0 / 6784.0, 11.0 / 84.0],
];
/// 5th-order solution weights (identical to the last row of `A`: FSAL).
const B5: [f64; 7] =
    [35.0 / 384.0, 0.0, 500.0 / 1113.0, 125.0 / 192.0, -2187.0 / 6784.0, 11.0 / 84.0, 0.0];
/// Error weights `b5 - b4`.
const E: [f64; 7] = [
    71.0 / 57600.0,
    0.0,
    -71.0 / 16695.0,
    71.0 / 1920.0,
    -17253.0 / 339200.0,
    22.0 / 525.0,
    -1.0 / 40.0,
];

/// Adaptive Dormand–Prince 5(4) stepper with a PI step-size controller.
///
/// The workhorse integrator of this crate: 5th-order accurate with an
/// embedded 4th-order error estimate, first-same-as-last (the derivative at
/// the step end is free), and a proportional–integral controller that keeps
/// step-size oscillation in check near switching surfaces.
///
/// # Example
///
/// ```
/// use odesolve::{integrate, Dopri5, Options};
///
/// let sol = integrate(
///     &|_t: f64, y: &[f64; 2]| [y[1], -y[0]],
///     0.0,
///     [0.0, 1.0],
///     std::f64::consts::PI,
///     &mut Dopri5::with_tolerances(1e-10, 1e-10),
///     &Options::default(),
/// )
/// .unwrap();
/// // sin(pi) = 0
/// assert!(sol.last_state()[0].abs() < 1e-8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dopri5 {
    atol: f64,
    rtol: f64,
    /// Error norm of the previous accepted step (PI controller memory).
    prev_err: f64,
    safety: f64,
    min_factor: f64,
    max_factor: f64,
    /// Trial steps rejected since the last `take_rejections` drain.
    rejections: u32,
    /// Error norm of the most recent accepted step.
    last_en: f64,
}

impl Dopri5 {
    /// Creates a stepper with default tolerances `atol = rtol = 1e-9`.
    #[must_use]
    pub fn new() -> Self {
        Self::with_tolerances(1e-9, 1e-9)
    }

    /// Creates a stepper with the given absolute and relative tolerances.
    ///
    /// # Panics
    ///
    /// Panics if either tolerance is not strictly positive and finite.
    #[must_use]
    pub fn with_tolerances(atol: f64, rtol: f64) -> Self {
        assert!(atol.is_finite() && atol > 0.0, "atol must be positive");
        assert!(rtol.is_finite() && rtol > 0.0, "rtol must be positive");
        Self {
            atol,
            rtol,
            prev_err: 1.0,
            safety: 0.9,
            min_factor: 0.2,
            max_factor: 5.0,
            rejections: 0,
            last_en: f64::NAN,
        }
    }

    /// The absolute tolerance.
    #[must_use]
    pub fn atol(&self) -> f64 {
        self.atol
    }

    /// The relative tolerance.
    #[must_use]
    pub fn rtol(&self) -> f64 {
        self.rtol
    }

    /// One trial step; returns `(y_new, f_last_stage, err_norm)`.
    fn try_step<const N: usize>(
        &self,
        ode: &dyn Ode<N>,
        t: f64,
        y: &[f64; N],
        f: &[f64; N],
        h: f64,
    ) -> ([f64; N], [f64; N], f64) {
        let mut k = [[0.0; N]; 7];
        k[0] = *f;
        for s in 1..7 {
            let mut ys = *y;
            for (j, kj) in k.iter().enumerate().take(s) {
                if A[s][j] != 0.0 {
                    axpy_mut(&mut ys, h * A[s][j], kj);
                }
            }
            k[s] = ode.rhs(t + C[s] * h, &ys);
        }
        let mut y_new = *y;
        for (s, ks) in k.iter().enumerate() {
            if B5[s] != 0.0 {
                axpy_mut(&mut y_new, h * B5[s], ks);
            }
        }
        let mut err = [0.0; N];
        for (s, ks) in k.iter().enumerate() {
            if E[s] != 0.0 {
                axpy_mut(&mut err, h * E[s], ks);
            }
        }
        let en = error_norm(&err, y, &y_new, self.atol, self.rtol);
        (y_new, k[6], en)
    }
}

impl Default for Dopri5 {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> Stepper<N> for Dopri5 {
    fn step(
        &mut self,
        ode: &dyn Ode<N>,
        t: f64,
        y: &[f64; N],
        f: &[f64; N],
        h: f64,
    ) -> Result<StepOutcome<N>, SolveError> {
        if !(h.is_finite() && h > 0.0) {
            return Err(SolveError::BadInput(format!("non-positive step {h}")));
        }
        let mut h_try = h;
        for _ in 0..64 {
            let (y_new, f_last, en) = self.try_step(ode, t, y, f, h_try);
            if !all_finite(&y_new) || !en.is_finite() {
                self.rejections += 1;
                h_try *= 0.25;
                if t + h_try == t {
                    return Err(SolveError::NonFiniteState { t });
                }
                continue;
            }
            if en <= 1.0 {
                // PI controller (Gustafsson): factor from current and
                // previous error norms, exponents 0.7/5 and 0.4/5.
                let e = en.max(1e-10);
                let factor = self.safety * e.powf(-0.7 / 5.0) * self.prev_err.powf(0.4 / 5.0);
                let factor = factor.clamp(self.min_factor, self.max_factor);
                self.prev_err = e;
                self.last_en = en;
                // FSAL: k7 was evaluated at (t + h, y_new) and B5 row ==
                // A[6], so f_last IS rhs(t_new, y_new).
                return Ok(StepOutcome {
                    t_new: t + h_try,
                    y_new,
                    f_new: f_last,
                    h_next: h_try * factor,
                });
            }
            self.rejections += 1;
            let factor = (self.safety * en.powf(-0.2)).clamp(self.min_factor, 1.0);
            h_try *= factor;
            if t + h_try == t {
                return Err(SolveError::StepSizeUnderflow { t, h: h_try });
            }
        }
        Err(SolveError::StepSizeUnderflow { t, h: h_try })
    }

    fn reset(&mut self) {
        self.prev_err = 1.0;
        self.last_en = f64::NAN;
    }

    fn take_rejections(&mut self) -> u32 {
        std::mem::take(&mut self.rejections)
    }

    fn last_error_estimate(&self) -> f64 {
        self.last_en
    }

    fn initial_step(&self, t0: f64, y0: &[f64; N], f0: &[f64; N], t_end: f64) -> f64 {
        // Algorithm from Hairer et al. II.4: balance |y|/|f| scaled by tol.
        let span = (t_end - t0).abs();
        if span == 0.0 {
            return f64::MIN_POSITIVE;
        }
        let mut d0 = 0.0_f64;
        let mut d1 = 0.0_f64;
        for i in 0..N {
            let sc = self.atol + self.rtol * y0[i].abs();
            d0 = d0.max((y0[i] / sc).abs());
            d1 = d1.max((f0[i] / sc).abs());
        }
        let h0 = if d0 < 1e-5 || d1 < 1e-5 { 1e-6 * span } else { 0.01 * d0 / d1 };
        h0.min(span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stepper::Stepper;

    fn drive<const N: usize>(
        ode: impl Fn(f64, &[f64; N]) -> [f64; N],
        mut t: f64,
        mut y: [f64; N],
        t_end: f64,
        st: &mut Dopri5,
    ) -> [f64; N] {
        let mut f = ode(t, &y);
        let mut h = <Dopri5 as Stepper<N>>::initial_step(st, t, &y, &f, t_end);
        while t < t_end {
            h = h.min(t_end - t);
            let out = st.step(&ode, t, &y, &f, h).unwrap();
            t = out.t_new;
            y = out.y_new;
            f = out.f_new;
            h = out.h_next;
        }
        y
    }

    #[test]
    fn exponential_decay_meets_tolerance() {
        let mut st = Dopri5::with_tolerances(1e-10, 1e-10);
        let y = drive(|_t, y: &[f64; 1]| [-y[0]], 0.0, [1.0], 3.0, &mut st);
        assert!((y[0] - (-3.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn oscillator_energy_preserved_within_tolerance() {
        let mut st = Dopri5::with_tolerances(1e-11, 1e-11);
        let y = drive(
            |_t, y: &[f64; 2]| [y[1], -y[0]],
            0.0,
            [1.0, 0.0],
            20.0 * std::f64::consts::TAU,
            &mut st,
        );
        let energy = y[0] * y[0] + y[1] * y[1];
        assert!((energy - 1.0).abs() < 1e-7, "energy drift {energy}");
    }

    #[test]
    fn fsal_derivative_matches_rhs() {
        let ode = |_t: f64, y: &[f64; 1]| [-2.0 * y[0]];
        let mut st = Dopri5::new();
        let f0 = ode(0.0, &[1.0]);
        let out = <Dopri5 as Stepper<1>>::step(&mut st, &ode, 0.0, &[1.0], &f0, 0.05).unwrap();
        let f_direct = ode(out.t_new, &out.y_new);
        assert!((out.f_new[0] - f_direct[0]).abs() < 1e-14);
    }

    #[test]
    fn tighter_tolerance_gives_smaller_error() {
        let exact = (-5.0f64).exp();
        let run = |tol: f64| {
            let mut st = Dopri5::with_tolerances(tol, tol);
            let y = drive(|_t, y: &[f64; 1]| [-y[0]], 0.0, [1.0], 5.0, &mut st);
            (y[0] - exact).abs()
        };
        let loose = run(1e-5);
        let tight = run(1e-11);
        assert!(tight < loose, "tight {tight} vs loose {loose}");
        assert!(tight < 1e-9);
    }

    #[test]
    #[should_panic(expected = "rtol must be positive")]
    fn rejects_bad_tolerance() {
        let _ = Dopri5::with_tolerances(1e-9, 0.0);
    }

    #[test]
    fn stiffish_problem_completes() {
        // Moderately stiff: y' = -50(y - cos t). Explicit RK must shrink
        // steps but should still finish correctly.
        let mut st = Dopri5::with_tolerances(1e-8, 1e-8);
        let y = drive(|t: f64, y: &[f64; 1]| [-50.0 * (y[0] - t.cos())], 0.0, [0.0], 1.5, &mut st);
        // Reference from the exact solution of the linear ODE:
        // y = (2500 cos t + 50 sin t)/2501 - (2500/2501) e^{-50 t}
        let t = 1.5_f64;
        let exact =
            (2500.0 * t.cos() + 50.0 * t.sin()) / 2501.0 - 2500.0 / 2501.0 * (-50.0 * t).exp();
        assert!((y[0] - exact).abs() < 1e-6);
    }
}
