//! Parallel-sweep scaling check for the atlas engine.
//!
//! Times [`compute_atlas`] at 1/2/4/8 worker threads, verifies the
//! rendered CSV is byte-identical at every width (the `parkit`
//! determinism contract), and quantifies what hoisting the per-cell
//! `BcnParams` allocation saves. Results land in `BENCH_sweeps.json`
//! under the usual results directory.
//!
//! Speedup is hardware-bound: on an M-core machine the atlas cannot
//! scale past M, so the wall-clock table is informational — the run
//! only *fails* if the CSV equivalence breaks. Run release builds only:
//!
//! ```console
//! $ cargo run --release -p bench --bin sweep_scaling
//! ```
//!
//! Environment knobs: `DCE_BCN_SWEEP_GRID` (atlas side length, default
//! 64), `DCE_BCN_SWEEP_REPS` (timing repetitions, default 3).

use std::hint::black_box;
use std::time::Instant;

use bcn::BcnParams;
use bench::common::out_dir;
use bench::experiments::criterion_sweep::{compute_atlas, Cell};
use plotkit::Csv;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

/// The atlas rendered exactly as the `criterion_sweep` experiment
/// writes it — the byte-equivalence check runs on this serialisation.
fn atlas_csv(cells: &[Cell]) -> String {
    let mut csv = Csv::new(&[
        "gi",
        "gd",
        "case",
        "baseline",
        "theorem1",
        "case_criterion",
        "exact",
        "fluid_drops",
    ]);
    for c in cells {
        csv.row(&[
            c.gi,
            c.gd,
            f64::from(c.case_no),
            f64::from(u8::from(c.baseline)),
            f64::from(u8::from(c.theorem1)),
            f64::from(u8::from(c.case_criterion)),
            f64::from(u8::from(c.exact)),
            f64::from(u8::from(c.fluid_drops)),
        ]);
    }
    csv.to_string()
}

/// Best-of-`reps` wall time of one atlas at a pinned thread count.
fn time_atlas(base: &BcnParams, grid: usize, threads: usize, reps: usize) -> (f64, Vec<Cell>) {
    parkit::set_threads(threads);
    let mut best = f64::INFINITY;
    let mut cells = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        cells = compute_atlas(base, grid);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    parkit::set_threads(0);
    (best, cells)
}

/// Per-cell parameter-construction cost: the builder chain the atlas
/// used to run (one clone per cell) vs the hoisted scratch mutation it
/// runs now. Returns (chain_ns, scratch_ns) per cell.
fn param_construction_delta(base: &BcnParams, cells: usize) -> (f64, f64) {
    let gis: Vec<f64> = (0..cells).map(|i| base.gi * (1.0 + 1e-6 * i as f64)).collect();
    let t0 = Instant::now();
    for &gi in &gis {
        black_box(base.clone().with_gi(gi).with_gd(base.gd));
    }
    let chain = t0.elapsed().as_secs_f64();
    let mut scratch = base.clone();
    let t0 = Instant::now();
    for &gi in &gis {
        scratch.gi = gi;
        scratch.gd = base.gd;
        black_box(&scratch);
    }
    let scratch_t = t0.elapsed().as_secs_f64();
    let per = 1e9 / cells as f64;
    (chain * per, scratch_t * per)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let grid = env_usize("DCE_BCN_SWEEP_GRID", 64);
    let reps = env_usize("DCE_BCN_SWEEP_REPS", 3);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let base = BcnParams::test_defaults().with_buffer(1.5e5);

    println!("atlas sweep scaling: {grid}x{grid} grid, best of {reps}, {cores} core(s)");
    if cores < 4 {
        println!("note: fewer than 4 cores — parallel speedup is bounded by the hardware;");
        println!("      the equivalence checks below are still exact.");
    }

    // Warm up caches/allocator off the record.
    let _ = compute_atlas(&base, 4);

    let mut times = Vec::new();
    let mut csvs = Vec::new();
    for &threads in &THREAD_COUNTS {
        let (secs, cells) = time_atlas(&base, grid, threads, reps);
        println!("  threads = {threads}: {:.3} s", secs);
        times.push(secs);
        csvs.push(atlas_csv(&cells));
    }
    let serial = times[0];
    let cells = (grid * grid) as f64;
    println!("speedups vs 1 thread (per-cell serial cost {:.0} ns):", serial * 1e9 / cells);
    for (&threads, &t) in THREAD_COUNTS.iter().zip(&times) {
        println!("  threads = {threads}: {:.2}x ({:.0} ns/cell)", serial / t, t * 1e9 / cells);
    }

    let csv_identical = csvs.iter().all(|c| c == &csvs[0]);
    if csv_identical {
        println!("CSV byte-equivalence: identical at every thread count ✓");
    } else {
        eprintln!("FAIL: atlas CSV differs across thread counts — determinism contract broken");
    }

    let (chain_ns, scratch_ns) = param_construction_delta(&base, (grid * grid).max(10_000));
    println!(
        "per-cell parameter setup: builder chain {chain_ns:.1} ns vs hoisted scratch \
         {scratch_ns:.1} ns ({:.1}x cheaper)",
        chain_ns / scratch_ns.max(1e-9)
    );

    // Hand-rolled JSON (the workspace has no serde): flat and stable.
    let times_json: Vec<String> = THREAD_COUNTS
        .iter()
        .zip(&times)
        .map(|(th, t)| {
            format!(
                "{{\"threads\": {th}, \"secs\": {t:.6}, \"per_cell_ns\": {:.1}, \
                 \"speedup\": {:.4}}}",
                t * 1e9 / cells,
                serial / t
            )
        })
        .collect();
    let note = "Earlier committed artifacts came from the CI smoke (grid 8, reps 1), where \
                per-cell serial cost dominated and the speedup column sat flat at ~1.0x \
                regardless of thread count; the smoke now writes to a scratch directory and \
                this file records the full default grid with per-cell times. On single-core \
                hardware (see \\\"cores\\\") flat speedup is expected from the hardware, not \
                the engine.";
    let json = format!(
        "{{\n  \"grid\": {grid},\n  \"reps\": {reps},\n  \"cores\": {cores},\n  \
         \"runs\": [{}],\n  \"csv_identical\": {csv_identical},\n  \
         \"param_setup_ns\": {{\"builder_chain\": {chain_ns:.2}, \"hoisted_scratch\": {scratch_ns:.2}}},\n  \
         \"note\": \"{note}\"\n}}\n",
        times_json.join(", ")
    );
    let out = out_dir();
    let path = out.join("BENCH_sweeps.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("FAIL: could not write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());

    if !csv_identical {
        std::process::exit(1);
    }
}
