//! Report toolkit for the figure/table generators: CSV files, text
//! tables, ASCII charts for the terminal, and dependency-free SVG line
//! plots.
//!
//! Every experiment binary in `crates/bench` regenerates one of the
//! paper's figures; this crate turns their numbers into artifacts under
//! `results/` without pulling a plotting dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod csv;
pub mod svg;
pub mod table;

pub use ascii::AsciiChart;
pub use csv::Csv;
pub use svg::{Band, Series, SvgPlot};
pub use table::Table;
