//! The workspace-wide error taxonomy.
//!
//! Every crate in the workspace reports failures through its own typed
//! error — [`bcn::BcnError`] for model validation, [`odesolve::SolveError`]
//! for the integrators, [`phaseplane::poincare::PoincareError`] for the
//! return-map analysis, [`dcesim::wire::WireError`] for the BCN frame
//! codec, [`dcesim::error::ConfigError`] for simulator configuration, and
//! [`cli::CliError`] for the command-line front end. This module unifies
//! them behind one conversion layer so binaries and integration tests can
//! handle "anything the workspace can fail with" in a single match, and
//! maps each family onto a distinct process exit code.

use std::fmt;

/// Any failure a workspace API can report, unified.
///
/// The enum is `#[non_exhaustive]`: new failure families may appear as
/// the workspace grows, so downstream matches need a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The user asked for something the tools do not understand
    /// (unknown command, malformed flag). Exit code 2.
    Usage(String),
    /// The BCN fluid-model parameters were rejected. Exit code 3.
    Model(bcn::BcnError),
    /// An analysis failed on otherwise-valid input. Exit code 3.
    Analysis(String),
    /// An ODE integration failed. Exit code 4.
    Solver(odesolve::SolveError),
    /// The Poincaré return-map analysis failed. Exit code 5.
    Poincare(phaseplane::poincare::PoincareError),
    /// A BCN wire frame failed to encode or decode. Exit code 6.
    Wire(dcesim::wire::WireError),
    /// A simulator configuration was rejected. Exit code 7.
    SimConfig(dcesim::error::ConfigError),
    /// A filesystem operation failed. Exit code 8.
    Io(std::io::Error),
    /// A batch run failed under fail-fast semantics. Exit code 9.
    Batch(String),
    /// The batch watchdog demoted seeds under fail-fast semantics.
    /// Exit code 10.
    Timeout(String),
    /// A postmortem replay did not reproduce the recorded failure.
    /// Exit code 11.
    Replay(String),
}

impl Error {
    /// The process exit code for this failure family: 2 usage, 3
    /// model/analysis, 4 solver, 5 Poincaré, 6 wire codec, 7 simulator
    /// config, 8 I/O, 9 batch fail-fast, 10 watchdog timeout, 11 replay
    /// mismatch.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            Error::Usage(_) => 2,
            Error::Model(_) | Error::Analysis(_) => 3,
            Error::Solver(_) => 4,
            Error::Poincare(_) => 5,
            Error::Wire(_) => 6,
            Error::SimConfig(_) => 7,
            Error::Io(_) => 8,
            Error::Batch(_) => 9,
            Error::Timeout(_) => 10,
            Error::Replay(_) => 11,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Usage(msg) => write!(f, "usage error: {msg}"),
            Error::Model(e) => write!(f, "model error: {e}"),
            Error::Analysis(msg) => write!(f, "analysis error: {msg}"),
            Error::Solver(e) => write!(f, "solver error: {e}"),
            Error::Poincare(e) => write!(f, "poincare error: {e}"),
            Error::Wire(e) => write!(f, "wire error: {e}"),
            Error::SimConfig(e) => write!(f, "simulation config error: {e}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Batch(msg) => write!(f, "batch error: {msg}"),
            Error::Timeout(msg) => write!(f, "watchdog timeout: {msg}"),
            Error::Replay(msg) => write!(f, "replay mismatch: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Model(e) => Some(e),
            Error::Solver(e) => Some(e),
            Error::Poincare(e) => Some(e),
            Error::Wire(e) => Some(e),
            Error::SimConfig(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Usage(_)
            | Error::Analysis(_)
            | Error::Batch(_)
            | Error::Timeout(_)
            | Error::Replay(_) => None,
        }
    }
}

impl From<bcn::BcnError> for Error {
    fn from(e: bcn::BcnError) -> Self {
        Error::Model(e)
    }
}

impl From<odesolve::SolveError> for Error {
    fn from(e: odesolve::SolveError) -> Self {
        Error::Solver(e)
    }
}

impl From<phaseplane::poincare::PoincareError> for Error {
    fn from(e: phaseplane::poincare::PoincareError) -> Self {
        Error::Poincare(e)
    }
}

impl From<dcesim::wire::WireError> for Error {
    fn from(e: dcesim::wire::WireError) -> Self {
        Error::Wire(e)
    }
}

impl From<dcesim::error::ConfigError> for Error {
    fn from(e: dcesim::error::ConfigError) -> Self {
        Error::SimConfig(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<cli::CliError> for Error {
    fn from(e: cli::CliError) -> Self {
        match e {
            cli::CliError::Usage(msg) => Error::Usage(msg),
            cli::CliError::Analysis(msg) => Error::Analysis(msg),
            cli::CliError::Solver(e) => Error::Solver(e),
            cli::CliError::Sim(e) => Error::SimConfig(e),
            cli::CliError::Batch(msg) => Error::Batch(msg),
            cli::CliError::Timeout(msg) => Error::Timeout(msg),
            cli::CliError::Replay(msg) => Error::Replay(msg),
            cli::CliError::Io(e) => Error::Io(e),
            // `CliError` is non-exhaustive: future variants fall back to
            // the analysis family rather than breaking the build.
            other => Error::Analysis(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_family() {
        let errors: Vec<Error> = vec![
            Error::Usage("u".into()),
            Error::Analysis("a".into()),
            Error::Solver(odesolve::SolveError::StepSizeUnderflow { t: 0.0, h: 1e-30 }),
            Error::Io(std::io::Error::other("io")),
            Error::Batch("b".into()),
            Error::Timeout("t".into()),
            Error::Replay("r".into()),
        ];
        let codes: Vec<i32> = errors.iter().map(Error::exit_code).collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "families share an exit code: {codes:?}");
        assert!(codes.iter().all(|c| *c >= 2), "exit codes must leave 0/1 free");
    }

    #[test]
    fn cli_errors_map_onto_the_taxonomy() {
        let e = Error::from(cli::CliError::Usage("bad flag".into()));
        assert_eq!(e.exit_code(), 2);
        let e = Error::from(cli::CliError::Batch("seed 3 failed".into()));
        assert_eq!(e.exit_code(), 9);
        let e = Error::from(cli::CliError::Timeout("seed 3 hit the watchdog".into()));
        assert_eq!(e.exit_code(), 10);
        assert!(e.to_string().contains("watchdog"));
        let e = Error::from(cli::CliError::Replay("seed 3 diverged".into()));
        assert_eq!(e.exit_code(), 11);
        assert!(e.to_string().contains("replay"));
        let e = Error::from(cli::CliError::Sim(dcesim::error::ConfigError::new(
            "capacity",
            "must be positive",
        )));
        assert_eq!(e.exit_code(), 7);
        assert!(e.to_string().contains("capacity"));
    }

    #[test]
    fn leaf_errors_convert_and_keep_their_message() {
        let wire = dcesim::wire::decode(&[0u8; 4]).unwrap_err();
        let e = Error::from(wire);
        assert_eq!(e.exit_code(), 6);
        let model = bcn::BcnParams { capacity: -1.0, ..bcn::BcnParams::paper_defaults() }
            .validate()
            .unwrap_err();
        let e = Error::from(model);
        assert_eq!(e.exit_code(), 3);
        assert!(std::error::Error::source(&e).is_some());
    }
}
