//! Phase-plane analysis toolkit for planar (2-D) dynamical systems.
//!
//! The phase-plane method is the analytical machinery of the reproduced
//! paper: a second-order system is studied as a vector field on the
//! `(x, y)` plane, its singular points classified through the eigenvalues
//! of the linearisation, and its long-run behaviour read off the shapes of
//! trajectories (spirals, node parabolas, limit cycles).
//!
//! This crate provides the generic, paper-agnostic pieces:
//!
//! * [`Mat2`] / [`Eigen2`] / [`classify`] — 2×2 linear algebra and the
//!   trace–determinant classification of singular points (stable/unstable
//!   focus and node, saddle, center, degenerate node).
//! * [`PlaneSystem`] — autonomous planar vector fields (implemented for
//!   closures), with [`trajectory`] tracing built on `odesolve`.
//! * [`SwitchingLine`] — a line through the origin partitioning the plane,
//!   as used by variable-structure control systems.
//! * [`poincare`] — Poincaré sections, return maps, and a fixed-point
//!   finder for locating limit cycles and measuring their stability.
//! * [`field`] — vector-field grid sampling for quiver-style figures.
//!
//! The BCN-specific closed forms (logarithmic spirals, node parabolas,
//! extrema formulas) live in the `bcn` crate, which builds on this one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
mod linear2d;
pub mod poincare;
mod switching;
mod system;
mod trajectory;

pub use linear2d::{classify, Eigen2, FixedPointKind, Mat2};
pub use switching::{HalfPlane, SwitchingLine};
pub use system::PlaneSystem;
pub use trajectory::{linear_trajectory, trajectory, trajectory_with_events, TrajectoryOptions};
