//! Semi-analytic propagation of the switched BCN system.
//!
//! The paper's central observation is that each control region of the
//! linearised model is a *solved* system: trajectories are logarithmic
//! spirals, node parabolas, or critically damped arcs with explicit
//! formulas (Eqs. 12–34). This module turns that structure into the fast
//! path used by every sweep:
//!
//! * [`Propagator`] — both regions' [`RegionFlow`] spectral
//!   decompositions, precomputed once per parameter set and shared across
//!   sweep cells through a process-wide memo cache keyed by the exact bit
//!   patterns of the derived constants `(k, a, bC)`. The cache is sharded
//!   (hash-selected shard, per-shard lock) with bounded second-chance
//!   eviction and per-shard hit/miss/eviction counters ([`cache_stats`]).
//!   A cached propagator is a pure function of its key, so cached and
//!   freshly built values are bit-identical and the parallel-sweep
//!   determinism contract is preserved at any thread count, cache hot,
//!   cold, or churning.
//! * [`crossing_time`] — the switching-line crossing time of a leg from
//!   the *closed form* of the scalar `s(t) = x(t) + k y(t)`: an explicit
//!   zero formula per spectrum polished by safeguarded Newton iteration
//!   inside a bisection bracket, replacing the linear `scan_step` sweep
//!   of [`RegionFlow::first_zero`] on the hot path.
//! * [`analytic_trajectory`] — a drop-in replacement for the DOPRI5
//!   hybrid integrator on the linearised model: walks trajectory legs
//!   analytically and emits the same [`HybridSolution`] shape (mode
//!   intervals, switch-budget semantics, dense samples on request), with
//!   each leg's queue extremum inserted as an exact sample.
//!
//! The numeric integrator remains the cross-check: `bench --bin
//! fluid_engine` and the test suite compare both engines cell by cell.

use std::collections::HashMap;
use std::f64::consts::{FRAC_PI_2, PI};
use std::sync::{Mutex, MutexGuard, OnceLock};

use odesolve::hybrid::{HybridSolution, ModeInterval};
use odesolve::Solution;

use crate::closed_form::{RegionFlow, Spectrum};
use crate::extrema::region_extremum;
use crate::model::{BcnFluid, Region};
use crate::params::BcnParams;
use crate::rounds::departing_region;
use crate::simulate::FluidOptions;

/// Number of independent cache shards. A power of two, so the shard
/// index is a mask of the mixed key hash; 16 shards keep lock
/// contention negligible at the 8-worker widths `parkit` runs.
const SHARD_COUNT: usize = 16;

/// Per-shard slot budget. `SHARD_COUNT * SHARD_CAP` preserves the old
/// single-map footprint of 4096 memoised parameter sets; past it the
/// CLOCK hand recycles the least-recently-referenced slot instead of
/// silently dropping the insert.
const SHARD_CAP: usize = 256;

/// One resident propagator: its exact `(k, a, bC)` bit-pattern key and
/// the CLOCK reference bit granting it a second chance on eviction.
struct Slot {
    key: [u64; 3],
    prop: Propagator,
    referenced: bool,
}

/// One lock's worth of the memo cache: an index map over a bounded slot
/// arena plus the CLOCK hand and this shard's share of the counters.
#[derive(Default)]
struct Shard {
    map: HashMap<[u64; 3], usize>,
    slots: Vec<Slot>,
    hand: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Shard {
    fn insert(&mut self, key: [u64; 3], prop: Propagator) {
        if self.map.contains_key(&key) {
            return; // lost a build race; the resident copy is bit-identical
        }
        if self.slots.len() < SHARD_CAP {
            let idx = self.slots.len();
            self.slots.push(Slot { key, prop, referenced: true });
            self.map.insert(key, idx);
            return;
        }
        // Second-chance (CLOCK) eviction: sweep the hand, stripping
        // reference bits, until it lands on a slot not referenced since
        // the previous sweep, and replace that slot in place.
        loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % SHARD_CAP;
            if self.slots[idx].referenced {
                self.slots[idx].referenced = false;
            } else {
                let old = self.slots[idx].key;
                self.map.remove(&old);
                self.map.insert(key, idx);
                self.slots[idx] = Slot { key, prop, referenced: true };
                self.evictions += 1;
                return;
            }
        }
    }
}

fn shards() -> &'static [Mutex<Shard>; SHARD_COUNT] {
    static SHARDS: OnceLock<[Mutex<Shard>; SHARD_COUNT]> = OnceLock::new();
    SHARDS.get_or_init(|| std::array::from_fn(|_| Mutex::new(Shard::default())))
}

/// Shard selector: the raw bit patterns of `(k, a, bC)` are heavily
/// correlated inside a sweep (one constant often stays fixed), so fold
/// the words and run a splitmix64 finaliser before masking.
fn shard_index(key: &[u64; 3]) -> usize {
    let mut h = key[0] ^ key[1].rotate_left(21) ^ key[2].rotate_left(42);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    (h as usize) & (SHARD_COUNT - 1)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Cumulative propagator memo-cache counters since process start,
/// summed across shards. The counters are global, so deltas (see
/// [`CacheStats::delta_since`]) — not absolutes — are the meaningful
/// quantity in tests and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered by a resident propagator.
    pub hits: u64,
    /// Lookups that had to build the spectral decomposition afresh.
    pub misses: u64,
    /// Resident entries recycled by the CLOCK hand to admit a new key.
    pub evictions: u64,
}

impl CacheStats {
    /// The counter increments accumulated since `earlier` was sampled.
    #[must_use]
    pub fn delta_since(self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// Samples the cache counters across all shards.
#[must_use]
pub fn cache_stats() -> CacheStats {
    let mut out = CacheStats::default();
    for shard in shards() {
        let s = lock(shard);
        out.hits += s.hits;
        out.misses += s.misses;
        out.evictions += s.evictions;
    }
    out
}

/// Both regions' exact flows for one parameter set, plus the switching
/// slope `k`, ready for closed-form leg propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Propagator {
    k: f64,
    increase: RegionFlow,
    decrease: RegionFlow,
}

impl Propagator {
    /// Builds the propagator from the derived constants directly:
    /// `n = a` in the increase region, `n = bC` in the decrease region
    /// (paper Eq. 35).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b_c` is non-positive or `k` negative (validated
    /// `BcnParams` always satisfy this).
    #[must_use]
    pub fn new(k: f64, a: f64, b_c: f64) -> Self {
        Self { k, increase: RegionFlow::from_kn(k, a), decrease: RegionFlow::from_kn(k, b_c) }
    }

    /// The propagator for a parameter set, through the process-wide memo
    /// cache: repeated calls with the same derived `(k, a, bC)` — the
    /// common case inside a sweep, where every cell re-analyses the same
    /// point many times — reuse one spectral decomposition.
    #[must_use]
    pub fn for_params(params: &BcnParams) -> Self {
        Self::cached(params.k(), params.a(), params.b() * params.capacity)
    }

    /// [`Propagator::new`] through the sharded memo cache, keyed by the
    /// exact bit patterns of the derived constants. The cached value is a
    /// pure function of the key, so a hit is bit-identical to a fresh
    /// build and an eviction can never change an answer — only cost a
    /// rebuild.
    #[must_use]
    pub fn cached(k: f64, a: f64, b_c: f64) -> Self {
        let key = [k.to_bits(), a.to_bits(), b_c.to_bits()];
        let shard = &shards()[shard_index(&key)];
        {
            let mut s = lock(shard);
            if let Some(&idx) = s.map.get(&key) {
                s.hits += 1;
                s.slots[idx].referenced = true;
                return s.slots[idx].prop;
            }
            s.misses += 1;
        }
        // Build outside the lock: the spectral decomposition is the
        // expensive part, and racing builders of one key converge on
        // bit-identical values anyway.
        let built = Self::new(k, a, b_c);
        lock(shard).insert(key, built);
        built
    }

    /// The switching-line slope constant `k`.
    #[must_use]
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The exact flow of one control region.
    #[must_use]
    pub fn flow(&self, region: Region) -> &RegionFlow {
        match region {
            Region::Increase => &self.increase,
            Region::Decrease => &self.decrease,
        }
    }

    /// The state reached after time `t` in `region`, starting from `z0`.
    #[must_use]
    pub fn propagate(&self, region: Region, t: f64, z0: [f64; 2]) -> [f64; 2] {
        self.flow(region).at(t, z0)
    }

    /// First strictly positive time the flow from `z0` in `region`
    /// reaches the switching line `x + k y = 0`, from the closed form.
    /// See [`crossing_time`].
    #[must_use]
    pub fn crossing_time(&self, region: Region, z0: [f64; 2], t_max: f64) -> Option<f64> {
        crossing_time(self.flow(region), self.k, z0, t_max)
    }

    /// Signed switching-line coordinate `s = x + k y` of a state: zero
    /// on the line, positive on the decrease side, negative on the
    /// increase side. `|s|` is the hybrid engine's distance-to-line
    /// oracle (in bits, since `k y` is a queue-scaled rate surplus).
    #[must_use]
    pub fn line_coordinate(&self, z: [f64; 2]) -> f64 {
        z[0] + self.k * z[1]
    }

    /// The region a trajectory at `z` departs into, using the same
    /// tie-break as `rounds::departing_region`: sign of `s` off the
    /// line, sign of `y` on it. Only the slope `k` is needed, so the
    /// propagator can answer without the full parameter set.
    #[must_use]
    pub fn departing_region(&self, z: [f64; 2]) -> Region {
        let s = self.line_coordinate(z);
        if s > 0.0 || (s == 0.0 && z[1] > 0.0) {
            Region::Decrease
        } else {
            Region::Increase
        }
    }

    /// Advances the switched system analytically by exactly `dt`,
    /// starting from `z0` departing in `region`, walking as many
    /// closed-form legs as fit (at most `max_switches` region
    /// transitions). Each landing is normalised onto the switching line
    /// (`x = -k y`, the `rounds::trace_legs` convention) before the
    /// next leg departs, so a multi-leg advance matches
    /// [`analytic_trajectory`] leg for leg.
    ///
    /// Returns the state reached, the region it departs into, the number
    /// of switches taken, and the time actually covered: `t == dt`
    /// unless the switch budget ran out or a leg collapsed below time
    /// resolution, in which case the caller sees `t < dt` and can fall
    /// back to stepping.
    #[must_use]
    pub fn advance(
        &self,
        mut region: Region,
        mut z: [f64; 2],
        dt: f64,
        max_switches: usize,
    ) -> EpochStep {
        let mut t = 0.0;
        let mut switches = 0usize;
        loop {
            let remaining = dt - t;
            if remaining <= 0.0 {
                return EpochStep { z, region, switches, t };
            }
            match self.crossing_time(region, z, remaining) {
                Some(tc) => {
                    let mut z_end = self.flow(region).at(tc, z);
                    z_end[0] = -self.k * z_end[1];
                    let t_hit = t + tc;
                    if t_hit <= t || switches == max_switches {
                        // Sub-ulp leg or budget exhausted: report the
                        // partial advance honestly.
                        return EpochStep { z: z_end, region, switches, t: t_hit.min(dt) };
                    }
                    switches += 1;
                    t = t_hit;
                    z = z_end;
                    region = self.departing_region(z);
                }
                None => {
                    return EpochStep {
                        z: self.flow(region).at(remaining, z),
                        region,
                        switches,
                        t: dt,
                    };
                }
            }
        }
    }
}

/// Outcome of [`Propagator::advance`]: where an analytic multi-leg
/// epoch advance landed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStep {
    /// State reached after time `t`.
    pub z: [f64; 2],
    /// Region the trajectory departs into from `z`.
    pub region: Region,
    /// Region transitions taken.
    pub switches: usize,
    /// Time actually covered; `t < dt` means the switch budget ran out
    /// (or a leg collapsed below time resolution) and the caller should
    /// fall back to stepping from `z`.
    pub t: f64,
}

/// First strictly positive time at which `s(t) = x(t) + k y(t)` crosses
/// zero under `flow`, or `None` if no crossing occurs in `(0, t_max]`.
///
/// `s` is a linear functional of the state, so it obeys the same scalar
/// second-order ODE as each component and its zeros have explicit
/// formulas per spectrum:
///
/// * **Focus** `alpha ± i beta`:
///   `s(t) = e^{alpha t} (s0 cos beta t + c sin beta t)` with
///   `c = (s'0 - alpha s0)/beta` — zeros of `cos(beta t - phi)` spaced
///   exactly `pi/beta` apart. A leg entered *on* the line (`s0 = 0`)
///   therefore lasts exactly `pi/beta`, the paper's steady-leg duration.
/// * **Node** `l1 < l2`: `s(t) = c1 e^{l1 t} + c2 e^{l2 t}` has at most
///   one sign change, at `t = -ln(-c2/c1)/(l2 - l1)` when the ratio is
///   admissible. A leg entered on the line has `c1 = -c2` and never
///   returns (the asymptotic approach of the paper's Case 3).
/// * **Critical** `l` repeated: `s(t) = (s0 + (s'0 - l s0) t) e^{l t}`
///   crosses zero at most once, at `t = -s0 / (s'0 - l s0)`.
///
/// The closed-form candidate is then polished by safeguarded
/// Newton/bisection inside a bracket known to contain exactly that zero,
/// so the returned time is accurate to machine precision rather than to
/// the old `scan_step` resolution.
#[must_use]
pub fn crossing_time(flow: &RegionFlow, k: f64, z0: [f64; 2], t_max: f64) -> Option<f64> {
    if t_max.is_nan() || t_max <= 0.0 {
        return None;
    }
    let j = flow.jacobian();
    let s_and_sdot = |z: [f64; 2]| {
        let s = z[0] + k * z[1];
        let sd = z[1] + k * (j.c * z[0] + j.d * z[1]);
        (s, sd)
    };
    let (s0, sd0) = s_and_sdot(z0);
    let guess = match flow.spectrum() {
        Spectrum::Focus { alpha, beta } => {
            let c = (sd0 - alpha * s0) / beta;
            if s0 == 0.0 {
                if c == 0.0 {
                    return None; // s vanishes identically
                }
                // Entered on the line: next zero of sin(beta t), exact.
                let t = PI / beta;
                return (t <= t_max).then_some(t);
            }
            // s ∝ cos(beta t - phi) with phi = atan2(c, s0): zeros sit at
            // beta t = phi + pi/2 (mod pi); reduce into (0, pi] for the
            // first strictly positive one.
            let phi = c.atan2(s0);
            let mut theta = phi + FRAC_PI_2; // in (-pi/2, 3 pi/2]
            if theta > PI {
                theta -= PI;
            }
            if theta <= 0.0 {
                theta += PI;
            }
            theta / beta
        }
        Spectrum::Node { l1, l2 } => {
            let d = l2 - l1;
            let c1 = (l2 * s0 - sd0) / d;
            let c2 = (sd0 - l1 * s0) / d;
            if c1 == 0.0 {
                return None; // pure slow mode: no sign change
            }
            let r = -c2 / c1;
            if r <= 0.0 {
                return None;
            }
            let t = -r.ln() / d;
            if t <= 0.0 {
                return None; // entered on the line (r = 1): never returns
            }
            t
        }
        Spectrum::Critical { l } => {
            let b = sd0 - l * s0;
            if b == 0.0 {
                return None; // s ∝ e^{l t}: no sign change
            }
            let t = -s0 / b;
            if t <= 0.0 {
                return None;
            }
            t
        }
    };
    if !guess.is_finite() || guess > t_max {
        return None;
    }
    // Bracket exactly this zero: focus zeros are pi/beta apart, so a
    // quarter-spacing pad cannot capture a neighbour; node and critical
    // observables cross at most once.
    let pad = match flow.spectrum() {
        Spectrum::Focus { beta, .. } => 0.25 * PI / beta,
        _ => 0.5 * guess,
    };
    let lo = (guess - pad).max(0.5 * guess);
    let hi = guess + pad;
    Some(refine_crossing(|t| s_and_sdot(flow.at(t, z0)), guess, lo, hi))
}

/// Safeguarded Newton polish of a bracketed root: Newton steps on
/// `(s, ds/dt)` that leave `[lo, hi]` fall back to bisection, so the
/// iteration converges to the bracketed zero unconditionally.
fn refine_crossing(f: impl Fn(f64) -> (f64, f64), guess: f64, mut lo: f64, mut hi: f64) -> f64 {
    let (s_lo, _) = f(lo);
    let (s_hi, _) = f(hi);
    if s_lo == 0.0 {
        return lo;
    }
    if s_hi == 0.0 {
        return hi;
    }
    if s_lo.signum() == s_hi.signum() {
        // The bracket failed to see the sign change (sub-ulp geometry);
        // the closed-form candidate is already as good as it gets.
        return guess;
    }
    let mut t = guess.clamp(lo, hi);
    for _ in 0..64 {
        if hi - lo <= 4.0 * f64::EPSILON * hi.abs() {
            break;
        }
        let (s, sd) = f(t);
        if s == 0.0 {
            return t;
        }
        if s.signum() == s_lo.signum() {
            lo = t;
        } else {
            hi = t;
        }
        let newton = t - s / sd;
        t = if newton.is_finite() && newton > lo && newton < hi { newton } else { 0.5 * (lo + hi) };
    }
    0.5 * (lo + hi)
}

/// Integrates the *linearised* switched system analytically: legs are
/// propagated by the exact matrix exponential and switch times come from
/// [`crossing_time`], no ODE stepping involved.
///
/// The output mirrors the DOPRI5 hybrid driver: one [`ModeInterval`] per
/// leg, `switch_budget_exhausted` set when a leg still wants to switch
/// after `opts.max_switches` transitions, dense samples every
/// `opts.record_dt` within each leg. In addition, each leg's interior
/// queue extremum (if any) is inserted as an exact sample, so
/// `max_component`/`min_component` report true extrema regardless of the
/// record grid — something the numeric path can only approach as
/// `record_dt` shrinks.
///
/// Callers are expected to have checked `sys.linearity()`; the flows used
/// here are the linearised ones whatever the system's own setting (the
/// [`crate::simulate::Engine`] selector in `fluid_trajectory` performs
/// that gating).
#[must_use]
pub fn analytic_trajectory(sys: &BcnFluid, p0: [f64; 2], opts: &FluidOptions) -> HybridSolution<2> {
    let params = sys.params();
    let prop = Propagator::for_params(params);
    let t_end = opts.t_end;
    let mut sol = Solution::new(0.0, p0);
    let mut intervals: Vec<ModeInterval> = Vec::new();
    let mut exhausted = false;
    let mut t = 0.0;
    let mut z = p0;
    let mut switches = 0usize;
    loop {
        let region = departing_region(params, z);
        let remaining = t_end - t;
        if remaining <= 0.0 {
            // Degenerate horizon: a single empty interval, mirroring the
            // numeric driver's trivial zero-length integration.
            intervals.push(ModeInterval { mode: region.mode_index(), t_start: t, t_end: t });
            break;
        }
        let flow = prop.flow(region);
        let cross = prop.crossing_time(region, z, remaining);
        let leg_dur = cross.unwrap_or(remaining);

        // Interior samples: the record grid plus the leg's queue extremum,
        // in time order.
        let mut interior: Vec<f64> = Vec::new();
        if let Some(dt) = opts.record_dt {
            if dt > 0.0 {
                let mut tr = dt;
                while tr < leg_dur - 1e-12 * dt {
                    interior.push(tr);
                    tr += dt;
                }
            }
        }
        if let Some(e) = region_extremum(flow, z) {
            if e.t > 0.0 && e.t < leg_dur {
                interior.push(e.t);
            }
        }
        interior.sort_by(f64::total_cmp);
        interior.dedup();
        sol.push_samples(t, &interior, |tr| flow.at(tr, z));

        match cross {
            Some(tc) => {
                let mut z_end = flow.at(tc, z);
                // Land exactly on the switching line, the same
                // normalisation `rounds::trace_legs` applies.
                z_end[0] = -prop.k() * z_end[1];
                let t_hit = t + tc;
                sol.push(t_hit, z_end);
                intervals.push(ModeInterval {
                    mode: region.mode_index(),
                    t_start: t,
                    t_end: t_hit,
                });
                if t_hit >= t_end {
                    break; // crossed exactly at the horizon
                }
                if switches == opts.max_switches {
                    exhausted = true;
                    break;
                }
                if t_hit <= t {
                    break; // sub-ulp leg: time cannot advance
                }
                switches += 1;
                t = t_hit;
                z = z_end;
            }
            None => {
                sol.push(t_end, flow.at(remaining, z));
                intervals.push(ModeInterval { mode: region.mode_index(), t_start: t, t_end });
                break;
            }
        }
    }
    HybridSolution { solution: sol, intervals, switch_budget_exhausted: exhausted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::{exemplar, exemplar_case5_decrease, CaseId};
    use crate::rounds::steady_leg_duration;

    fn check_crossing_matches_scan(flow: &RegionFlow, k: f64, z0: [f64; 2], t_max: f64) {
        let scan = flow.time_to_switching_line(z0, k, t_max);
        let exact = crossing_time(flow, k, z0, t_max);
        match (scan, exact) {
            (None, None) => {}
            (Some(ts), Some(te)) => {
                assert!(
                    (ts - te).abs() <= 1e-6 * ts.max(1e-12),
                    "scan {ts} vs closed form {te} from {z0:?}"
                );
                let z = flow.at(te, z0);
                assert!(
                    (z[0] + k * z[1]).abs() <= 1e-9 * (z[0].abs() + k * z[1].abs()).max(1e-12),
                    "closed-form crossing not on the line: {z:?}"
                );
            }
            other => panic!("scan/closed-form disagree from {z0:?}: {other:?}"),
        }
    }

    #[test]
    fn focus_crossing_matches_scan_solver() {
        let flow = RegionFlow::from_kn(0.2, 10.0); // focus
        for z0 in [[-1.0, 0.0], [0.5, -3.0], [-0.2, 4.0], [1.0, 1.0]] {
            check_crossing_matches_scan(&flow, 0.2, z0, 50.0);
        }
    }

    #[test]
    fn node_crossing_matches_scan_solver() {
        let flow = RegionFlow::from_kn(1.5, 2.0); // (kn)^2 = 9 > 8: node
        for z0 in [[-1.0, 0.0], [-0.3, 2.0], [2.0, 1.0]] {
            check_crossing_matches_scan(&flow, 1.5, z0, 80.0);
        }
    }

    #[test]
    fn critical_crossing_matches_scan_solver() {
        let flow = RegionFlow::from_kn(1.0, 4.0); // (kn)^2 = 16 = 4n
        assert!(matches!(flow.spectrum(), Spectrum::Critical { .. }));
        for z0 in [[-1.0, 0.0], [-0.5, 3.0]] {
            check_crossing_matches_scan(&flow, 1.0, z0, 80.0);
        }
    }

    #[test]
    fn leg_entered_on_the_line_lasts_exactly_half_a_rotation() {
        let params = BcnParams::test_defaults();
        let prop = Propagator::for_params(&params);
        let Spectrum::Focus { beta, .. } = prop.flow(Region::Increase).spectrum() else {
            panic!("test defaults must have a spiral increase region");
        };
        let y0 = -0.01 * params.capacity;
        let z0 = [-prop.k() * y0, y0]; // exactly on the line, y < 0
        let t = prop.crossing_time(Region::Increase, z0, 10.0).expect("returns to line");
        assert_eq!(t, PI / beta, "on-line focus leg must be exactly pi/beta");
        assert!((t - steady_leg_duration(&params, Region::Increase).unwrap()).abs() < 1e-15);
    }

    #[test]
    fn node_leg_entered_on_the_line_never_returns() {
        // Case 3's decrease region is a node; a leg entered on the line
        // slides to the origin without re-crossing (c1 = -c2).
        let params = exemplar(&BcnParams::test_defaults(), CaseId::Case3);
        let prop = Propagator::for_params(&params);
        assert!(matches!(prop.flow(Region::Decrease).spectrum(), Spectrum::Node { .. }));
        let y0 = -0.01 * params.capacity;
        let z0 = [-prop.k() * y0, y0];
        assert_eq!(prop.crossing_time(Region::Decrease, z0, 1e6), None);
    }

    #[test]
    fn critical_leg_entered_on_the_line_never_returns() {
        // An exactly critical flow: (kn)^2 = 4n with k = 1, n = 4.
        let flow = RegionFlow::from_kn(1.0, 4.0);
        assert!(matches!(flow.spectrum(), Spectrum::Critical { .. }));
        let z0 = [1.0, -1.0]; // on the line x + y = 0, y < 0
        assert_eq!(crossing_time(&flow, 1.0, z0, 1e6), None);
    }

    #[test]
    fn near_critical_case5_leg_on_the_line_never_returns() {
        // The case-5 exemplar sits on the critical boundary only to the
        // RegionShape classifier's 1e-9 tolerance; in exact floating
        // point its discriminant is a few ulps positive, so the spectrum
        // is a near-degenerate node. The on-line behaviour must be the
        // same: the leg slides to the origin without re-crossing.
        let params = exemplar_case5_decrease(&BcnParams::test_defaults());
        assert_eq!(crate::cases::classify_params(&params).case, CaseId::Case5);
        let prop = Propagator::for_params(&params);
        let y0 = -0.01 * params.capacity;
        let z0 = [-prop.k() * y0, y0];
        assert_eq!(prop.crossing_time(Region::Decrease, z0, 1e6), None);
    }

    #[test]
    fn crossing_respects_horizon() {
        let flow = RegionFlow::from_kn(0.2, 10.0);
        let t = crossing_time(&flow, 0.2, [-1.0, 0.0], 1e9).expect("crossing");
        assert_eq!(crossing_time(&flow, 0.2, [-1.0, 0.0], 0.5 * t), None);
        assert_eq!(crossing_time(&flow, 0.2, [-1.0, 0.0], 0.0), None);
    }

    #[test]
    fn cache_returns_identical_propagator() {
        // A deliberately unusual capacity so no other test shares the key.
        let p = BcnParams::test_defaults().with_capacity(1.234_567e6);
        let c0 = cache_stats();
        let a = Propagator::for_params(&p);
        let b = Propagator::for_params(&p);
        let fresh = Propagator::new(p.k(), p.a(), p.b() * p.capacity);
        assert_eq!(a, b);
        assert_eq!(a, fresh, "cached propagator must be bit-identical to a fresh build");
        let c1 = cache_stats();
        assert!(c1.misses > c0.misses, "first lookup must miss");
        assert!(c1.hits > c0.hits, "second lookup must hit");
    }

    #[test]
    fn eviction_beyond_capacity_keeps_answers_correct() {
        // Three times the whole cache's slot budget of distinct keys:
        // every shard overflows, so the CLOCK hand must recycle slots
        // (the old cache silently dropped these inserts instead). Every
        // lookup — resident, evicted, or never admitted — must match a
        // fresh build bit for bit.
        let base = BcnParams::test_defaults();
        let c0 = cache_stats();
        let total_cap = (SHARD_COUNT * SHARD_CAP) as u32;
        for i in 0..3 * total_cap {
            let p = base.clone().with_capacity(2.0e6 + f64::from(i));
            let got = Propagator::for_params(&p);
            let fresh = Propagator::new(p.k(), p.a(), p.b() * p.capacity);
            assert_eq!(got, fresh, "capacity {}", p.capacity);
        }
        let c1 = cache_stats();
        assert!(
            c1.evictions > c0.evictions,
            "overflowing the cap must evict, not drop inserts silently"
        );
        // A key from the early (likely evicted) range still answers
        // correctly on re-query: a miss rebuilds, never corrupts.
        let p = base.with_capacity(2.0e6);
        let rebuilt = Propagator::for_params(&p);
        assert_eq!(rebuilt, Propagator::new(p.k(), p.a(), p.b() * p.capacity));
    }

    #[test]
    fn analytic_trajectory_runs_to_horizon_from_equilibrium() {
        let params = BcnParams::test_defaults();
        let sys = BcnFluid::linearized(params.clone());
        let out = analytic_trajectory(&sys, [0.0, 0.0], &FluidOptions::default());
        assert_eq!(out.switch_count(), 0);
        assert!(!out.switch_budget_exhausted);
        assert_eq!(out.solution.last_time(), 1.0);
        assert_eq!(out.solution.last_state(), [0.0, 0.0]);
    }

    #[test]
    fn analytic_trajectory_honours_switch_budget() {
        let params = BcnParams::test_defaults();
        let sys = BcnFluid::linearized(params.clone());
        let opts = FluidOptions { max_switches: 3, t_end: 60.0, ..FluidOptions::default() };
        let out = analytic_trajectory(&sys, params.initial_point(), &opts);
        assert!(out.switch_budget_exhausted);
        // max_switches + 1 legs were walked; the last one stopped at the
        // crossing it was not allowed to take.
        assert_eq!(out.intervals.len(), 4);
        assert_eq!(out.switch_count(), 3);
    }

    #[test]
    fn analytic_trajectory_alternates_modes_on_the_line() {
        let params = BcnParams::test_defaults();
        let sys = BcnFluid::linearized(params.clone());
        let opts = FluidOptions::default().with_t_end(0.2);
        let out = analytic_trajectory(&sys, params.initial_point(), &opts);
        assert!(out.switch_count() >= 2);
        for pair in out.intervals.windows(2) {
            assert_ne!(pair[0].mode, pair[1].mode, "modes must alternate");
            assert_eq!(pair[0].t_end, pair[1].t_start, "intervals must abut");
        }
        let k = params.k();
        for &ts in &out.switch_times() {
            let z = out.solution.sample(ts).expect("switch time sampled");
            assert!(
                (z[0] + k * z[1]).abs() <= 1e-9 * params.q0,
                "switch sample off the line: {z:?}"
            );
        }
    }

    #[test]
    fn advance_matches_propagate_inside_one_region() {
        let params = BcnParams::test_defaults();
        let prop = Propagator::for_params(&params);
        // Deep in the increase region, short horizon: no switch fits.
        let z0 = [-0.3 * params.q0, -0.02 * params.capacity];
        let tc = prop.crossing_time(Region::Increase, z0, 1e9).expect("eventually crosses");
        let dt = 0.5 * tc;
        let step = prop.advance(Region::Increase, z0, dt, 64);
        assert_eq!(step.switches, 0);
        assert_eq!(step.t, dt);
        assert_eq!(step.region, Region::Increase);
        assert_eq!(step.z, prop.propagate(Region::Increase, dt, z0));
    }

    #[test]
    fn advance_matches_analytic_trajectory_across_switches() {
        let params = BcnParams::test_defaults();
        let sys = BcnFluid::linearized(params.clone());
        let prop = Propagator::for_params(&params);
        let z0 = params.initial_point();
        let dt = 0.2;
        let opts = FluidOptions::default().with_t_end(dt);
        let reference = analytic_trajectory(&sys, z0, &opts);
        let step = prop.advance(departing_region(&params, z0), z0, dt, 1024);
        assert_eq!(step.t, dt);
        assert_eq!(step.switches, reference.switch_count());
        let z_ref = reference.solution.last_state();
        for (i, r) in z_ref.iter().enumerate() {
            assert!(
                (step.z[i] - r).abs() <= 1e-9 * r.abs().max(1.0),
                "component {i}: {} vs {r}",
                step.z[i]
            );
        }
    }

    #[test]
    fn advance_reports_partial_time_when_budget_exhausted() {
        let params = BcnParams::test_defaults();
        let prop = Propagator::for_params(&params);
        let z0 = params.initial_point();
        let region = departing_region(&params, z0);
        let full = prop.advance(region, z0, 0.2, 1024);
        assert!(full.switches >= 2, "scenario must actually switch");
        let capped = prop.advance(region, z0, 0.2, 1);
        assert_eq!(capped.switches, 1);
        assert!(capped.t < 0.2, "partial advance must be reported");
        // The landing is on the switching line.
        assert_eq!(capped.z[0], -prop.k() * capped.z[1]);
    }

    #[test]
    fn departing_region_matches_rounds_oracle() {
        let params = BcnParams::test_defaults();
        let prop = Propagator::for_params(&params);
        let k = prop.k();
        for z in [[-k, 1.0], [k, -1.0], [-1.0, 0.0], [1.0, 0.0], [0.4, 0.1], [-0.4, -0.1]] {
            assert_eq!(prop.departing_region(z), departing_region(&params, z), "{z:?}");
        }
    }

    #[test]
    fn analytic_trajectory_record_grid_is_honoured() {
        let params = BcnParams::test_defaults();
        let sys = BcnFluid::linearized(params.clone());
        let opts = FluidOptions::default().with_t_end(0.05).with_record_dt(1e-4);
        let out = analytic_trajectory(&sys, params.initial_point(), &opts);
        // At least as many samples as the grid demands, and times strictly
        // non-decreasing (Solution::push enforces ordering in debug).
        assert!(out.solution.len() >= 400, "samples: {}", out.solution.len());
        assert_eq!(out.solution.last_time(), 0.05);
    }
}
