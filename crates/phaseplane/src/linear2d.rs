//! 2×2 linear systems: eigenstructure and singular-point classification.

use std::fmt;

/// A real 2×2 matrix `[[a, b], [c, d]]`, the Jacobian of a planar system at
/// a singular point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mat2 {
    /// Row 1, column 1.
    pub a: f64,
    /// Row 1, column 2.
    pub b: f64,
    /// Row 2, column 1.
    pub c: f64,
    /// Row 2, column 2.
    pub d: f64,
}

impl Mat2 {
    /// Creates the matrix `[[a, b], [c, d]]`.
    #[must_use]
    pub fn new(a: f64, b: f64, c: f64, d: f64) -> Self {
        Self { a, b, c, d }
    }

    /// The companion matrix of `lambda^2 + m*lambda + n = 0` in phase
    /// variables `(x, y = dx/dt)`: `[[0, 1], [-n, -m]]`.
    ///
    /// This is the form every subsystem of the BCN model takes (paper
    /// Eq. 9/10).
    #[must_use]
    pub fn companion(m: f64, n: f64) -> Self {
        Self::new(0.0, 1.0, -n, -m)
    }

    /// Trace `a + d`.
    #[must_use]
    pub fn trace(&self) -> f64 {
        self.a + self.d
    }

    /// Determinant `ad - bc`.
    #[must_use]
    pub fn det(&self) -> f64 {
        self.a * self.d - self.b * self.c
    }

    /// Discriminant of the characteristic polynomial, `trace^2 - 4 det`.
    #[must_use]
    pub fn discriminant(&self) -> f64 {
        let t = self.trace();
        t * t - 4.0 * self.det()
    }

    /// The identity matrix.
    #[must_use]
    pub fn identity() -> Self {
        Self::new(1.0, 0.0, 0.0, 1.0)
    }

    /// Matrix–vector product.
    #[must_use]
    pub fn mul_vec(&self, v: [f64; 2]) -> [f64; 2] {
        [self.a * v[0] + self.b * v[1], self.c * v[0] + self.d * v[1]]
    }

    /// Element-wise sum `self + other`.
    #[must_use]
    pub fn add(&self, other: &Mat2) -> Self {
        Self::new(self.a + other.a, self.b + other.b, self.c + other.c, self.d + other.d)
    }

    /// Scalar multiple `s * self`.
    #[must_use]
    pub fn scale(&self, s: f64) -> Self {
        Self::new(s * self.a, s * self.b, s * self.c, s * self.d)
    }

    /// Eigenvalues and (for real spectra) eigenvectors.
    #[must_use]
    pub fn eigen(&self) -> Eigen2 {
        let t = self.trace();
        let disc = self.discriminant();
        if disc > 0.0 {
            let s = disc.sqrt();
            let l1 = 0.5 * (t - s);
            let l2 = 0.5 * (t + s);
            Eigen2::RealDistinct { l1, l2, v1: self.eigenvector(l1), v2: self.eigenvector(l2) }
        } else if disc == 0.0 {
            let l = 0.5 * t;
            Eigen2::RealRepeated { l, v: self.eigenvector(l) }
        } else {
            Eigen2::Complex { re: 0.5 * t, im: 0.5 * (-disc).sqrt() }
        }
    }

    /// An eigenvector (unit norm) for a real eigenvalue `l`.
    ///
    /// For `(A - l I) v = 0`, pick the more numerically robust row.
    #[must_use]
    pub fn eigenvector(&self, l: f64) -> [f64; 2] {
        // Rows of A - l I: [a - l, b] and [c, d - l]; v is orthogonal to
        // the larger row.
        let r1 = [self.a - l, self.b];
        let r2 = [self.c, self.d - l];
        let n1 = r1[0].abs() + r1[1].abs();
        let n2 = r2[0].abs() + r2[1].abs();
        let r = if n1 >= n2 { r1 } else { r2 };
        let v = [-r[1], r[0]];
        let n = (v[0] * v[0] + v[1] * v[1]).sqrt();
        if n == 0.0 {
            // A = l I: every vector is an eigenvector.
            [1.0, 0.0]
        } else {
            [v[0] / n, v[1] / n]
        }
    }
}

/// Eigenstructure of a [`Mat2`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Eigen2 {
    /// Two distinct real eigenvalues `l1 < l2` with unit eigenvectors.
    RealDistinct {
        /// Smaller eigenvalue.
        l1: f64,
        /// Larger eigenvalue.
        l2: f64,
        /// Unit eigenvector for `l1`.
        v1: [f64; 2],
        /// Unit eigenvector for `l2`.
        v2: [f64; 2],
    },
    /// A repeated real eigenvalue.
    RealRepeated {
        /// The eigenvalue.
        l: f64,
        /// A unit eigenvector.
        v: [f64; 2],
    },
    /// A complex-conjugate pair `re ± i*im` with `im > 0`.
    Complex {
        /// Real part.
        re: f64,
        /// Imaginary part (positive).
        im: f64,
    },
}

/// Qualitative type of an isolated singular point of a planar linear
/// system, per the classical trace–determinant classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FixedPointKind {
    /// Complex eigenvalues with negative real part: trajectories are
    /// inward logarithmic spirals.
    StableFocus,
    /// Complex eigenvalues with positive real part: outward spirals.
    UnstableFocus,
    /// Purely imaginary eigenvalues: closed orbits around the point.
    Center,
    /// Two distinct negative real eigenvalues: parabola-like inward
    /// trajectories.
    StableNode,
    /// Two distinct positive real eigenvalues.
    UnstableNode,
    /// Repeated negative real eigenvalue (critical damping boundary).
    DegenerateStableNode,
    /// Repeated positive real eigenvalue.
    DegenerateUnstableNode,
    /// Real eigenvalues of opposite sign.
    Saddle,
    /// Zero determinant: the singular point is not isolated.
    NonIsolated,
}

impl FixedPointKind {
    /// Whether trajectories near the point converge to it.
    #[must_use]
    pub fn is_attracting(self) -> bool {
        matches!(
            self,
            FixedPointKind::StableFocus
                | FixedPointKind::StableNode
                | FixedPointKind::DegenerateStableNode
        )
    }

    /// Whether nearby trajectories wind around the point (oscillatory
    /// approach/escape).
    #[must_use]
    pub fn is_rotational(self) -> bool {
        matches!(
            self,
            FixedPointKind::StableFocus | FixedPointKind::UnstableFocus | FixedPointKind::Center
        )
    }
}

impl fmt::Display for FixedPointKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FixedPointKind::StableFocus => "stable focus",
            FixedPointKind::UnstableFocus => "unstable focus",
            FixedPointKind::Center => "center",
            FixedPointKind::StableNode => "stable node",
            FixedPointKind::UnstableNode => "unstable node",
            FixedPointKind::DegenerateStableNode => "degenerate stable node",
            FixedPointKind::DegenerateUnstableNode => "degenerate unstable node",
            FixedPointKind::Saddle => "saddle",
            FixedPointKind::NonIsolated => "non-isolated singular point",
        };
        f.write_str(s)
    }
}

/// Classifies the singular point at the origin of `dz/dt = J z`.
///
/// Exact zero comparisons are deliberate: callers working with measured
/// parameters should compare the discriminant against their own tolerance
/// before relying on the degenerate variants.
#[must_use]
pub fn classify(j: &Mat2) -> FixedPointKind {
    let det = j.det();
    let tr = j.trace();
    if det == 0.0 {
        return FixedPointKind::NonIsolated;
    }
    if det < 0.0 {
        return FixedPointKind::Saddle;
    }
    let disc = j.discriminant();
    if disc < 0.0 {
        if tr < 0.0 {
            FixedPointKind::StableFocus
        } else if tr > 0.0 {
            FixedPointKind::UnstableFocus
        } else {
            FixedPointKind::Center
        }
    } else if disc > 0.0 {
        if tr < 0.0 {
            FixedPointKind::StableNode
        } else {
            FixedPointKind::UnstableNode
        }
    } else if tr < 0.0 {
        FixedPointKind::DegenerateStableNode
    } else {
        FixedPointKind::DegenerateUnstableNode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_det_disc() {
        let m = Mat2::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(m.trace(), 5.0);
        assert_eq!(m.det(), -2.0);
        assert_eq!(m.discriminant(), 33.0);
    }

    #[test]
    fn companion_matches_characteristic_polynomial() {
        // lambda^2 + 3 lambda + 2 = 0 -> roots -1, -2.
        let m = Mat2::companion(3.0, 2.0);
        match m.eigen() {
            Eigen2::RealDistinct { l1, l2, v1, v2 } => {
                assert!((l1 + 2.0).abs() < 1e-12);
                assert!((l2 + 1.0).abs() < 1e-12);
                // Check A v = l v.
                for (l, v) in [(l1, v1), (l2, v2)] {
                    let av = m.mul_vec(v);
                    assert!((av[0] - l * v[0]).abs() < 1e-12);
                    assert!((av[1] - l * v[1]).abs() < 1e-12);
                }
                // Companion-form eigenvectors are (1, lambda) up to scale.
                assert!((v1[1] / v1[0] - l1).abs() < 1e-9);
                assert!((v2[1] / v2[0] - l2).abs() < 1e-9);
            }
            other => panic!("expected distinct real eigenvalues, got {other:?}"),
        }
    }

    #[test]
    fn complex_eigenvalues() {
        // lambda^2 + 2 lambda + 10 = 0 -> -1 ± 3i.
        let m = Mat2::companion(2.0, 10.0);
        match m.eigen() {
            Eigen2::Complex { re, im } => {
                assert!((re + 1.0).abs() < 1e-12);
                assert!((im - 3.0).abs() < 1e-12);
            }
            other => panic!("expected complex pair, got {other:?}"),
        }
    }

    #[test]
    fn repeated_eigenvalue() {
        // lambda^2 + 4 lambda + 4 -> -2 twice.
        let m = Mat2::companion(4.0, 4.0);
        match m.eigen() {
            Eigen2::RealRepeated { l, v } => {
                assert!((l + 2.0).abs() < 1e-12);
                let av = m.mul_vec(v);
                assert!((av[0] - l * v[0]).abs() < 1e-12);
                assert!((av[1] - l * v[1]).abs() < 1e-12);
            }
            other => panic!("expected repeated eigenvalue, got {other:?}"),
        }
    }

    #[test]
    fn classification_covers_all_regions() {
        use FixedPointKind::*;
        let cases = [
            (Mat2::companion(2.0, 10.0), StableFocus),
            (Mat2::companion(-2.0, 10.0), UnstableFocus),
            (Mat2::companion(0.0, 4.0), Center),
            (Mat2::companion(3.0, 2.0), StableNode),
            (Mat2::companion(-3.0, 2.0), UnstableNode),
            (Mat2::companion(4.0, 4.0), DegenerateStableNode),
            (Mat2::companion(-4.0, 4.0), DegenerateUnstableNode),
            (Mat2::companion(1.0, -2.0), Saddle),
            (Mat2::companion(1.0, 0.0), NonIsolated),
        ];
        for (m, want) in cases {
            assert_eq!(classify(&m), want, "matrix {m:?}");
        }
    }

    #[test]
    fn attracting_and_rotational_flags() {
        assert!(FixedPointKind::StableFocus.is_attracting());
        assert!(FixedPointKind::StableFocus.is_rotational());
        assert!(FixedPointKind::StableNode.is_attracting());
        assert!(!FixedPointKind::StableNode.is_rotational());
        assert!(!FixedPointKind::Saddle.is_attracting());
        assert!(!FixedPointKind::UnstableFocus.is_attracting());
        assert!(FixedPointKind::Center.is_rotational());
    }

    #[test]
    fn display_names() {
        assert_eq!(FixedPointKind::StableFocus.to_string(), "stable focus");
        assert_eq!(FixedPointKind::NonIsolated.to_string(), "non-isolated singular point");
    }

    #[test]
    fn identity_matrix_eigenvector_fallback() {
        let m = Mat2::new(2.0, 0.0, 0.0, 2.0);
        match m.eigen() {
            Eigen2::RealRepeated { l, v } => {
                assert_eq!(l, 2.0);
                assert_eq!(v, [1.0, 0.0]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
