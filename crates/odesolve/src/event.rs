//! Guard functions and precise event (zero-crossing) location.

use crate::interp::CubicHermite;

/// Which sign changes of the guard function count as events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Trigger on any sign change.
    #[default]
    Any,
    /// Trigger only when the guard goes from negative to positive.
    Rising,
    /// Trigger only when the guard goes from positive to negative.
    Falling,
}

impl Direction {
    /// Whether a transition from `g0` to `g1` matches this direction.
    #[must_use]
    pub fn matches(self, g0: f64, g1: f64) -> bool {
        match self {
            Direction::Any => (g0 < 0.0 && g1 >= 0.0) || (g0 > 0.0 && g1 <= 0.0),
            Direction::Rising => g0 < 0.0 && g1 >= 0.0,
            Direction::Falling => g0 > 0.0 && g1 <= 0.0,
        }
    }
}

/// A scalar guard function `g(t, y)` whose zero crossings are events.
pub trait EventFn<const N: usize> {
    /// Evaluates the guard.
    fn guard(&self, t: f64, y: &[f64; N]) -> f64;
}

impl<F, const N: usize> EventFn<N> for F
where
    F: Fn(f64, &[f64; N]) -> f64,
{
    fn guard(&self, t: f64, y: &[f64; N]) -> f64 {
        self(t, y)
    }
}

/// An event specification: a guard plus the direction filter and whether
/// the event terminates the integration.
pub struct EventSpec<'a, const N: usize> {
    /// The guard function.
    pub guard: &'a dyn EventFn<N>,
    /// Which crossings count.
    pub direction: Direction,
    /// If `true` the driver stops at the located event time.
    pub terminal: bool,
}

impl<'a, const N: usize> EventSpec<'a, N> {
    /// Creates a terminal event triggered by any sign change of `guard`.
    #[must_use]
    pub fn terminal(guard: &'a dyn EventFn<N>) -> Self {
        Self { guard, direction: Direction::Any, terminal: true }
    }

    /// Creates a non-terminal (recorded only) event.
    #[must_use]
    pub fn recorded(guard: &'a dyn EventFn<N>) -> Self {
        Self { guard, direction: Direction::Any, terminal: false }
    }

    /// Restricts the event to the given crossing direction.
    #[must_use]
    pub fn with_direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }
}

impl<const N: usize> std::fmt::Debug for EventSpec<'_, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSpec")
            .field("direction", &self.direction)
            .field("terminal", &self.terminal)
            .finish_non_exhaustive()
    }
}

/// A located event occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct EventOccurrence<const N: usize> {
    /// Index of the triggering [`EventSpec`] in the caller's slice.
    pub index: usize,
    /// Located event time.
    pub t: f64,
    /// Interpolated state at the event time.
    pub y: [f64; N],
    /// Whether the triggering spec was terminal.
    pub terminal: bool,
}

/// Locates a guard zero inside one accepted step using bisection refined
/// with the dense-output interpolant.
///
/// `g0` and `g1` are the guard values at the step endpoints; they must
/// bracket a root in the sense of `direction`. Returns `(t_event, y_event)`.
///
/// The tolerance is relative to the step length, pinned at 60 bisection
/// iterations (enough to exhaust f64 resolution).
#[must_use]
pub fn locate_zero<const N: usize>(
    guard: &dyn EventFn<N>,
    interp: &CubicHermite<N>,
    g0: f64,
    g1: f64,
    direction: Direction,
) -> (f64, [f64; N]) {
    let (t, y, _) = locate_zero_counted(guard, interp, g0, g1, direction);
    (t, y)
}

/// Like [`locate_zero`], additionally returning the number of bisection
/// iterations spent converging (for instrumentation).
#[must_use]
pub fn locate_zero_counted<const N: usize>(
    guard: &dyn EventFn<N>,
    interp: &CubicHermite<N>,
    g0: f64,
    _g1: f64,
    direction: Direction,
) -> (f64, [f64; N], u32) {
    let mut lo = interp.t_start();
    let mut hi = interp.t_end();
    let mut g_lo = g0;
    let mut iterations = 0;
    // Bisect on the interpolant. We keep the invariant that (g_lo, g at hi)
    // brackets a directional crossing.
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break; // f64 resolution reached
        }
        iterations += 1;
        let y_mid = interp.eval(mid);
        let g_mid = guard.guard(mid, &y_mid);
        if direction.matches(g_lo, g_mid) {
            hi = mid;
        } else {
            lo = mid;
            g_lo = g_mid;
        }
    }
    let y = interp.eval(hi);
    (hi, y, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_matching() {
        assert!(Direction::Any.matches(-1.0, 1.0));
        assert!(Direction::Any.matches(1.0, -1.0));
        assert!(Direction::Rising.matches(-1.0, 1.0));
        assert!(!Direction::Rising.matches(1.0, -1.0));
        assert!(Direction::Falling.matches(1.0, -1.0));
        assert!(!Direction::Falling.matches(-1.0, 1.0));
        // No crossing at all:
        assert!(!Direction::Any.matches(1.0, 2.0));
        assert!(!Direction::Any.matches(-1.0, -0.5));
    }

    #[test]
    fn locates_linear_zero_precisely() {
        // State moves linearly from -1 to +1 over [0, 2]; zero at t = 1.
        let interp = CubicHermite::new(0.0, [-1.0], [1.0], 2.0, [1.0], [1.0]);
        let guard = |_t: f64, y: &[f64; 1]| y[0];
        let (t, y) = locate_zero(&guard, &interp, -1.0, 1.0, Direction::Rising);
        assert!((t - 1.0).abs() < 1e-12, "t = {t}");
        assert!(y[0].abs() < 1e-12);
    }

    #[test]
    fn locates_nonlinear_zero() {
        // Interpolate p(t) = t^2 - 0.25 on [0, 1] (cubic Hermite is exact
        // for quadratics); root at t = 0.5.
        let p = |t: f64| t * t - 0.25;
        let dp = |t: f64| 2.0 * t;
        let interp = CubicHermite::new(0.0, [p(0.0)], [dp(0.0)], 1.0, [p(1.0)], [dp(1.0)]);
        let guard = |_t: f64, y: &[f64; 1]| y[0];
        let (t, _) = locate_zero(&guard, &interp, p(0.0), p(1.0), Direction::Rising);
        assert!((t - 0.5).abs() < 1e-12, "t = {t}");
    }

    #[test]
    fn event_spec_builders() {
        let g = |_t: f64, y: &[f64; 2]| y[0] + y[1];
        let spec = EventSpec::terminal(&g).with_direction(Direction::Falling);
        assert!(spec.terminal);
        assert_eq!(spec.direction, Direction::Falling);
        let spec = EventSpec::recorded(&g);
        assert!(!spec.terminal);
        assert_eq!(spec.direction, Direction::Any);
        // Debug must be non-empty.
        assert!(!format!("{spec:?}").is_empty());
    }
}
