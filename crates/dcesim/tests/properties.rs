//! Property-based scheduler-equivalence tests (requires the
//! `proptest-tests` feature and a vendored `proptest`; see Cargo.toml).
//!
//! The deterministic splitmix64-seeded version of this check runs
//! unconditionally in `tests/scheduler_equivalence.rs`; this file lets
//! proptest shrink a diverging configuration to a minimal reproducer
//! when the dependency is available.

use dcesim::faults::FaultConfig;
use dcesim::sched::Scheduler;
use dcesim::sim::{fluid_validation_params, SimConfig, Simulation};
use dcesim::time::Duration;
use dcesim::workload;
use proptest::prelude::*;

fn run(mut cfg: SimConfig, scheduler: Scheduler) -> (dcesim::metrics::SimMetrics, Vec<f64>) {
    cfg.scheduler = scheduler;
    let report = Simulation::new(cfg).run();
    (report.metrics, report.final_rates)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Heap and wheel produce byte-identical reports on random
    /// configurations, with and without wire faults.
    #[test]
    fn schedulers_agree_on_random_runs(
        frame_bits in 2_000.0f64..16_000.0,
        prop_delay_us in 0.5f64..4.0,
        t_end_ms in 5.0f64..25.0,
        n_flows in 2usize..24,
        incast in proptest::bool::ANY,
        fault_seed in proptest::option::of(0u64..u64::MAX),
        feedback_loss in 0.0f64..0.15,
        data_loss in 0.0f64..0.02,
    ) {
        let params = fluid_validation_params();
        let mut cfg = SimConfig::from_fluid(
            &params,
            frame_bits.round(),
            Duration::from_secs(prop_delay_us * 1e-6),
            t_end_ms * 1e-3,
        );
        let share = params.capacity / n_flows as f64;
        cfg.flows = if incast {
            workload::incast(n_flows, 2.0 * share, 200.0 * frame_bits)
        } else {
            workload::homogeneous(n_flows, share)
        };
        if let Some(seed) = fault_seed {
            let mut f = FaultConfig::none();
            f.seed = seed;
            f.feedback_loss = feedback_loss;
            f.data_loss = data_loss;
            cfg.faults = f;
        }
        let wheel = run(cfg.clone(), Scheduler::Wheel);
        let heap = run(cfg, Scheduler::Heap);
        prop_assert_eq!(wheel, heap);
    }
}
