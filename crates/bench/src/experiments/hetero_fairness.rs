//! Homogeneity-assumption ablation: the full `N+1`-dimensional fluid
//! model vs the paper's planar reduction, and AIMD fairness dynamics
//! under both feedback models.

use std::path::Path;

use bcn::hetero::{reduction_error, FeedbackModel, HeteroBcn};
use bcn::BcnParams;
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot, Table};

use crate::common::{banner, out_dir, save_plot};
use crate::ExpResult;

/// Runs the experiment; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    banner("Heterogeneous fluid model: homogeneity reduction and fairness");
    let params = BcnParams::test_defaults().with_buffer(3.0e5);
    let n = params.n_flows as usize;

    // 1. Exactness of the planar reduction with equal rates.
    let err = reduction_error(&params, 2.0);
    println!("planar-reduction max-queue error (equal initial rates): {:.4}%", err * 100.0);

    // 2. Fairness convergence from a skewed start under both models.
    let mut init = vec![0.02 * params.capacity / n as f64; n];
    init[0] = 0.8 * params.capacity;
    let mut plot = SvgPlot::new("Jain fairness over time from a skewed start", "t (s)", "fairness");
    let mut csv = Csv::new(&["model", "t", "fairness", "queue"]);
    let mut table =
        Table::new(&["feedback model", "fairness t=0", "fairness end", "max queue (bits)"]);
    for (i, (name, model)) in [
        ("uniform (paper Eq. 7)", FeedbackModel::Uniform),
        ("rate-proportional (protocol)", FeedbackModel::RateProportional),
    ]
    .into_iter()
    .enumerate()
    {
        let run = HeteroBcn::new(params.clone(), model).run_canonical(&init, 25.0);
        table.row(&[
            name.to_string(),
            format!("{:.3}", run.fairness[0]),
            format!("{:.3}", run.final_fairness()),
            format!("{:.3e}", run.max_queue),
        ]);
        for (j, t) in run.times.iter().enumerate() {
            csv.row(&[i as f64, *t, run.fairness[j], run.queue[j]]);
        }
        plot = plot.with_series(Series::line(name, &run.times, &run.fairness, COLOR_CYCLE[i]));
    }
    print!("{table}");
    println!(
        "both models converge to fairness; uniform feedback equalises through\n\
         the additive increase (Chiu-Jain), rate-proportional through the\n\
         decrease side (faster flows are sampled and throttled more often)."
    );

    csv.save(out.join("exp_hetero_fairness.csv"))?;
    println!("wrote {}", out.join("exp_hetero_fairness.csv").display());
    save_plot(&plot, out, "exp_hetero_fairness.svg")?;
    Ok(())
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("hetero_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        assert!(dir.join("exp_hetero_fairness.svg").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
