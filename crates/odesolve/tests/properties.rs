//! Property-based tests of the solver substrate: randomized linear and
//! oscillator problems with known closed forms, tolerance adherence,
//! event-location accuracy, and cross-stepper agreement.

use odesolve::{
    integrate, integrate_with_events, Bs23, Direction, Dopri5, EventSpec, Options, Rk4,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scalar linear ODE: every stepper lands on the closed form within
    /// its tolerance class.
    #[test]
    fn linear_decay_all_steppers(
        lambda in 0.05f64..4.0,
        y0 in 0.1f64..10.0,
        t_end in 0.1f64..5.0,
    ) {
        let ode = move |_t: f64, y: &[f64; 1]| [-lambda * y[0]];
        let exact = y0 * (-lambda * t_end).exp();
        let d5 = integrate(&ode, 0.0, [y0], t_end,
            &mut Dopri5::with_tolerances(1e-10, 1e-10), &Options::default()).unwrap();
        prop_assert!((d5.last_state()[0] - exact).abs() < 1e-7 * y0,
            "dopri5: {} vs {}", d5.last_state()[0], exact);
        let b23 = integrate(&ode, 0.0, [y0], t_end,
            &mut Bs23::with_tolerances(1e-9, 1e-9), &Options::default()).unwrap();
        prop_assert!((b23.last_state()[0] - exact).abs() < 1e-5 * y0,
            "bs23: {} vs {}", b23.last_state()[0], exact);
        let rk4 = integrate(&ode, 0.0, [y0], t_end,
            &mut Rk4::with_step(t_end / 2000.0), &Options::default()).unwrap();
        prop_assert!((rk4.last_state()[0] - exact).abs() < 1e-6 * y0,
            "rk4: {} vs {}", rk4.last_state()[0], exact);
    }

    /// Harmonic oscillator with random frequency: energy conservation
    /// within tolerance.
    #[test]
    fn oscillator_energy(omega in 0.2f64..6.0, amp in 0.1f64..5.0) {
        let ode = move |_t: f64, y: &[f64; 2]| [y[1], -omega * omega * y[0]];
        let sol = integrate(&ode, 0.0, [amp, 0.0], 10.0,
            &mut Dopri5::with_tolerances(1e-11, 1e-11), &Options::default()).unwrap();
        let e0 = omega * omega * amp * amp;
        for y in sol.states() {
            let e = omega * omega * y[0] * y[0] + y[1] * y[1];
            prop_assert!((e - e0).abs() < 1e-5 * e0, "energy drift {e} vs {e0}");
        }
    }

    /// The located event time of a linear crossing is exact to ~1e-9
    /// relative.
    #[test]
    fn event_location_accuracy(slope in 0.1f64..5.0, level in 0.1f64..3.0) {
        // y' = slope, y(0) = 0 crosses `level` at exactly level/slope.
        let ode = move |_t: f64, _y: &[f64; 1]| [slope];
        let guard = move |_t: f64, y: &[f64; 1]| y[0] - level;
        let events = [EventSpec::terminal(&guard).with_direction(Direction::Rising)];
        let horizon = 2.0 * level / slope;
        let sol = integrate_with_events(&ode, 0.0, [0.0], horizon,
            &mut Dopri5::new(), &events, &Options::default()).unwrap();
        let t_hit = level / slope;
        prop_assert!(!sol.events().is_empty());
        prop_assert!((sol.last_time() - t_hit).abs() < 1e-9 * t_hit.max(1.0),
            "hit at {} vs {}", sol.last_time(), t_hit);
    }

    /// Dense recording never loses accuracy: sampled points lie on the
    /// true solution of a linear system.
    #[test]
    fn dense_output_on_solution(lambda in 0.1f64..2.0) {
        let ode = move |_t: f64, y: &[f64; 1]| [-lambda * y[0]];
        let sol = integrate(&ode, 0.0, [1.0], 3.0,
            &mut Dopri5::with_tolerances(1e-9, 1e-9),
            &Options::default().with_record_dt(0.01)).unwrap();
        for (t, y) in sol.times().iter().zip(sol.states()) {
            let exact = (-lambda * t).exp();
            prop_assert!((y[0] - exact).abs() < 1e-5, "at t={t}: {} vs {exact}", y[0]);
        }
    }

    /// Two independent adaptive implementations agree on a random damped
    /// driven oscillator.
    #[test]
    fn cross_stepper_agreement(
        damping in 0.0f64..1.0,
        omega in 0.5f64..3.0,
        y0 in -2.0f64..2.0,
    ) {
        let ode = move |t: f64, y: &[f64; 2]| {
            [y[1], -omega * omega * y[0] - damping * y[1] + (0.7 * t).cos()]
        };
        let a = integrate(&ode, 0.0, [y0, 0.0], 8.0,
            &mut Dopri5::with_tolerances(1e-11, 1e-11), &Options::default()).unwrap();
        let b = integrate(&ode, 0.0, [y0, 0.0], 8.0,
            &mut Bs23::with_tolerances(1e-11, 1e-11), &Options::default()).unwrap();
        for i in 0..2 {
            prop_assert!((a.last_state()[i] - b.last_state()[i]).abs() < 1e-6,
                "{:?} vs {:?}", a.last_state(), b.last_state());
        }
    }

    /// Time monotonicity and max-step respect hold for every run.
    #[test]
    fn recorded_times_are_monotone(max_step in 0.001f64..0.5) {
        let ode = |_t: f64, y: &[f64; 1]| [-y[0]];
        let sol = integrate(&ode, 0.0, [1.0], 2.0,
            &mut Dopri5::new(), &Options::default().with_max_step(max_step)).unwrap();
        for w in sol.times().windows(2) {
            prop_assert!(w[1] >= w[0]);
            prop_assert!(w[1] - w[0] <= max_step + 1e-12);
        }
        prop_assert!((sol.last_time() - 2.0).abs() < 1e-12);
    }
}
