//! Typed configuration errors for the simulator.
//!
//! Construction-time validation (`SimConfig::validate`, `CpConfig::
//! validate`, `RpConfig::validate`, `FaultConfig::validate`) reports a
//! [`ConfigError`] naming the offending field instead of propagating
//! NaNs mid-run or panicking deep inside the engine. The workspace-level
//! `dce_bcn::Error` taxonomy maps these to their own exit code.

use std::fmt;

/// An invalid simulation configuration field.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ConfigError {
    /// Dotted path of the rejected field (e.g. `faults.feedback_loss`).
    pub field: &'static str,
    /// Why the value was rejected.
    pub reason: String,
}

impl ConfigError {
    /// Creates an error for `field` with a human-readable `reason`.
    #[must_use]
    pub fn new(field: &'static str, reason: impl Into<String>) -> Self {
        Self { field, reason: reason.into() }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config `{}`: {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field_and_reason() {
        let e = ConfigError::new("capacity", "capacity must be positive, got 0");
        let s = e.to_string();
        assert!(s.contains("`capacity`"), "{s}");
        assert!(s.contains("must be positive"), "{s}");
    }
}
