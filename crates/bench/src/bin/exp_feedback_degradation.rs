//! Regenerates the feedback-channel degradation sweep.

fn main() {
    if let Err(e) = bench::experiments::feedback_degradation::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
