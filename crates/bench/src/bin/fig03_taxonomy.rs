//! Regenerates the paper's Fig. 3 (trajectory taxonomy).

fn main() {
    if let Err(e) = bench::figures::fig03::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
