//! Packet-level discrete-event simulator of a Data Center Ethernet
//! bottleneck under BCN / QCN congestion management.
//!
//! The reproduced paper analyses BCN through a fluid-flow model; this
//! crate provides the *physical substrate* that model abstracts: discrete
//! frames, a finite shared buffer, deterministic packet sampling at the
//! congestion point, backward notification messages with propagation
//! delay, per-source rate regulators running the AIMD law of paper Eq. 2,
//! and the IEEE 802.3x PAUSE escape hatch above the severe-congestion
//! threshold. Every analytic claim of the `bcn` crate can be
//! cross-validated against this simulator.
//!
//! # Architecture
//!
//! * [`time`] — integer nanosecond simulation time.
//! * [`frame`] — data frames, BCN messages (paper Fig. 2 fields), PAUSE.
//! * [`cp`] — the congestion point: queue monitoring, deterministic
//!   sampling, the congestion measure `sigma`, BCN message generation.
//! * [`rp`] — the reaction point: the BCN AIMD rate regulator with rate
//!   regulator tags (RRT/CPID association).
//! * [`qcn`] — the QCN (802.1Qau) congestion point and reaction point,
//!   the BCN-paradigm successor, for comparison experiments.
//! * [`sched`] — the future-event set behind both engines: a
//!   hierarchical timing wheel with slab recycling (default) and the
//!   reference binary heap, selectable per run and bit-identical.
//! * [`sim`] — the event-driven engine wiring N sources through a single
//!   bottleneck queue to a sink (the paper's Fig. 1 dumbbell).
//! * [`metrics`] — queue/rate time series, drop counters, throughput and
//!   Jain fairness.
//! * [`workload`] — flow descriptors: start/stop times, initial rates.
//! * [`wire`] — the BCN message wire format of the paper's Fig. 2
//!   (encode/decode, FB fixed-point quantization).
//! * [`faults`] — deterministic seed-driven fault injection: feedback
//!   drop/corruption/delay/reorder, data-loss bursts, link flaps,
//!   PAUSE storms.
//! * [`error`] — the typed configuration error returned by the
//!   `validate` methods.
//! * [`batch`] — multi-seed batches: deterministic workload jitter per
//!   seed, runs fanned out across the `parkit` worker pool, telemetry
//!   shards merged in seed order, panicking seeds quarantined.
//! * [`hybrid`] — the epoch-switching fluid–packet co-simulator:
//!   packet simulation through the interesting stretches, closed-form
//!   fast-forward (with guard bands and bit-exact re-seeding) through
//!   the quiescent ones.
//!
//! # Quickstart
//!
//! ```
//! use dcesim::sim::{Simulation, SimConfig};
//!
//! let cfg = SimConfig::fluid_validation_default();
//! let report = Simulation::new(cfg).run();
//! // The bottleneck stays busy and nothing is dropped with a roomy buffer.
//! assert!(report.metrics.dropped_frames == 0);
//! assert!(report.metrics.delivered_frames > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod checkpoint;
pub mod cp;
pub mod error;
pub mod faults;
pub mod frame;
pub mod hybrid;
pub mod metrics;
pub mod net;
pub mod qcn;
pub mod rp;
pub mod sched;
pub mod sim;
pub mod time;
pub mod topo;
pub mod wire;
pub mod workload;
