//! Regenerates the PAUSE head-of-line-blocking vs BCN comparison.

fn main() {
    if let Err(e) = bench::experiments::pause_hol::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
