//! Mode-switching (hybrid / piecewise-smooth) system integration.
//!
//! A hybrid system is a finite set of smooth vector fields ("modes") plus a
//! guard per mode whose zero crossing hands control to another mode. The
//! BCN fluid model is exactly such a system: the additive-increase field
//! where the congestion measure `sigma > 0` and the multiplicative-decrease
//! field where `sigma < 0`, with the switching line `sigma = 0` as the
//! mutual guard.
//!
//! The driver integrates the active mode with a terminal event on its
//! guard, applies the transition, resets the stepper (the vector field is
//! discontinuous across the guard), and repeats.

use crate::driver::{integrate_with_events_telemetry, Options};
use crate::event::{Direction, EventSpec};
use crate::solution::Solution;
use crate::stepper::Stepper;
use crate::SolveError;
use telemetry::{SpanKind, Telemetry};

/// A piecewise-smooth dynamical system with a finite set of modes.
///
/// Modes are identified by `usize` indices chosen by the implementor.
pub trait HybridSystem<const N: usize> {
    /// Vector field of the given mode.
    fn rhs(&self, mode: usize, t: f64, y: &[f64; N]) -> [f64; N];

    /// Guard for the given mode: integration of the mode stops when the
    /// guard crosses zero (in the direction given by
    /// [`Self::guard_direction`]).
    fn guard(&self, mode: usize, t: f64, y: &[f64; N]) -> f64;

    /// Which guard crossings trigger a transition. Defaults to any.
    fn guard_direction(&self, _mode: usize) -> Direction {
        Direction::Any
    }

    /// Computes the successor mode and (possibly reset) state when the
    /// guard of `mode` fires at `(t, y)`.
    fn transition(&self, mode: usize, t: f64, y: &[f64; N]) -> (usize, [f64; N]);

    /// The mode that governs the dynamics at `(t, y)` (used to pick the
    /// starting mode).
    fn mode_at(&self, t: f64, y: &[f64; N]) -> usize;
}

/// One maximal time interval spent in a single mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeInterval {
    /// Mode index.
    pub mode: usize,
    /// Interval start time.
    pub t_start: f64,
    /// Interval end time (switch or end of run).
    pub t_end: f64,
}

/// Output of a hybrid integration run.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridSolution<const N: usize> {
    /// The concatenated trajectory across all modes.
    pub solution: Solution<N>,
    /// The visited mode intervals in time order.
    pub intervals: Vec<ModeInterval>,
    /// True if the run ended because `max_switches` was reached rather
    /// than because `t_end` was reached.
    pub switch_budget_exhausted: bool,
}

impl<const N: usize> HybridSolution<N> {
    /// Number of mode switches that occurred.
    #[must_use]
    pub fn switch_count(&self) -> usize {
        self.intervals.len().saturating_sub(1)
    }

    /// Times at which the system switched modes.
    #[must_use]
    pub fn switch_times(&self) -> Vec<f64> {
        self.intervals.iter().skip(1).map(|iv| iv.t_start).collect()
    }
}

/// Integrates a [`HybridSystem`] from `(t0, y0)` until `t_end`, or until
/// `max_switches` mode changes have occurred.
///
/// # Errors
///
/// Propagates any [`SolveError`] from the underlying smooth integrations.
pub fn integrate_hybrid<const N: usize, S: HybridSystem<N>>(
    sys: &S,
    t0: f64,
    y0: [f64; N],
    t_end: f64,
    max_switches: usize,
    stepper: &mut dyn Stepper<N>,
    opts: &Options,
) -> Result<HybridSolution<N>, SolveError> {
    integrate_hybrid_telemetry(sys, t0, y0, t_end, max_switches, stepper, opts, None)
}

/// Like [`integrate_hybrid`], recording solver telemetry for every leg and
/// a region-switch event at every mode transition into `tel` when provided.
///
/// # Errors
///
/// Propagates any [`SolveError`] from the underlying smooth integrations.
#[allow(clippy::too_many_arguments)]
pub fn integrate_hybrid_telemetry<const N: usize, S: HybridSystem<N>>(
    sys: &S,
    t0: f64,
    y0: [f64; N],
    t_end: f64,
    max_switches: usize,
    stepper: &mut dyn Stepper<N>,
    opts: &Options,
    mut tel: Option<&mut Telemetry>,
) -> Result<HybridSolution<N>, SolveError> {
    let mut mode = sys.mode_at(t0, &y0);
    let mut t = t0;
    let mut y = y0;
    let mut total = Solution::new(t0, y0);
    let mut intervals = Vec::new();
    let mut budget_exhausted = false;

    for switch in 0..=max_switches {
        let ode = |tt: f64, yy: &[f64; N]| sys.rhs(mode, tt, yy);
        let guard = |tt: f64, yy: &[f64; N]| sys.guard(mode, tt, yy);
        let events = [EventSpec::terminal(&guard).with_direction(sys.guard_direction(mode))];
        stepper.reset();
        // Each leg is one causal span: solver events recorded inside it
        // attribute to the mode that produced them.
        let leg_span = tel.as_deref_mut().map_or(0, |tel| {
            let parent = tel.root_span();
            tel.span_begin(t, SpanKind::SolverLeg, mode as u32, parent)
        });
        let leg = integrate_with_events_telemetry(
            &ode,
            t,
            y,
            t_end,
            stepper,
            &events,
            opts,
            tel.as_deref_mut(),
        )?;
        if let Some(tel) = tel.as_deref_mut() {
            tel.span_end(leg.last_time(), leg_span);
        }
        let hit_guard = !leg.events().is_empty();
        intervals.push(ModeInterval { mode, t_start: t, t_end: leg.last_time() });
        t = leg.last_time();
        y = leg.last_state();
        total.extend_with(&leg);

        if !hit_guard || t >= t_end {
            return Ok(HybridSolution {
                solution: total,
                intervals,
                switch_budget_exhausted: false,
            });
        }
        if switch == max_switches {
            budget_exhausted = true;
            break;
        }
        let (next_mode, next_y) = sys.transition(mode, t, &y);
        if let Some(tel) = tel.as_deref_mut() {
            tel.region_switch(t, mode as u32, next_mode as u32);
        }
        mode = next_mode;
        y = next_y;
        // Nudge past the guard so the next leg does not immediately
        // re-trigger on the same zero: advance by one ulp of time.
        // (The state is already on the surface; the new mode's field
        // carries it off transversally.)
    }

    Ok(HybridSolution { solution: total, intervals, switch_budget_exhausted: budget_exhausted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dopri5;

    /// A bouncing ball: mode 0 is free fall; the guard is the height; the
    /// transition reflects the velocity with restitution 0.5.
    struct Ball;

    impl HybridSystem<2> for Ball {
        fn rhs(&self, _mode: usize, _t: f64, y: &[f64; 2]) -> [f64; 2] {
            [y[1], -10.0]
        }
        fn guard(&self, _mode: usize, _t: f64, y: &[f64; 2]) -> f64 {
            y[0]
        }
        fn guard_direction(&self, _mode: usize) -> Direction {
            Direction::Falling
        }
        fn transition(&self, _mode: usize, _t: f64, y: &[f64; 2]) -> (usize, [f64; 2]) {
            (0, [1e-9, -0.5 * y[1]])
        }
        fn mode_at(&self, _t: f64, _y: &[f64; 2]) -> usize {
            0
        }
    }

    #[test]
    fn bouncing_ball_switches_at_impacts() {
        // Drop from h = 5: first impact at t = 1 (g = 10), rebound speed 5,
        // second impact 1 s later, etc.
        let out = integrate_hybrid(
            &Ball,
            0.0,
            [5.0, 0.0],
            2.5,
            10,
            &mut Dopri5::with_tolerances(1e-10, 1e-10),
            &Options::default(),
        )
        .unwrap();
        let switches = out.switch_times();
        assert!(out.switch_count() >= 2, "switches: {switches:?}");
        assert!((switches[0] - 1.0).abs() < 1e-7, "first impact {}", switches[0]);
        assert!((switches[1] - 2.0).abs() < 1e-6, "second impact {}", switches[1]);
        assert!(!out.switch_budget_exhausted);
        // Height never meaningfully negative.
        assert!(out.solution.min_component(0) > -1e-6);
    }

    #[test]
    fn switch_budget_stops_run() {
        let out = integrate_hybrid(
            &Ball,
            0.0,
            [5.0, 0.0],
            100.0,
            1,
            &mut Dopri5::new(),
            &Options::default(),
        )
        .unwrap();
        assert!(out.switch_budget_exhausted);
        assert_eq!(out.intervals.len(), 2);
    }

    /// Two-mode relay oscillator: dy/dt = +1 until y = 1, then -1 until
    /// y = -1, and so on; period 4 once in steady oscillation.
    struct Relay;

    impl HybridSystem<1> for Relay {
        fn rhs(&self, mode: usize, _t: f64, _y: &[f64; 1]) -> [f64; 1] {
            if mode == 0 {
                [1.0]
            } else {
                [-1.0]
            }
        }
        fn guard(&self, mode: usize, _t: f64, y: &[f64; 1]) -> f64 {
            if mode == 0 {
                y[0] - 1.0
            } else {
                y[0] + 1.0
            }
        }
        fn transition(&self, mode: usize, _t: f64, y: &[f64; 1]) -> (usize, [f64; 1]) {
            (1 - mode, *y)
        }
        fn mode_at(&self, _t: f64, _y: &[f64; 1]) -> usize {
            0
        }
    }

    #[test]
    fn relay_oscillator_has_period_four() {
        let out = integrate_hybrid(
            &Relay,
            0.0,
            [0.0],
            10.0,
            100,
            &mut Dopri5::new(),
            &Options::default(),
        )
        .unwrap();
        let st = out.switch_times();
        // Switches at t = 1, 3, 5, 7, 9.
        assert_eq!(st.len(), 5, "switch times {st:?}");
        for (i, t) in st.iter().enumerate() {
            assert!((t - (1.0 + 2.0 * i as f64)).abs() < 1e-7, "switch {i} at {t}");
        }
        // Trajectory bounded in [-1, 1].
        assert!(out.solution.max_component(0) <= 1.0 + 1e-9);
        assert!(out.solution.min_component(0) >= -1.0 - 1e-9);
    }

    #[test]
    fn zero_switch_budget_still_integrates_first_leg() {
        let out = integrate_hybrid(
            &Ball,
            0.0,
            [5.0, 0.0],
            100.0,
            0,
            &mut Dopri5::new(),
            &Options::default(),
        )
        .unwrap();
        // One leg, stopped exactly at the first guard hit.
        assert_eq!(out.intervals.len(), 1);
        assert!(out.switch_budget_exhausted);
        assert!((out.solution.last_time() - 1.0).abs() < 1e-7);
    }

    #[test]
    fn starting_exactly_on_the_guard_does_not_loop() {
        // Ball released at height zero moving up: the guard is zero at
        // t = 0 but the event logic requires a strict sign change, so the
        // flight proceeds and the next impact is located normally.
        let out = integrate_hybrid(
            &Ball,
            0.0,
            [0.0, 10.0],
            1.5,
            5,
            &mut Dopri5::with_tolerances(1e-10, 1e-10),
            &Options::default(),
        )
        .unwrap();
        // Up for 1 s, back at zero at t = 2 > 1.5: no switch in horizon.
        assert_eq!(out.switch_count(), 0);
        assert!((out.solution.last_time() - 1.5).abs() < 1e-9);
        assert!(out.solution.last_state()[0] > 0.0);
    }

    #[test]
    fn intervals_partition_the_time_axis() {
        let out = integrate_hybrid(
            &Relay,
            0.0,
            [0.0],
            10.0,
            100,
            &mut Dopri5::new(),
            &Options::default(),
        )
        .unwrap();
        // Consecutive intervals abut exactly and cover [0, t_end].
        assert!((out.intervals[0].t_start - 0.0).abs() < 1e-12);
        for w in out.intervals.windows(2) {
            assert!((w[0].t_end - w[1].t_start).abs() < 1e-12);
        }
        assert!((out.intervals.last().unwrap().t_end - 10.0).abs() < 1e-9);
        // Modes alternate.
        for w in out.intervals.windows(2) {
            assert_ne!(w[0].mode, w[1].mode);
        }
    }

    #[test]
    fn telemetry_records_steps_switches_and_event_locations() {
        use telemetry::{Telemetry, TelemetryLevel};
        let mut tel = Telemetry::new(TelemetryLevel::Full);
        let out = integrate_hybrid_telemetry(
            &Relay,
            0.0,
            [0.0],
            10.0,
            100,
            &mut Dopri5::new(),
            &Options::default(),
            Some(&mut tel),
        )
        .unwrap();
        assert_eq!(out.switch_count(), 5);
        assert_eq!(tel.metrics.counter_by_name("hybrid.region_switches"), Some(5));
        // Every accepted step was counted and its size recorded.
        let steps = tel.metrics.counter_by_name("solver.steps_accepted").unwrap();
        assert!(steps > 0);
        let sizes = tel.metrics.histogram_by_name("solver.step_size_s").unwrap();
        assert_eq!(sizes.count(), steps);
        // Each of the 5 guard hits went through event location.
        assert_eq!(tel.metrics.counter_by_name("solver.events_located"), Some(5));
        assert!(tel.metrics.histogram_by_name("solver.event_location_iters").unwrap().p50() >= 1.0);
        // The trace holds the region switches in time order.
        let switches: Vec<f64> = tel
            .trace
            .iter()
            .filter(|e| matches!(e, telemetry::Event::RegionSwitch { .. }))
            .map(|e| e.time())
            .collect();
        assert_eq!(switches.len(), 5);
        assert!(switches.windows(2).all(|w| w[0] < w[1]));
        // Every leg opened and closed a solver-leg span; none dangle.
        assert_eq!(tel.metrics.counter_by_name("trace.spans"), Some(6));
        assert!(tel.open_spans().is_empty());
        let begins =
            tel.trace.iter().filter(|e| matches!(e, telemetry::Event::SpanBegin { .. })).count();
        let ends =
            tel.trace.iter().filter(|e| matches!(e, telemetry::Event::SpanEnd { .. })).count();
        assert_eq!(begins, 6);
        assert_eq!(ends, 6);
    }

    #[test]
    fn telemetry_off_sink_matches_untelemetered_run() {
        use telemetry::{Telemetry, TelemetryLevel};
        let mut tel = Telemetry::new(TelemetryLevel::Off);
        let a = integrate_hybrid_telemetry(
            &Relay,
            0.0,
            [0.0],
            10.0,
            100,
            &mut Dopri5::new(),
            &Options::default(),
            Some(&mut tel),
        )
        .unwrap();
        let b = integrate_hybrid(
            &Relay,
            0.0,
            [0.0],
            10.0,
            100,
            &mut Dopri5::new(),
            &Options::default(),
        )
        .unwrap();
        assert_eq!(a.solution.last_state(), b.solution.last_state());
        assert!(tel.trace.is_empty());
        assert_eq!(tel.metrics.counter_by_name("solver.steps_accepted"), Some(0));
    }

    #[test]
    fn run_without_guard_hits_reaches_end() {
        // Start moving away from the guard: free fall upward far from 0.
        struct NoSwitch;
        impl HybridSystem<1> for NoSwitch {
            fn rhs(&self, _m: usize, _t: f64, _y: &[f64; 1]) -> [f64; 1] {
                [1.0]
            }
            fn guard(&self, _m: usize, _t: f64, y: &[f64; 1]) -> f64 {
                y[0] // starts at 1, increases: never crosses
            }
            fn transition(&self, m: usize, _t: f64, y: &[f64; 1]) -> (usize, [f64; 1]) {
                (m, *y)
            }
            fn mode_at(&self, _t: f64, _y: &[f64; 1]) -> usize {
                0
            }
        }
        let out = integrate_hybrid(
            &NoSwitch,
            0.0,
            [1.0],
            3.0,
            5,
            &mut Dopri5::new(),
            &Options::default(),
        )
        .unwrap();
        assert_eq!(out.switch_count(), 0);
        assert!((out.solution.last_time() - 3.0).abs() < 1e-12);
        assert!((out.solution.last_state()[0] - 4.0).abs() < 1e-9);
    }
}
