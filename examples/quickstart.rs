//! Quickstart: classify a BCN parameter set, check strong stability, and
//! simulate the fluid trajectory.
//!
//! Run with `cargo run --example quickstart`.

use bcn::cases::classify_params;
use bcn::simulate::{fluid_trajectory, FluidOptions};
use bcn::stability::{criterion, exact_verdict, theorem1_holds, theorem1_required_buffer};
use bcn::units::MBIT;
use bcn::{BcnFluid, BcnParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's worked example: 50 flows on a 10 Gbit/s bottleneck.
    let params = BcnParams::paper_defaults();
    params.validate()?;

    // 1. Which of the paper's cases are we in?
    let analysis = classify_params(&params);
    println!("case analysis: {}", analysis.case);
    println!("  increase region: {}", analysis.increase);
    println!("  decrease region: {}", analysis.decrease);

    // 2. Does the configured buffer satisfy Theorem 1?
    println!(
        "Theorem 1 requires {:.2} Mbit of buffer; configured {:.2} Mbit -> sufficient: {}",
        theorem1_required_buffer(&params) / MBIT,
        params.buffer / MBIT,
        theorem1_holds(&params),
    );

    // 3. The case-by-case criterion (sharper than Theorem 1).
    println!("case criterion: {:?}", criterion(&params));

    // 4. Ground truth from the exact switched trajectory.
    let exact = exact_verdict(&params, 30);
    println!(
        "exact trace: strongly stable = {} (max q = {:.2} Mbit, min q = {:.2} Mbit)",
        exact.strongly_stable,
        (params.q0 + exact.max_x) / MBIT,
        (params.q0 + exact.min_x) / MBIT,
    );

    // 5. Fix it: give the switch the buffer Theorem 1 asks for.
    let fixed = params.clone().with_buffer(14.0 * MBIT);
    println!(
        "with a 14 Mbit buffer: criterion guarantees stability = {}",
        criterion(&fixed).is_guaranteed()
    );

    // 6. Integrate the fluid model and report the first milliseconds.
    let sys = BcnFluid::linearized(fixed.clone());
    let opts = FluidOptions::default().with_t_end(2e-3).with_record_dt(1e-5);
    let run = fluid_trajectory(&sys, fixed.initial_point(), &opts)?;
    println!(
        "fluid run: {} region switches in 2 ms, queue peaked at {:.2} Mbit",
        run.switch_count(),
        (fixed.q0 + run.solution.max_component(0)) / MBIT,
    );
    Ok(())
}
