//! Recorded integration output.

use crate::event::EventOccurrence;

/// The recorded output of an integration run: accepted step points plus any
/// located events.
///
/// Points are stored in increasing time order; the first point is the
/// initial condition and the last is where the driver stopped (end time or
/// terminal event).
#[derive(Debug, Clone, PartialEq)]
pub struct Solution<const N: usize> {
    ts: Vec<f64>,
    ys: Vec<[f64; N]>,
    events: Vec<EventOccurrence<N>>,
}

impl<const N: usize> Solution<N> {
    /// Creates a solution seeded with the initial condition.
    #[must_use]
    pub fn new(t0: f64, y0: [f64; N]) -> Self {
        Self { ts: vec![t0], ys: vec![y0], events: Vec::new() }
    }

    /// Appends an accepted point. Times must be non-decreasing.
    pub fn push(&mut self, t: f64, y: [f64; N]) {
        debug_assert!(t >= *self.ts.last().expect("solution is never empty"));
        self.ts.push(t);
        self.ys.push(y);
    }

    /// Records a located event.
    pub fn push_event(&mut self, ev: EventOccurrence<N>) {
        self.events.push(ev);
    }

    /// The recorded times.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.ts
    }

    /// The recorded states (same length as [`Self::times`]).
    #[must_use]
    pub fn states(&self) -> &[[f64; N]] {
        &self.ys
    }

    /// All located events in time order.
    #[must_use]
    pub fn events(&self) -> &[EventOccurrence<N>] {
        &self.events
    }

    /// Number of recorded points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether the solution holds only the initial point.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ts.len() <= 1
    }

    /// The final recorded time.
    #[must_use]
    pub fn last_time(&self) -> f64 {
        *self.ts.last().expect("solution is never empty")
    }

    /// The final recorded state.
    #[must_use]
    pub fn last_state(&self) -> [f64; N] {
        *self.ys.last().expect("solution is never empty")
    }

    /// Component `i` of every recorded state, in time order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    #[must_use]
    pub fn component(&self, i: usize) -> Vec<f64> {
        assert!(i < N, "component index {i} out of range for dimension {N}");
        self.ys.iter().map(|y| y[i]).collect()
    }

    /// Linearly interpolates the state at an arbitrary time inside the
    /// recorded range. Returns `None` outside the range.
    #[must_use]
    pub fn sample(&self, t: f64) -> Option<[f64; N]> {
        if !t.is_finite() || t < self.ts[0] || t > self.last_time() {
            return None;
        }
        let idx = match self.ts.binary_search_by(|v| v.total_cmp(&t)) {
            Ok(i) => return Some(self.ys[i]),
            Err(i) => i,
        };
        let (t0, t1) = (self.ts[idx - 1], self.ts[idx]);
        let w = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
        let (y0, y1) = (&self.ys[idx - 1], &self.ys[idx]);
        let mut out = [0.0; N];
        for k in 0..N {
            out[k] = y0[k] + w * (y1[k] - y0[k]);
        }
        Some(out)
    }

    /// Maximum of component `i` over the recorded points.
    #[must_use]
    pub fn max_component(&self, i: usize) -> f64 {
        self.ys.iter().map(|y| y[i]).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum of component `i` over the recorded points.
    #[must_use]
    pub fn min_component(&self, i: usize) -> f64 {
        self.ys.iter().map(|y| y[i]).fold(f64::INFINITY, f64::min)
    }

    /// Parabola-refined maximum of component `i`: the extreme recorded
    /// sample, improved by the vertex of the quadratic through it and its
    /// two neighbours when it is interior. For a smooth trajectory
    /// sampled at spacing `h` around a local extremum of curvature-scale
    /// `beta`, this cuts the grid-sampling error from `O((beta h)^2)` to
    /// `O((beta h)^4)` relative.
    #[must_use]
    pub fn refined_max_component(&self, i: usize) -> f64 {
        self.refined_extremum(i, 1.0)
    }

    /// Parabola-refined minimum of component `i`; see
    /// [`Self::refined_max_component`].
    #[must_use]
    pub fn refined_min_component(&self, i: usize) -> f64 {
        -self.refined_extremum(i, -1.0)
    }

    /// Maximum of `sign * y[i]`, parabola-refined at the extreme interior
    /// sample (returns the signed-flipped value; callers un-flip).
    fn refined_extremum(&self, i: usize, sign: f64) -> f64 {
        let mut best = 0usize;
        let mut best_v = f64::NEG_INFINITY;
        for (idx, y) in self.ys.iter().enumerate() {
            let v = sign * y[i];
            if v > best_v {
                best_v = v;
                best = idx;
            }
        }
        if best == 0 || best + 1 >= self.ys.len() {
            return best_v;
        }
        let (t0, t1, t2) = (self.ts[best - 1], self.ts[best], self.ts[best + 1]);
        let (x0, x1, x2) = (sign * self.ys[best - 1][i], best_v, sign * self.ys[best + 1][i]);
        if t1 <= t0 || t2 <= t1 {
            return best_v; // repeated times: no well-posed fit
        }
        // Newton form through the three samples (handles uneven spacing,
        // which the per-step dense recorder produces at step boundaries).
        let d01 = (x1 - x0) / (t1 - t0);
        let d12 = (x2 - x1) / (t2 - t1);
        let c2 = (d12 - d01) / (t2 - t0);
        if c2 >= 0.0 {
            return best_v; // not concave at the top: keep the sample
        }
        let tv = 0.5 * (t0 + t1) - d01 / (2.0 * c2);
        if tv <= t0 || tv >= t2 {
            return best_v;
        }
        let v = x0 + d01 * (tv - t0) + c2 * (tv - t0) * (tv - t1);
        v.max(best_v)
    }

    /// Appends closed-form samples: for each offset `t` in `times`
    /// (non-decreasing, relative to `t_offset`), pushes the point
    /// `(t_offset + t, f(t))`.
    ///
    /// This is the recording primitive for analytic (non-stepped)
    /// integrators, which evaluate a known flow at arbitrary times
    /// instead of accumulating accepted steps.
    pub fn push_samples<F: FnMut(f64) -> [f64; N]>(
        &mut self,
        t_offset: f64,
        times: &[f64],
        mut f: F,
    ) {
        self.ts.reserve(times.len());
        self.ys.reserve(times.len());
        for &t in times {
            self.push(t_offset + t, f(t));
        }
    }

    /// Appends another solution that continues this one (its first point
    /// must coincide in time with this solution's last point; the duplicate
    /// junction point is dropped).
    pub fn extend_with(&mut self, other: &Solution<N>) {
        for (i, (&t, y)) in other.ts.iter().zip(other.ys.iter()).enumerate() {
            if i == 0 {
                continue;
            }
            self.push(t, *y);
        }
        self.events.extend(other.events.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_accessors() {
        let mut s = Solution::new(0.0, [1.0, 2.0]);
        s.push(1.0, [3.0, 4.0]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.last_time(), 1.0);
        assert_eq!(s.last_state(), [3.0, 4.0]);
        assert_eq!(s.component(0), vec![1.0, 3.0]);
        assert_eq!(s.component(1), vec![2.0, 4.0]);
    }

    #[test]
    fn sampling_interpolates_linearly() {
        let mut s = Solution::new(0.0, [0.0]);
        s.push(2.0, [4.0]);
        assert_eq!(s.sample(1.0), Some([2.0]));
        assert_eq!(s.sample(0.0), Some([0.0]));
        assert_eq!(s.sample(2.0), Some([4.0]));
        assert_eq!(s.sample(-0.1), None);
        assert_eq!(s.sample(2.1), None);
        assert_eq!(s.sample(f64::NAN), None);
        assert_eq!(s.sample(f64::INFINITY), None);
    }

    #[test]
    fn extrema_over_components() {
        let mut s = Solution::new(0.0, [0.0]);
        s.push(1.0, [5.0]);
        s.push(2.0, [-3.0]);
        assert_eq!(s.max_component(0), 5.0);
        assert_eq!(s.min_component(0), -3.0);
    }

    #[test]
    fn refined_extrema_beat_grid_sampling() {
        // cos(t) sampled on a grid that straddles the maximum at t = 0
        // and the minimum at t = pi: the refined values recover ±1 orders
        // of magnitude better than the raw samples.
        let h = 0.05;
        let mut s = Solution::new(-3.0 * h + 0.017, [(-3.0f64 * h + 0.017).cos()]);
        for j in -2..=80 {
            let t = f64::from(j) * h + 0.017;
            s.push(t, [t.cos()]);
        }
        let raw_err = (s.max_component(0) - 1.0).abs();
        let ref_err = (s.refined_max_component(0) - 1.0).abs();
        assert!(ref_err < 1e-2 * raw_err, "refined {ref_err} vs raw {raw_err}");
        assert!(ref_err < 1e-6);
        let ref_min_err = (s.refined_min_component(0) + 1.0).abs();
        assert!(ref_min_err < 1e-6, "min err {ref_min_err}");
    }

    #[test]
    fn refined_extremum_at_boundary_falls_back_to_sample() {
        // Monotone data: the extreme sample sits at the boundary, where no
        // parabola fit exists; the raw sample must be returned.
        let mut s = Solution::new(0.0, [0.0]);
        s.push(1.0, [1.0]);
        s.push(2.0, [4.0]);
        assert_eq!(s.refined_max_component(0), 4.0);
        assert_eq!(s.refined_min_component(0), 0.0);
    }

    #[test]
    fn push_samples_offsets_and_evaluates() {
        let mut s = Solution::new(0.0, [1.0]);
        s.push_samples(2.0, &[0.5, 1.0, 1.5], |t| [t * t]);
        assert_eq!(s.times(), &[0.0, 2.5, 3.0, 3.5]);
        assert_eq!(s.states()[1], [0.25]);
        assert_eq!(s.states()[3], [2.25]);
    }

    #[test]
    fn extend_drops_junction_duplicate() {
        let mut a = Solution::new(0.0, [0.0]);
        a.push(1.0, [1.0]);
        let mut b = Solution::new(1.0, [1.0]);
        b.push(2.0, [2.0]);
        a.extend_with(&b);
        assert_eq!(a.times(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn component_bound_check() {
        let s = Solution::new(0.0, [0.0]);
        let _ = s.component(1);
    }
}
