//! Regenerates the w/pm transients ablation.

fn main() {
    if let Err(e) = bench::experiments::w_pm_transients::main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
