//! Deterministic fault injection at the wire/net layer.
//!
//! Theorem 1 and the strong-stability analysis assume *ideal* backward
//! feedback: every BCN message arrives intact after a fixed delay. This
//! module models the ways a real DCE fabric breaks that assumption —
//! feedback drop/corruption/extra-delay/reorder, data-frame loss bursts,
//! bottleneck link flaps, and PAUSE-storm amplification — so experiments
//! can measure how much margin the fluid-model predictions retain.
//!
//! Determinism: every decision is a pure function of `(seed, class,
//! index)` through splitmix64, where `index` counts draws *per fault
//! class*. Each simulation run is single-threaded, so a [`FaultPlan`]
//! replays bit-identically at any worker-pool width (the `parkit`
//! guarantee), and enabling one fault class never perturbs another
//! class's decision stream.
//!
//! With [`FaultConfig::none`] every hook short-circuits before drawing,
//! so a fault-free run is byte-identical to one on a build without this
//! module.

use telemetry::FaultClass;

use crate::error::ConfigError;
use crate::frame::BcnMessage;
use crate::time::{Duration, Time};
use crate::wire;

/// splitmix64 — the standard 64-bit finalizer; good avalanche, no state.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic uniform sample in `[0, 1)` keyed by
/// `(seed, class, index)`.
fn unit(seed: u64, class: FaultClass, index: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(class.index() as u64 ^ splitmix64(index)));
    // 53 high bits -> the full f64 mantissa range.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Fault intensities for one run. All-zero ([`FaultConfig::none`], the
/// `Default`) disables injection entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of every decision stream; runs with equal `(config, seed)`
    /// inject identically.
    pub seed: u64,
    /// Probability a BCN feedback message is silently dropped.
    pub feedback_loss: f64,
    /// Probability a BCN feedback message has one wire bit flipped. The
    /// corrupted frame is re-decoded: an undecodable frame is lost, a
    /// decodable one delivers the altered fields (including a possibly
    /// misaddressed destination).
    pub feedback_corrupt: f64,
    /// Fixed extra latency added to every BCN feedback message.
    pub feedback_extra_delay: Duration,
    /// Probability a BCN feedback message is additionally jittered by a
    /// uniform draw from `[0, reorder_window)`, letting later messages
    /// overtake it.
    pub feedback_reorder: f64,
    /// Jitter window for reordered feedback.
    pub reorder_window: Duration,
    /// Probability an arriving data frame starts a loss burst.
    pub data_loss: f64,
    /// Frames lost per burst (>= 1 when `data_loss > 0`).
    pub data_burst_len: u64,
    /// Link-flap cycle length; the bottleneck is down for the last
    /// `link_flap_down` of every period ([`Duration::ZERO`] disables).
    pub link_flap_period: Duration,
    /// How long the bottleneck stays down each flap period.
    pub link_flap_down: Duration,
    /// Probability a PAUSE assertion is amplified into a storm.
    pub pause_storm: f64,
    /// Hold-time multiplier applied to stormed PAUSEs (>= 1).
    pub pause_storm_factor: f64,
}

impl FaultConfig {
    /// The fault-free configuration: every hook is a no-op.
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            feedback_loss: 0.0,
            feedback_corrupt: 0.0,
            feedback_extra_delay: Duration::ZERO,
            feedback_reorder: 0.0,
            reorder_window: Duration::ZERO,
            data_loss: 0.0,
            data_burst_len: 1,
            link_flap_period: Duration::ZERO,
            link_flap_down: Duration::ZERO,
            pause_storm: 0.0,
            pause_storm_factor: 1.0,
        }
    }

    /// Whether any fault class can fire.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.feedback_loss > 0.0
            || self.feedback_corrupt > 0.0
            || self.feedback_extra_delay > Duration::ZERO
            || self.feedback_reorder > 0.0
            || self.data_loss > 0.0
            || (self.link_flap_period > Duration::ZERO && self.link_flap_down > Duration::ZERO)
            || self.pause_storm > 0.0
    }

    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first out-of-range field:
    /// probabilities outside `[0, 1]` or non-finite, a zero burst
    /// length, a storm factor below 1, or a down window longer than its
    /// flap period.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let probs = [
            ("faults.feedback_loss", self.feedback_loss),
            ("faults.feedback_corrupt", self.feedback_corrupt),
            ("faults.feedback_reorder", self.feedback_reorder),
            ("faults.data_loss", self.data_loss),
            ("faults.pause_storm", self.pause_storm),
        ];
        for (field, p) in probs {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(ConfigError::new(
                    field,
                    format!("probability must lie in [0, 1], got {p}"),
                ));
            }
        }
        if self.feedback_reorder > 0.0 && self.reorder_window == Duration::ZERO {
            return Err(ConfigError::new(
                "faults.reorder_window",
                "reordering needs a positive jitter window",
            ));
        }
        if self.data_loss > 0.0 && self.data_burst_len == 0 {
            return Err(ConfigError::new(
                "faults.data_burst_len",
                "loss bursts must cover at least one frame",
            ));
        }
        if !self.pause_storm_factor.is_finite() || self.pause_storm_factor < 1.0 {
            return Err(ConfigError::new(
                "faults.pause_storm_factor",
                format!("storm factor must be finite and >= 1, got {}", self.pause_storm_factor),
            ));
        }
        if self.link_flap_down > Duration::ZERO && self.link_flap_period == Duration::ZERO {
            return Err(ConfigError::new(
                "faults.link_flap_period",
                "a flap down-time needs a flap period",
            ));
        }
        if self.link_flap_period > Duration::ZERO && self.link_flap_down >= self.link_flap_period {
            return Err(ConfigError::new(
                "faults.link_flap_down",
                "the down window must be shorter than the flap period",
            ));
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Per-class injection tallies for one run (mirrored into
/// `SimMetrics::faults`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Feedback messages dropped outright.
    pub feedback_dropped: u64,
    /// Feedback messages delivered with corrupted fields.
    pub feedback_corrupted: u64,
    /// Feedback messages whose corruption made the frame undecodable.
    pub feedback_corrupt_lost: u64,
    /// Feedback messages held for the fixed extra delay.
    pub feedback_delayed: u64,
    /// Feedback messages jittered for reordering.
    pub feedback_reordered: u64,
    /// Data frames lost on the wire.
    pub data_frames_lost: u64,
    /// Departures deferred by a link-down window.
    pub link_flap_deferrals: u64,
    /// PAUSE assertions amplified into storms.
    pub pause_storms: u64,
}

impl FaultCounts {
    /// Adds another tally into this one (used to aggregate batch seeds).
    pub fn merge(&mut self, other: &FaultCounts) {
        self.feedback_dropped += other.feedback_dropped;
        self.feedback_corrupted += other.feedback_corrupted;
        self.feedback_corrupt_lost += other.feedback_corrupt_lost;
        self.feedback_delayed += other.feedback_delayed;
        self.feedback_reordered += other.feedback_reordered;
        self.data_frames_lost += other.data_frames_lost;
        self.link_flap_deferrals += other.link_flap_deferrals;
        self.pause_storms += other.pause_storms;
    }

    /// Total injections across all classes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.feedback_dropped
            + self.feedback_corrupted
            + self.feedback_corrupt_lost
            + self.feedback_delayed
            + self.feedback_reordered
            + self.data_frames_lost
            + self.link_flap_deferrals
            + self.pause_storms
    }
}

/// The fate of one BCN feedback message after the fault layer.
#[derive(Debug, Clone, PartialEq)]
pub enum FeedbackFate {
    /// Deliver `msg` after `extra` beyond the nominal propagation delay.
    Deliver {
        /// The (possibly corrupted) message to deliver.
        msg: BcnMessage,
        /// Extra latency beyond the configured propagation delay.
        extra: Duration,
    },
    /// The message never arrives.
    Lost,
}

/// The per-run injector: owns the decision streams and tallies.
///
/// One plan belongs to one simulation run; its decisions depend only on
/// the configuration and the order of hook calls, both of which are
/// deterministic per run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    cfg: FaultConfig,
    active: bool,
    draws: [u64; FaultClass::ALL.len()],
    burst_left: u64,
    counts: FaultCounts,
}

impl FaultPlan {
    /// Builds a plan from a configuration (assumed validated).
    #[must_use]
    pub fn new(cfg: FaultConfig) -> Self {
        let active = cfg.enabled();
        Self {
            cfg,
            active,
            draws: [0; FaultClass::ALL.len()],
            burst_left: 0,
            counts: FaultCounts::default(),
        }
    }

    /// A plan that never injects anything.
    #[must_use]
    pub fn none() -> Self {
        Self::new(FaultConfig::none())
    }

    /// Whether any fault class can fire (hooks short-circuit when not).
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The configuration this plan runs.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Injection tallies so far.
    #[must_use]
    pub fn counts(&self) -> &FaultCounts {
        &self.counts
    }

    /// Moves the tallies out (used when a run finalizes its metrics, so
    /// the counts are not cloned twice on the way into the report).
    #[must_use]
    pub fn take_counts(&mut self) -> FaultCounts {
        std::mem::take(&mut self.counts)
    }

    /// The next uniform draw from `class`'s decision stream.
    fn draw(&mut self, class: FaultClass) -> f64 {
        let idx = self.draws[class.index()];
        self.draws[class.index()] += 1;
        unit(self.cfg.seed, class, idx)
    }

    /// Decides the fate of one outgoing BCN feedback message and returns
    /// it together with the classes that fired (for telemetry).
    ///
    /// Convenience wrapper over [`FaultPlan::feedback_fate_into`] that
    /// allocates a fresh class list per call; the engines' hot paths
    /// reuse a hoisted scratch buffer instead.
    pub fn feedback_fate(&mut self, msg: &BcnMessage) -> (FeedbackFate, Vec<FaultClass>) {
        let mut injected = Vec::new();
        let fate = self.feedback_fate_into(msg, &mut injected);
        (fate, injected)
    }

    /// Decides the fate of one outgoing BCN feedback message, recording
    /// the classes that fired (for telemetry) into `injected`, which is
    /// cleared first. Allocation-free once the buffer has warmed up.
    pub fn feedback_fate_into(
        &mut self,
        msg: &BcnMessage,
        injected: &mut Vec<FaultClass>,
    ) -> FeedbackFate {
        injected.clear();
        if !self.active {
            return FeedbackFate::Deliver { msg: *msg, extra: Duration::ZERO };
        }
        if self.cfg.feedback_loss > 0.0
            && self.draw(FaultClass::FeedbackDrop) < self.cfg.feedback_loss
        {
            self.counts.feedback_dropped += 1;
            injected.push(FaultClass::FeedbackDrop);
            return FeedbackFate::Lost;
        }
        let mut msg = *msg;
        if self.cfg.feedback_corrupt > 0.0
            && self.draw(FaultClass::FeedbackCorrupt) < self.cfg.feedback_corrupt
        {
            injected.push(FaultClass::FeedbackCorrupt);
            let mut bytes = wire::encode(&msg);
            let pos = (self.draw(FaultClass::FeedbackCorrupt) * wire::BCN_FRAME_BYTES as f64)
                as usize
                % wire::BCN_FRAME_BYTES;
            let bit = (self.draw(FaultClass::FeedbackCorrupt) * 8.0) as u32 % 8;
            bytes[pos] ^= 1u8 << bit;
            match wire::decode(&bytes) {
                Ok(m) => {
                    self.counts.feedback_corrupted += 1;
                    msg = m;
                }
                Err(_) => {
                    // The flip hit a framing field; the switch discards
                    // the frame as non-BCN.
                    self.counts.feedback_corrupt_lost += 1;
                    return FeedbackFate::Lost;
                }
            }
        }
        let mut extra = Duration::ZERO;
        if self.cfg.feedback_extra_delay > Duration::ZERO {
            extra = extra + self.cfg.feedback_extra_delay;
            self.counts.feedback_delayed += 1;
            injected.push(FaultClass::FeedbackDelay);
        }
        if self.cfg.feedback_reorder > 0.0
            && self.draw(FaultClass::FeedbackReorder) < self.cfg.feedback_reorder
        {
            let jitter = self.draw(FaultClass::FeedbackReorder) * self.cfg.reorder_window.as_secs();
            extra = extra + Duration::from_secs(jitter);
            self.counts.feedback_reordered += 1;
            injected.push(FaultClass::FeedbackReorder);
        }
        FeedbackFate::Deliver { msg, extra }
    }

    /// Whether an arriving data frame is lost on the wire. A fresh draw
    /// below `data_loss` starts a burst of `data_burst_len` frames;
    /// subsequent arrivals consume the burst without drawing.
    pub fn data_frame_lost(&mut self) -> bool {
        if self.cfg.data_loss <= 0.0 {
            return false;
        }
        if self.burst_left > 0 {
            self.burst_left -= 1;
            self.counts.data_frames_lost += 1;
            return true;
        }
        if self.draw(FaultClass::DataLoss) < self.cfg.data_loss {
            self.burst_left = self.cfg.data_burst_len.saturating_sub(1);
            self.counts.data_frames_lost += 1;
            return true;
        }
        false
    }

    /// If the bottleneck link is inside a down window at `t`, returns
    /// the instant it comes back up (service must defer until then).
    /// The link is down for the last `link_flap_down` of every
    /// `link_flap_period`, so `t = 0` always starts up.
    pub fn link_up_at(&mut self, t: Time) -> Option<Time> {
        let period = self.cfg.link_flap_period.as_nanos();
        let down = self.cfg.link_flap_down.as_nanos();
        if period == 0 || down == 0 {
            return None;
        }
        let phase = t.as_nanos() % period;
        if phase >= period - down {
            self.counts.link_flap_deferrals += 1;
            Some(Time::from_nanos(t.as_nanos() - phase + period))
        } else {
            None
        }
    }

    /// The PAUSE hold time after possible storm amplification; the flag
    /// reports whether a storm fired.
    pub fn pause_hold(&mut self, nominal: Duration) -> (Duration, bool) {
        if self.cfg.pause_storm <= 0.0 {
            return (nominal, false);
        }
        if self.draw(FaultClass::PauseStorm) < self.cfg.pause_storm {
            self.counts.pause_storms += 1;
            (Duration::from_secs(nominal.as_secs() * self.cfg.pause_storm_factor), true)
        } else {
            (nominal, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{CpId, SourceId};

    fn msg(sigma: f64) -> BcnMessage {
        BcnMessage { dst: SourceId(2), cpid: CpId(7), sigma }
    }

    fn lossy(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            feedback_loss: 0.3,
            feedback_corrupt: 0.2,
            feedback_extra_delay: Duration::from_secs(1e-5),
            feedback_reorder: 0.25,
            reorder_window: Duration::from_secs(5e-5),
            data_loss: 0.1,
            data_burst_len: 3,
            pause_storm: 0.5,
            pause_storm_factor: 8.0,
            ..FaultConfig::none()
        }
    }

    #[test]
    fn none_is_inactive_and_passes_messages_through() {
        let mut plan = FaultPlan::none();
        assert!(!plan.is_active());
        let m = msg(-1234.5);
        let (fate, injected) = plan.feedback_fate(&m);
        assert_eq!(fate, FeedbackFate::Deliver { msg: m, extra: Duration::ZERO });
        assert!(injected.is_empty());
        assert!(!plan.data_frame_lost());
        assert_eq!(plan.link_up_at(Time::from_secs(1.0)), None);
        assert_eq!(plan.pause_hold(Duration::from_nanos(500)), (Duration::from_nanos(500), false));
        assert_eq!(plan.counts().total(), 0);
    }

    #[test]
    fn validate_rejects_out_of_range_fields() {
        for (mutate, field) in [
            (
                Box::new(|c: &mut FaultConfig| c.feedback_loss = f64::NAN)
                    as Box<dyn Fn(&mut FaultConfig)>,
                "faults.feedback_loss",
            ),
            (Box::new(|c: &mut FaultConfig| c.data_loss = 1.5), "faults.data_loss"),
            (
                Box::new(|c: &mut FaultConfig| {
                    c.data_loss = 0.1;
                    c.data_burst_len = 0;
                }),
                "faults.data_burst_len",
            ),
            (
                Box::new(|c: &mut FaultConfig| c.pause_storm_factor = 0.5),
                "faults.pause_storm_factor",
            ),
            (
                Box::new(|c: &mut FaultConfig| {
                    c.feedback_reorder = 0.1;
                    c.reorder_window = Duration::ZERO;
                }),
                "faults.reorder_window",
            ),
            (
                Box::new(|c: &mut FaultConfig| {
                    c.link_flap_down = Duration::from_nanos(10);
                }),
                "faults.link_flap_period",
            ),
            (
                Box::new(|c: &mut FaultConfig| {
                    c.link_flap_period = Duration::from_nanos(10);
                    c.link_flap_down = Duration::from_nanos(10);
                }),
                "faults.link_flap_down",
            ),
        ] {
            let mut cfg = FaultConfig::none();
            mutate(&mut cfg);
            let err = cfg.validate().unwrap_err();
            assert_eq!(err.field, field, "{err}");
        }
        assert!(FaultConfig::none().validate().is_ok());
        assert!(lossy(1).validate().is_ok());
    }

    #[test]
    fn decisions_replay_identically_for_a_fixed_seed() {
        let run = |seed: u64| {
            let mut plan = FaultPlan::new(lossy(seed));
            let mut fates = Vec::new();
            for i in 0..200 {
                fates.push(plan.feedback_fate(&msg(-100.0 * i as f64)));
                fates.push((
                    if plan.data_frame_lost() {
                        FeedbackFate::Lost
                    } else {
                        FeedbackFate::Deliver { msg: msg(0.0), extra: Duration::ZERO }
                    },
                    Vec::new(),
                ));
            }
            (fates, plan.counts().clone())
        };
        let (a, ca) = run(42);
        let (b, cb) = run(42);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        let (c, _) = run(43);
        assert_ne!(a, c, "different seeds must inject differently");
    }

    #[test]
    fn full_loss_drops_everything_and_tallies() {
        let cfg = FaultConfig { feedback_loss: 1.0, ..FaultConfig::none() };
        let mut plan = FaultPlan::new(cfg);
        for _ in 0..50 {
            let (fate, injected) = plan.feedback_fate(&msg(-1.0));
            assert_eq!(fate, FeedbackFate::Lost);
            assert_eq!(injected, vec![FaultClass::FeedbackDrop]);
        }
        assert_eq!(plan.counts().feedback_dropped, 50);
    }

    #[test]
    fn corruption_reencodes_through_the_wire_format() {
        let cfg = FaultConfig { feedback_corrupt: 1.0, seed: 9, ..FaultConfig::none() };
        let mut plan = FaultPlan::new(cfg);
        let mut altered = 0;
        let mut lost = 0;
        for i in 0..100 {
            let original = msg(-700.0 - f64::from(i));
            match plan.feedback_fate(&original).0 {
                FeedbackFate::Deliver { msg: m, .. } => {
                    // Quantized to the FB unit at minimum; one flipped bit
                    // may change any field.
                    if m != original {
                        altered += 1;
                    }
                }
                FeedbackFate::Lost => lost += 1,
            }
        }
        assert_eq!(plan.counts().feedback_corrupted + plan.counts().feedback_corrupt_lost, 100);
        assert!(altered > 0, "bit flips should alter decoded fields");
        // Flips into the TPID/EtherType region must be discarded, not
        // crash: both outcomes occur over 100 frames.
        assert_eq!(lost, plan.counts().feedback_corrupt_lost);
    }

    #[test]
    fn data_loss_bursts_raise_the_effective_rate() {
        let cfg = FaultConfig { data_loss: 0.1, data_burst_len: 4, seed: 5, ..FaultConfig::none() };
        let mut plan = FaultPlan::new(cfg);
        let lost = (0..2000).filter(|_| plan.data_frame_lost()).count();
        let rate = lost as f64 / 2000.0;
        assert!(rate > 0.15, "bursts must amplify the base rate, got {rate}");
        assert_eq!(plan.counts().data_frames_lost, lost as u64);
    }

    #[test]
    fn link_flap_windows_sit_at_the_end_of_each_period() {
        let cfg = FaultConfig {
            link_flap_period: Duration::from_nanos(100),
            link_flap_down: Duration::from_nanos(25),
            ..FaultConfig::none()
        };
        let mut plan = FaultPlan::new(cfg);
        assert_eq!(plan.link_up_at(Time::from_nanos(0)), None, "starts up");
        assert_eq!(plan.link_up_at(Time::from_nanos(74)), None);
        assert_eq!(plan.link_up_at(Time::from_nanos(75)), Some(Time::from_nanos(100)));
        assert_eq!(plan.link_up_at(Time::from_nanos(99)), Some(Time::from_nanos(100)));
        assert_eq!(plan.link_up_at(Time::from_nanos(100)), None);
        assert_eq!(plan.link_up_at(Time::from_nanos(199)), Some(Time::from_nanos(200)));
        assert_eq!(plan.counts().link_flap_deferrals, 3);
    }

    #[test]
    fn pause_storms_amplify_the_hold() {
        let cfg = FaultConfig { pause_storm: 1.0, pause_storm_factor: 10.0, ..FaultConfig::none() };
        let mut plan = FaultPlan::new(cfg);
        let (hold, stormed) = plan.pause_hold(Duration::from_secs(1e-6));
        assert!(stormed);
        assert_eq!(hold, Duration::from_secs(1e-5));
        assert_eq!(plan.counts().pause_storms, 1);
    }

    #[test]
    fn class_streams_are_independent() {
        // Enabling corruption must not change where drops land.
        let drops = |cfg: FaultConfig| {
            let mut plan = FaultPlan::new(cfg);
            (0..100)
                .map(|_| matches!(plan.feedback_fate(&msg(-1.0)).0, FeedbackFate::Lost))
                .collect::<Vec<_>>()
        };
        let base = FaultConfig { feedback_loss: 0.3, seed: 11, ..FaultConfig::none() };
        let with_corrupt = FaultConfig { feedback_corrupt: 0.9, ..base.clone() };
        let a = drops(base);
        let b = drops(with_corrupt);
        let dropped_in_a: Vec<usize> =
            a.iter().enumerate().filter(|(_, d)| **d).map(|(i, _)| i).collect();
        for i in &dropped_in_a {
            assert!(b[*i], "message {i} dropped without corruption enabled but not with");
        }
    }
}
