//! Shared generator for the per-case dynamics figures (Figs. 8–10):
//! phase trajectory + time-series panels + the case's stability headline.

use std::path::Path;

use bcn::cases::{classify_params, exemplar};
use bcn::rounds::trace_legs;
use bcn::stability::{criterion, exact_verdict};
use bcn::{BcnFluid, BcnParams, CaseId};
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot};

use crate::common::{banner, phase_plot, save_plot, trace};
use crate::ExpResult;

/// Generates the standard three-panel case figure.
///
/// # Errors
///
/// Propagates I/O failures, or reports a parameter set that landed in the
/// wrong case.
pub fn run_case(out: &Path, case: CaseId, stem: &str, title: &str) -> ExpResult {
    banner(title);
    let params = exemplar(&BcnParams::test_defaults().with_buffer(4.0e5), case);
    let analysis = classify_params(&params);
    if analysis.case != case {
        return Err(format!("exemplar landed in {} instead of {case}", analysis.case).into());
    }
    println!(
        "shapes: increase = {}, decrease = {}; thresholds a* = {:.3e}, b* = {:.3e}",
        analysis.increase, analysis.decrease, analysis.a_threshold, analysis.b_threshold
    );

    // Headline: the paper's per-case stability statement.
    let verdict = criterion(&params);
    let exact = exact_verdict(&params, 40);
    println!("criterion: {verdict:?}");
    println!(
        "exact trace: strongly stable = {}, max x = {:.1}, min x = {:.1}",
        exact.strongly_stable, exact.max_x, exact.min_x
    );

    // Leg structure.
    let legs = trace_legs(&params, params.initial_point(), 8);
    for (i, leg) in legs.iter().enumerate() {
        println!(
            "leg {}: {:?}, duration {}, extremum {}",
            i + 1,
            leg.region,
            leg.duration.map_or("open (asymptotic)".to_string(), |d| format!("{d:.5} s")),
            leg.extremum.map_or("-".to_string(), |e| format!("x = {:.1} @ t = {:.5}", e.x, e.t)),
        );
    }

    // Panels.
    let sys = BcnFluid::linearized(params.clone());
    let horizon = horizon_for(&params, &legs);
    let tr = trace(&sys, params.initial_point(), horizon, 2500);

    let mut csv = Csv::new(&["t", "x", "y"]);
    for i in 0..tr.ts.len() {
        csv.row(&[tr.ts[i], tr.xs[i], tr.ys[i]]);
    }
    csv.save(out.join(format!("{stem}.csv")))?;
    println!("wrote {}", out.join(format!("{stem}.csv")).display());

    let plot_a = phase_plot(
        &format!("{title} - phase trajectory"),
        &params,
        vec![Series::line("trajectory", &tr.xs, &tr.ys, COLOR_CYCLE[0])],
    );
    save_plot(&plot_a, out, &format!("{stem}_phase.svg"))?;

    let plot_b = SvgPlot::new(&format!("{title} - x(t)"), "t (s)", "x (bits)")
        .with_series(Series::line("x(t)", &tr.ts, &tr.xs, COLOR_CYCLE[0]))
        .with_hline(0.0, "#999999");
    save_plot(&plot_b, out, &format!("{stem}_queue.svg"))?;

    let plot_c = SvgPlot::new(&format!("{title} - y(t)"), "t (s)", "y (bit/s)")
        .with_series(Series::line("y(t)", &tr.ts, &tr.ys, COLOR_CYCLE[1]))
        .with_hline(0.0, "#999999");
    save_plot(&plot_c, out, &format!("{stem}_rate.svg"))?;
    Ok(())
}

fn horizon_for(params: &BcnParams, legs: &[bcn::rounds::Leg]) -> f64 {
    // Cover the closed legs plus a tail for the asymptotic approach.
    let closed: f64 = legs.iter().filter_map(|l| l.duration).sum();
    let slow_scale = 6.0 / (params.b() * params.capacity).sqrt().min(params.a().sqrt());
    (2.0 * closed).max(slow_scale)
}
