//! Cross-layer consistency: the same BCN system computed four ways —
//! closed forms, event-located ODE integration, the saturating fluid
//! simulator, and the packet-level discrete-event simulator — must agree
//! wherever their assumptions overlap.

use bcn::closed_form::RegionFlow;
use bcn::model::Region;
use bcn::rounds::{first_round, trace_legs};
use bcn::simulate::{fluid_trajectory, Engine, FluidOptions, SaturatingFluid};
use bcn::stability::exact_verdict;
use bcn::{BcnFluid, BcnParams};
use dcesim::sim::{fluid_validation_params, SimConfig, Simulation};
use odesolve::{integrate, Dopri5, Options};
use phaseplane::PlaneSystem;

/// Closed-form region flow vs direct ODE integration of that region's
/// vector field.
#[test]
fn closed_form_matches_ode_integration() {
    let params = BcnParams::test_defaults();
    let sys = BcnFluid::linearized(params.clone());
    for region in [Region::Increase, Region::Decrease] {
        let flow = RegionFlow::from_kn(params.k(), sys.region_n(region));
        let ode = |_t: f64, z: &[f64; 2]| sys.deriv_in(region, *z);
        let z0 = [-0.5 * params.q0, 0.02 * params.capacity];
        let t_end = 0.02;
        let sol = integrate(
            &ode,
            0.0,
            z0,
            t_end,
            &mut Dopri5::with_tolerances(1e-12, 1e-12),
            &Options::default(),
        )
        .unwrap();
        let numeric = sol.last_state();
        let exact = flow.at(t_end, z0);
        for i in 0..2 {
            assert!(
                (numeric[i] - exact[i]).abs() < 1e-6 * exact[i].abs().max(1.0),
                "{region:?} component {i}: {numeric:?} vs {exact:?}"
            );
        }
    }
}

/// Leg-based analysis vs hybrid event-located integration: switch times
/// and extrema agree.
#[test]
fn leg_analysis_matches_hybrid_integration() {
    let params = BcnParams::test_defaults();
    let sys = BcnFluid::linearized(params.clone());
    let legs = trace_legs(&params, params.initial_point(), 4);
    let t_total: f64 = legs.iter().filter_map(|l| l.duration).sum();

    // Engine pinned to DOPRI5: this is the numeric cross-check of the
    // closed-form leg analysis.
    let opts = FluidOptions {
        t_end: t_total * 1.01,
        tol: 1e-11,
        max_switches: 20,
        record_dt: None,
        engine: Engine::Dopri5,
    };
    let run = fluid_trajectory(&sys, params.initial_point(), &opts).unwrap();
    let switch_times = run.switch_times();
    assert!(switch_times.len() >= 3, "switches: {switch_times:?}");

    // Cumulative leg durations == hybrid switch times.
    let mut acc = 0.0;
    for (i, leg) in legs.iter().take(3).enumerate() {
        acc += leg.duration.unwrap();
        assert!(
            (switch_times[i] - acc).abs() < 1e-6 * acc,
            "switch {i}: hybrid {} vs legs {acc}",
            switch_times[i]
        );
    }
}

/// The saturating fluid simulator reproduces the unbounded analysis when
/// the buffer never binds.
#[test]
fn saturating_model_matches_exact_when_unsaturated() {
    let params = BcnParams::test_defaults().with_buffer(1.0e6);
    let exact = exact_verdict(&params, 12);
    let run = SaturatingFluid::linearized(params.clone()).run_canonical(2.5);
    let expect = params.q0 + exact.max_x;
    assert!(
        (run.max_queue - expect).abs() < 0.03 * expect,
        "saturating {} vs exact {expect}",
        run.max_queue
    );
}

/// The packet-level simulator tracks the fluid model's key numbers on a
/// calibrated configuration: max queue within ~10%, no drops, high
/// utilisation.
#[test]
fn packet_simulation_tracks_fluid_model() {
    let params = fluid_validation_params();
    let t_end = 0.4;
    let cfg =
        SimConfig::from_fluid(&params, 8_000.0, dcesim::time::Duration::from_secs(2e-6), t_end);
    let report = Simulation::new(cfg).run();
    let fluid = SaturatingFluid::new(params.clone()).run_canonical(t_end);

    assert_eq!(report.metrics.dropped_frames, 0);
    let ratio = report.metrics.queue.max() / fluid.max_queue;
    assert!((0.9..1.1).contains(&ratio), "max-queue ratio {ratio}");
    let util = report.metrics.utilization(params.capacity, t_end);
    assert!(util > 0.9, "utilisation {util}");
}

/// The `PlaneSystem` view (pointwise region choice) and the hybrid view
/// of the same `BcnFluid` agree along a trajectory that crosses the
/// switching line.
#[test]
fn plane_system_and_hybrid_agree() {
    let params = BcnParams::test_defaults();
    let sys = BcnFluid::linearized(params.clone());
    let opts = FluidOptions {
        t_end: 0.05,
        tol: 1e-10,
        max_switches: 10,
        record_dt: Some(5e-4),
        engine: Engine::Dopri5,
    };
    let hybrid = fluid_trajectory(&sys, params.initial_point(), &opts).unwrap();

    // Integrate the discontinuous RHS directly (no event location).
    let ode = |_t: f64, z: &[f64; 2]| PlaneSystem::deriv(&sys, *z);
    let direct = integrate(
        &ode,
        0.0,
        params.initial_point(),
        0.05,
        &mut Dopri5::with_tolerances(1e-10, 1e-10),
        &Options::default().with_record_dt(5e-4),
    )
    .unwrap();
    let h_end = hybrid.solution.last_state();
    let d_end = direct.last_state();
    for i in 0..2 {
        let scale = h_end[i].abs().max(params.q0);
        assert!(
            (h_end[i] - d_end[i]).abs() < 1e-3 * scale,
            "component {i}: hybrid {h_end:?} vs direct {d_end:?}"
        );
    }
}

/// First-round quantities agree between the closed-form chain and a
/// dense numerical trace (independent code paths).
#[test]
fn first_round_matches_dense_numeric_trace() {
    let params = BcnParams::test_defaults();
    let fr = first_round(&params).unwrap();
    let sys = BcnFluid::linearized(params.clone());
    let opts = FluidOptions {
        t_end: 1.2 * (fr.t_i1 + fr.t_d1 + 0.5 * fr.t_d1),
        tol: 1e-11,
        max_switches: 10,
        record_dt: Some(fr.t_d1 / 2000.0),
        engine: Engine::Dopri5,
    };
    let run = fluid_trajectory(&sys, params.initial_point(), &opts).unwrap();
    let max_num = run.solution.max_component(0);
    assert!(
        (max_num - fr.max1_x).abs() < 1e-3 * fr.max1_x,
        "numeric {max_num} vs closed form {}",
        fr.max1_x
    );
}

/// The semi-analytic engine agrees with DOPRI5 across the paper's case
/// taxonomy: same region-switch sequence, switch times and endpoints to
/// integrator tolerance, queue extrema to 1e-6 relative, and the same
/// exact strong-stability verdict.
#[test]
fn analytic_and_numeric_engines_agree_across_cases() {
    let base = BcnParams::test_defaults();
    let mut sets = vec![base.clone()];
    for case in [bcn::CaseId::Case1, bcn::CaseId::Case2, bcn::CaseId::Case3, bcn::CaseId::Case4] {
        sets.push(bcn::cases::exemplar(&base, case));
    }
    sets.push(base.clone().with_n_flows(25).with_gd(1.0 / 96.0));

    for params in &sets {
        let sys = BcnFluid::linearized(params.clone());
        // Horizon and record grid scaled to the system's own rates: a few
        // slow rotations, sampled finely against the fast region so the
        // parabola-refined numeric extrema resolve to well under 1e-6.
        let beta_fast = params.a().max(params.b() * params.capacity).sqrt();
        let beta_slow = params.a().min(params.b() * params.capacity).sqrt();
        let t_end = (8.0 * std::f64::consts::PI / beta_slow).min(0.4);
        let numeric = FluidOptions {
            t_end,
            tol: 1e-12,
            max_switches: 400,
            record_dt: Some(0.03 / beta_fast),
            engine: Engine::Dopri5,
        };
        let analytic = FluidOptions { engine: Engine::Analytic, ..numeric.clone() };
        let num = fluid_trajectory(&sys, params.initial_point(), &numeric).unwrap();
        let ana = fluid_trajectory(&sys, params.initial_point(), &analytic).unwrap();

        // Same region-switch sequence.
        assert_eq!(
            ana.intervals.iter().map(|i| i.mode).collect::<Vec<_>>(),
            num.intervals.iter().map(|i| i.mode).collect::<Vec<_>>(),
            "mode sequences differ for {params:?}"
        );
        for (a, n) in ana.intervals.iter().zip(num.intervals.iter()) {
            assert!(
                (a.t_end - n.t_end).abs() <= 1e-6 * t_end,
                "switch time {} vs {} for {params:?}",
                a.t_end,
                n.t_end
            );
        }
        // Queue extrema to 1e-6 relative: the analytic engine records the
        // exact extremum; the numeric trace is parabola-refined.
        for (a, n) in [
            (ana.solution.max_component(0), num.solution.refined_max_component(0)),
            (ana.solution.min_component(0), num.solution.refined_min_component(0)),
        ] {
            assert!(
                (a - n).abs() <= 1e-6 * a.abs().max(params.q0),
                "extremum {a} vs {n} for {params:?}"
            );
        }
        // Endpoints to tolerance (per-component natural scales).
        let (za, zn) = (ana.solution.last_state(), num.solution.last_state());
        assert!((za[0] - zn[0]).abs() <= 1e-6 * params.q0, "x end {za:?} vs {zn:?}");
        assert!((za[1] - zn[1]).abs() <= 1e-6 * params.capacity, "y end {za:?} vs {zn:?}");
    }
}

/// The exact verdict (which now runs on the analytic crossing solver)
/// stays consistent with an independent dense numeric integration of the
/// same trajectory.
#[test]
fn exact_verdict_consistent_with_numeric_extrema() {
    let params = BcnParams::test_defaults();
    let v = exact_verdict(&params, 40);
    let sys = BcnFluid::linearized(params.clone());
    let opts = FluidOptions {
        t_end: 1.5,
        tol: 1e-11,
        max_switches: 1000,
        record_dt: Some(2e-5),
        engine: Engine::Dopri5,
    };
    let run = fluid_trajectory(&sys, params.initial_point(), &opts).unwrap();
    let max_num = run.solution.max_component(0);
    // The verdict's minimum is taken over leg boundaries and interior
    // extrema — i.e. after the first leg departs the start point, where
    // x ≈ -q0 is still being left behind. Restrict the numeric trace the
    // same way: samples after the first region switch.
    let t1 = run.switch_times()[0];
    let min_num = run
        .solution
        .times()
        .iter()
        .zip(run.solution.states())
        .filter(|(&t, _)| t >= t1)
        .map(|(_, z)| z[0])
        .fold(f64::INFINITY, f64::min);
    assert!((max_num - v.max_x).abs() <= 1e-4 * v.max_x.abs(), "{max_num} vs {}", v.max_x);
    assert!((min_num - v.min_x).abs() <= 1e-3 * v.min_x.abs(), "{min_num} vs {}", v.min_x);
    assert!(v.strongly_stable);
}
