//! Dependency-free SVG line/scatter plots.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// X coordinates.
    pub xs: Vec<f64>,
    /// Y coordinates (same length as `xs`).
    pub ys: Vec<f64>,
    /// CSS color (e.g. `"#1f77b4"`).
    pub color: String,
    /// Draw markers at each point instead of (only) a polyline.
    pub markers: bool,
}

impl Series {
    /// Creates a line series.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` lengths differ.
    #[must_use]
    pub fn line(label: &str, xs: &[f64], ys: &[f64], color: &str) -> Self {
        assert_eq!(xs.len(), ys.len(), "series coordinates must pair up");
        Self {
            label: label.to_string(),
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            color: color.to_string(),
            markers: false,
        }
    }

    /// Creates a scatter (marker) series.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` lengths differ.
    #[must_use]
    pub fn scatter(label: &str, xs: &[f64], ys: &[f64], color: &str) -> Self {
        let mut s = Self::line(label, xs, ys, color);
        s.markers = true;
        s
    }
}

/// A translucent horizontal band over `[x0, x1]`, spanning the full
/// plot height — used to render causal spans (e.g. PAUSE episodes) as
/// background shading behind the data series.
#[derive(Debug, Clone, PartialEq)]
pub struct Band {
    /// Band start (data x coordinate).
    pub x0: f64,
    /// Band end (data x coordinate).
    pub x1: f64,
    /// CSS fill color (rendered at low opacity).
    pub color: String,
    /// Legend label; bands sharing a label are legended once.
    pub label: String,
}

/// A 2-D plot rendered to SVG.
///
/// # Example
///
/// ```
/// use plotkit::{Series, SvgPlot};
///
/// let xs = [0.0, 1.0, 2.0];
/// let ys = [0.0, 1.0, 0.5];
/// let svg = SvgPlot::new("demo", "t (s)", "q (bits)")
///     .with_series(Series::line("queue", &xs, &ys, "#1f77b4"))
///     .render();
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("polyline"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SvgPlot {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    vlines: Vec<(f64, String)>,
    hlines: Vec<(f64, String)>,
    bands: Vec<Band>,
    width: f64,
    height: f64,
}

const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 48.0;

/// A pleasant default color cycle (matplotlib "tab10" flavoured).
pub const COLOR_CYCLE: [&str; 8] =
    ["#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f"];

impl SvgPlot {
    /// Creates an empty plot with the given title and axis labels.
    #[must_use]
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
            vlines: Vec::new(),
            hlines: Vec::new(),
            bands: Vec::new(),
            width: 760.0,
            height: 480.0,
        }
    }

    /// Adds a series.
    #[must_use]
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Adds a dashed vertical reference line at `x`.
    #[must_use]
    pub fn with_vline(mut self, x: f64, color: &str) -> Self {
        self.vlines.push((x, color.to_string()));
        self
    }

    /// Adds a dashed horizontal reference line at `y`.
    #[must_use]
    pub fn with_hline(mut self, y: f64, color: &str) -> Self {
        self.hlines.push((y, color.to_string()));
        self
    }

    /// Adds a translucent vertical band over `[x0, x1]` (full plot
    /// height), drawn behind every series. Bands sharing a label get a
    /// single legend entry.
    #[must_use]
    pub fn with_band(mut self, x0: f64, x1: f64, color: &str, label: &str) -> Self {
        self.bands.push(Band {
            x0: x0.min(x1),
            x1: x0.max(x1),
            color: color.to_string(),
            label: label.to_string(),
        });
        self
    }

    fn ranges(&self) -> ((f64, f64), (f64, f64)) {
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.series {
            for (&x, &y) in s.xs.iter().zip(&s.ys) {
                if x.is_finite() && y.is_finite() {
                    x0 = x0.min(x);
                    x1 = x1.max(x);
                    y0 = y0.min(y);
                    y1 = y1.max(y);
                }
            }
        }
        for (y, _) in &self.hlines {
            y0 = y0.min(*y);
            y1 = y1.max(*y);
        }
        for (x, _) in &self.vlines {
            x0 = x0.min(*x);
            x1 = x1.max(*x);
        }
        for b in &self.bands {
            if b.x0.is_finite() && b.x1.is_finite() {
                x0 = x0.min(b.x0);
                x1 = x1.max(b.x1);
            }
        }
        if !x0.is_finite() {
            ((0.0, 1.0), (0.0, 1.0))
        } else {
            let pad = |a: f64, b: f64| {
                let span = (b - a).max(f64::MIN_POSITIVE);
                (a - 0.04 * span, b + 0.04 * span)
            };
            (pad(x0, x1), pad(y0, y1))
        }
    }

    /// Renders the SVG document.
    #[must_use]
    pub fn render(&self) -> String {
        let ((x0, x1), (y0, y1)) = self.ranges();
        let plot_w = self.width - MARGIN_L - MARGIN_R;
        let plot_h = self.height - MARGIN_T - MARGIN_B;
        let px = |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * plot_w;
        let py = |y: f64| MARGIN_T + (1.0 - (y - y0) / (y1 - y0)) * plot_h;

        let mut out = String::new();
        let _ = write!(
            out,
            r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="Helvetica,Arial,sans-serif">"##,
            w = self.width,
            h = self.height
        );
        let _ = write!(
            out,
            r##"<rect width="{}" height="{}" fill="white"/>"##,
            self.width, self.height
        );
        // Frame.
        let _ = write!(
            out,
            r##"<rect x="{:.1}" y="{:.1}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#444" stroke-width="1"/>"##,
            MARGIN_L, MARGIN_T
        );
        // Title and axis labels.
        let _ = write!(
            out,
            r##"<text x="{:.1}" y="22" font-size="15" text-anchor="middle" fill="#222">{}</text>"##,
            MARGIN_L + plot_w / 2.0,
            escape(&self.title)
        );
        let _ = write!(
            out,
            r##"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle" fill="#222">{}</text>"##,
            MARGIN_L + plot_w / 2.0,
            self.height - 10.0,
            escape(&self.x_label)
        );
        let _ = write!(
            out,
            r##"<text x="16" y="{:.1}" font-size="12" text-anchor="middle" fill="#222" transform="rotate(-90 16 {:.1})">{}</text>"##,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );
        // Span bands go first, so the data draws on top of them. The x
        // range is clamped to the frame: an eagerly-stamped span can end
        // past the last sample.
        for b in &self.bands {
            if !(b.x0.is_finite() && b.x1.is_finite()) {
                continue;
            }
            let bx0 = px(b.x0).max(MARGIN_L);
            let bx1 = px(b.x1).min(MARGIN_L + plot_w);
            if bx1 <= bx0 {
                continue;
            }
            let _ = write!(
                out,
                r##"<rect x="{bx0:.1}" y="{:.1}" width="{:.1}" height="{plot_h:.1}" fill="{}" fill-opacity="0.18"/>"##,
                MARGIN_T,
                bx1 - bx0,
                b.color
            );
        }
        // Ticks: 5 per axis.
        for i in 0..=4 {
            let fx = x0 + (x1 - x0) * f64::from(i) / 4.0;
            let fy = y0 + (y1 - y0) * f64::from(i) / 4.0;
            let _ = write!(
                out,
                r##"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="middle" fill="#444">{}</text>"##,
                px(fx),
                MARGIN_T + plot_h + 14.0,
                format_tick(fx)
            );
            let _ = write!(
                out,
                r##"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end" fill="#444">{}</text>"##,
                MARGIN_L - 6.0,
                py(fy) + 3.0,
                format_tick(fy)
            );
            let _ = write!(
                out,
                r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#ddd" stroke-width="0.5"/>"##,
                MARGIN_L,
                py(fy),
                MARGIN_L + plot_w,
                py(fy)
            );
        }
        // Reference lines.
        for (x, color) in &self.vlines {
            let _ = write!(
                out,
                r##"<line x1="{0:.1}" y1="{1:.1}" x2="{0:.1}" y2="{2:.1}" stroke="{color}" stroke-width="1" stroke-dasharray="5,4"/>"##,
                px(*x),
                MARGIN_T,
                MARGIN_T + plot_h
            );
        }
        for (y, color) in &self.hlines {
            let _ = write!(
                out,
                r##"<line x1="{1:.1}" y1="{0:.1}" x2="{2:.1}" y2="{0:.1}" stroke="{color}" stroke-width="1" stroke-dasharray="5,4"/>"##,
                py(*y),
                MARGIN_L,
                MARGIN_L + plot_w
            );
        }
        // Series.
        for s in &self.series {
            if !s.markers {
                let mut points = String::new();
                for (&x, &y) in s.xs.iter().zip(&s.ys) {
                    if x.is_finite() && y.is_finite() {
                        let _ = write!(points, "{:.2},{:.2} ", px(x), py(y));
                    }
                }
                let _ = write!(
                    out,
                    r##"<polyline points="{points}" fill="none" stroke="{}" stroke-width="1.5"/>"##,
                    s.color
                );
            } else {
                for (&x, &y) in s.xs.iter().zip(&s.ys) {
                    if x.is_finite() && y.is_finite() {
                        let _ = write!(
                            out,
                            r##"<circle cx="{:.2}" cy="{:.2}" r="2.5" fill="{}"/>"##,
                            px(x),
                            py(y),
                            s.color
                        );
                    }
                }
            }
        }
        // Legend: series first, then one entry per distinct band label.
        let mut band_legend: Vec<&Band> = Vec::new();
        for b in &self.bands {
            if !b.label.is_empty() && !band_legend.iter().any(|e| e.label == b.label) {
                band_legend.push(b);
            }
        }
        for (i, (color, label, is_band)) in self
            .series
            .iter()
            .map(|s| (&s.color, &s.label, false))
            .chain(band_legend.iter().map(|b| (&b.color, &b.label, true)))
            .enumerate()
        {
            let ly = MARGIN_T + 14.0 + 16.0 * i as f64;
            if is_band {
                let _ = write!(
                    out,
                    r##"<rect x="{:.1}" y="{:.1}" width="12" height="10" fill="{color}" fill-opacity="0.35"/>"##,
                    MARGIN_L + plot_w - 150.0,
                    ly - 8.0
                );
            } else {
                let _ = write!(
                    out,
                    r##"<rect x="{:.1}" y="{:.1}" width="12" height="3" fill="{color}"/>"##,
                    MARGIN_L + plot_w - 150.0,
                    ly - 4.0
                );
            }
            let _ = write!(
                out,
                r##"<text x="{:.1}" y="{:.1}" font-size="11" fill="#222">{}</text>"##,
                MARGIN_L + plot_w - 132.0,
                ly,
                escape(label)
            );
        }
        out.push_str("</svg>");
        out
    }

    /// Renders and writes the SVG to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }
}

fn format_tick(v: f64) -> String {
    let a = v.abs();
    if v == 0.0 {
        "0".to_string()
    } else if !(0.01..1e4).contains(&a) {
        format!("{v:.2e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_wellformed_svg() {
        let svg = SvgPlot::new("t", "x", "y")
            .with_series(Series::line("a", &[0.0, 1.0], &[0.0, 1.0], "#123456"))
            .with_series(Series::scatter("b", &[0.5], &[0.5], "#654321"))
            .with_vline(0.5, "#999999")
            .with_hline(0.25, "#888888")
            .render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("circle"));
        assert!(svg.contains("stroke-dasharray"));
        // Balanced tags (cheap well-formedness proxy).
        assert_eq!(svg.matches("<svg").count(), 1);
        assert_eq!(svg.matches("</svg>").count(), 1);
    }

    #[test]
    fn bands_render_behind_series_and_legend_once() {
        let svg = SvgPlot::new("t", "x", "y")
            .with_series(Series::line("a", &[0.0, 1.0], &[0.0, 1.0], "#123456"))
            .with_band(0.2, 0.4, "#d62728", "PAUSE")
            .with_band(0.6, 0.7, "#d62728", "PAUSE")
            .render();
        assert_eq!(svg.matches("fill-opacity=\"0.18\"").count(), 2, "two band rects");
        assert_eq!(svg.matches(">PAUSE</text>").count(), 1, "shared label legended once");
        let band_at = svg.find("fill-opacity=\"0.18\"").unwrap();
        let line_at = svg.find("polyline").unwrap();
        assert!(band_at < line_at, "bands must draw behind the data");
    }

    #[test]
    fn degenerate_and_offscreen_bands_are_skipped() {
        let svg = SvgPlot::new("t", "x", "y")
            .with_series(Series::line("a", &[0.0, 1.0], &[0.0, 1.0], "#123456"))
            .with_band(0.5, 0.5, "#d62728", "")
            .with_band(f64::NAN, 0.5, "#d62728", "")
            .render();
        assert_eq!(svg.matches("fill-opacity=\"0.18\"").count(), 0);
    }

    #[test]
    fn escapes_labels() {
        let svg = SvgPlot::new("a < b & c", "x", "y").render();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn empty_plot_renders() {
        let svg = SvgPlot::new("empty", "x", "y").render();
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(0.5), "0.50");
        assert_eq!(format_tick(12345.0), "1.23e4");
        assert_eq!(format_tick(250.0), "250");
    }

    #[test]
    fn saves_to_disk() {
        let dir = std::env::temp_dir().join("plotkit_svg_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("p.svg");
        SvgPlot::new("t", "x", "y").save(&path).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().starts_with("<svg"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
