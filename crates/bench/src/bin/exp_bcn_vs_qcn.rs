//! Regenerates the BCN-vs-QCN packet-level comparison.

fn main() {
    if let Err(e) = bench::experiments::bcn_vs_qcn::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
