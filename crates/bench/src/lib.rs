//! Experiment harness: one module per paper figure / table, each
//! regenerating its artifact (console rows + CSV + SVG under `results/`).
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`figures::fig03`] | Fig. 3 — taxonomy of phase trajectories vs strong stability |
//! | [`figures::fig04`] | Fig. 4 — logarithmic-spiral trajectories with extrema |
//! | [`figures::fig05`] | Fig. 5 — stable-node trajectories with eigenline asymptotes |
//! | [`figures::fig06`] | Fig. 6 — Case 1 round dynamics (trajectory, `q(t)`, `dq/dt`) |
//! | [`figures::fig07`] | Fig. 7 — the limit cycle |
//! | [`figures::fig08`] | Fig. 8 — Case 2 |
//! | [`figures::fig09`] | Fig. 9 — Case 3 |
//! | [`figures::fig10`] | Fig. 10 — Case 4 |
//! | [`figures::thm1`]  | Theorem 1 worked example + buffer-sizing sweeps |
//! | [`experiments::criterion_sweep`] | criterion tightness/soundness atlas over `(Gi, Gd)` |
//! | [`experiments::fluid_vs_packet`] | fluid model vs packet-level DES validation |
//! | [`experiments::warmup`] | start-up duration `T0` and the `q0` trade-off |
//! | [`experiments::w_pm_transients`] | `w`, `pm` shape transients but not stability |
//! | [`experiments::delay_ablation`] | propagation-delay assumption ablation |
//! | [`experiments::bcn_vs_qcn`] | BCN vs QCN at packet level |
//!
//! Each module exposes `run(out_dir) -> Result<(), Box<dyn Error>>`; the
//! matching binaries (`cargo run -p bench --bin fig06_case1`) call it with
//! the default `results/` directory, and `--bin run_all` regenerates
//! everything.

#![forbid(unsafe_code)]

pub mod common;
pub mod experiments;
pub mod figures;

/// Convenient alias used by every experiment entry point.
pub type ExpResult = Result<(), Box<dyn std::error::Error>>;
