//! Regenerates the propagation-delay ablation.

fn main() {
    if let Err(e) = bench::experiments::delay_ablation::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
