//! Regenerates every figure and experiment artifact in one run.

type Job = (&'static str, fn(&std::path::Path) -> bench::ExpResult);

fn main() {
    let out = bench::common::out_dir();
    let jobs: Vec<Job> = vec![
        ("fig03", bench::figures::fig03::run),
        ("fig04", bench::figures::fig04::run),
        ("fig05", bench::figures::fig05::run),
        ("fig06", bench::figures::fig06::run),
        ("fig07", bench::figures::fig07::run),
        ("fig08", bench::figures::fig08::run),
        ("fig09", bench::figures::fig09::run),
        ("fig10", bench::figures::fig10::run),
        ("thm1", bench::figures::thm1::run),
        ("criterion_sweep", bench::experiments::criterion_sweep::run),
        ("fluid_vs_packet", bench::experiments::fluid_vs_packet::run),
        ("warmup", bench::experiments::warmup::run),
        ("w_pm_transients", bench::experiments::w_pm_transients::run),
        ("delay_ablation", bench::experiments::delay_ablation::run),
        ("bcn_vs_qcn", bench::experiments::bcn_vs_qcn::run),
        ("pause_hol", bench::experiments::pause_hol::run),
        ("hetero_fairness", bench::experiments::hetero_fairness::run),
        ("transient_frontier", bench::experiments::transient_frontier::run),
        ("incast", bench::experiments::incast::run),
        ("fb_quantization", bench::experiments::fb_quantization::run),
        ("feedback_degradation", bench::experiments::feedback_degradation::run),
    ];
    let mut failures = 0;
    for (name, job) in jobs {
        if let Err(e) = job(&out) {
            telemetry::log_line!("{name} FAILED: {e}");
            failures += 1;
        }
    }
    if failures > 0 {
        telemetry::log_line!("{failures} generator(s) failed");
        std::process::exit(1);
    }
    println!("\nall artifacts regenerated under {}", out.display());
}
