//! Regenerates the fluid-vs-packet validation.

fn main() {
    if let Err(e) = bench::experiments::fluid_vs_packet::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
