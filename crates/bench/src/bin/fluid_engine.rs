//! Semi-analytic vs DOPRI5 fluid-engine benchmark on the atlas work-list.
//!
//! Runs [`fluid_trajectory`] over every cell of the criterion atlas twice
//! — once per [`Engine`] — and reports per-cell wall time at 1/2/4/8
//! worker threads, the serial analytic-vs-numeric speedup, and an untimed
//! agreement pass: queue extrema to 1e-6 relative and an identical
//! trajectory-derived strong-stability verdict on every cell. Results
//! land in `BENCH_fluid.json` under the usual results directory.
//!
//! The run *fails* (nonzero exit) on an agreement or verdict regression
//! at any grid, and additionally on a serial per-cell speedup below 5x
//! at the full 13x13 grid. Run release builds only:
//!
//! ```console
//! $ cargo run --release -p bench --bin fluid_engine
//! ```
//!
//! `DCE_BCN_QUICK` shrinks the grid to 5x5 and skips the speedup gate
//! (CI smoke mode — the agreement checks still run in full).

use std::hint::black_box;
use std::time::Instant;

use bcn::simulate::{fluid_trajectory, Engine, FluidOptions};
use bcn::stability::exact_verdict;
use bcn::{BcnFluid, BcnParams};
use bench::common::out_dir;
use bench::experiments::criterion_sweep::{atlas_params, fluid_horizon};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Queue-extrema agreement bound (relative).
const MAX_REL_DELTA: f64 = 1e-6;
/// Serial per-cell speedup gate at the full grid.
const MIN_SPEEDUP: f64 = 5.0;

fn quick() -> bool {
    std::env::var_os("DCE_BCN_QUICK").is_some()
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

/// Timed-run options: accepted-step recording for both engines so the
/// comparison measures propagation, not sample interpolation.
fn timing_opts(p: &BcnParams, engine: Engine) -> FluidOptions {
    FluidOptions {
        t_end: fluid_horizon(p),
        tol: 1e-9,
        max_switches: 10_000,
        record_dt: None,
        engine,
    }
}

/// Best-of-`reps` wall time of one full-grid pass at a pinned width.
fn time_engine(params: &[BcnParams], engine: Engine, threads: usize, reps: usize) -> f64 {
    parkit::set_threads(threads);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let ends = parkit::par_map(params, |p| {
            let sys = BcnFluid::linearized(p.clone());
            let run = fluid_trajectory(&sys, p.initial_point(), &timing_opts(p, engine))
                .expect("engine timing run failed");
            run.solution.last_state()[0]
        });
        black_box(ends);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    parkit::set_threads(0);
    best
}

/// Per-cell agreement report from the untimed cross-check pass.
struct CellAgreement {
    rel_delta_max: f64,
    rel_delta_min: f64,
    verdicts_match: bool,
}

/// Trajectory-derived strong-stability verdict: `0 < q < B` away from the
/// start, with the minimum taken after the first region switch (the first
/// leg is still leaving the boundary start `x = -q0`).
fn run_verdict(p: &BcnParams, max_x: f64, min_x: f64) -> bool {
    max_x < p.buffer - p.q0 && min_x > -p.q0
}

/// Runs both engines on one cell with a fine record grid and compares
/// queue extrema (analytic exact vs numeric parabola-refined) and the
/// derived stability verdicts.
fn check_cell(p: &BcnParams) -> CellAgreement {
    let sys = BcnFluid::linearized(p.clone());
    let beta_fast = p.a().max(p.b() * p.capacity).sqrt();
    let numeric_opts = FluidOptions {
        t_end: fluid_horizon(p),
        tol: 1e-12,
        max_switches: 10_000,
        record_dt: Some(0.03 / beta_fast),
        engine: Engine::Dopri5,
    };
    let analytic_opts = FluidOptions { engine: Engine::Analytic, ..numeric_opts.clone() };
    let num = fluid_trajectory(&sys, p.initial_point(), &numeric_opts)
        .expect("numeric agreement run failed");
    let ana = fluid_trajectory(&sys, p.initial_point(), &analytic_opts)
        .expect("analytic agreement run failed");

    let extremum_after = |run: &odesolve::hybrid::HybridSolution<2>, t_from: f64, sign: f64| {
        run.solution
            .times()
            .iter()
            .zip(run.solution.states())
            .filter(|(&t, _)| t >= t_from)
            .map(|(_, z)| sign * z[0])
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let max_a = ana.solution.max_component(0);
    let max_n = num.solution.refined_max_component(0);
    let min_n_refined = num.solution.refined_min_component(0);
    let scale_max = max_a.abs().max(p.q0);
    // Minima for the verdict comparison: past the first switch, where the
    // boundary start x = -q0 has been left behind (matching ExactVerdict).
    let t1_a = ana.switch_times().first().copied().unwrap_or(f64::INFINITY);
    let t1_n = num.switch_times().first().copied().unwrap_or(f64::INFINITY);
    let min_a = -extremum_after(&ana, t1_a, -1.0);
    let min_n = -extremum_after(&num, t1_n, -1.0);
    let scale_min = min_a.abs().max(p.q0);

    CellAgreement {
        rel_delta_max: (max_a - max_n).abs() / scale_max,
        rel_delta_min: (ana.solution.min_component(0) - min_n_refined).abs() / scale_min,
        verdicts_match: run_verdict(p, max_a, min_a) == run_verdict(p, max_n, min_n),
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let grid = env_usize("DCE_BCN_FLUID_GRID", if quick() { 5 } else { 13 });
    let reps = env_usize("DCE_BCN_FLUID_REPS", if quick() { 1 } else { 3 });
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let base = BcnParams::test_defaults().with_buffer(1.5e5);
    let params = atlas_params(&base, grid);
    let cells = params.len() as f64;

    println!("fluid engine benchmark: {grid}x{grid} atlas, best of {reps}, {cores} core(s)");

    // Warm up allocator, code pages, and the propagator memo cache.
    let _ = time_engine(&params[..params.len().min(8)], Engine::Analytic, 1, 1);
    let cache0 = bcn::propagate::cache_stats();

    let mut rows: Vec<(Engine, &str, Vec<f64>)> =
        vec![(Engine::Analytic, "analytic", Vec::new()), (Engine::Dopri5, "dopri5", Vec::new())];
    for (engine, name, times) in &mut rows {
        for &threads in &THREAD_COUNTS {
            let secs = time_engine(&params, *engine, threads, reps);
            println!(
                "  {name:>8} threads = {threads}: {secs:.3} s ({:.0} ns/cell)",
                secs * 1e9 / cells
            );
            times.push(secs);
        }
    }
    let analytic_serial = rows[0].2[0];
    let numeric_serial = rows[1].2[0];
    let speedup = numeric_serial / analytic_serial;
    println!(
        "serial per-cell: analytic {:.0} ns vs dopri5 {:.0} ns — {speedup:.1}x",
        analytic_serial * 1e9 / cells,
        numeric_serial * 1e9 / cells
    );
    let cache_delta = bcn::propagate::cache_stats().delta_since(cache0);

    // Untimed agreement pass (fine record grid, tight numeric tolerance).
    parkit::set_threads(0);
    let agreements = parkit::par_map(&params, check_cell);
    let worst_max = agreements.iter().map(|a| a.rel_delta_max).fold(0.0, f64::max);
    let worst_min = agreements.iter().map(|a| a.rel_delta_min).fold(0.0, f64::max);
    let verdict_mismatches = agreements.iter().filter(|a| !a.verdicts_match).count();
    let exact_stable = params.iter().filter(|p| exact_verdict(p, 40).strongly_stable).count();
    println!(
        "agreement: max-extremum delta {worst_max:.3e}, min-extremum delta {worst_min:.3e}, \
         verdict mismatches {verdict_mismatches}/{} ({exact_stable} cells exactly stable)",
        params.len()
    );

    let engines_json: Vec<String> = rows
        .iter()
        .map(|(_, name, times)| {
            let runs: Vec<String> = THREAD_COUNTS
                .iter()
                .zip(times)
                .map(|(th, t)| {
                    format!(
                        "{{\"threads\": {th}, \"secs\": {t:.6}, \"per_cell_ns\": {:.1}, \
                         \"speedup\": {:.4}}}",
                        t * 1e9 / cells,
                        times[0] / t
                    )
                })
                .collect();
            format!("\"{name}\": [{}]", runs.join(", "))
        })
        .collect();
    let note = "Engine speedup is measured serially (threads = 1); on single-core hardware \
                (see \\\"cores\\\") the per-engine thread rows are flat by hardware, not by \
                engine. Agreement deltas compare the analytic engine's exact extrema against \
                parabola-refined DOPRI5 samples at tol 1e-12.";
    let json = format!(
        "{{\n  \"grid\": {grid},\n  \"reps\": {reps},\n  \"cores\": {cores},\n  \
         \"engines\": {{{}}},\n  \"serial_per_cell_speedup\": {speedup:.2},\n  \
         \"agreement\": {{\"max_extremum_rel_delta\": {worst_max:.3e}, \
         \"min_extremum_rel_delta\": {worst_min:.3e}, \
         \"verdict_mismatches\": {verdict_mismatches}, \"cells\": {}, \
         \"exactly_stable_cells\": {exact_stable}}},\n  \
         \"propagator_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}},\n  \
         \"note\": \"{note}\"\n}}\n",
        engines_json.join(", "),
        params.len(),
        cache_delta.hits,
        cache_delta.misses,
        cache_delta.evictions,
    );
    let out = out_dir();
    let path = out.join("BENCH_fluid.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("FAIL: could not write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());

    let mut failed = false;
    if worst_max > MAX_REL_DELTA || worst_min > MAX_REL_DELTA {
        eprintln!("FAIL: extremum agreement exceeded {MAX_REL_DELTA:.0e}");
        failed = true;
    }
    if verdict_mismatches > 0 {
        eprintln!("FAIL: {verdict_mismatches} cell(s) flipped stability verdict across engines");
        failed = true;
    }
    if !quick() && grid >= 13 && speedup < MIN_SPEEDUP {
        eprintln!("FAIL: serial per-cell speedup {speedup:.2}x below the {MIN_SPEEDUP}x gate");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
