//! The event-driven simulation engine: N sources, one bottleneck queue,
//! one sink (the paper's Fig. 1 topology).
//!
//! Sources emit fixed-size data frames paced by their reaction point's
//! current rate. Frames reach the bottleneck after a propagation delay,
//! enter a finite FIFO buffer (or are dropped), and are serialized onto
//! the output link at capacity `C`. The congestion point watches the
//! queue and sends feedback messages back to the sampled frame's source
//! (another propagation delay). Above `q_sc` the switch PAUSEs all
//! sources for a hold time (IEEE 802.3x).
//!
//! The engine is deterministic: integer-nanosecond timestamps, a stable
//! tie-break sequence number, and deterministic sampling make every run
//! reproducible bit for bit.

use std::collections::VecDeque;

use bcn::BcnParams;
use telemetry::{FaultClass, SeriesKind, SpanKind, Telemetry};

use crate::cp::{CongestionPoint, CpConfig};
use crate::error::ConfigError;
use crate::faults::{FaultConfig, FaultPlan, FeedbackFate};
use crate::frame::{BcnMessage, CpId, DataFrame, SourceId};
use crate::metrics::SimMetrics;
use crate::qcn::{QcnCp, QcnCpConfig, QcnFeedback, QcnRp, QcnRpConfig};
use crate::rp::{ReactionPoint, RpConfig};
use crate::sched::{EventQueue, Scheduler};
use crate::time::{Duration, Time};
use crate::workload::FlowSpec;

/// Which congestion-management scheme runs on the bottleneck.
#[derive(Debug, Clone, PartialEq)]
pub enum Control {
    /// BCN per the reproduced paper.
    Bcn {
        /// Congestion-point configuration.
        cp: CpConfig,
        /// Reaction-point configuration.
        rp: RpConfig,
    },
    /// QCN (802.1Qau) for comparison.
    Qcn {
        /// Congestion-point configuration.
        cp: QcnCpConfig,
        /// Reaction-point configuration.
        rp: QcnRpConfig,
    },
    /// No congestion management (drop-tail only) — the historical lossy
    /// Ethernet baseline.
    None,
}

/// Full configuration of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Bottleneck capacity in bit/s.
    pub capacity: f64,
    /// Bottleneck buffer in bits.
    pub buffer_bits: f64,
    /// Data frame size in bits (headers included).
    pub frame_bits: f64,
    /// One-way propagation delay between sources and the bottleneck.
    pub prop_delay: Duration,
    /// The flows.
    pub flows: Vec<FlowSpec>,
    /// Congestion management scheme.
    pub control: Control,
    /// Simulated duration.
    pub t_end: Time,
    /// Queue/rate sampling interval for the metrics time series.
    pub record_interval: Duration,
    /// How long a PAUSE silences the sources.
    pub pause_hold: Duration,
    /// Fault injection at the wire layer ([`FaultConfig::none`] for the
    /// ideal fabric the paper assumes).
    pub faults: FaultConfig,
    /// Which event-queue backend drives the run (bit-identical results;
    /// see [`Scheduler`]).
    pub scheduler: Scheduler,
}

impl SimConfig {
    /// Builds a BCN simulation calibrated so the discrete control loop
    /// integrates to the fluid model of `params` (see the `bcn` crate):
    /// the congestion point's weight becomes `w / frame_bits` (the fluid
    /// `w` is defined against unit-size packets) and the reaction-point
    /// gains are scaled by `frame_bits * N / (pm * C)` so that one
    /// feedback message per `1/pm` frames integrates to
    /// `dr/dt = Gi Ru sigma` at the fair share.
    #[must_use]
    pub fn from_fluid(
        params: &BcnParams,
        frame_bits: f64,
        prop_delay: Duration,
        t_end: f64,
    ) -> Self {
        let n = f64::from(params.n_flows);
        let gain_scale = frame_bits * n / (params.pm * params.capacity);
        let cp = CpConfig {
            cpid: CpId(1),
            q0_bits: params.q0,
            qsc_bits: params.qsc,
            w: params.w / frame_bits,
            sample_every: (1.0 / params.pm).round().max(1.0) as u64,
            fb_quant: None,
            // The fluid model's Eq. 7 applies the increase law to every
            // source whenever sigma > 0; mirror that here.
            gate_positive: false,
        };
        let rp = RpConfig {
            gi: params.gi,
            gd: params.gd,
            ru: params.ru,
            gain_scale,
            r_min: params.capacity * 1e-6,
            r_max: params.capacity,
        };
        let flows = crate::workload::homogeneous(params.n_flows as usize, params.fair_share());
        SimConfig {
            capacity: params.capacity,
            buffer_bits: params.buffer,
            frame_bits,
            prop_delay,
            flows,
            control: Control::Bcn { cp, rp },
            t_end: Time::from_secs(t_end),
            record_interval: Duration::from_secs((t_end / 4000.0).max(1e-6)),
            pause_hold: Duration::from_secs(20.0 * frame_bits / params.capacity),
            faults: FaultConfig::none(),
            scheduler: Scheduler::default(),
        }
    }

    /// Validates every field and sub-configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first invalid field: an
    /// empty flow set, non-finite or non-positive capacity/frame size,
    /// a buffer too small for one frame, non-finite flow rates, a zero
    /// record interval, or invalid scheme/fault parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.flows.is_empty() {
            return Err(ConfigError::new("flows", "need at least one flow"));
        }
        if !(self.capacity.is_finite() && self.capacity > 0.0) {
            return Err(ConfigError::new("capacity", "capacity must be positive"));
        }
        if !(self.frame_bits.is_finite() && self.frame_bits > 0.0) {
            return Err(ConfigError::new("frame_bits", "frame size must be positive"));
        }
        if !(self.buffer_bits.is_finite() && self.buffer_bits >= self.frame_bits) {
            return Err(ConfigError::new("buffer_bits", "buffer must hold at least one frame"));
        }
        for (i, f) in self.flows.iter().enumerate() {
            if !(f.initial_rate.is_finite() && f.initial_rate >= 0.0) {
                return Err(ConfigError::new(
                    "flows.initial_rate",
                    format!(
                        "flow {i} rate must be finite and non-negative, got {}",
                        f.initial_rate
                    ),
                ));
            }
            if let Some(v) = f.volume_bits {
                if !(v.is_finite() && v >= 0.0) {
                    return Err(ConfigError::new(
                        "flows.volume_bits",
                        format!("flow {i} volume must be finite and non-negative, got {v}"),
                    ));
                }
            }
        }
        if self.record_interval == Duration::ZERO {
            return Err(ConfigError::new("record_interval", "record interval must be positive"));
        }
        if let Control::Bcn { cp, rp } = &self.control {
            cp.validate()?;
            rp.validate()?;
        }
        self.faults.validate()
    }

    /// A modest, fast-running BCN configuration used by doc-tests and
    /// smoke tests: 10 flows into a 100 Mbit/s bottleneck with gentle
    /// gains (the fluid model's spiral stays well inside physical
    /// limits).
    #[must_use]
    pub fn fluid_validation_default() -> Self {
        let params = fluid_validation_params();
        SimConfig::from_fluid(&params, 8_000.0, Duration::from_secs(2e-6), 0.5)
    }
}

/// The parameter set matching [`SimConfig::fluid_validation_default`],
/// exposed so experiments can run the fluid model side by side.
///
/// Chosen so the *discrete* loop is a faithful sampling of the fluid
/// one: the feedback message rate (`pm C / frame_bits = 25 k/s`) is ~100x
/// the loop's natural frequency (`beta ~ 245 rad/s`), per-message rate
/// updates stay below 2%, and the spiral's damping ratio (~0.19) makes
/// convergence visible within half a second. The `w` value is the fluid
/// model's bit-domain weight; the engine converts it to the per-frame
/// protocol weight automatically.
#[must_use]
pub fn fluid_validation_params() -> BcnParams {
    BcnParams::test_defaults()
        .with_capacity(1.0e9)
        .with_q0(1.0e6)
        .with_buffer(8.0e6)
        .with_qsc(0.9 * 8.0e6)
        .with_n_flows(5)
        .with_ru(1.0e4)
        .with_gi(1.2)
        .with_gd(1.0 / 16_384.0)
        .with_pm(0.2)
        .with_w(3.0e5)
}

#[derive(Debug, Clone, PartialEq)]
enum Ev {
    FlowStart(usize),
    FlowStop(usize),
    SourceSend(usize),
    Arrival(DataFrame),
    Departure,
    BcnDeliver(BcnMessage),
    QcnDeliver(QcnFeedback),
    PauseDeliver { until: Time },
    Record,
}

enum SchemeState {
    Bcn { cp: CongestionPoint, rps: Vec<ReactionPoint> },
    Qcn { cp: QcnCp, rps: Vec<QcnRp> },
    None,
}

/// Outcome of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Aggregated metrics.
    pub metrics: SimMetrics,
    /// Final per-source regulator rates (bit/s).
    pub final_rates: Vec<f64>,
    /// The telemetry sink passed to [`Simulation::with_telemetry`], with
    /// its metrics and trace populated; `None` for untelemetered runs.
    pub telemetry: Option<Telemetry>,
}

/// The reusable allocation footprint of a [`Simulation`]: the event
/// queue's slab/heap buffer, the bottleneck FIFO, and the fault scratch
/// list. Build one per worker and thread it through
/// [`Simulation::new_in`] / [`Simulation::run_into`] to run many seeds
/// without re-allocating per run (`dcesim::batch` does this).
#[derive(Debug, Default)]
pub struct SimWorkspace {
    events: EventQueue<Ev>,
    queue: VecDeque<(DataFrame, Time)>,
    fault_scratch: Vec<FaultClass>,
}

impl SimWorkspace {
    /// An empty workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// A configured, runnable simulation.
pub struct Simulation {
    cfg: SimConfig,
    events: EventQueue<Ev>,
    now: Time,
    active: Vec<bool>,
    paused_until: Vec<Time>,
    sending_scheduled: Vec<bool>,
    sent_bits: Vec<f64>,
    queue: VecDeque<(DataFrame, Time)>,
    q_bits: f64,
    busy: bool,
    scheme: SchemeState,
    metrics: SimMetrics,
    last_pause: Option<Time>,
    telemetry: Option<Telemetry>,
    /// Open flow-lifetime span ids, 0 when the flow has none.
    flow_spans: Vec<u64>,
    faults: FaultPlan,
    fault_scratch: Vec<FaultClass>,
    /// PAUSE frames scheduled but not yet delivered — the hybrid
    /// engine's guard must see in-flight PAUSEs, not just asserted ones.
    pending_pauses: u32,
    /// Set by the `Record` dispatch arm, consumed by
    /// [`Simulation::take_record_mark`]: the hybrid engine's epoch
    /// controller runs exactly at record-grid ticks.
    record_just_fired: bool,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("q_bits", &self.q_bits)
            .field("events_pending", &self.events.len())
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Builds the engine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (no flows, non-positive capacity
    /// or frame size, or invalid scheme parameters).
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        Self::new_in(cfg, &mut SimWorkspace::new())
    }

    /// Builds the engine reusing the buffers of `ws` (which is left
    /// empty). Pair with [`Simulation::run_into`] so batched runs keep
    /// one allocation footprint across seeds.
    ///
    /// # Panics
    ///
    /// Same as [`Simulation::new`].
    #[must_use]
    pub fn new_in(cfg: SimConfig, ws: &mut SimWorkspace) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        let n = cfg.flows.len();
        let scheme = match &cfg.control {
            Control::Bcn { cp, rp } => SchemeState::Bcn {
                cp: CongestionPoint::new(*cp),
                rps: cfg.flows.iter().map(|f| ReactionPoint::new(*rp, f.initial_rate)).collect(),
            },
            Control::Qcn { cp, rp } => SchemeState::Qcn {
                cp: QcnCp::new(*cp),
                rps: cfg.flows.iter().map(|f| QcnRp::new(*rp, f.initial_rate)).collect(),
            },
            Control::None => SchemeState::None,
        };
        let mut events = std::mem::take(&mut ws.events);
        events.reset(cfg.scheduler);
        let mut queue = std::mem::take(&mut ws.queue);
        queue.clear();
        let mut fault_scratch = std::mem::take(&mut ws.fault_scratch);
        fault_scratch.clear();
        // Size every buffer that grows with the run up front, so the
        // steady state allocates nothing (the packet_engine bench gates
        // on this): the FIFO can hold at most a buffer of frames, the
        // series one sample per record tick, and the delay samples one
        // per deliverable frame (capped — pathological horizons fall
        // back to amortized growth rather than huge up-front reserves).
        queue.reserve((cfg.buffer_bits / cfg.frame_bits).ceil() as usize + 2);
        let records = (cfg.t_end.as_secs() / cfg.record_interval.as_secs()).ceil() as usize + 2;
        let deliverable = (cfg.t_end.as_secs() * cfg.capacity / cfg.frame_bits).ceil().min(1e6);
        let mut sim = Self {
            events,
            now: Time::ZERO,
            active: vec![false; n],
            paused_until: vec![Time::ZERO; n],
            sending_scheduled: vec![false; n],
            sent_bits: vec![0.0; n],
            queue,
            q_bits: 0.0,
            busy: false,
            scheme,
            metrics: SimMetrics::default(),
            last_pause: None,
            telemetry: None,
            flow_spans: vec![0; n],
            faults: FaultPlan::new(cfg.faults.clone()),
            fault_scratch,
            pending_pauses: 0,
            record_just_fired: false,
            cfg,
        };
        sim.metrics.queue.reserve(records);
        sim.metrics.aggregate_rate.reserve(records);
        sim.metrics.queueing_delay.reserve(deliverable as usize + 16);
        sim.metrics.per_source_bits = vec![0.0; n];
        sim.metrics.per_source_rate = vec![crate::metrics::TimeSeries::new(); n];
        for series in &mut sim.metrics.per_source_rate {
            series.reserve(records);
        }
        for i in 0..n {
            let start = sim.cfg.flows[i].start;
            sim.schedule(start, Ev::FlowStart(i));
            if let Some(stop) = sim.cfg.flows[i].stop {
                sim.schedule(stop, Ev::FlowStop(i));
            }
        }
        sim.schedule(Time::ZERO, Ev::Record);
        sim
    }

    /// Builds the engine with a telemetry sink. The sink collects queue
    /// occupancy samples, threshold crossings, feedback-message and PAUSE
    /// events, and frame drops; it is returned in
    /// [`SimReport::telemetry`] when the run completes.
    ///
    /// # Panics
    ///
    /// Same as [`Simulation::new`].
    #[must_use]
    pub fn with_telemetry(cfg: SimConfig, tel: Telemetry) -> Self {
        Self::new(cfg).with_telemetry_sink(tel)
    }

    /// Attaches a telemetry sink to an already-built engine — the
    /// workspace-reuse counterpart of [`Simulation::with_telemetry`]
    /// (pair with [`Simulation::new_in`]).
    #[must_use]
    pub fn with_telemetry_sink(mut self, tel: Telemetry) -> Self {
        self.telemetry = Some(tel);
        self
    }

    /// Detaches the telemetry sink mid-run, leaving `None` behind.
    ///
    /// This is the crash-flight-recorder escape hatch: when a stepped
    /// run panics inside `catch_unwind`, the owner can still salvage
    /// everything recorded so far (trace ring, open spans, metrics)
    /// from the wreckage.
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.telemetry.take()
    }

    fn schedule(&mut self, time: Time, ev: Ev) {
        self.events.schedule(time, ev);
    }

    fn source_rate(&self, i: usize) -> f64 {
        match &self.scheme {
            SchemeState::Bcn { rps, .. } => rps[i].rate(),
            SchemeState::Qcn { rps, .. } => rps[i].rate(),
            SchemeState::None => self.cfg.flows[i].initial_rate,
        }
    }

    fn aggregate_rate(&self) -> f64 {
        (0..self.cfg.flows.len()).filter(|&i| self.active[i]).map(|i| self.source_rate(i)).sum()
    }

    /// Runs to completion and returns the report.
    #[must_use]
    pub fn run(mut self) -> SimReport {
        while self.step() {}
        self.finish()
    }

    /// Runs to completion, then returns the engine's buffers to `ws`
    /// for the next run (the workspace-reuse half of
    /// [`Simulation::new_in`]).
    #[must_use]
    pub fn run_into(mut self, ws: &mut SimWorkspace) -> SimReport {
        while self.step() {}
        self.finish_into(ws)
    }

    /// Finalizes a stepped run (see [`Simulation::step`]) into a report
    /// and returns the engine's buffers to `ws` — the stepped
    /// counterpart of [`Simulation::run_into`], used by the batch
    /// runner so it can keep ownership of the engine while the step
    /// loop runs inside `catch_unwind`.
    #[must_use]
    pub fn finish_into(mut self, ws: &mut SimWorkspace) -> SimReport {
        let report = self.finalize();
        self.queue.clear();
        ws.events = std::mem::take(&mut self.events);
        ws.queue = std::mem::take(&mut self.queue);
        ws.fault_scratch = std::mem::take(&mut self.fault_scratch);
        report
    }

    /// Dispatches the next event; returns `false` once the horizon is
    /// reached or no events remain. Exposed so the packet_engine bench
    /// can meter the steady state (e.g. count allocations after warm-up)
    /// without giving up [`Simulation::finish`]'s report.
    pub fn step(&mut self) -> bool {
        let Some((time, ev)) = self.events.pop() else { return false };
        if time > self.cfg.t_end {
            return false;
        }
        self.now = time;
        self.dispatch(ev);
        true
    }

    /// Finalizes a stepped run (see [`Simulation::step`]) into a report.
    #[must_use]
    pub fn finish(mut self) -> SimReport {
        self.finalize()
    }

    fn finalize(&mut self) -> SimReport {
        let final_rates = (0..self.cfg.flows.len()).map(|i| self.source_rate(i)).collect();
        self.metrics.faults = self.faults.take_counts();
        if let Some(tel) = self.telemetry.as_mut() {
            let st = self.events.stats();
            tel.scheduler_stats(
                st.scheduled,
                st.popped,
                st.cascades,
                st.overflow_parked,
                st.max_pending,
            );
        }
        SimReport {
            metrics: std::mem::take(&mut self.metrics),
            final_rates,
            telemetry: self.telemetry.take(),
        }
    }

    /// Closes flow `i`'s lifetime span, if one is open. Flows still
    /// active at the horizon keep their span open — the open-span stack
    /// is exactly "what was running", which is what the crash flight
    /// recorder wants to capture.
    fn end_flow_span(&mut self, i: usize) {
        let id = std::mem::take(&mut self.flow_spans[i]);
        if let Some(tel) = self.telemetry.as_mut() {
            tel.span_end(self.now.as_secs(), id);
        }
    }

    /// Emits a fault-injection telemetry event (counter + trace).
    fn note_fault(&mut self, class: FaultClass, target: u32) {
        if let Some(tel) = self.telemetry.as_mut() {
            tel.fault_injected(self.now.as_secs(), class, target);
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::FlowStart(i) => {
                self.active[i] = true;
                if let Some(tel) = self.telemetry.as_mut() {
                    let parent = tel.root_span();
                    self.flow_spans[i] = tel.span_begin(
                        self.now.as_secs(),
                        SpanKind::FlowLifetime,
                        i as u32,
                        parent,
                    );
                }
                if !self.sending_scheduled[i] {
                    self.sending_scheduled[i] = true;
                    // Deterministic per-source offset breaks simultaneity.
                    self.schedule(self.now + Duration::from_nanos(i as u64 + 1), Ev::SourceSend(i));
                }
            }
            Ev::FlowStop(i) => {
                self.active[i] = false;
                self.end_flow_span(i);
            }
            Ev::SourceSend(i) => self.on_source_send(i),
            Ev::Arrival(frame) => self.on_arrival(frame),
            Ev::Departure => self.on_departure(),
            Ev::BcnDeliver(msg) => {
                if let SchemeState::Bcn { rps, .. } = &mut self.scheme {
                    // A corrupted DA can point outside the source set;
                    // such misaddressed feedback dies on delivery.
                    if let Some(rp) = rps.get_mut(msg.dst.0 as usize) {
                        rp.on_bcn(&msg);
                        self.metrics.feedback_messages += 1;
                    }
                }
            }
            Ev::QcnDeliver(fb) => {
                if let SchemeState::Qcn { rps, .. } = &mut self.scheme {
                    rps[fb.dst.0 as usize].on_feedback(&fb);
                    self.metrics.feedback_messages += 1;
                }
            }
            Ev::PauseDeliver { until } => {
                self.pending_pauses -= 1;
                for p in &mut self.paused_until {
                    *p = (*p).max(until);
                }
            }
            Ev::Record => {
                self.record_just_fired = true;
                if let Some(tel) = self.telemetry.as_mut() {
                    tel.queue_sample(self.now.as_secs(), self.q_bits);
                }
                self.metrics.queue.push(self.now, self.q_bits);
                self.metrics.aggregate_rate.push(self.now, self.aggregate_rate());
                for i in 0..self.cfg.flows.len() {
                    let r = if self.active[i] { self.source_rate(i) } else { 0.0 };
                    self.metrics.per_source_rate[i].push(self.now, r);
                    let now = self.now.as_secs();
                    if let Some(tel) = self.telemetry.as_mut() {
                        tel.series_sample(SeriesKind::FlowRate, i as u32, now, r);
                    }
                }
                if self.now + self.cfg.record_interval <= self.cfg.t_end {
                    self.schedule(self.now + self.cfg.record_interval, Ev::Record);
                }
            }
        }
    }

    fn on_source_send(&mut self, i: usize) {
        if !self.active[i] {
            self.sending_scheduled[i] = false;
            return;
        }
        // Volume-limited (incast) flows end once their block is sent.
        if let Some(volume) = self.cfg.flows[i].volume_bits {
            if self.sent_bits[i] + self.cfg.frame_bits > volume {
                self.active[i] = false;
                self.sending_scheduled[i] = false;
                self.end_flow_span(i);
                return;
            }
        }
        if self.paused_until[i] > self.now {
            let resume = self.paused_until[i];
            self.schedule(resume, Ev::SourceSend(i));
            return;
        }
        let rrt = match &self.scheme {
            SchemeState::Bcn { rps, .. } => rps[i].associated_cp(),
            _ => None,
        };
        let frame = DataFrame { src: SourceId(i as u32), bits: self.cfg.frame_bits, rrt };
        self.sent_bits[i] += self.cfg.frame_bits;
        self.schedule(self.now + self.cfg.prop_delay, Ev::Arrival(frame));
        if let SchemeState::Qcn { rps, .. } = &mut self.scheme {
            rps[i].on_bits_sent(self.cfg.frame_bits);
        }
        let rate = self.source_rate(i).max(1.0);
        let gap = Duration::serialization(self.cfg.frame_bits, rate);
        self.schedule(self.now + gap, Ev::SourceSend(i));
    }

    fn on_arrival(&mut self, frame: DataFrame) {
        if self.faults.is_active() && self.faults.data_frame_lost() {
            self.note_fault(FaultClass::DataLoss, frame.src.0);
            return;
        }
        if self.q_bits + frame.bits > self.cfg.buffer_bits {
            self.metrics.dropped_frames += 1;
            if let Some(tel) = self.telemetry.as_mut() {
                tel.frame_dropped(self.now.as_secs(), frame.src.0);
            }
            return;
        }
        let prev_q = self.q_bits;
        self.q_bits += frame.bits;
        self.note_queue_threshold(prev_q);
        self.queue.push_back((frame, self.now));
        // Collect scheme reactions first, then schedule (borrow split).
        let mut bcn_msg = None;
        let mut qcn_fb = None;
        let mut want_pause = false;
        match &mut self.scheme {
            SchemeState::Bcn { cp, .. } => {
                bcn_msg = cp.on_arrival(&frame, self.q_bits);
                want_pause = cp.should_pause(self.q_bits);
            }
            SchemeState::Qcn { cp, .. } => {
                qcn_fb = cp.on_arrival(frame.src, self.q_bits);
            }
            SchemeState::None => {}
        }
        if let Some(msg) = bcn_msg {
            // The scratch list is hoisted into the engine so the fault
            // path allocates nothing per message (mem::take keeps the
            // borrow checker happy across the note_fault calls).
            let mut injected = std::mem::take(&mut self.fault_scratch);
            let fate = self.faults.feedback_fate_into(&msg, &mut injected);
            for &class in &injected {
                self.note_fault(class, msg.dst.0);
            }
            injected.clear();
            self.fault_scratch = injected;
            if let FeedbackFate::Deliver { msg, extra } = fate {
                if let Some(tel) = self.telemetry.as_mut() {
                    tel.bcn_message(self.now.as_secs(), msg.sigma, msg.dst.0);
                }
                self.schedule(self.now + self.cfg.prop_delay + extra, Ev::BcnDeliver(msg));
            }
        }
        if let Some(fb) = qcn_fb {
            if let Some(tel) = self.telemetry.as_mut() {
                tel.qcn_message(self.now.as_secs(), fb.fb, fb.dst.0);
            }
            self.schedule(self.now + self.cfg.prop_delay, Ev::QcnDeliver(fb));
        }
        if want_pause {
            self.maybe_pause();
        }
        if !self.busy {
            self.busy = true;
            self.schedule_departure(frame.bits);
        }
    }

    /// Schedules the next departure, deferring the service start past
    /// any link-flap down window.
    fn schedule_departure(&mut self, bits: f64) {
        let mut start = self.now;
        if self.faults.is_active() {
            if let Some(up) = self.faults.link_up_at(self.now) {
                self.note_fault(FaultClass::LinkFlap, 0);
                start = up;
            }
        }
        let service = Duration::serialization(bits, self.cfg.capacity);
        self.schedule(start + service, Ev::Departure);
    }

    fn maybe_pause(&mut self) {
        // Rate-limit PAUSE generation to one per hold interval.
        let can_fire = match self.last_pause {
            Some(t) => self.now.saturating_sub(t) >= self.cfg.pause_hold,
            None => true,
        };
        if can_fire {
            self.last_pause = Some(self.now);
            self.metrics.pause_events += 1;
            let (hold, stormed) = self.faults.pause_hold(self.cfg.pause_hold);
            if stormed {
                self.note_fault(FaultClass::PauseStorm, 0);
            }
            let deliver = self.now + self.cfg.prop_delay;
            let until = deliver + hold;
            if let Some(tel) = self.telemetry.as_mut() {
                // PAUSE silences every source; port 0 stands for the
                // bottleneck ingress. The deassert event is emitted
                // eagerly, stamped with the scheduled expiry.
                tel.pause(deliver.as_secs(), until.as_secs(), 0);
            }
            self.pending_pauses += 1;
            self.schedule(deliver, Ev::PauseDeliver { until });
        }
    }

    /// Emits a threshold-crossing event when the queue moves across the
    /// BCN severe-congestion threshold `q_sc` (the PAUSE trigger level).
    fn note_queue_threshold(&mut self, prev_q: f64) {
        let Some(tel) = self.telemetry.as_mut() else { return };
        let thr = match &self.cfg.control {
            Control::Bcn { cp, .. } => cp.qsc_bits,
            _ => return,
        };
        let q = self.q_bits;
        if prev_q < thr && q >= thr {
            tel.queue_threshold(self.now.as_secs(), q, thr, true);
        } else if prev_q >= thr && q < thr {
            tel.queue_threshold(self.now.as_secs(), q, thr, false);
        }
    }

    fn on_departure(&mut self) {
        let (frame, enqueued_at) = self.queue.pop_front().expect("departure from empty queue");
        let prev_q = self.q_bits;
        self.q_bits -= frame.bits;
        self.note_queue_threshold(prev_q);
        self.metrics.delivered_frames += 1;
        self.metrics.delivered_bits += frame.bits;
        self.metrics.per_source_bits[frame.src.0 as usize] += frame.bits;
        self.metrics.queueing_delay.push(self.now.saturating_sub(enqueued_at).as_secs());
        if let SchemeState::Bcn { cp, .. } = &mut self.scheme {
            cp.on_departure(frame.bits);
        }
        if let Some((next, _)) = self.queue.front() {
            let bits = next.bits;
            self.schedule_departure(bits);
        } else {
            self.busy = false;
        }
    }
}

/// Hooks for the hybrid co-simulator (`crate::hybrid`): record-grid
/// epoch marks, fluid-state extraction, and fluid→packet re-seeding.
/// All crate-private — the engine's public surface stays event-driven.
impl Simulation {
    /// Consumes the "a `Record` event just dispatched" mark. The hybrid
    /// epoch controller runs exactly at record-grid ticks so that every
    /// fast-forward span is an integer number of record intervals and
    /// the sampled series stay grid-dense and comparable.
    pub(crate) fn take_record_mark(&mut self) -> bool {
        std::mem::take(&mut self.record_just_fired)
    }

    /// Current simulation time.
    pub(crate) fn now(&self) -> Time {
        self.now
    }

    /// The run configuration.
    pub(crate) fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The telemetry sink, if attached.
    pub(crate) fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        self.telemetry.as_mut()
    }

    /// Projects the packet state onto the fluid coordinates: exact queue
    /// occupancy (bits) and the aggregate regulator rate (bit/s), summed
    /// over active flows in index order. The hybrid engine adds its
    /// re-seed residue to make the projection round-trip bit-exactly.
    pub(crate) fn fluid_state(&self) -> [f64; 2] {
        [self.q_bits, self.aggregate_rate()]
    }

    /// Whether the run is in a state the fluid model can stand in for:
    /// fluid-calibrated BCN control (no FB quantizer, ungated positive
    /// feedback), no fault injection, no PAUSE asserted or in flight,
    /// and a steady homogeneous workload (every flow active, none
    /// volume-limited or scheduled to stop). Everything here is a
    /// *structural* guard; the dynamic guards (switching-line distance,
    /// queue margins) live in the epoch controller.
    pub(crate) fn hybrid_quiescent(&self) -> bool {
        let scheme_ok = match &self.scheme {
            SchemeState::Bcn { cp, .. } => {
                let c = cp.config();
                c.fb_quant.is_none() && !c.gate_positive
            }
            _ => false,
        };
        scheme_ok
            && !self.cfg.faults.enabled()
            && self.pending_pauses == 0
            && self.paused_until.iter().all(|&p| p <= self.now)
            && self.active.iter().all(|&a| a)
            && self.cfg.flows.iter().all(|f| f.stop.is_none() && f.volume_bits.is_none())
    }

    /// Pushes one fluid-integrated record-grid sample, mirroring the
    /// `Record` dispatch arm (queue gauge, metrics series, per-flow rate
    /// series at the fluid fair share) so fast-forwarded stretches stay
    /// sample-for-sample comparable with packet-simulated ones.
    pub(crate) fn hybrid_record_sample(&mut self, t: Time, q_bits: f64, w_agg: f64) {
        if let Some(tel) = self.telemetry.as_mut() {
            tel.queue_sample(t.as_secs(), q_bits);
        }
        self.metrics.queue.push(t, q_bits);
        self.metrics.aggregate_rate.push(t, w_agg);
        let per = w_agg / self.cfg.flows.len() as f64;
        for i in 0..self.cfg.flows.len() {
            self.metrics.per_source_rate[i].push(t, per);
            if let Some(tel) = self.telemetry.as_mut() {
                tel.series_sample(SeriesKind::FlowRate, i as u32, t.as_secs(), per);
            }
        }
    }

    /// Credits delivery totals for a fast-forwarded span: with the
    /// epoch guards holding, `0 < q` throughout, so the server runs at
    /// capacity and exactly `C * secs` bits leave the queue (the fluid
    /// identity `outflow = inflow - dq`). Split evenly across sources
    /// (the workload is homogeneous under the guards); per-frame
    /// queueing-delay samples do not accrue inside an epoch.
    pub(crate) fn hybrid_credit_delivery(&mut self, secs: f64) {
        let bits = self.cfg.capacity * secs;
        self.metrics.delivered_bits += bits;
        self.metrics.delivered_frames += (bits / self.cfg.frame_bits).round() as u64;
        let per = bits / self.cfg.flows.len() as f64;
        for b in &mut self.metrics.per_source_bits {
            *b += per;
        }
    }

    /// Re-seeds the packet engine from fluid state at an epoch boundary
    /// `t`: regulator rates to the fair share of `w_agg` (clamped),
    /// queue occupancy to exactly `q_bits` (FIFO rebuilt as whole frames
    /// round-robin across sources plus one partial-frame remainder),
    /// congestion-point sampling interval restarted, and the event set
    /// re-populated (per-source sends, the departure of the queue head,
    /// the next record tick) through the stats-preserving
    /// [`EventQueue::clear_pending`] so the wheel's slab arena is
    /// reused. In-flight events discarded here — frames and feedback
    /// already on the wire — are the documented divergence budget of an
    /// epoch switch.
    ///
    /// Returns the rate residue `w_agg - sum(clamped rates)`; adding it
    /// back to [`Simulation::fluid_state`]'s aggregate reproduces
    /// `w_agg` bit-exactly (Sterbenz: the sum is within a factor of two
    /// of `w_agg`).
    pub(crate) fn reseed_fluid(&mut self, t: Time, q_bits: f64, w_agg: f64) -> f64 {
        self.now = t;
        let n = self.cfg.flows.len();
        let base = w_agg / n as f64;
        {
            let SchemeState::Bcn { cp, rps } = &mut self.scheme else {
                unreachable!("hybrid re-seed requires BCN control (guarded)");
            };
            for rp in rps.iter_mut() {
                rp.set_rate(base);
            }
            cp.restart_interval();
        }
        self.queue.clear();
        self.q_bits = q_bits;
        let frame_bits = self.cfg.frame_bits;
        let full = (q_bits / frame_bits).floor() as usize;
        let rem = q_bits - full as f64 * frame_bits;
        {
            let SchemeState::Bcn { rps, .. } = &self.scheme else { unreachable!() };
            for j in 0..full {
                let src = j % n;
                let frame = DataFrame {
                    src: SourceId(src as u32),
                    bits: frame_bits,
                    rrt: rps[src].associated_cp(),
                };
                self.queue.push_back((frame, t));
            }
            if rem > 0.0 {
                let src = full % n;
                let frame = DataFrame {
                    src: SourceId(src as u32),
                    bits: rem,
                    rrt: rps[src].associated_cp(),
                };
                self.queue.push_back((frame, t));
            }
        }
        self.events.clear_pending();
        self.pending_pauses = 0;
        self.busy = !self.queue.is_empty();
        if let Some((first, _)) = self.queue.front() {
            let bits = first.bits;
            self.schedule_departure(bits);
        }
        for i in 0..n {
            self.sending_scheduled[i] = true;
            self.schedule(t + Duration::from_nanos(i as u64 + 1), Ev::SourceSend(i));
        }
        if t + self.cfg.record_interval <= self.cfg.t_end {
            self.schedule(t + self.cfg.record_interval, Ev::Record);
        }
        w_agg - self.aggregate_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> SimConfig {
        SimConfig::fluid_validation_default()
    }

    #[test]
    fn runs_are_deterministic() {
        let a = Simulation::new(base_cfg()).run();
        let b = Simulation::new(base_cfg()).run();
        assert_eq!(a.metrics.delivered_frames, b.metrics.delivered_frames);
        assert_eq!(a.metrics.queue.values(), b.metrics.queue.values());
        assert_eq!(a.final_rates, b.final_rates);
    }

    #[test]
    fn schedulers_produce_identical_reports() {
        for faulty in [false, true] {
            let mut cfg = base_cfg();
            if faulty {
                cfg.faults.seed = 9;
                cfg.faults.feedback_loss = 0.3;
                cfg.faults.feedback_corrupt = 0.05;
                cfg.faults.data_loss = 0.01;
            }
            let mut heap_cfg = cfg.clone();
            heap_cfg.scheduler = Scheduler::Heap;
            cfg.scheduler = Scheduler::Wheel;
            let wheel = Simulation::new(cfg).run();
            let heap = Simulation::new(heap_cfg).run();
            assert_eq!(wheel.metrics, heap.metrics, "faulty={faulty}");
            assert_eq!(wheel.final_rates, heap.final_rates, "faulty={faulty}");
        }
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let mut ws = SimWorkspace::new();
        let first = Simulation::new_in(base_cfg(), &mut ws).run_into(&mut ws);
        let again = Simulation::new_in(base_cfg(), &mut ws).run_into(&mut ws);
        let fresh = Simulation::new(base_cfg()).run();
        assert_eq!(first.metrics, fresh.metrics);
        assert_eq!(again.metrics, fresh.metrics);
        assert_eq!(again.final_rates, fresh.final_rates);
    }

    #[test]
    fn frame_conservation() {
        let report = Simulation::new(base_cfg()).run();
        let m = &report.metrics;
        // Delivered + dropped <= offered; nothing is created from thin
        // air: per-source totals sum to the delivered total.
        let per_source: f64 = m.per_source_bits.iter().sum();
        assert!((per_source - m.delivered_bits).abs() < 1e-6);
        assert!(m.delivered_frames > 0);
    }

    #[test]
    fn bcn_regulates_queue_to_reference() {
        let cfg = base_cfg();
        let q0 = match &cfg.control {
            Control::Bcn { cp, .. } => cp.q0_bits,
            _ => unreachable!(),
        };
        let report = Simulation::new(cfg).run();
        let m = &report.metrics;
        assert_eq!(m.dropped_frames, 0, "roomy buffer must not drop");
        // Tail of the run: queue hovers around q0 (within a factor of a
        // few — the discrete loop oscillates like the fluid one).
        let tail_mean = tail_mean(&m.queue);
        assert!(
            tail_mean > 0.2 * q0 && tail_mean < 3.0 * q0,
            "tail queue mean {tail_mean} vs q0 {q0}"
        );
    }

    fn tail_mean(series: &crate::metrics::TimeSeries) -> f64 {
        let vals = series.values();
        let tail = &vals[vals.len() * 3 / 4..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    #[test]
    fn uncontrolled_overload_fills_buffer_and_drops() {
        let mut cfg = base_cfg();
        cfg.control = Control::None;
        // Each source blasts at half of capacity: 2.5x overload.
        for f in &mut cfg.flows {
            f.initial_rate = cfg.capacity / 2.0;
        }
        let report = Simulation::new(cfg).run();
        assert!(report.metrics.dropped_frames > 0, "overload must drop");
        assert!(report.metrics.queue.max() > 0.9 * base_cfg().buffer_bits);
    }

    #[test]
    fn bcn_prevents_drops_where_uncontrolled_drops() {
        // Same offered overload, but with BCN: no drops.
        let mut cfg = base_cfg();
        for f in &mut cfg.flows {
            f.initial_rate = cfg.capacity / 2.0;
        }
        let report = Simulation::new(cfg).run();
        assert_eq!(report.metrics.dropped_frames, 0);
    }

    #[test]
    fn bcn_converges_to_fair_share() {
        let mut cfg = base_cfg();
        cfg.t_end = Time::from_secs(1.5);
        // Start wildly unfair: one source hogging, others slow.
        for (i, f) in cfg.flows.iter_mut().enumerate() {
            f.initial_rate = if i == 0 { cfg.capacity * 0.8 } else { cfg.capacity * 0.01 };
        }
        let report = Simulation::new(cfg.clone()).run();
        let fairness = crate::metrics::jain_fairness(&report.final_rates);
        assert!(fairness > 0.9, "final-rate fairness {fairness}: {:?}", report.final_rates);
    }

    #[test]
    fn pause_fires_under_sudden_overload_with_tight_threshold() {
        let mut cfg = base_cfg();
        // Aggressive sources + a low PAUSE threshold.
        for f in &mut cfg.flows {
            f.initial_rate = cfg.capacity / 3.0;
        }
        if let Control::Bcn { cp, .. } = &mut cfg.control {
            cp.qsc_bits = cp.q0_bits * 1.5;
        }
        cfg.t_end = Time::from_secs(0.2);
        let report = Simulation::new(cfg).run();
        assert!(report.metrics.pause_events > 0, "expected PAUSE under overload");
    }

    #[test]
    fn qcn_also_controls_the_queue() {
        let mut cfg = base_cfg();
        let q0 = 1.0e6;
        cfg.control = Control::Qcn {
            cp: QcnCpConfig { q_eq_bits: q0, w: 2.0, sample_every: 20 },
            rp: QcnRpConfig::standard(cfg.capacity),
        };
        for f in &mut cfg.flows {
            f.initial_rate = cfg.capacity / 2.0;
        }
        cfg.t_end = Time::from_secs(1.0);
        let report = Simulation::new(cfg).run();
        assert_eq!(report.metrics.dropped_frames, 0, "QCN must avoid drops here");
        assert!(report.metrics.feedback_messages > 0);
        let m = tail_mean(&report.metrics.queue);
        assert!(m < 4.0 * q0, "QCN tail queue {m}");
    }

    #[test]
    fn flow_departure_frees_capacity() {
        let mut cfg = base_cfg();
        cfg.t_end = Time::from_secs(1.0);
        let n = cfg.flows.len();
        cfg.flows = crate::workload::with_departures(n, n / 2, cfg.capacity / (n as f64), 0.5);
        let report = Simulation::new(cfg).run();
        // Survivors keep the link busy; the run completes without drops.
        assert!(report.metrics.delivered_frames > 0);
        // Stopped sources hold their last rate but send nothing; the
        // active ones' rates exceed the original fair share by the end.
        let survivors = &report.final_rates[n / 2..];
        let fair = 1.0e8 / n as f64;
        assert!(
            survivors.iter().any(|r| *r > fair),
            "survivors did not claim freed capacity: {survivors:?}"
        );
    }

    #[test]
    fn utilization_is_high_under_bcn() {
        let cfg = base_cfg();
        let capacity = cfg.capacity;
        let t_end = cfg.t_end.as_secs();
        let report = Simulation::new(cfg).run();
        let util = report.metrics.utilization(capacity, t_end);
        assert!(util > 0.8, "utilization {util}");
    }

    #[test]
    fn per_flow_rate_traces_are_recorded() {
        let cfg = base_cfg();
        let n = cfg.flows.len();
        let report = Simulation::new(cfg).run();
        assert_eq!(report.metrics.per_source_rate.len(), n);
        for (i, series) in report.metrics.per_source_rate.iter().enumerate() {
            assert!(series.len() > 100, "flow {i} trace too short");
            // The last recorded rate matches the final regulator rate.
            let last = *series.values().last().unwrap();
            assert!(
                (last - report.final_rates[i]).abs() < 1e-6 * report.final_rates[i].max(1.0),
                "flow {i}: {last} vs {}",
                report.final_rates[i]
            );
        }
    }

    #[test]
    fn queueing_delay_is_tracked_and_bounded_by_buffer() {
        let cfg = base_cfg();
        let buffer = cfg.buffer_bits;
        let capacity = cfg.capacity;
        let report = Simulation::new(cfg).run();
        let d = &report.metrics.queueing_delay;
        assert!(d.len() > 100);
        // No frame can wait longer than a full buffer drains.
        assert!(d.max() <= buffer / capacity + 1e-9, "max delay {}", d.max());
        assert!(d.percentile(0.5) <= d.percentile(0.99));
    }

    #[test]
    fn incast_flows_stop_after_their_block() {
        let mut cfg = base_cfg();
        let block = 50.0 * cfg.frame_bits;
        cfg.flows = crate::workload::incast(cfg.flows.len(), cfg.capacity / 5.0, block);
        cfg.t_end = Time::from_secs(0.2);
        let report = Simulation::new(cfg.clone()).run();
        // Every source sent exactly its block (delivered + dropped).
        for (i, bits) in report.metrics.per_source_bits.iter().enumerate() {
            assert!(*bits <= block + 1e-6, "flow {i} delivered {bits} > block {block}");
        }
        let total_offered = block * cfg.flows.len() as f64;
        let accounted =
            report.metrics.delivered_bits + report.metrics.dropped_frames as f64 * cfg.frame_bits;
        assert!(
            (accounted - total_offered).abs() <= cfg.frame_bits * cfg.flows.len() as f64 * 2.0,
            "accounted {accounted} vs offered {total_offered}"
        );
    }

    #[test]
    fn telemetry_queue_gauge_matches_metrics_time_series() {
        use telemetry::{Telemetry, TelemetryLevel};
        let report =
            Simulation::with_telemetry(base_cfg(), Telemetry::new(TelemetryLevel::Summary)).run();
        let tel = report.telemetry.expect("telemetry returned in report");
        let g = tel.metrics.gauge_by_name("queue.occupancy_bits").unwrap();
        let series = &report.metrics.queue;
        // Every Record tick fed both the gauge and the metrics series, so
        // they agree sample for sample on count, envelope, and last value.
        assert_eq!(g.samples, series.len() as u64);
        assert_eq!(g.last, *series.values().last().unwrap());
        assert_eq!(g.max, series.max());
        let series_min = series.values().iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(g.min, series_min);
        let h = tel.metrics.histogram_by_name("queue.occupancy_bits").unwrap();
        assert_eq!(h.count(), series.len() as u64);
        // BCN messages flowed and were counted.
        assert_eq!(
            tel.metrics.counter_by_name("sim.bcn_messages"),
            Some(report.metrics.feedback_messages)
        );
        // Summary level keeps no per-event trace.
        assert!(tel.trace.is_empty());
    }

    #[test]
    fn telemetry_traces_drops_and_pauses_under_overload() {
        use telemetry::{Event, Telemetry, TelemetryLevel};
        let mut cfg = base_cfg();
        cfg.control = Control::None;
        for f in &mut cfg.flows {
            f.initial_rate = cfg.capacity / 2.0;
        }
        cfg.t_end = Time::from_secs(0.05);
        let report = Simulation::with_telemetry(cfg, Telemetry::new(TelemetryLevel::Full)).run();
        let tel = report.telemetry.unwrap();
        assert_eq!(
            tel.metrics.counter_by_name("sim.frames_dropped"),
            Some(report.metrics.dropped_frames)
        );
        let dropped_in_trace =
            tel.trace.iter().filter(|e| matches!(e, Event::FrameDropped { .. })).count() as u64
                + tel.trace.overwritten();
        assert!(dropped_in_trace >= report.metrics.dropped_frames.min(1));
        // Timestamps in the trace are non-decreasing (except the eagerly
        // emitted PAUSE deasserts and episode-span ends, which carry
        // future expiry stamps).
        let ts: Vec<f64> = tel
            .trace
            .iter()
            .filter(|e| !matches!(e, Event::PauseDeasserted { .. } | Event::SpanEnd { .. }))
            .map(Event::time)
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn rejects_empty_flow_set() {
        let mut cfg = base_cfg();
        cfg.flows.clear();
        let _ = Simulation::new(cfg);
    }

    #[test]
    fn validate_reports_typed_errors() {
        assert!(base_cfg().validate().is_ok());
        let mut cfg = base_cfg();
        cfg.capacity = 0.0;
        assert_eq!(cfg.validate().unwrap_err().field, "capacity");
        let mut cfg = base_cfg();
        cfg.flows[0].initial_rate = f64::NAN;
        assert_eq!(cfg.validate().unwrap_err().field, "flows.initial_rate");
        let mut cfg = base_cfg();
        cfg.faults.feedback_loss = 1.5;
        assert_eq!(cfg.validate().unwrap_err().field, "faults.feedback_loss");
    }

    #[test]
    fn fault_free_plan_records_no_faults() {
        let report = Simulation::new(base_cfg()).run();
        assert_eq!(report.metrics.faults, crate::faults::FaultCounts::default());
    }

    #[test]
    fn total_feedback_loss_silences_the_control_loop() {
        let mut cfg = base_cfg();
        cfg.faults.feedback_loss = 1.0;
        let report = Simulation::new(cfg).run();
        assert_eq!(report.metrics.feedback_messages, 0, "every BCN message must be dropped");
        assert!(report.metrics.faults.feedback_dropped > 0);
        assert!(report.metrics.delivered_frames > 0, "data plane keeps flowing");
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let mut cfg = base_cfg();
        cfg.faults.seed = 7;
        cfg.faults.feedback_loss = 0.3;
        cfg.faults.feedback_corrupt = 0.1;
        cfg.faults.data_loss = 0.01;
        let a = Simulation::new(cfg.clone()).run();
        let b = Simulation::new(cfg).run();
        assert_eq!(a.metrics.faults, b.metrics.faults);
        assert_eq!(a.metrics.delivered_frames, b.metrics.delivered_frames);
        assert_eq!(a.metrics.queue.values(), b.metrics.queue.values());
        assert_eq!(a.final_rates, b.final_rates);
    }

    #[test]
    fn data_loss_thins_the_delivered_stream() {
        let baseline = Simulation::new(base_cfg()).run();
        let mut cfg = base_cfg();
        cfg.faults.data_loss = 0.2;
        cfg.faults.data_burst_len = 3;
        let report = Simulation::new(cfg).run();
        assert!(report.metrics.faults.data_frames_lost > 0);
        assert!(report.metrics.delivered_frames < baseline.metrics.delivered_frames);
    }

    #[test]
    fn link_flaps_defer_service() {
        let mut cfg = base_cfg();
        cfg.faults.link_flap_period = Duration::from_secs(0.01);
        cfg.faults.link_flap_down = Duration::from_secs(0.002);
        let report = Simulation::new(cfg).run();
        assert!(report.metrics.faults.link_flap_deferrals > 0);
    }

    #[test]
    fn pause_storms_are_counted_when_pause_fires() {
        let mut cfg = base_cfg();
        for f in &mut cfg.flows {
            f.initial_rate = cfg.capacity / 3.0;
        }
        if let Control::Bcn { cp, .. } = &mut cfg.control {
            cp.qsc_bits = cp.q0_bits * 1.5;
        }
        cfg.t_end = Time::from_secs(0.2);
        cfg.faults.pause_storm = 1.0;
        cfg.faults.pause_storm_factor = 4.0;
        let report = Simulation::new(cfg).run();
        assert!(report.metrics.pause_events > 0);
        assert_eq!(report.metrics.faults.pause_storms, report.metrics.pause_events);
    }

    #[test]
    fn fault_telemetry_matches_metrics_counts() {
        use telemetry::{Event, FaultClass, Telemetry, TelemetryLevel};
        let mut cfg = base_cfg();
        cfg.faults.feedback_loss = 0.5;
        cfg.faults.data_loss = 0.05;
        let report = Simulation::with_telemetry(cfg, Telemetry::new(TelemetryLevel::Full)).run();
        let tel = report.telemetry.unwrap();
        assert_eq!(
            tel.metrics.counter_by_name("faults.feedback_drop"),
            Some(report.metrics.faults.feedback_dropped)
        );
        assert_eq!(
            tel.metrics.counter_by_name("faults.data_loss"),
            Some(report.metrics.faults.data_frames_lost)
        );
        let traced = tel
            .trace
            .iter()
            .filter(|e| matches!(e, Event::FaultInjected { class: FaultClass::FeedbackDrop, .. }))
            .count() as u64
            + tel.trace.overwritten();
        assert!(traced >= report.metrics.faults.feedback_dropped.min(1));
    }

    #[test]
    fn corruption_is_tallied_and_survivable() {
        let mut cfg = base_cfg();
        cfg.faults.feedback_corrupt = 1.0;
        let report = Simulation::new(cfg).run();
        let f = &report.metrics.faults;
        assert!(f.feedback_corrupted > 0);
        // Some corrupt frames fail to decode and are lost on the wire.
        assert!(f.feedback_corrupt_lost <= f.feedback_corrupted);
    }
}
