//! QCN (Quantized Congestion Notification, IEEE 802.1Qau) congestion and
//! reaction points.
//!
//! QCN is the fourth proposal discussed in the paper's background and the
//! eventual 802.1Qau standard: it keeps BCN's backward-notification
//! paradigm but quantizes the feedback to a few bits and sends **only
//! negative** feedback — rate recovery is driven autonomously by the
//! source (byte-counter fast recovery and active increase), not by
//! positive messages from the switch. Implemented here for the
//! BCN-vs-QCN comparison experiments.
//!
//! Simplifications relative to the full standard (documented for the
//! comparison's scope): sampling is deterministic rather than
//! feedback-dependent, and the rate-recovery stages are byte-counter
//! driven only (no wall-clock timer path, which matters mainly at very
//! low rates).

use crate::frame::SourceId;

/// Quantized congestion feedback delivered to a QCN reaction point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QcnFeedback {
    /// Destination reaction point.
    pub dst: SourceId,
    /// Quantized feedback magnitude in `(0, 1]` (the 6-bit `|Fb|` scaled
    /// by its maximum).
    pub fb: f64,
}

/// QCN congestion-point configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QcnCpConfig {
    /// Equilibrium queue point (bits).
    pub q_eq_bits: f64,
    /// Weight of the queue-derivative term.
    pub w: f64,
    /// Sample every n-th frame.
    pub sample_every: u64,
}

/// QCN congestion point: computes `Fb = -(q_off + w * q_delta)` at each
/// sample and emits feedback only when `Fb < 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct QcnCp {
    cfg: QcnCpConfig,
    countdown: u64,
    q_old: Option<f64>,
    fb_max: f64,
}

impl QcnCp {
    /// Creates a congestion point.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `q_eq` or zero sampling divisor.
    #[must_use]
    pub fn new(cfg: QcnCpConfig) -> Self {
        assert!(cfg.q_eq_bits > 0.0, "q_eq must be positive");
        assert!(cfg.sample_every >= 1, "sampling divisor must be at least 1");
        // The standard's quantization scale: |Fb| maxes out at
        // q_eq (2 w + 1) — queue at 2 q_eq and rising at full tilt.
        let fb_max = cfg.q_eq_bits * (2.0 * cfg.w + 1.0);
        let countdown = cfg.sample_every;
        Self { cfg, countdown, q_old: None, fb_max }
    }

    /// Processes an accepted arriving frame from `src` with the queue at
    /// `q_bits` (after enqueue). Returns quantized negative feedback if
    /// this frame was sampled and the switch is congested.
    pub fn on_arrival(&mut self, src: SourceId, q_bits: f64) -> Option<QcnFeedback> {
        self.countdown -= 1;
        if self.countdown > 0 {
            return None;
        }
        self.countdown = self.cfg.sample_every;
        let q_off = q_bits - self.cfg.q_eq_bits;
        // The first sample has no previous observation: treat the queue
        // as steady rather than inventing a huge derivative.
        let q_delta = q_bits - self.q_old.unwrap_or(q_bits);
        self.q_old = Some(q_bits);
        let fb = -(q_off + self.cfg.w * q_delta);
        if fb >= 0.0 {
            return None; // QCN sends no positive feedback
        }
        // 6-bit quantization of |Fb| relative to fb_max.
        let norm = (-fb / self.fb_max).min(1.0);
        let quantized = (norm * 63.0).ceil() / 63.0;
        Some(QcnFeedback { dst: src, fb: quantized })
    }
}

/// QCN reaction-point configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QcnRpConfig {
    /// Multiplicative-decrease gain (standard: 1/2 at maximum feedback).
    pub gd: f64,
    /// Byte-counter stage length in bits (standard: 150 kB = 1.2 Mbit).
    pub bc_limit_bits: f64,
    /// Fast-recovery cycles before active increase (standard: 5).
    pub fr_cycles: u32,
    /// Active-increase step in bit/s (standard: 5 Mbit/s).
    pub r_ai: f64,
    /// Hyper-active-increase step in bit/s (standard: 50 Mbit/s), used
    /// after prolonged congestion-free operation.
    pub r_hai: f64,
    /// Rate floor in bit/s.
    pub r_min: f64,
    /// Rate ceiling (line rate) in bit/s.
    pub r_max: f64,
}

impl QcnRpConfig {
    /// Standard-flavoured defaults scaled to a given line rate.
    #[must_use]
    pub fn standard(line_rate: f64) -> Self {
        Self {
            gd: 0.5,
            bc_limit_bits: 150.0 * 8.0 * 1000.0,
            fr_cycles: 5,
            r_ai: line_rate / 2000.0,
            r_hai: line_rate / 200.0,
            r_min: line_rate * 1e-5,
            r_max: line_rate,
        }
    }
}

/// Rate-recovery stage of a QCN reaction point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QcnStage {
    /// No congestion seen yet (or fully recovered): send at will.
    Unconstrained,
    /// Binary-search recovery towards the pre-congestion target rate.
    FastRecovery,
    /// Probing beyond the target in fixed steps.
    ActiveIncrease,
    /// Aggressive probing after sustained congestion-free operation.
    HyperActiveIncrease,
}

/// QCN reaction point: multiplicative decrease on feedback, autonomous
/// byte-counter-driven recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct QcnRp {
    cfg: QcnRpConfig,
    rate: f64,
    target: f64,
    stage: QcnStage,
    cycles_done: u32,
    bits_since_cycle: f64,
}

impl QcnRp {
    /// Creates a reaction point at the given initial rate.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    #[must_use]
    pub fn new(cfg: QcnRpConfig, initial_rate: f64) -> Self {
        assert!(cfg.gd > 0.0 && cfg.gd <= 1.0, "gd must lie in (0, 1]");
        assert!(cfg.r_min > 0.0 && cfg.r_min < cfg.r_max, "need 0 < r_min < r_max");
        assert!(cfg.bc_limit_bits > 0.0, "byte-counter limit must be positive");
        let rate = initial_rate.clamp(cfg.r_min, cfg.r_max);
        Self {
            cfg,
            rate,
            target: rate,
            stage: QcnStage::Unconstrained,
            cycles_done: 0,
            bits_since_cycle: 0.0,
        }
    }

    /// Current sending rate (bit/s).
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Current recovery stage.
    #[must_use]
    pub fn stage(&self) -> QcnStage {
        self.stage
    }

    /// Applies received congestion feedback.
    pub fn on_feedback(&mut self, fb: &QcnFeedback) {
        self.target = self.rate;
        self.rate = (self.rate * (1.0 - self.cfg.gd * fb.fb)).max(self.cfg.r_min);
        self.stage = QcnStage::FastRecovery;
        self.cycles_done = 0;
        self.bits_since_cycle = 0.0;
    }

    /// Accounts transmitted bits; byte-counter expiry advances the
    /// recovery state machine.
    pub fn on_bits_sent(&mut self, bits: f64) {
        if self.stage == QcnStage::Unconstrained {
            return;
        }
        self.bits_since_cycle += bits;
        while self.bits_since_cycle >= self.cfg.bc_limit_bits {
            self.bits_since_cycle -= self.cfg.bc_limit_bits;
            self.cycle();
        }
    }

    fn cycle(&mut self) {
        match self.stage {
            QcnStage::Unconstrained => {}
            QcnStage::FastRecovery => {
                self.rate = 0.5 * (self.rate + self.target);
                self.cycles_done += 1;
                if self.cycles_done >= self.cfg.fr_cycles {
                    self.stage = QcnStage::ActiveIncrease;
                    self.cycles_done = 0;
                }
            }
            QcnStage::ActiveIncrease => {
                self.target += self.cfg.r_ai;
                self.rate = 0.5 * (self.rate + self.target);
                self.cycles_done += 1;
                if self.cycles_done >= 5 * self.cfg.fr_cycles {
                    self.stage = QcnStage::HyperActiveIncrease;
                }
            }
            QcnStage::HyperActiveIncrease => {
                self.target += self.cfg.r_hai;
                self.rate = 0.5 * (self.rate + self.target);
            }
        }
        self.rate = self.rate.clamp(self.cfg.r_min, self.cfg.r_max);
        self.target = self.target.clamp(self.cfg.r_min, self.cfg.r_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp() -> QcnCp {
        QcnCp::new(QcnCpConfig { q_eq_bits: 10_000.0, w: 2.0, sample_every: 1 })
    }

    #[test]
    fn no_feedback_below_equilibrium() {
        let mut cp = cp();
        assert!(cp.on_arrival(SourceId(1), 5_000.0).is_none());
    }

    #[test]
    fn negative_feedback_when_congested() {
        let mut cp = cp();
        let _ = cp.on_arrival(SourceId(1), 15_000.0); // seeds q_old... and fires
        let fb = cp.on_arrival(SourceId(2), 25_000.0).expect("congested");
        assert!(fb.fb > 0.0 && fb.fb <= 1.0);
        assert_eq!(fb.dst, SourceId(2));
    }

    #[test]
    fn feedback_is_quantized_to_sixty_fourths() {
        let mut cp = cp();
        let _ = cp.on_arrival(SourceId(1), 20_000.0);
        let fb = cp.on_arrival(SourceId(1), 20_000.0).unwrap().fb;
        let steps = fb * 63.0;
        assert!((steps - steps.round()).abs() < 1e-9, "fb {fb} not on grid");
    }

    fn rp() -> QcnRp {
        QcnRp::new(QcnRpConfig::standard(1.0e9), 5.0e8)
    }

    #[test]
    fn feedback_cuts_rate_and_sets_target() {
        let mut rp = rp();
        rp.on_feedback(&QcnFeedback { dst: SourceId(0), fb: 1.0 });
        assert_eq!(rp.stage(), QcnStage::FastRecovery);
        assert!((rp.rate() - 2.5e8).abs() < 1.0, "halved at max feedback");
    }

    #[test]
    fn fast_recovery_converges_to_target() {
        let mut rp = rp();
        rp.on_feedback(&QcnFeedback { dst: SourceId(0), fb: 1.0 });
        let target = 5.0e8;
        for _ in 0..5 {
            rp.on_bits_sent(150.0 * 8.0 * 1000.0);
        }
        // After 5 halvings the rate is within ~3% of the target.
        assert!((rp.rate() - target).abs() < 0.04 * target, "rate {}", rp.rate());
        assert_eq!(rp.stage(), QcnStage::ActiveIncrease);
    }

    #[test]
    fn active_increase_probes_beyond_target() {
        let mut rp = rp();
        rp.on_feedback(&QcnFeedback { dst: SourceId(0), fb: 0.5 });
        let before = rp.rate();
        for _ in 0..10 {
            rp.on_bits_sent(150.0 * 8.0 * 1000.0);
        }
        assert!(rp.rate() > before);
    }

    #[test]
    fn unconstrained_rp_ignores_byte_counter() {
        let mut rp = rp();
        let before = rp.rate();
        rp.on_bits_sent(1.0e9);
        assert_eq!(rp.rate(), before);
        assert_eq!(rp.stage(), QcnStage::Unconstrained);
    }

    #[test]
    fn rate_never_below_floor() {
        let mut rp = rp();
        for _ in 0..100 {
            rp.on_feedback(&QcnFeedback { dst: SourceId(0), fb: 1.0 });
        }
        assert!(rp.rate() >= 1.0e9 * 1e-5);
    }
}
