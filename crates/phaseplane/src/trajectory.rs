//! Trajectory tracing for planar systems.
//!
//! Generic systems go through event-located DOPRI5 integration
//! ([`trajectory`] / [`trajectory_with_events`]); *linear* systems have an
//! exact matrix-exponential sampler ([`linear_trajectory`]) — the analytic
//! engine used by the BCN sweeps, where each control region is linear.

use odesolve::{integrate_with_events, Dopri5, EventSpec, Options, Solution, SolveError};

use crate::linear2d::{Eigen2, Mat2};
use crate::system::PlaneSystem;

/// Options for [`trajectory`] tracing.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryOptions {
    /// Integration horizon (time units of the system).
    pub t_end: f64,
    /// Absolute/relative tolerance of the adaptive integrator.
    pub tol: f64,
    /// Spacing of recorded points (`None` records accepted steps only).
    pub record_dt: Option<f64>,
    /// Accepted-step budget.
    pub max_steps: usize,
}

impl Default for TrajectoryOptions {
    fn default() -> Self {
        Self { t_end: 10.0, tol: 1e-9, record_dt: None, max_steps: 1_000_000 }
    }
}

impl TrajectoryOptions {
    /// Sets the integration horizon.
    #[must_use]
    pub fn with_t_end(mut self, t_end: f64) -> Self {
        self.t_end = t_end;
        self
    }

    /// Sets the integrator tolerance.
    #[must_use]
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Records points at roughly this spacing.
    #[must_use]
    pub fn with_record_dt(mut self, dt: f64) -> Self {
        self.record_dt = Some(dt);
        self
    }
}

/// Traces the trajectory of `sys` starting at `p0` for `opts.t_end` time
/// units.
///
/// # Errors
///
/// Propagates integration failures from `odesolve`.
pub fn trajectory<S: PlaneSystem>(
    sys: &S,
    p0: [f64; 2],
    opts: &TrajectoryOptions,
) -> Result<Solution<2>, SolveError> {
    trajectory_with_events(sys, p0, &[], opts)
}

/// Traces a trajectory while watching the given guard events (e.g. a
/// Poincaré section crossing); a terminal event stops the trace exactly on
/// the guard zero.
///
/// # Errors
///
/// Propagates integration failures from `odesolve`.
pub fn trajectory_with_events<S: PlaneSystem>(
    sys: &S,
    p0: [f64; 2],
    events: &[EventSpec<'_, 2>],
    opts: &TrajectoryOptions,
) -> Result<Solution<2>, SolveError> {
    let ode = |_t: f64, y: &[f64; 2]| sys.deriv(*y);
    let mut stepper = Dopri5::with_tolerances(opts.tol, opts.tol);
    let mut o = Options::default().with_max_steps(opts.max_steps);
    if let Some(dt) = opts.record_dt {
        o = o.with_record_dt(dt);
    }
    integrate_with_events(&ode, 0.0, p0, opts.t_end, &mut stepper, events, &o)
}

/// Samples the *exact* trajectory of the linear system `dz/dt = J z` from
/// `p0`: no integration error, cost proportional to the number of samples
/// only. Points are spaced `opts.record_dt` apart (default: 256 samples
/// across the horizon) and the final point lands exactly on `opts.t_end`;
/// `opts.tol` and `opts.max_steps` are ignored — there is no stepper.
#[must_use]
pub fn linear_trajectory(j: &Mat2, p0: [f64; 2], opts: &TrajectoryOptions) -> Solution<2> {
    let eig = j.eigen();
    let dt = opts.record_dt.unwrap_or(opts.t_end / 256.0);
    let mut times = Vec::new();
    if dt > 0.0 {
        let mut t = dt;
        while t < opts.t_end - 1e-12 * dt {
            times.push(t);
            t += dt;
        }
    }
    times.push(opts.t_end);
    let mut sol = Solution::new(0.0, p0);
    sol.push_samples(0.0, &times, |t| linear_exp(j, &eig, t).mul_vec(p0));
    sol
}

/// The matrix exponential `e^{J t}` from the precomputed eigenstructure.
fn linear_exp(j: &Mat2, eig: &Eigen2, t: f64) -> Mat2 {
    let i = Mat2::identity();
    match *eig {
        // e^{Jt} = e^{re t} [cos(im t) I + sin(im t)/im (J - re I)]
        Eigen2::Complex { re, im } => {
            let e = (re * t).exp();
            let (s, c) = (im * t).sin_cos();
            j.add(&i.scale(-re)).scale(e * s / im).add(&i.scale(e * c))
        }
        // Lagrange form on the spectral projectors.
        Eigen2::RealDistinct { l1, l2, .. } => {
            let (e1, e2) = ((l1 * t).exp(), (l2 * t).exp());
            let p1 = j.add(&i.scale(-l2)).scale(1.0 / (l1 - l2));
            let p2 = j.add(&i.scale(-l1)).scale(1.0 / (l2 - l1));
            p1.scale(e1).add(&p2.scale(e2))
        }
        // e^{Jt} = e^{l t} [I + t (J - l I)]
        Eigen2::RealRepeated { l, .. } => {
            let e = (l * t).exp();
            i.add(&j.add(&i.scale(-l)).scale(t)).scale(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odesolve::Direction;

    #[test]
    fn circle_trajectory_stays_on_circle() {
        let rotation = |p: [f64; 2]| [-p[1], p[0]];
        let sol = trajectory(
            &rotation,
            [1.0, 0.0],
            &TrajectoryOptions::default().with_t_end(std::f64::consts::TAU).with_tol(1e-11),
        )
        .unwrap();
        for p in sol.states() {
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            assert!((r - 1.0).abs() < 1e-8);
        }
        let end = sol.last_state();
        assert!((end[0] - 1.0).abs() < 1e-7 && end[1].abs() < 1e-7);
    }

    #[test]
    fn damped_oscillator_converges_to_origin() {
        let damped = |p: [f64; 2]| [p[1], -p[0] - 0.5 * p[1]];
        let sol = trajectory(&damped, [2.0, 0.0], &TrajectoryOptions::default().with_t_end(60.0))
            .unwrap();
        let end = sol.last_state();
        assert!(end[0].abs() < 1e-4 && end[1].abs() < 1e-4, "end {end:?}");
    }

    #[test]
    fn linear_trajectory_matches_numeric_for_every_spectrum() {
        // Companion matrices spanning the three eigenstructures:
        // 0.4/4 complex, 5/4 real distinct, 4/4 repeated (disc = 0 exact).
        for (m, n) in [(0.4, 4.0), (5.0, 4.0), (4.0, 4.0)] {
            let j = Mat2::companion(m, n);
            let sys = move |p: [f64; 2]| j.mul_vec(p);
            let p0 = [1.0, -0.5];
            let opts =
                TrajectoryOptions::default().with_t_end(3.0).with_tol(1e-12).with_record_dt(0.05);
            let num = trajectory(&sys, p0, &opts).unwrap();
            let ana = linear_trajectory(&j, p0, &opts);
            assert_eq!(ana.states()[0], p0);
            assert_eq!(ana.last_time(), 3.0);
            assert!(ana.len() >= 60, "grid too sparse: {}", ana.len());
            let (za, zn) = (ana.last_state(), num.last_state());
            for i in 0..2 {
                assert!(
                    (za[i] - zn[i]).abs() < 1e-8,
                    "(m, n) = ({m}, {n}) component {i}: exact {za:?} vs numeric {zn:?}"
                );
            }
        }
    }

    #[test]
    fn linear_trajectory_default_grid_covers_horizon() {
        let j = Mat2::companion(1.0, 2.0);
        let sol = linear_trajectory(&j, [1.0, 0.0], &TrajectoryOptions::default().with_t_end(2.0));
        assert_eq!(sol.last_time(), 2.0);
        assert!(sol.len() >= 256);
    }

    #[test]
    fn event_stops_on_axis_crossing() {
        let rotation = |p: [f64; 2]| [-p[1], p[0]];
        let guard = |_t: f64, p: &[f64; 2]| p[0]; // x = 0 at quarter turn
        let events = [EventSpec::terminal(&guard).with_direction(Direction::Falling)];
        let sol = trajectory_with_events(
            &rotation,
            [1.0, 0.0],
            &events,
            &TrajectoryOptions::default().with_t_end(10.0).with_tol(1e-11),
        )
        .unwrap();
        assert!((sol.last_time() - std::f64::consts::FRAC_PI_2).abs() < 1e-8);
        let end = sol.last_state();
        assert!(end[0].abs() < 1e-9 && (end[1] - 1.0).abs() < 1e-7);
    }
}
