//! Batched multi-seed simulation runs.
//!
//! The simulator itself is fully deterministic — same [`SimConfig`],
//! same trajectory. Sensitivity studies instead perturb the *workload*:
//! each seed deterministically jitters every flow's start time and
//! initial rate (a splitmix64 hash of `(seed, flow, field)`), so a batch
//! explores a reproducible neighbourhood of the base scenario. Seeds run
//! in parallel across the configured worker count (see the `parkit`
//! crate); each run carries its own [`Telemetry`] shard and the shards
//! are merged in seed order afterwards, so the aggregate telemetry is
//! identical at any thread count.
//!
//! Seeds are *panic-isolated*: a seed whose run panics (or whose jittered
//! configuration fails validation) is captured as
//! [`SeedOutcome::Failed`] and quarantined while every other seed
//! completes normally. A panicking seed additionally surrenders its
//! flight recorder — the telemetry shard it had accumulated up to the
//! panic, including the open-span stack — so the crash can be debriefed
//! (see `dcebcn batch`'s `results/postmortem-<seed>.jsonl`).

use telemetry::{SpanKind, Telemetry, TelemetryLevel};

use crate::faults::splitmix64;
use crate::sim::{SimConfig, SimReport, SimWorkspace, Simulation};
use crate::time::Time;

/// A multi-seed batch around a base scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// The unperturbed scenario.
    pub base: SimConfig,
    /// One simulation per seed. Seed values are free-form; equal seeds
    /// produce equal runs.
    pub seeds: Vec<u64>,
    /// Telemetry level for every run (`Off` skips the sinks entirely).
    pub level: TelemetryLevel,
    /// Maximum start-time jitter in seconds: each flow's start moves
    /// forward by `u * start_jitter_secs` with `u` uniform in `[0, 1)`.
    pub start_jitter_secs: f64,
    /// Relative initial-rate jitter: each flow's rate is scaled by
    /// `1 + (2u - 1) * rate_jitter_frac`.
    pub rate_jitter_frac: f64,
    /// Seeds that deliberately panic partway through their run (test
    /// hook for the quarantine and flight-recorder machinery; see
    /// `dcebcn batch --faults panic-seed=N`).
    pub panic_seeds: Vec<u64>,
}

impl BatchConfig {
    /// A batch over `n_seeds` consecutive seeds with mild jitter (5% of
    /// the simulated horizon in start time, 10% in initial rate).
    #[must_use]
    pub fn quick(base: SimConfig, n_seeds: u64) -> Self {
        let horizon = base.t_end.as_secs();
        Self {
            base,
            seeds: (0..n_seeds).collect(),
            level: TelemetryLevel::Off,
            start_jitter_secs: 0.05 * horizon,
            rate_jitter_frac: 0.1,
            panic_seeds: Vec::new(),
        }
    }
}

/// What happened to one seed of a batch.
///
/// The completed report is boxed: a `SimReport` carries full time
/// series, so parking it on the heap keeps the outcome vector compact
/// next to the small `Failed` variant.
#[derive(Debug)]
pub enum SeedOutcome {
    /// The run finished; its report is attached.
    Completed(Box<SimReport>),
    /// The run panicked or its configuration was invalid; the seed is
    /// quarantined and the rest of the batch is unaffected.
    Failed {
        /// Human-readable failure cause (panic message or config error).
        cause: String,
        /// The flight recorder salvaged from the panicked run: the
        /// telemetry shard as it stood at the moment of the panic —
        /// trace ring, open-span stack, metrics. `None` when collection
        /// was off or the configuration never validated.
        telemetry: Option<Box<Telemetry>>,
    },
}

/// The result of one batch: per-seed outcomes in seed order plus the
/// merged telemetry aggregate.
#[derive(Debug)]
pub struct BatchReport {
    /// The seeds, in the order the outcomes are stored.
    pub seeds: Vec<u64>,
    /// One outcome per seed, input order preserved.
    pub outcomes: Vec<SeedOutcome>,
    /// Telemetry shards of the *completed* seeds merged in seed order
    /// (counters added, histograms combined bucket-wise, traces
    /// interleaved by sim time); `None` when the level disables
    /// collection.
    pub telemetry: Option<Telemetry>,
}

impl BatchReport {
    /// The seeds that finished, with their reports, in seed order.
    pub fn completed(&self) -> impl Iterator<Item = (u64, &SimReport)> {
        self.seeds.iter().zip(&self.outcomes).filter_map(|(&seed, out)| match out {
            SeedOutcome::Completed(report) => Some((seed, report.as_ref())),
            SeedOutcome::Failed { .. } => None,
        })
    }

    /// The quarantined seeds with their failure causes, in seed order.
    pub fn failures(&self) -> impl Iterator<Item = (u64, &str)> {
        self.seeds.iter().zip(&self.outcomes).filter_map(|(&seed, out)| match out {
            SeedOutcome::Completed(_) => None,
            SeedOutcome::Failed { cause, .. } => Some((seed, cause.as_str())),
        })
    }

    /// The quarantined seeds with cause and salvaged flight-recorder
    /// telemetry (when any was captured), in seed order.
    pub fn postmortems(&self) -> impl Iterator<Item = (u64, &str, Option<&Telemetry>)> {
        self.seeds.iter().zip(&self.outcomes).filter_map(|(&seed, out)| match out {
            SeedOutcome::Completed(_) => None,
            SeedOutcome::Failed { cause, telemetry } => {
                Some((seed, cause.as_str(), telemetry.as_deref()))
            }
        })
    }
}

/// How many events a `panic_seeds` run dispatches before it blows up —
/// enough that the flight recorder has a trace worth dumping.
const PANIC_AFTER_STEPS: u64 = 256;

/// A deterministic uniform sample in `[0, 1)` keyed by `(seed, flow,
/// field)`.
fn unit(seed: u64, flow: u64, field: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(flow ^ splitmix64(field)));
    // 53 high bits -> the full f64 mantissa range.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The base scenario perturbed for one seed: every flow's start time and
/// initial rate jittered deterministically. Seed-stable: the same
/// `(cfg, seed)` pair always yields the same configuration.
#[must_use]
pub fn seeded_config(cfg: &BatchConfig, seed: u64) -> SimConfig {
    let mut out = cfg.base.clone();
    for (i, flow) in out.flows.iter_mut().enumerate() {
        let i = i as u64;
        let ds = unit(seed, i, 0) * cfg.start_jitter_secs;
        let dr = 1.0 + (2.0 * unit(seed, i, 1) - 1.0) * cfg.rate_jitter_frac;
        flow.start = Time::from_secs(flow.start.as_secs() + ds);
        flow.initial_rate *= dr;
    }
    // With fault injection on, each seed gets its own decision streams;
    // a fault-free base is left untouched so the run stays byte-identical
    // to the pre-fault-layer batch.
    if out.faults.enabled() {
        out.faults.seed = splitmix64(seed ^ out.faults.seed);
    }
    out
}

/// Runs every seed of the batch, in parallel across the configured
/// worker count, and merges the telemetry shards in seed order.
///
/// Determinism: each seed's trajectory depends only on its
/// [`seeded_config`], and results land at their seed's index, so the
/// batch output — including the merged telemetry — is identical at any
/// thread count (`DCE_BCN_THREADS=1` included).
#[must_use]
pub fn run_batch(cfg: &BatchConfig) -> BatchReport {
    // Each worker keeps one `SimWorkspace`, so the event-queue slab and
    // bottleneck FIFO are allocated once per worker and recycled across
    // its seeds (reuse changes no trajectory — see
    // `workspace_reuse_is_bit_identical` in `crate::sim`).
    let outcomes = parkit::par_map_init(cfg.seeds.len(), SimWorkspace::new, |ws, idx| {
        let seed = cfg.seeds[idx];
        // The workspace is taken out for the duration of the run so a
        // panicking seed cannot leave half-torn buffers behind; the
        // worker then continues with a fresh (empty) workspace.
        let mut local = std::mem::take(ws);
        let sim_cfg = seeded_config(cfg, seed);
        if let Err(e) = sim_cfg.validate() {
            *ws = local;
            return SeedOutcome::Failed { cause: e.to_string(), telemetry: None };
        }
        // Known-hazardous seeds get a full flight recorder regardless of
        // the batch level: they always fail, so their shards never reach
        // the merge and the upgrade cannot perturb aggregate telemetry.
        let panic_after = cfg.panic_seeds.contains(&seed).then_some(PANIC_AFTER_STEPS);
        let level = if panic_after.is_some() { TelemetryLevel::Full } else { cfg.level };
        let t_end = sim_cfg.t_end.as_secs();
        let mut sim = Simulation::new_in(sim_cfg, &mut local);
        let mut seed_span = 0;
        if level.enabled() {
            let mut tel = Telemetry::new(level);
            // Disjoint per-seed id ranges keep span ids unique after the
            // shards merge.
            tel.set_span_id_base((seed + 1) << 32);
            seed_span = tel.span_begin(0.0, SpanKind::BatchSeed, seed as u32, 0);
            sim = sim.with_telemetry_sink(tel);
        }
        // Only the step loop is unwind-wrapped: construction was
        // validated above, and the engine stays owned out here so a
        // panicking run can still surrender its flight recorder. The
        // closure mutates nothing but the engine, which is inspected
        // (not re-run) after a panic, so the unwind-safety assertion is
        // sound.
        let stepped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut steps: u64 = 0;
            while sim.step() {
                steps += 1;
                if panic_after.is_some_and(|n| steps >= n) {
                    panic!("seed {seed}: intentional panic (panic_seeds)");
                }
            }
            // A run shorter than the trigger still has to fail.
            if panic_after.is_some() {
                panic!("seed {seed}: intentional panic (panic_seeds)");
            }
        }));
        match stepped {
            Ok(()) => {
                let mut report = sim.finish_into(&mut local);
                *ws = local;
                if let Some(tel) = report.telemetry.as_mut() {
                    tel.span_end(t_end, seed_span);
                }
                SeedOutcome::Completed(Box::new(report))
            }
            Err(payload) => SeedOutcome::Failed {
                cause: panic_message(payload.as_ref()),
                telemetry: sim.take_telemetry().map(Box::new),
            },
        }
    });
    let telemetry = cfg.level.enabled().then(|| {
        let mut agg = Telemetry::new(cfg.level);
        for outcome in &outcomes {
            if let SeedOutcome::Completed(report) = outcome {
                if let Some(shard) = &report.telemetry {
                    agg.merge(shard);
                }
            }
        }
        agg
    });
    BatchReport { seeds: cfg.seeds.clone(), outcomes, telemetry }
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: u64) -> BatchConfig {
        let mut base = SimConfig::fluid_validation_default();
        base.t_end = Time::from_secs(0.02);
        BatchConfig { level: TelemetryLevel::Full, ..BatchConfig::quick(base, n) }
    }

    #[test]
    fn seeded_configs_are_deterministic_and_distinct() {
        let cfg = batch(2);
        let a = seeded_config(&cfg, 7);
        let b = seeded_config(&cfg, 7);
        assert_eq!(a, b, "same seed must reproduce the same scenario");
        let c = seeded_config(&cfg, 8);
        assert_ne!(a.flows, c.flows, "different seeds must differ");
        for (orig, jit) in cfg.base.flows.iter().zip(&a.flows) {
            assert!(jit.start >= orig.start);
            assert!(jit.start.as_secs() <= orig.start.as_secs() + cfg.start_jitter_secs);
            let ratio = jit.initial_rate / orig.initial_rate;
            assert!((ratio - 1.0).abs() <= cfg.rate_jitter_frac + 1e-12);
        }
    }

    #[test]
    fn zero_jitter_reproduces_the_base_scenario() {
        let mut cfg = batch(1);
        cfg.start_jitter_secs = 0.0;
        cfg.rate_jitter_frac = 0.0;
        assert_eq!(seeded_config(&cfg, 123), cfg.base);
    }

    #[test]
    fn batch_results_are_identical_at_any_thread_count() {
        let cfg = batch(4);
        parkit::set_threads(1);
        let serial = run_batch(&cfg);
        parkit::set_threads(4);
        let parallel = run_batch(&cfg);
        parkit::set_threads(0);
        assert_eq!(serial.completed().count(), 4);
        for ((_, s), (_, p)) in serial.completed().zip(parallel.completed()) {
            assert_eq!(s.metrics.delivered_frames, p.metrics.delivered_frames);
            assert_eq!(s.final_rates, p.final_rates);
            assert_eq!(s.metrics.queue.values(), p.metrics.queue.values());
        }
        let (st, pt) = (serial.telemetry.unwrap(), parallel.telemetry.unwrap());
        assert_eq!(st.metrics.counters().count(), pt.metrics.counters().count());
        for ((an, av), (bn, bv)) in st.metrics.counters().zip(pt.metrics.counters()) {
            assert_eq!((an, av), (bn, bv));
        }
        assert_eq!(st.trace.len(), pt.trace.len());
    }

    #[test]
    fn merged_trace_is_ordered_by_sim_time() {
        let report = run_batch(&batch(3));
        let tel = report.telemetry.expect("telemetry requested");
        let times: Vec<f64> = tel.trace.iter().map(telemetry::Event::time).collect();
        assert!(!times.is_empty(), "batch runs should emit events");
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "trace not time-sorted");
    }

    #[test]
    fn telemetry_off_skips_the_aggregate() {
        let mut cfg = batch(2);
        cfg.level = TelemetryLevel::Off;
        let report = run_batch(&cfg);
        assert!(report.telemetry.is_none());
        assert!(report.completed().all(|(_, r)| r.telemetry.is_none()));
    }

    #[test]
    fn a_panicking_seed_is_quarantined() {
        let mut cfg = batch(8);
        cfg.panic_seeds = vec![3];
        let report = run_batch(&cfg);
        assert_eq!(report.completed().count(), 7, "the other seeds must finish");
        let failures: Vec<_> = report.failures().collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, 3);
        assert!(failures[0].1.contains("intentional panic"), "cause: {}", failures[0].1);
        // Merged telemetry covers exactly the completed seeds.
        let tel = report.telemetry.as_ref().expect("telemetry requested");
        let fb: u64 = report.completed().map(|(_, r)| r.metrics.feedback_messages).sum();
        assert_eq!(tel.metrics.counter_by_name("sim.bcn_messages"), Some(fb));
    }

    #[test]
    fn a_panicking_seed_leaves_the_merged_shard_untouched() {
        // Quarantine must be surgical: the merged telemetry with seed 3
        // panicking is byte-identical to a batch that never had seed 3.
        let mut with_panic = batch(8);
        with_panic.panic_seeds = vec![3];
        let mut without = batch(8);
        without.seeds.retain(|&s| s != 3);
        let a = run_batch(&with_panic).telemetry.expect("telemetry requested");
        let b = run_batch(&without).telemetry.expect("telemetry requested");
        assert_eq!(a.trace_to_jsonl(), b.trace_to_jsonl(), "merged traces differ");
        let ca: Vec<_> = a.metrics.counters().collect();
        let cb: Vec<_> = b.metrics.counters().collect();
        assert_eq!(ca, cb, "merged counters differ");
    }

    #[test]
    fn a_panicking_seed_surrenders_its_flight_recorder() {
        // Even with batch telemetry off, a known-hazardous seed records a
        // full flight recorder and hands it over on failure.
        let mut cfg = batch(4);
        cfg.level = TelemetryLevel::Off;
        cfg.panic_seeds = vec![2];
        let report = run_batch(&cfg);
        let (seed, cause, tel) = report.postmortems().next().expect("one failure");
        assert_eq!(seed, 2);
        assert!(cause.contains("intentional panic"), "cause: {cause}");
        let tel = tel.expect("flight recorder captured");
        assert!(!tel.trace.is_empty(), "flight recorder trace is empty");
        let spans = tel.open_spans();
        assert!(!spans.is_empty(), "open-span stack is empty");
        assert_eq!(spans[0].kind, SpanKind::BatchSeed, "seed span must anchor the stack");
        assert_eq!(spans[0].entity, 2);
        assert_eq!(spans[0].id, (3 << 32) + 1, "span ids must use the per-seed base");
        // Completed seeds are unaffected by the neighbour's upgrade.
        assert_eq!(report.completed().count(), 3);
        assert!(report.completed().all(|(_, r)| r.telemetry.is_none()));
    }

    #[test]
    fn merged_batch_telemetry_carries_scheduler_stats() {
        let report = run_batch(&batch(3));
        let tel = report.telemetry.expect("telemetry requested");
        let scheduled = tel.metrics.counter_by_name("scheduler.events_scheduled");
        let executed = tel.metrics.counter_by_name("scheduler.events_popped");
        assert!(scheduled.is_some_and(|v| v > 0), "scheduler.events_scheduled missing from merge");
        assert!(executed.is_some_and(|v| v > 0), "scheduler.events_popped missing from merge");
        // Summed across shards: each of the three seeds contributes.
        assert!(scheduled.unwrap() >= 3, "expected per-seed flushes to accumulate");
    }

    #[test]
    fn batch_seed_spans_bracket_each_completed_run() {
        let report = run_batch(&batch(2));
        let tel = report.telemetry.expect("telemetry requested");
        let begins: Vec<_> = tel
            .trace
            .iter()
            .filter_map(|e| match e {
                telemetry::Event::SpanBegin { id, kind: SpanKind::BatchSeed, entity, .. } => {
                    Some((*id, *entity))
                }
                _ => None,
            })
            .collect();
        assert_eq!(begins, vec![((1 << 32) + 1, 0), ((2 << 32) + 1, 1)]);
        for (id, _) in begins {
            let ended = tel
                .trace
                .iter()
                .any(|e| matches!(e, telemetry::Event::SpanEnd { id: eid, .. } if *eid == id));
            assert!(ended, "seed span {id:#x} never closed");
        }
        assert!(tel.open_spans().is_empty(), "merged shard must not report open spans");
    }

    #[test]
    fn an_invalid_seeded_config_fails_without_panicking() {
        let mut cfg = batch(3);
        cfg.base.capacity = 0.0;
        let report = run_batch(&cfg);
        assert_eq!(report.completed().count(), 0);
        for (_, cause) in report.failures() {
            assert!(cause.contains("capacity"), "cause: {cause}");
        }
    }

    #[test]
    fn fault_plans_replay_identically_at_any_thread_count() {
        let mut cfg = batch(4);
        cfg.base.faults.seed = 99;
        cfg.base.faults.feedback_loss = 0.25;
        cfg.base.faults.data_loss = 0.02;
        parkit::set_threads(1);
        let serial = run_batch(&cfg);
        parkit::set_threads(4);
        let parallel = run_batch(&cfg);
        parkit::set_threads(0);
        let a: Vec<_> = serial.completed().map(|(s, r)| (s, r.metrics.faults.clone())).collect();
        let b: Vec<_> = parallel.completed().map(|(s, r)| (s, r.metrics.faults.clone())).collect();
        assert_eq!(a, b, "fault decisions must not depend on the thread count");
        assert!(a.iter().any(|(_, f)| f.total() > 0), "faults were actually injected");
        // Distinct seeds draw distinct fault streams.
        assert!(a.windows(2).any(|w| w[0].1 != w[1].1), "per-seed fault streams identical");
    }

    #[test]
    fn fault_free_base_keeps_seeded_configs_untouched_by_the_fault_layer() {
        let cfg = batch(1);
        assert!(!cfg.base.faults.enabled());
        let seeded = seeded_config(&cfg, 42);
        assert_eq!(seeded.faults, cfg.base.faults, "fault seed must not be mixed when disabled");
    }
}
