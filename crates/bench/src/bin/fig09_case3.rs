//! Regenerates the paper's Fig. 9 (Case 3 dynamics).

fn main() {
    if let Err(e) = bench::figures::fig09::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
