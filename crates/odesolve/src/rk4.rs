//! Classical fixed-step fourth-order Runge–Kutta.

use crate::stepper::{StepOutcome, Stepper};
use crate::vecn::{all_finite, axpy, axpy_mut, scale};
use crate::{Ode, SolveError};

/// The classical RK4 method.
///
/// Takes exactly the step it is given (no error control), which makes it the
/// right tool for delay systems integrated by the method of steps and for
/// convergence-order studies. For production integration of the BCN phase
/// plane prefer [`crate::Dopri5`].
///
/// # Example
///
/// ```
/// use odesolve::{integrate, Options, Rk4};
///
/// // Harmonic oscillator x'' = -x integrated over one period.
/// let sol = integrate(
///     &|_t: f64, y: &[f64; 2]| [y[1], -y[0]],
///     0.0,
///     [1.0, 0.0],
///     std::f64::consts::TAU,
///     &mut Rk4::with_step(1e-3),
///     &Options::default(),
/// )
/// .unwrap();
/// assert!((sol.last_state()[0] - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rk4 {
    h: f64,
}

impl Rk4 {
    /// Creates an RK4 stepper with a default step of `1e-3`.
    #[must_use]
    pub fn new() -> Self {
        Self::with_step(1e-3)
    }

    /// Creates an RK4 stepper that takes steps of size `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not strictly positive and finite.
    #[must_use]
    pub fn with_step(h: f64) -> Self {
        assert!(h.is_finite() && h > 0.0, "RK4 step must be positive and finite");
        Self { h }
    }

    /// The configured step size.
    #[must_use]
    pub fn step_size(&self) -> f64 {
        self.h
    }

    /// Performs one raw RK4 update of size `h` (no finiteness checks).
    #[must_use]
    pub fn advance<const N: usize>(
        ode: &dyn Ode<N>,
        t: f64,
        y: &[f64; N],
        f: &[f64; N],
        h: f64,
    ) -> [f64; N] {
        let k1 = *f;
        let k2 = ode.rhs(t + 0.5 * h, &axpy(y, 0.5 * h, &k1));
        let k3 = ode.rhs(t + 0.5 * h, &axpy(y, 0.5 * h, &k2));
        let k4 = ode.rhs(t + h, &axpy(y, h, &k3));
        let mut incr = scale(1.0, &k1);
        axpy_mut(&mut incr, 2.0, &k2);
        axpy_mut(&mut incr, 2.0, &k3);
        axpy_mut(&mut incr, 1.0, &k4);
        axpy(y, h / 6.0, &incr)
    }
}

impl Default for Rk4 {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> Stepper<N> for Rk4 {
    fn step(
        &mut self,
        ode: &dyn Ode<N>,
        t: f64,
        y: &[f64; N],
        f: &[f64; N],
        h: f64,
    ) -> Result<StepOutcome<N>, SolveError> {
        let h_eff = h.min(self.h);
        if h_eff <= 0.0 {
            return Err(SolveError::BadInput(format!("non-positive step {h_eff}")));
        }
        let y_new = Self::advance(ode, t, y, f, h_eff);
        if !all_finite(&y_new) {
            return Err(SolveError::NonFiniteState { t: t + h_eff });
        }
        let t_new = t + h_eff;
        let f_new = ode.rhs(t_new, &y_new);
        Ok(StepOutcome { t_new, y_new, f_new, h_next: self.h })
    }

    fn initial_step(&self, _t0: f64, _y0: &[f64; N], _f0: &[f64; N], _t_end: f64) -> f64 {
        self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dy/dt = y, y(0) = 1 -> y(1) = e.
    #[test]
    fn exponential_growth() {
        let ode = |_t: f64, y: &[f64; 1]| [y[0]];
        let mut t = 0.0;
        let mut y = [1.0];
        let h = 1e-3;
        while t < 1.0 - 1e-12 {
            let f = ode(t, &y);
            y = Rk4::advance(&ode, t, &y, &f, h);
            t += h;
        }
        assert!((y[0] - 1.0f64.exp()).abs() < 1e-10);
    }

    /// Halving the step should shrink the global error ~16x (order 4).
    #[test]
    fn convergence_order_is_four() {
        let ode = |t: f64, y: &[f64; 1]| [t * y[0]];
        let exact = (0.5_f64).exp(); // y' = t*y, y(0)=1 -> y(1)=e^{1/2}
        let run = |h: f64| {
            let mut t = 0.0;
            let mut y = [1.0];
            let n = (1.0 / h).round() as usize;
            for _ in 0..n {
                let f = ode(t, &y);
                y = Rk4::advance(&ode, t, &y, &f, h);
                t += h;
            }
            (y[0] - exact).abs()
        };
        let e1 = run(0.02);
        let e2 = run(0.01);
        let order = (e1 / e2).log2();
        assert!((order - 4.0).abs() < 0.3, "observed order {order}, errors {e1} {e2}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_step() {
        let _ = Rk4::with_step(0.0);
    }

    #[test]
    fn stepper_trait_clamps_to_configured_step() {
        let ode = |_t: f64, y: &[f64; 1]| [-y[0]];
        let mut rk = Rk4::with_step(0.5);
        let f = ode(0.0, &[1.0]);
        let out = <Rk4 as Stepper<1>>::step(&mut rk, &ode, 0.0, &[1.0], &f, 10.0).unwrap();
        assert!((out.t_new - 0.5).abs() < 1e-15);
        // But a smaller remaining interval shortens the step.
        let out = <Rk4 as Stepper<1>>::step(&mut rk, &ode, 0.0, &[1.0], &f, 0.25).unwrap();
        assert!((out.t_new - 0.25).abs() < 1e-15);
    }

    #[test]
    fn detects_non_finite() {
        let ode = |_t: f64, _y: &[f64; 1]| [f64::NAN];
        let mut rk = Rk4::new();
        let err =
            <Rk4 as Stepper<1>>::step(&mut rk, &ode, 0.0, &[1.0], &[f64::NAN], 0.1).unwrap_err();
        assert!(matches!(err, SolveError::NonFiniteState { .. }));
    }
}
