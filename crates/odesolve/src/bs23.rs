//! Adaptive Bogacki–Shampine 3(2) embedded Runge–Kutta pair.

use crate::stepper::{StepOutcome, Stepper};
use crate::vecn::{all_finite, axpy, axpy_mut, error_norm};
use crate::{Ode, SolveError};

/// Adaptive Bogacki–Shampine 3(2) stepper (the method behind MATLAB's
/// `ode23`).
///
/// A lower-order, cheaper alternative to [`crate::Dopri5`]: three
/// derivative evaluations per step (four with FSAL reuse), third-order
/// accurate with an embedded second-order error estimate. The right tool
/// when the requested tolerance is loose (1e-4 .. 1e-6) or the right-hand
/// side is expensive; also used by this workspace as an *independent
/// implementation* to cross-check Dormand–Prince results in tests.
///
/// # Example
///
/// ```
/// use odesolve::{integrate, Bs23, Options};
///
/// let sol = integrate(
///     &|_t: f64, y: &[f64; 1]| [-y[0]],
///     0.0,
///     [1.0],
///     2.0,
///     &mut Bs23::with_tolerances(1e-8, 1e-8),
///     &Options::default(),
/// )
/// .unwrap();
/// assert!((sol.last_state()[0] - (-2.0f64).exp()).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bs23 {
    atol: f64,
    rtol: f64,
    safety: f64,
    min_factor: f64,
    max_factor: f64,
    /// Trial steps rejected since the last `take_rejections` drain.
    rejections: u32,
    /// Error norm of the most recent accepted step.
    last_en: f64,
}

impl Bs23 {
    /// Creates a stepper with default tolerances `atol = rtol = 1e-6`.
    #[must_use]
    pub fn new() -> Self {
        Self::with_tolerances(1e-6, 1e-6)
    }

    /// Creates a stepper with the given tolerances.
    ///
    /// # Panics
    ///
    /// Panics if either tolerance is not strictly positive and finite.
    #[must_use]
    pub fn with_tolerances(atol: f64, rtol: f64) -> Self {
        assert!(atol.is_finite() && atol > 0.0, "atol must be positive");
        assert!(rtol.is_finite() && rtol > 0.0, "rtol must be positive");
        Self {
            atol,
            rtol,
            safety: 0.9,
            min_factor: 0.2,
            max_factor: 5.0,
            rejections: 0,
            last_en: f64::NAN,
        }
    }

    fn try_step<const N: usize>(
        &self,
        ode: &dyn Ode<N>,
        t: f64,
        y: &[f64; N],
        f: &[f64; N],
        h: f64,
    ) -> ([f64; N], [f64; N], f64) {
        let k1 = *f;
        let k2 = ode.rhs(t + 0.5 * h, &axpy(y, 0.5 * h, &k1));
        let k3 = ode.rhs(t + 0.75 * h, &axpy(y, 0.75 * h, &k2));
        // 3rd-order solution.
        let mut y3 = *y;
        axpy_mut(&mut y3, h * 2.0 / 9.0, &k1);
        axpy_mut(&mut y3, h * 1.0 / 3.0, &k2);
        axpy_mut(&mut y3, h * 4.0 / 9.0, &k3);
        // FSAL stage at the new point doubles as the 2nd-order estimate's
        // last stage.
        let k4 = ode.rhs(t + h, &y3);
        // Error = y3 - y2 with b2 = (7/24, 1/4, 1/3, 1/8).
        let mut err = [0.0; N];
        axpy_mut(&mut err, h * (2.0 / 9.0 - 7.0 / 24.0), &k1);
        axpy_mut(&mut err, h * (1.0 / 3.0 - 1.0 / 4.0), &k2);
        axpy_mut(&mut err, h * (4.0 / 9.0 - 1.0 / 3.0), &k3);
        axpy_mut(&mut err, h * (-1.0 / 8.0), &k4);
        let en = error_norm(&err, y, &y3, self.atol, self.rtol);
        (y3, k4, en)
    }
}

impl Default for Bs23 {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> Stepper<N> for Bs23 {
    fn step(
        &mut self,
        ode: &dyn Ode<N>,
        t: f64,
        y: &[f64; N],
        f: &[f64; N],
        h: f64,
    ) -> Result<StepOutcome<N>, SolveError> {
        if !(h.is_finite() && h > 0.0) {
            return Err(SolveError::BadInput(format!("non-positive step {h}")));
        }
        let mut h_try = h;
        for _ in 0..64 {
            let (y_new, f_new, en) = self.try_step(ode, t, y, f, h_try);
            if !all_finite(&y_new) || !en.is_finite() {
                self.rejections += 1;
                h_try *= 0.25;
                if t + h_try == t {
                    return Err(SolveError::NonFiniteState { t });
                }
                continue;
            }
            if en <= 1.0 {
                let factor = (self.safety * en.max(1e-10).powf(-1.0 / 3.0))
                    .clamp(self.min_factor, self.max_factor);
                self.last_en = en;
                return Ok(StepOutcome { t_new: t + h_try, y_new, f_new, h_next: h_try * factor });
            }
            self.rejections += 1;
            let factor = (self.safety * en.powf(-1.0 / 3.0)).clamp(self.min_factor, 1.0);
            h_try *= factor;
            if t + h_try == t {
                return Err(SolveError::StepSizeUnderflow { t, h: h_try });
            }
        }
        Err(SolveError::StepSizeUnderflow { t, h: h_try })
    }

    fn reset(&mut self) {
        self.last_en = f64::NAN;
    }

    fn take_rejections(&mut self) -> u32 {
        std::mem::take(&mut self.rejections)
    }

    fn last_error_estimate(&self) -> f64 {
        self.last_en
    }

    fn initial_step(&self, t0: f64, y0: &[f64; N], f0: &[f64; N], t_end: f64) -> f64 {
        let span = (t_end - t0).abs();
        if span == 0.0 {
            return f64::MIN_POSITIVE;
        }
        let mut d0 = 0.0_f64;
        let mut d1 = 0.0_f64;
        for i in 0..N {
            let sc = self.atol + self.rtol * y0[i].abs();
            d0 = d0.max((y0[i] / sc).abs());
            d1 = d1.max((f0[i] / sc).abs());
        }
        let h0 = if d0 < 1e-5 || d1 < 1e-5 { 1e-6 * span } else { 0.01 * d0 / d1 };
        h0.min(span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{integrate, Options};

    #[test]
    fn exponential_decay() {
        let sol = integrate(
            &|_t: f64, y: &[f64; 1]| [-y[0]],
            0.0,
            [1.0],
            3.0,
            &mut Bs23::with_tolerances(1e-9, 1e-9),
            &Options::default(),
        )
        .unwrap();
        assert!((sol.last_state()[0] - (-3.0f64).exp()).abs() < 1e-7);
    }

    #[test]
    fn agrees_with_dopri5() {
        // Independent implementations agreeing is a strong correctness
        // signal for both.
        let ode = |t: f64, y: &[f64; 2]| [y[1], -y[0] - 0.1 * y[1] + t.sin()];
        let a = integrate(
            &ode,
            0.0,
            [1.0, 0.0],
            10.0,
            &mut Bs23::with_tolerances(1e-10, 1e-10),
            &Options::default(),
        )
        .unwrap();
        let b = integrate(
            &ode,
            0.0,
            [1.0, 0.0],
            10.0,
            &mut crate::Dopri5::with_tolerances(1e-10, 1e-10),
            &Options::default(),
        )
        .unwrap();
        for i in 0..2 {
            assert!(
                (a.last_state()[i] - b.last_state()[i]).abs() < 1e-7,
                "component {i}: {:?} vs {:?}",
                a.last_state(),
                b.last_state()
            );
        }
    }

    #[test]
    fn fsal_derivative_matches_rhs() {
        let ode = |_t: f64, y: &[f64; 1]| [-3.0 * y[0]];
        let mut st = Bs23::new();
        let f0 = ode(0.0, &[2.0]);
        let out = <Bs23 as Stepper<1>>::step(&mut st, &ode, 0.0, &[2.0], &f0, 0.01).unwrap();
        let direct = ode(out.t_new, &out.y_new);
        assert!((out.f_new[0] - direct[0]).abs() < 1e-14);
    }

    #[test]
    fn takes_fewer_accepted_steps_than_dopri5_demands_at_loose_tol() {
        // At loose tolerance the 3rd-order method is competitive: it
        // completes within a small multiple of DP5's step count.
        let ode = |_t: f64, y: &[f64; 2]| [y[1], -y[0]];
        let run = |st: &mut dyn Stepper<2>| {
            integrate(&ode, 0.0, [1.0, 0.0], 20.0, st, &Options::default()).unwrap().len()
        };
        let n23 = run(&mut Bs23::with_tolerances(1e-4, 1e-4));
        let n45 = run(&mut crate::Dopri5::with_tolerances(1e-4, 1e-4));
        assert!(n23 < 6 * n45, "bs23 {n23} steps vs dopri5 {n45}");
    }

    #[test]
    #[should_panic(expected = "atol must be positive")]
    fn rejects_bad_tolerances() {
        let _ = Bs23::with_tolerances(-1.0, 1e-6);
    }

    #[test]
    fn convergence_order_is_three() {
        // Fixed-size steps through the trait at forced h: halving the
        // error tolerance is indirect; instead check global error decays
        // ~h^3 by forcing max_step.
        let exact = (-2.0f64).exp();
        let run = |hmax: f64| {
            let sol = integrate(
                &|_t: f64, y: &[f64; 1]| [-y[0]],
                0.0,
                [1.0],
                2.0,
                // Huge tolerance: the controller never rejects, so the
                // step is pinned at hmax.
                &mut Bs23::with_tolerances(1.0, 1.0),
                &Options::default().with_max_step(hmax),
            )
            .unwrap();
            (sol.last_state()[0] - exact).abs()
        };
        let e1 = run(0.05);
        let e2 = run(0.025);
        let order = (e1 / e2).log2();
        assert!((order - 3.0).abs() < 0.4, "observed order {order}");
    }
}
