//! Loom-free stress tests: spawn/steal under contention, skewed work
//! distributions, panic propagation. These run threads for real (no
//! model checker), leaning on repetition and skew to shake out ordering
//! bugs in the chunk queues.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A deliberately skewed workload: cost grows with the index, so the
/// worker dealt the tail range finishes last and everyone else must
/// steal to stay busy.
fn skewed_work(i: usize) -> u64 {
    let mut acc = i as u64;
    for k in 0..((i % 97) * 50) as u64 {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(k);
    }
    acc
}

#[test]
fn skewed_load_matches_serial_under_contention() {
    let serial: Vec<u64> = (0..4_000).map(skewed_work).collect();
    for threads in [2, 4, 8, 16] {
        let par = parkit::par_map_indexed_in(threads, 4_000, skewed_work);
        assert_eq!(par, serial, "threads={threads}");
    }
}

#[test]
fn repeated_small_maps_survive_spawn_churn() {
    // Many short-lived scopes in a row: exercises worker spawn/join and
    // queue re-dealing rather than steady-state throughput.
    for round in 0..200 {
        let len = round % 17;
        let out = parkit::par_map_indexed_in(4, len, |i| i + round);
        assert_eq!(out, (0..len).map(|i| i + round).collect::<Vec<_>>());
    }
}

#[test]
fn every_index_computed_exactly_once() {
    let hits: Vec<AtomicUsize> = (0..2_048).map(|_| AtomicUsize::new(0)).collect();
    let out = parkit::par_map_indexed_in(8, 2_048, |i| {
        hits[i].fetch_add(1, Ordering::Relaxed);
        i
    });
    assert_eq!(out.len(), 2_048);
    for (i, h) in hits.iter().enumerate() {
        assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} computed a wrong number of times");
    }
}

#[test]
fn panic_in_worker_propagates_to_caller() {
    let result = std::panic::catch_unwind(|| {
        parkit::par_map_indexed_in(4, 500, |i| {
            assert!(i != 257, "intentional failure at index 257");
            i
        })
    });
    assert!(result.is_err(), "worker panic must reach the caller");
}

#[test]
fn panic_in_scratch_init_propagates() {
    let result = std::panic::catch_unwind(|| {
        parkit::par_map_init_in(4, 100, || panic!("intentional init failure"), |(), i: usize| i)
    });
    assert!(result.is_err(), "init panic must reach the caller");
}

#[test]
fn serial_path_spawns_no_threads() {
    // At width one the map runs inline: thread-local state set in the
    // closure must be visible to the caller afterwards.
    thread_local! {
        static TOUCHED: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    }
    let _ = parkit::par_map_indexed_in(1, 25, |i| {
        TOUCHED.with(|t| t.set(t.get() + 1));
        i
    });
    assert_eq!(TOUCHED.with(std::cell::Cell::get), 25, "serial path left this thread");
}
