//! Queue extrema along region-local trajectories (paper Eqs. 18–20, 28, 34).
//!
//! Since `dx/dt = y`, the queue deviation `x(t)` has a local extremum
//! exactly where `y(t) = 0`. Each routine here comes in two flavours:
//!
//! * a **robust** version derived from the matrix-exponential flow (zero
//!   of `y(t)` located analytically or by safeguarded bisection), used by
//!   the stability criteria; and
//! * a **paper** version transcribing the printed formula, kept for
//!   fidelity and cross-checked against the robust version in tests.
//!
//! Transcription notes (verified by the cross-check tests):
//!
//! * Eq. 18/phi of Eq. 12 use the principal arctangent; for initial
//!   points with `x(0) <= 0` (including the canonical `(-q0, 0)`) the
//!   printed form needs the `atan2` branch correction applied here.
//! * Eq. 34's exponent reads `-(lambda A3 + A4)/(lambda A4)` in print;
//!   the derivation (substitute `t* = -(A3 lambda + A4)/(A4 lambda)` into
//!   `e^{lambda t}`) gives `-(lambda A3 + A4)/A4`. We implement the
//!   corrected form; see `critical_extremum`.

use crate::closed_form::{RegionFlow, Spectrum};

/// A located extremum of `x(t)` along a region trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extremum {
    /// Time of the extremum (relative to the region entry).
    pub t: f64,
    /// The extremal value of `x`.
    pub x: f64,
}

/// First extremum of `x(t)` for a spiral region (`alpha ± i beta`,
/// `beta > 0`) from `z0`, robust version.
///
/// Returns `None` only for the equilibrium itself. If `y(0) = 0` the
/// initial point is an extremum; the *next* one (half a rotation later) is
/// returned, matching the paper's `t* > 0` convention for round analysis.
#[must_use]
pub fn spiral_extremum(alpha: f64, beta: f64, z0: [f64; 2]) -> Option<Extremum> {
    let flow = flow_for_focus(alpha, beta);
    let [x0, y0] = z0;
    if x0 == 0.0 && y0 == 0.0 {
        return None;
    }
    // y(t) = e^{alpha t} [y0 cos(beta t) + c sin(beta t)],
    // c = (y'(0) - alpha y0)/beta with y'(0) from the ODE.
    let ydot0 = flow.jacobian().mul_vec(z0)[1];
    let c = (ydot0 - alpha * y0) / beta;
    let t_star = if y0 == 0.0 {
        if c == 0.0 {
            return None; // y identically zero can only happen at the origin
        }
        std::f64::consts::PI / beta
    } else {
        // h(theta) = y0 cos(theta) + c sin(theta) has exactly one zero in
        // (0, pi]: h(0) = y0 and h(pi) = -y0 straddle it.
        let h = |theta: f64| y0 * theta.cos() + c * theta.sin();
        let mut lo = 0.0_f64;
        let mut hi = std::f64::consts::PI;
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if mid <= lo || mid >= hi {
                break;
            }
            let hm = h(mid);
            if hm == 0.0 {
                lo = mid;
                hi = mid;
                break;
            }
            if hm.signum() == y0.signum() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi) / beta
    };
    let x = flow.at(t_star, z0)[0];
    Some(Extremum { t: t_star, x })
}

/// First extremum of `x(t)` for a spiral region, paper transcription
/// (Eqs. 18–20) with `atan2` branch correction for `x(0) <= 0`.
///
/// Defined (like the paper) for initial points off the vertical axis with
/// `y(0) != 0`; returns `None` otherwise.
#[must_use]
pub fn spiral_extremum_paper(alpha: f64, beta: f64, z0: [f64; 2]) -> Option<Extremum> {
    let [x0, y0] = z0;
    if x0 == 0.0 || y0 == 0.0 {
        return None;
    }
    // Eq. 18 with principal arctangents.
    let base = ((alpha / beta).atan() + ((y0 - alpha * x0) / (beta * x0)).atan()) / beta;
    let mut t_star = if x0 * y0 >= 0.0 { base } else { base + std::f64::consts::PI / beta };
    // The printed two-branch rule still lands one half-period early for
    // some quadrant combinations (it was derived for the round-analysis
    // entry points); normalise to the first non-negative root.
    let half = std::f64::consts::PI / beta;
    while t_star < 0.0 {
        t_star += half;
    }
    // Eq. 12's amplitude A (paper definition) and Eqs. 19/20.
    let a_coef =
        ((alpha * alpha + beta * beta) * x0 * x0 - 2.0 * alpha * x0 * y0 + y0 * y0).sqrt() / beta;
    let magnitude = a_coef * beta / (alpha * alpha + beta * beta).sqrt() * (alpha * t_star).exp();
    let x = if y0 > 0.0 { magnitude } else { -magnitude };
    Some(Extremum { t: t_star, x })
}

/// Global extremum of `x(t)` for a node region (`l1 < l2 < 0`), robust
/// version: the unique interior zero of `y(t)` if one exists.
///
/// Returns `None` when `x(t)` is monotone from `z0` (e.g. starting on an
/// eigenline, or with the slow mode already dominant) — the paper's
/// Case 3 situation where the queue never overshoots.
#[must_use]
pub fn node_extremum(l1: f64, l2: f64, z0: [f64; 2]) -> Option<Extremum> {
    assert!(l1 < l2, "node requires l1 < l2");
    let [x0, y0] = z0;
    let a1 = (l2 * x0 - y0) / (l2 - l1);
    let a2 = (l1 * x0 - y0) / (l1 - l2);
    if a1 == 0.0 || a2 == 0.0 {
        return None; // straight-line trajectory: x is monotone
    }
    // y(t) = A1 l1 e^{l1 t} + A2 l2 e^{l2 t} = 0
    //   =>  e^{(l1 - l2) t*} = -A2 l2 / (A1 l1) =: r
    let r = -(a2 * l2) / (a1 * l1);
    if r <= 0.0 {
        return None;
    }
    let t_star = r.ln() / (l1 - l2);
    if t_star <= 0.0 {
        return None;
    }
    let x = a1 * (l1 * t_star).exp() + a2 * (l2 * t_star).exp();
    Some(Extremum { t: t_star, x })
}

/// Global extremum for a node region, paper transcription (Eq. 28),
/// evaluated through logarithms of absolute values with the sign taken
/// from `y(0)` as the paper prescribes (maximum for `y(0) > 0`, minimum
/// for `y(0) < 0`).
///
/// Returns `None` in the same monotone situations as [`node_extremum`].
#[must_use]
pub fn node_extremum_paper(l1: f64, l2: f64, z0: [f64; 2]) -> Option<Extremum> {
    // Reuse the robust root for existence and the time; Eq. 28 only
    // restates the value.
    let robust = node_extremum(l1, l2, z0)?;
    let [x0, y0] = z0;
    let u2 = y0 - l2 * x0;
    let u1 = y0 - l1 * x0;
    if u1 == 0.0 || u2 == 0.0 {
        return None;
    }
    // |mump| = [ (-l1)^{l1} |u2|^{l2} / ( (-l2)^{l2} |u1|^{l1} ) ]^{1/(l2-l1)}
    let log_mag =
        (l1 * (-l1).ln() + l2 * u2.abs().ln() - l2 * (-l2).ln() - l1 * u1.abs().ln()) / (l2 - l1);
    let x = y0.signum() * log_mag.exp();
    Some(Extremum { t: robust.t, x })
}

/// Unique extremum for a critical region (repeated eigenvalue `l < 0`),
/// robust version.
///
/// Returns `None` when `x(t)` is monotone from `z0`.
#[must_use]
pub fn critical_extremum(l: f64, z0: [f64; 2]) -> Option<Extremum> {
    let [x0, y0] = z0;
    let a3 = x0;
    let a4 = y0 - l * x0;
    if a4 == 0.0 {
        return None; // on the eigenline: monotone
    }
    // y(t) = (A3 l + A4 + A4 l t) e^{l t} = 0  =>  t* = -(A3 l + A4)/(A4 l)
    let t_star = -(a3 * l + a4) / (a4 * l);
    if t_star <= 0.0 {
        return None;
    }
    // x(t*) = (A3 + A4 t*) e^{l t*} = -(A4 / l) e^{l t*}; note the paper's
    // Eq. 34 prints the exponent as -(l A3 + A4)/(l A4); substituting t*
    // into e^{l t} gives -(l A3 + A4)/A4, which is what we use (the
    // cross-check test against the numeric flow confirms it).
    let x = -(a4 / l) * ((-(l * a3 + a4) / a4).exp());
    Some(Extremum { t: t_star, x })
}

/// Dispatching robust extremum for any region flow.
#[must_use]
pub fn region_extremum(flow: &RegionFlow, z0: [f64; 2]) -> Option<Extremum> {
    match flow.spectrum() {
        Spectrum::Focus { alpha, beta } => spiral_extremum(alpha, beta, z0),
        Spectrum::Node { l1, l2 } => node_extremum(l1, l2, z0),
        Spectrum::Critical { l } => critical_extremum(l, z0),
    }
}

fn flow_for_focus(alpha: f64, beta: f64) -> RegionFlow {
    // lambda^2 + m lambda + n with m = -2 alpha, n = alpha^2 + beta^2.
    RegionFlow::from_mn(-2.0 * alpha, alpha * alpha + beta * beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALPHA: f64 = -1.0;
    const BETA: f64 = 3.0;

    #[test]
    fn spiral_extremum_has_zero_velocity() {
        for z0 in [[-1.0, 2.0], [0.5, -1.5], [-2.0, -0.1], [1.0, 0.3]] {
            let e = spiral_extremum(ALPHA, BETA, z0).unwrap();
            let flow = flow_for_focus(ALPHA, BETA);
            let z = flow.at(e.t, z0);
            assert!(z[1].abs() < 1e-9, "y at extremum for {z0:?}: {z:?}");
            assert!((z[0] - e.x).abs() < 1e-9);
            assert!(e.t > 0.0 && e.t <= std::f64::consts::PI / BETA + 1e-12);
        }
    }

    #[test]
    fn spiral_extremum_is_actually_extremal() {
        let z0 = [-1.0, 2.0];
        let e = spiral_extremum(ALPHA, BETA, z0).unwrap();
        let flow = flow_for_focus(ALPHA, BETA);
        // x just before and just after is below the max (y0 > 0 => max).
        let dt = 1e-3;
        let before = flow.at(e.t - dt, z0)[0];
        let after = flow.at(e.t + dt, z0)[0];
        assert!(e.x >= before && e.x >= after, "{e:?} vs {before} {after}");
    }

    #[test]
    fn spiral_paper_formula_agrees_with_robust() {
        for z0 in [[1.0, 0.5], [-1.0, 2.0], [0.5, -1.5], [-2.0, -0.1]] {
            let robust = spiral_extremum(ALPHA, BETA, z0).unwrap();
            let paper = spiral_extremum_paper(ALPHA, BETA, z0).unwrap();
            assert!(
                (robust.t - paper.t).abs() < 1e-9,
                "t mismatch for {z0:?}: robust {} paper {}",
                robust.t,
                paper.t
            );
            assert!(
                (robust.x - paper.x).abs() < 1e-9 * robust.x.abs().max(1.0),
                "x mismatch for {z0:?}: robust {} paper {}",
                robust.x,
                paper.x
            );
        }
    }

    #[test]
    fn spiral_from_rest_returns_half_rotation() {
        // y0 = 0: next extremum after exactly half a period.
        let e = spiral_extremum(ALPHA, BETA, [-1.0, 0.0]).unwrap();
        assert!((e.t - std::f64::consts::PI / BETA).abs() < 1e-12);
        // Half a rotation from a minimum gives a maximum (sign flip,
        // decayed).
        assert!(e.x > 0.0 && e.x < 1.0);
    }

    const L1: f64 = -2.0;
    const L2: f64 = -1.0;

    #[test]
    fn node_extremum_has_zero_velocity() {
        // Start moving up across the node: y0 > 0 produces a maximum.
        let z0 = [-1.0, 3.0];
        let e = node_extremum(L1, L2, z0).unwrap();
        let flow = RegionFlow::from_mn(-(L1 + L2), L1 * L2);
        let z = flow.at(e.t, z0);
        assert!(z[1].abs() < 1e-9, "{z:?}");
        assert!((z[0] - e.x).abs() < 1e-9);
        assert!(e.x > 0.0);
    }

    #[test]
    fn node_monotone_cases_return_none() {
        // On an eigenline.
        assert!(node_extremum(L1, L2, [1.0, L2]).is_none());
        // Decaying towards origin without crossing y = 0: start with
        // x > 0, y < 0 between the eigenlines (y/x in (l1, l2)).
        assert!(node_extremum(L1, L2, [1.0, -1.5]).is_none());
    }

    #[test]
    fn node_paper_formula_agrees_with_robust() {
        for z0 in [[-1.0, 3.0], [-0.5, 1.2], [1.0, -4.0]] {
            let robust = node_extremum(L1, L2, z0).unwrap();
            let paper = node_extremum_paper(L1, L2, z0).unwrap();
            assert!(
                (robust.x - paper.x).abs() < 1e-9 * robust.x.abs().max(1.0),
                "x mismatch for {z0:?}: robust {} paper {}",
                robust.x,
                paper.x
            );
        }
    }

    #[test]
    fn critical_extremum_has_zero_velocity() {
        let l = -2.0;
        let z0 = [-1.0, 3.0];
        let e = critical_extremum(l, z0).unwrap();
        let flow = RegionFlow::from_mn(4.0, 4.0);
        let z = flow.at(e.t, z0);
        assert!(z[1].abs() < 1e-9, "{z:?}");
        assert!((z[0] - e.x).abs() < 1e-9 * e.x.abs().max(1.0));
    }

    #[test]
    fn critical_monotone_cases_return_none() {
        let l = -2.0;
        assert!(critical_extremum(l, [1.0, l]).is_none()); // eigenline
        assert!(critical_extremum(l, [1.0, -1.0]).is_none()); // t* < 0
    }

    #[test]
    fn region_extremum_dispatches_by_spectrum() {
        let spiral = RegionFlow::from_mn(2.0, 10.0);
        let node = RegionFlow::from_mn(3.0, 2.0);
        let critical = RegionFlow::from_mn(4.0, 4.0);
        let z0 = [-1.0, 3.0];
        for flow in [&spiral, &node, &critical] {
            let e = region_extremum(flow, z0).expect("extremum exists");
            let z = flow.at(e.t, z0);
            assert!(z[1].abs() < 1e-8, "dispatch failed: {z:?}");
        }
    }

    #[test]
    fn extremum_scales_linearly_with_amplitude() {
        // The flows are linear: doubling the initial point doubles the
        // extremum but keeps its time.
        let z0 = [-1.0, 2.0];
        let z2 = [-2.0, 4.0];
        let e1 = spiral_extremum(ALPHA, BETA, z0).unwrap();
        let e2 = spiral_extremum(ALPHA, BETA, z2).unwrap();
        assert!((e2.t - e1.t).abs() < 1e-10);
        assert!((e2.x - 2.0 * e1.x).abs() < 1e-9);
    }
}
