//! The `dcebcn` binary: thin wrapper over the `cli` library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            telemetry::log_line!("{e}");
            std::process::exit(2);
        }
    }
}
