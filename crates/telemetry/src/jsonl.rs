//! Hand-rolled JSONL serialization for [`Event`]s.
//!
//! Each event becomes one flat JSON object per line, e.g.
//! `{"type":"region_switch","t":0.125,"from":0,"to":1}`. Floats are
//! written with Rust's `{:?}` formatting (shortest representation that
//! round-trips exactly); the extension tokens `NaN`, `inf`, and `-inf`
//! are accepted and produced for non-finite values so every event
//! round-trips bit-for-bit.

use crate::event::{Event, ExtremumKind, FaultClass, SpanKind};

/// Version of the trace file format.
///
/// Bumped whenever the set of event records or their fields changes
/// incompatibly. Version history: 1 = headerless traces (PR 1);
/// 2 = schema header record + causal span events (this version).
pub const TRACE_SCHEMA_VERSION: u32 = 2;

/// The header record written as the first line of every trace file,
/// e.g. `{"type":"schema","version":2}`.
#[must_use]
pub fn schema_header() -> String {
    format!(r#"{{"type":"schema","version":{TRACE_SCHEMA_VERSION}}}"#)
}

/// Validates a trace file's header line.
///
/// # Errors
///
/// Fails when `line` is not a schema record (headerless v1 files and
/// arbitrary JSONL both land here) or declares a version other than
/// [`TRACE_SCHEMA_VERSION`], so consumers reject stale trace files
/// instead of misparsing them.
pub fn check_schema_header(line: &str) -> Result<(), JsonlError> {
    let fields = parse_flat_object(line)?;
    let get = |key: &str| -> Result<&Scalar, JsonlError> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| JsonlError(format!("missing field `{key}` in schema header")))
    };
    let ty = get("type")?.as_str("type")?;
    if ty != "schema" {
        return Err(JsonlError(format!(
            "first record is `{ty}`, not a schema header (stale or truncated trace file?)"
        )));
    }
    let version = get("version")?.as_u32("version")?;
    if version != TRACE_SCHEMA_VERSION {
        return Err(JsonlError(format!(
            "unsupported trace schema version {version} (this build reads {TRACE_SCHEMA_VERSION})"
        )));
    }
    Ok(())
}

/// Error produced when a JSONL line cannot be parsed back to an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlError(pub String);

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "jsonl parse error: {}", self.0)
    }
}

impl std::error::Error for JsonlError {}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-inf".to_string()
    } else {
        format!("{v:?}")
    }
}

/// Formats a number using this module's float conventions: Rust's `{:?}`
/// (shortest representation that round-trips exactly) plus the `NaN`,
/// `inf`, and `-inf` extension tokens for non-finite values.
///
/// Exposed so other crates' flat-JSONL codecs (checkpoint shards,
/// postmortem config records) stay byte-compatible with the trace
/// format and decode back bit-exactly through [`parse_scalars`].
#[must_use]
pub fn fmt_num(v: f64) -> String {
    fmt_f64(v)
}

/// Serializes one event to a single JSONL line (no trailing newline).
#[must_use]
pub fn event_to_jsonl(e: &Event) -> String {
    let ty = e.type_name();
    match *e {
        Event::SolverStepAccepted { t, h, err } => format!(
            r#"{{"type":"{ty}","t":{},"h":{},"err":{}}}"#,
            fmt_f64(t),
            fmt_f64(h),
            fmt_f64(err)
        ),
        Event::SolverStepRejected { t, h } => {
            format!(r#"{{"type":"{ty}","t":{},"h":{}}}"#, fmt_f64(t), fmt_f64(h))
        }
        Event::SwitchCrossingLocated { t, iterations } => {
            format!(r#"{{"type":"{ty}","t":{},"iterations":{iterations}}}"#, fmt_f64(t))
        }
        Event::RegionSwitch { t, from, to } => {
            format!(r#"{{"type":"{ty}","t":{},"from":{from},"to":{to}}}"#, fmt_f64(t))
        }
        Event::QueueThresholdCrossed { t, q, threshold, rising } => format!(
            r#"{{"type":"{ty}","t":{},"q":{},"threshold":{},"rising":{rising}}}"#,
            fmt_f64(t),
            fmt_f64(q),
            fmt_f64(threshold)
        ),
        Event::QueueExtremum { t, q, kind } => format!(
            r#"{{"type":"{ty}","t":{},"q":{},"kind":"{}"}}"#,
            fmt_f64(t),
            fmt_f64(q),
            match kind {
                ExtremumKind::Max => "max",
                ExtremumKind::Min => "min",
            }
        ),
        Event::BcnMessageEmitted { t, fb, source } | Event::QcnMessageEmitted { t, fb, source } => {
            format!(
                r#"{{"type":"{ty}","t":{},"fb":{},"source":{source}}}"#,
                fmt_f64(t),
                fmt_f64(fb)
            )
        }
        Event::PauseAsserted { t, port }
        | Event::PauseDeasserted { t, port }
        | Event::FrameDropped { t, port } => {
            format!(r#"{{"type":"{ty}","t":{},"port":{port}}}"#, fmt_f64(t))
        }
        Event::FaultInjected { t, class, target } => format!(
            r#"{{"type":"{ty}","t":{},"class":"{}","target":{target}}}"#,
            fmt_f64(t),
            class.name()
        ),
        Event::SpanBegin { t, id, parent, kind, entity } => format!(
            r#"{{"type":"{ty}","t":{},"id":{id},"parent":{parent},"kind":"{}","entity":{entity}}}"#,
            fmt_f64(t),
            kind.name()
        ),
        Event::SpanEnd { t, id } => {
            format!(r#"{{"type":"{ty}","t":{},"id":{id}}}"#, fmt_f64(t))
        }
    }
}

/// One parsed JSON scalar from a flat object line.
///
/// Public so downstream flat-JSONL codecs (checkpoint shards, replay
/// specs) can reuse [`parse_scalars`] and its typed accessors instead
/// of re-implementing the number/string/bool conventions.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// A number (including the `NaN`/`inf`/`-inf` extension tokens).
    Num(f64),
    /// A string without escapes.
    Str(String),
    /// A `true`/`false` literal.
    Bool(bool),
}

impl Scalar {
    /// The scalar as a float; `key` names the field in errors.
    ///
    /// # Errors
    ///
    /// Fails when the scalar is not a number.
    pub fn as_f64(&self, key: &str) -> Result<f64, JsonlError> {
        match self {
            Scalar::Num(v) => Ok(*v),
            _ => Err(JsonlError(format!("field `{key}` is not a number"))),
        }
    }

    /// The scalar as a `u32`; `key` names the field in errors.
    ///
    /// # Errors
    ///
    /// Fails when the scalar is not an integer in `u32` range.
    pub fn as_u32(&self, key: &str) -> Result<u32, JsonlError> {
        let v = self.as_f64(key)?;
        if v.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&v) {
            Ok(v as u32)
        } else {
            Err(JsonlError(format!("field `{key}` is not a u32: {v}")))
        }
    }

    /// The scalar as a `u64`; `key` names the field in errors.
    ///
    /// # Errors
    ///
    /// Fails when the scalar is not an integer, is negative, or exceeds
    /// 2^53 (the largest range that survives the f64 funnel).
    pub fn as_u64(&self, key: &str) -> Result<u64, JsonlError> {
        let v = self.as_f64(key)?;
        // 2^53: the largest range in which every integer survives the
        // f64 round trip the flat parser funnels numbers through.
        if v.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&v) {
            Ok(v as u64)
        } else {
            Err(JsonlError(format!("field `{key}` is not a u64 below 2^53: {v}")))
        }
    }

    /// The scalar as a bool; `key` names the field in errors.
    ///
    /// # Errors
    ///
    /// Fails when the scalar is not a boolean.
    pub fn as_bool(&self, key: &str) -> Result<bool, JsonlError> {
        match self {
            Scalar::Bool(b) => Ok(*b),
            _ => Err(JsonlError(format!("field `{key}` is not a bool"))),
        }
    }

    /// The scalar as a string slice; `key` names the field in errors.
    ///
    /// # Errors
    ///
    /// Fails when the scalar is not a string.
    pub fn as_str(&self, key: &str) -> Result<&str, JsonlError> {
        match self {
            Scalar::Str(s) => Ok(s),
            _ => Err(JsonlError(format!("field `{key}` is not a string"))),
        }
    }
}

/// Minimal parser for the flat objects this module emits: one level of
/// `"key": scalar` pairs, scalars being numbers (with `NaN`/`inf`
/// extensions), strings without escapes, or booleans.
///
/// # Errors
///
/// Fails when the line is not a flat JSON object of scalar fields.
pub fn parse_scalars(line: &str) -> Result<Vec<(String, Scalar)>, JsonlError> {
    parse_flat_object(line)
}

fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, JsonlError> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| JsonlError("line is not a JSON object".into()))?;
    let mut fields = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        // Key.
        rest = rest
            .strip_prefix('"')
            .ok_or_else(|| JsonlError(format!("expected quoted key at `{rest}`")))?;
        let kq = rest.find('"').ok_or_else(|| JsonlError("unterminated key".into()))?;
        let key = rest[..kq].to_string();
        rest = rest[kq + 1..].trim_start();
        rest = rest
            .strip_prefix(':')
            .ok_or_else(|| JsonlError(format!("expected `:` after key `{key}`")))?
            .trim_start();
        // Scalar.
        let (value, tail) = if let Some(r) = rest.strip_prefix('"') {
            let vq = r.find('"').ok_or_else(|| JsonlError("unterminated string value".into()))?;
            (Scalar::Str(r[..vq].to_string()), &r[vq + 1..])
        } else {
            let end = rest.find(',').unwrap_or(rest.len());
            let token = rest[..end].trim();
            let v =
                match token {
                    "true" => Scalar::Bool(true),
                    "false" => Scalar::Bool(false),
                    "NaN" => Scalar::Num(f64::NAN),
                    "inf" => Scalar::Num(f64::INFINITY),
                    "-inf" => Scalar::Num(f64::NEG_INFINITY),
                    _ => Scalar::Num(token.parse::<f64>().map_err(|_| {
                        JsonlError(format!("bad scalar `{token}` for key `{key}`"))
                    })?),
                };
            (v, &rest[end..])
        };
        fields.push((key, value));
        rest = tail.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(JsonlError(format!("unexpected trailing content `{rest}`")));
        }
    }
    Ok(fields)
}

/// Parses one JSONL line back into an [`Event`].
pub fn event_from_jsonl(line: &str) -> Result<Event, JsonlError> {
    let fields = parse_flat_object(line)?;
    let get = |key: &str| -> Result<&Scalar, JsonlError> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| JsonlError(format!("missing field `{key}`")))
    };
    let ty = get("type")?.as_str("type")?.to_string();
    let t = get("t")?.as_f64("t")?;
    match ty.as_str() {
        "solver_step_accepted" => Ok(Event::SolverStepAccepted {
            t,
            h: get("h")?.as_f64("h")?,
            err: get("err")?.as_f64("err")?,
        }),
        "solver_step_rejected" => Ok(Event::SolverStepRejected { t, h: get("h")?.as_f64("h")? }),
        "switch_crossing_located" => Ok(Event::SwitchCrossingLocated {
            t,
            iterations: get("iterations")?.as_u32("iterations")?,
        }),
        "region_switch" => Ok(Event::RegionSwitch {
            t,
            from: get("from")?.as_u32("from")?,
            to: get("to")?.as_u32("to")?,
        }),
        "queue_threshold_crossed" => Ok(Event::QueueThresholdCrossed {
            t,
            q: get("q")?.as_f64("q")?,
            threshold: get("threshold")?.as_f64("threshold")?,
            rising: get("rising")?.as_bool("rising")?,
        }),
        "queue_extremum" => Ok(Event::QueueExtremum {
            t,
            q: get("q")?.as_f64("q")?,
            kind: match get("kind")?.as_str("kind")? {
                "max" => ExtremumKind::Max,
                "min" => ExtremumKind::Min,
                other => return Err(JsonlError(format!("unknown extremum kind `{other}`"))),
            },
        }),
        "bcn_message_emitted" => Ok(Event::BcnMessageEmitted {
            t,
            fb: get("fb")?.as_f64("fb")?,
            source: get("source")?.as_u32("source")?,
        }),
        "qcn_message_emitted" => Ok(Event::QcnMessageEmitted {
            t,
            fb: get("fb")?.as_f64("fb")?,
            source: get("source")?.as_u32("source")?,
        }),
        "pause_asserted" => Ok(Event::PauseAsserted { t, port: get("port")?.as_u32("port")? }),
        "pause_deasserted" => Ok(Event::PauseDeasserted { t, port: get("port")?.as_u32("port")? }),
        "frame_dropped" => Ok(Event::FrameDropped { t, port: get("port")?.as_u32("port")? }),
        "fault_injected" => {
            let name = get("class")?.as_str("class")?;
            let class = FaultClass::from_name(name)
                .ok_or_else(|| JsonlError(format!("unknown fault class `{name}`")))?;
            Ok(Event::FaultInjected { t, class, target: get("target")?.as_u32("target")? })
        }
        "span_begin" => {
            let name = get("kind")?.as_str("kind")?;
            let kind = SpanKind::from_name(name)
                .ok_or_else(|| JsonlError(format!("unknown span kind `{name}`")))?;
            Ok(Event::SpanBegin {
                t,
                id: get("id")?.as_u64("id")?,
                parent: get("parent")?.as_u64("parent")?,
                kind,
                entity: get("entity")?.as_u32("entity")?,
            })
        }
        "span_end" => Ok(Event::SpanEnd { t, id: get("id")?.as_u64("id")? }),
        other => Err(JsonlError(format!("unknown event type `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips() {
        let events = [
            Event::SolverStepAccepted { t: 0.125, h: 1e-3, err: 0.42 },
            Event::SolverStepRejected { t: 0.25, h: 0.5 },
            Event::SwitchCrossingLocated { t: 1.0 / 3.0, iterations: 17 },
            Event::RegionSwitch { t: 2.0, from: 0, to: 1 },
            Event::QueueThresholdCrossed { t: 3.5, q: 1.2e6, threshold: 1e6, rising: true },
            Event::QueueExtremum { t: 4.0, q: 0.0, kind: ExtremumKind::Min },
            Event::QueueExtremum { t: 4.5, q: 2.5e6, kind: ExtremumKind::Max },
            Event::BcnMessageEmitted { t: 5.0, fb: -123.75, source: 7 },
            Event::QcnMessageEmitted { t: 6.0, fb: 64.0, source: 0 },
            Event::PauseAsserted { t: 7.0, port: 2 },
            Event::PauseDeasserted { t: 7.5, port: 2 },
            Event::FrameDropped { t: 8.0, port: u32::MAX },
            Event::FaultInjected { t: 9.0, class: FaultClass::FeedbackCorrupt, target: 3 },
            Event::FaultInjected { t: 9.5, class: FaultClass::PauseStorm, target: 0 },
            Event::SpanBegin {
                t: 10.0,
                id: (17u64 + 1) << 32,
                parent: 0,
                kind: SpanKind::BatchSeed,
                entity: 17,
            },
            Event::SpanBegin {
                t: 10.5,
                id: ((17u64 + 1) << 32) + 2,
                parent: (17u64 + 1) << 32,
                kind: SpanKind::PauseEpisode,
                entity: 5,
            },
            Event::SpanEnd { t: 11.0, id: ((17u64 + 1) << 32) + 2 },
        ];
        for e in events {
            let line = event_to_jsonl(&e);
            let back = event_from_jsonl(&line).unwrap_or_else(|err| panic!("{line}: {err}"));
            assert_eq!(back, e, "line: {line}");
        }
    }

    #[test]
    fn non_finite_floats_round_trip() {
        let e = Event::SolverStepAccepted { t: 1.0, h: 0.1, err: f64::NAN };
        let line = event_to_jsonl(&e);
        match event_from_jsonl(&line).unwrap() {
            Event::SolverStepAccepted { err, .. } => assert!(err.is_nan()),
            other => panic!("wrong variant {other:?}"),
        }
        let e = Event::SolverStepAccepted { t: 1.0, h: f64::INFINITY, err: f64::NEG_INFINITY };
        let line = event_to_jsonl(&e);
        match event_from_jsonl(&line).unwrap() {
            Event::SolverStepAccepted { h, err, .. } => {
                assert_eq!(h, f64::INFINITY);
                assert_eq!(err, f64::NEG_INFINITY);
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"type":"region_switch"}"#,
            r#"{"type":"no_such_event","t":1.0}"#,
            r#"{"type":"frame_dropped","t":1.0,"port":-1}"#,
            r#"{"type":"frame_dropped","t":1.0,"port":1.5}"#,
            r#"{"type":"fault_injected","t":1.0,"class":"no_such_fault","target":0}"#,
            r#"{"type":"span_begin","t":1.0,"id":1,"parent":0,"kind":"no_such_span","entity":0}"#,
            r#"{"type":"span_end","t":1.0,"id":-1}"#,
            r#"{"type":"span_end","t":1.0,"id":1e16}"#,
        ] {
            assert!(event_from_jsonl(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn schema_header_round_trips() {
        let header = schema_header();
        check_schema_header(&header).unwrap();
        // The header is not an event.
        assert!(event_from_jsonl(&header).is_err());
    }

    #[test]
    fn schema_header_rejects_stale_and_foreign_lines() {
        for bad in [
            "",
            "not json",
            r#"{"type":"region_switch","t":0.5,"from":0,"to":1}"#,
            r#"{"type":"schema","version":1}"#,
            r#"{"type":"schema","version":99}"#,
            r#"{"type":"schema"}"#,
        ] {
            assert!(check_schema_header(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        // {:?} emits the shortest representation that parses back to the
        // same bits; verify on awkward values.
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, 123_456_789.123_456_79] {
            let e = Event::SolverStepRejected { t: v, h: v };
            let back = event_from_jsonl(&event_to_jsonl(&e)).unwrap();
            assert_eq!(back, e);
        }
    }
}
