//! Quiet-aware diagnostic logging for binaries.
//!
//! The [`log_line!`] macro replaces ad-hoc `eprintln!` calls in CLI and
//! bench binaries: it prints to stderr unless diagnostics are muted via
//! [`set_quiet`] (driven by `--telemetry off`) or the
//! `DCE_BCN_TELEMETRY=off` environment variable.

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = unset (consult the environment), 1 = loud, 2 = quiet.
static QUIET: AtomicU8 = AtomicU8::new(0);

/// Mutes (`true`) or unmutes (`false`) [`log_line!`] output process-wide.
pub fn set_quiet(quiet: bool) {
    QUIET.store(if quiet { 2 } else { 1 }, Ordering::Relaxed);
}

/// Whether diagnostic logging is currently muted.
///
/// Before the first [`set_quiet`] call this lazily consults the
/// `DCE_BCN_TELEMETRY` environment variable (`off` mutes).
pub fn quiet() -> bool {
    match QUIET.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let from_env = std::env::var("DCE_BCN_TELEMETRY").map(|v| v == "off").unwrap_or(false);
            QUIET.store(if from_env { 2 } else { 1 }, Ordering::Relaxed);
            from_env
        }
    }
}

/// Prints a diagnostic line to stderr unless logging is muted.
///
/// Drop-in replacement for `eprintln!` that respects `--telemetry off`
/// (via [`set_quiet`]) and `DCE_BCN_TELEMETRY=off`.
#[macro_export]
macro_rules! log_line {
    ($($arg:tt)*) => {
        if !$crate::quiet() {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_quiet_overrides_environment() {
        set_quiet(true);
        assert!(quiet());
        set_quiet(false);
        assert!(!quiet());
        // The macro compiles against the public API.
        log_line!("diagnostic {}", 42);
    }
}
