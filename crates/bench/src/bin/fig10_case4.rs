//! Regenerates the paper's Fig. 10 (Case 4 dynamics).

fn main() {
    if let Err(e) = bench::figures::fig10::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
