//! Buffer dimensioning: Theorem 1 vs the bandwidth-delay product rule
//! (paper Section IV-C remarks).
//!
//! The classical rule of thumb sizes a router buffer at one
//! bandwidth-delay product (BDP). The paper's worked example shows that
//! for a *lossless* BCN-controlled fabric this is unsustainable: the
//! strong-stability bound requires ~2.75x the BDP for the default
//! parameters.

use crate::params::BcnParams;
use crate::stability::theorem1_required_buffer;

/// The bandwidth-delay product `C * rtt` in bits.
#[must_use]
pub fn bandwidth_delay_product(capacity: f64, rtt: f64) -> f64 {
    capacity * rtt
}

/// The paper's worked example, assembled in one place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkedExample {
    /// The BDP buffer (bits) for the example's 0.5 ms round-trip... more
    /// precisely the paper's quoted 5 Mbit figure.
    pub bdp: f64,
    /// Theorem 1's required buffer (bits).
    pub required: f64,
    /// `required / bdp` — the paper quotes "nearly three times".
    pub ratio: f64,
}

/// Reproduces the Section IV-C numeric example: `N = 50`,
/// `C = 10 Gbit/s`, 0.5 ms of round-trip queueing headroom (5 Mbit BDP),
/// `q0 = 2.5 Mbit`, standard-draft gains.
#[must_use]
pub fn paper_example() -> WorkedExample {
    let params = BcnParams::paper_defaults();
    let bdp = 5.0e6; // the paper's quoted BDP figure
    let required = theorem1_required_buffer(&params);
    WorkedExample { bdp, required, ratio: required / bdp }
}

/// Required buffer as a function of flow count (all else fixed).
#[must_use]
pub fn required_vs_n(params: &BcnParams, ns: &[u32]) -> Vec<(u32, f64)> {
    ns.iter().map(|&n| (n, theorem1_required_buffer(&params.clone().with_n_flows(n)))).collect()
}

/// Required buffer as a function of link capacity (all else fixed).
#[must_use]
pub fn required_vs_capacity(params: &BcnParams, capacities: &[f64]) -> Vec<(f64, f64)> {
    capacities
        .iter()
        .map(|&c| (c, theorem1_required_buffer(&params.clone().with_capacity(c))))
        .collect()
}

/// Required buffer as a function of the reference point `q0`.
#[must_use]
pub fn required_vs_q0(params: &BcnParams, q0s: &[f64]) -> Vec<(f64, f64)> {
    q0s.iter().map(|&q| (q, theorem1_required_buffer(&params.clone().with_q0(q)))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worked_example_matches_paper() {
        let ex = paper_example();
        assert_eq!(ex.bdp, 5.0e6);
        // Paper: "13.75 Mbits ... nearly three times" (we compute the
        // unrounded 13.81).
        assert!((ex.required - 13.81e6).abs() < 0.05e6, "required {}", ex.required);
        assert!(ex.ratio > 2.7 && ex.ratio < 2.8, "ratio {}", ex.ratio);
    }

    #[test]
    fn bdp_is_capacity_times_rtt() {
        assert_eq!(bandwidth_delay_product(10.0e9, 0.5e-3), 5.0e6);
    }

    #[test]
    fn required_buffer_grows_with_sqrt_n() {
        let p = BcnParams::paper_defaults();
        let sweep = required_vs_n(&p, &[50, 200]);
        // (req - q0) scales as sqrt(N): quadrupling N doubles the
        // overshoot term.
        let over0 = sweep[0].1 - p.q0;
        let over1 = sweep[1].1 - p.q0;
        assert!((over1 / over0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn required_buffer_shrinks_with_capacity() {
        let p = BcnParams::paper_defaults();
        let sweep = required_vs_capacity(&p, &[10.0e9, 40.0e9]);
        assert!(sweep[1].1 < sweep[0].1);
    }

    #[test]
    fn required_buffer_linear_in_q0() {
        let p = BcnParams::paper_defaults();
        let sweep = required_vs_q0(&p, &[1.0e6, 2.0e6]);
        assert!((sweep[1].1 / sweep[0].1 - 2.0).abs() < 1e-9);
    }
}
