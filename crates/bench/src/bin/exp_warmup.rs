//! Regenerates the warm-up / q0 trade-off experiment.

fn main() {
    if let Err(e) = bench::experiments::warmup::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
