//! Regenerates the incast fan-in sweep.

fn main() {
    if let Err(e) = bench::experiments::incast::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
