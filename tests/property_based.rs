//! Property-based tests (proptest) over randomly drawn, valid BCN
//! parameterisations: the paper's structural invariants must hold on all
//! of them, not just the hand-picked examples. A second block covers the
//! robustness layer: the wire codec under arbitrary byte corruption and
//! the fault plan's deterministic replay guarantee.

use bcn::cases::{classify_params, region_shape};
use bcn::closed_form::RegionFlow;
use bcn::extrema::region_extremum;
use bcn::model::Region;
use bcn::query::{QueryBatch, StabilityQuery};
use bcn::rounds::{round_ratio, round_ratio_analytic, trace_legs};
use bcn::simulate::{fluid_trajectory, Engine, FluidOptions};
use bcn::stability::{criterion, exact_verdict, theorem1_holds, theorem1_required_buffer};
use bcn::{BcnFluid, BcnParams, CaseId};
use phaseplane::{classify, FixedPointKind, Mat2};
use proptest::prelude::*;

/// Strategy: a random valid parameter set around the test scale.
fn params_strategy() -> impl Strategy<Value = BcnParams> {
    (
        1u32..60,      // n_flows
        1e5..1e8f64,   // capacity
        0.05f64..0.45, // q0 as a fraction of buffer
        1e4..1e7f64,   // buffer
        0.01f64..20.0, // gi
        1e-4f64..0.9,  // gd
        1e2..1e6f64,   // ru
        1e-3f64..50.0, // w
        0.005f64..1.0, // pm
    )
        .prop_map(|(n, c, q0_frac, buffer, gi, gd, ru, w, pm)| BcnParams {
            n_flows: n,
            capacity: c,
            q0: q0_frac * buffer,
            buffer,
            gi,
            gd,
            ru,
            w,
            pm,
            qsc: 0.9 * buffer,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every drawn parameter set validates, classifies into exactly one
    /// case, and that case matches the per-region shapes.
    #[test]
    fn classification_is_consistent(p in params_strategy()) {
        p.validate().unwrap();
        let analysis = classify_params(&p);
        let inc = region_shape(&p, Region::Increase);
        let dec = region_shape(&p, Region::Decrease);
        prop_assert_eq!(analysis.increase, inc);
        prop_assert_eq!(analysis.decrease, dec);
        use bcn::RegionShape::*;
        let expect = match (inc, dec) {
            (Critical, _) | (_, Critical) => CaseId::Case5,
            (Spiral, Spiral) => CaseId::Case1,
            (Node, Spiral) => CaseId::Case2,
            (Spiral, Node) => CaseId::Case3,
            (Node, Node) => CaseId::Case4,
        };
        prop_assert_eq!(analysis.case, expect);
    }

    /// Proposition 1 holds everywhere: both region Jacobians are
    /// attracting.
    #[test]
    fn regions_are_always_attracting(p in params_strategy()) {
        let sys = BcnFluid::linearized(p.clone());
        for r in [Region::Increase, Region::Decrease] {
            let kind = classify(&sys.jacobian(r));
            prop_assert!(kind.is_attracting(), "{:?} gave {}", r, kind);
            prop_assert!(kind != FixedPointKind::Saddle);
        }
    }

    /// The matrix exponential obeys the semigroup property and the flow
    /// solves the ODE (finite-difference check) for every region.
    #[test]
    fn region_flow_is_a_flow(p in params_strategy()) {
        let sys = BcnFluid::linearized(p.clone());
        for r in [Region::Increase, Region::Decrease] {
            let flow = RegionFlow::from_kn(p.k(), sys.region_n(r));
            let z0 = [0.3 * p.q0, -0.05 * p.capacity];
            // Time scale proportional to the region's frequency.
            let t1 = 0.2 / sys.region_n(r).sqrt();
            let t2 = 0.35 / sys.region_n(r).sqrt();
            let direct = flow.at(t1 + t2, z0);
            let hops = flow.at(t2, flow.at(t1, z0));
            for i in 0..2 {
                let scale = direct[i].abs().max(p.q0);
                prop_assert!((direct[i] - hops[i]).abs() < 1e-8 * scale,
                    "{:?}: {:?} vs {:?}", r, direct, hops);
            }
        }
    }

    /// Any extremum reported by the analytic machinery is a genuine
    /// stationary point of x(t) along the region flow.
    #[test]
    fn extrema_have_zero_velocity(p in params_strategy()) {
        let sys = BcnFluid::linearized(p.clone());
        for r in [Region::Increase, Region::Decrease] {
            let flow = RegionFlow::from_kn(p.k(), sys.region_n(r));
            let z0 = [-0.7 * p.q0, 0.1 * p.capacity];
            if let Some(e) = region_extremum(&flow, z0) {
                let z = flow.at(e.t, z0);
                let y_scale = p.capacity.max(z0[1].abs());
                prop_assert!(z[1].abs() < 1e-6 * y_scale,
                    "{:?}: y({}) = {}", r, e.t, z[1]);
                prop_assert!((z[0] - e.x).abs() < 1e-6 * e.x.abs().max(p.q0));
            }
        }
    }

    /// Case-1 round ratios: numeric == closed form, and contained in
    /// (0, 1] (strict contraction for w > 0).
    #[test]
    fn round_ratio_contracts(p in params_strategy()) {
        if classify_params(&p).case == CaseId::Case1 {
            if let (Some(num), Some(ana)) = (round_ratio(&p), round_ratio_analytic(&p)) {
                prop_assert!(num > 0.0 && num < 1.0, "rho = {}", num);
                prop_assert!((num - ana).abs() < 1e-4 * ana,
                    "numeric {} vs analytic {}", num, ana);
            }
        }
    }

    /// Criterion soundness: a granted verdict is confirmed by the exact
    /// trace, and Theorem 1 never out-permits the case criterion.
    #[test]
    fn criterion_soundness(p in params_strategy()) {
        let granted = criterion(&p).is_guaranteed();
        let thm1 = theorem1_holds(&p);
        if thm1 {
            prop_assert!(granted, "Theorem 1 passed but criterion refused: {:?}", p);
        }
        if granted {
            let exact = exact_verdict(&p, 60);
            prop_assert!(exact.strongly_stable,
                "criterion unsound on {:?}: {:?}", p, exact);
        }
    }

    /// Theorem 1's requirement dominates the exact trajectory's need.
    #[test]
    fn theorem1_dominates_exact_need(p in params_strategy()) {
        let exact = exact_verdict(&p, 60);
        let exact_need = p.q0 + exact.max_x;
        let thm_need = theorem1_required_buffer(&p);
        prop_assert!(thm_need >= exact_need * (1.0 - 1e-9),
            "theorem1 {} below exact need {}", thm_need, exact_need);
    }

    /// Leg tracing never leaves the switching line inconsistently: every
    /// closed leg ends on the line and legs alternate regions.
    #[test]
    fn legs_alternate_and_end_on_line(p in params_strategy()) {
        let legs = trace_legs(&p, p.initial_point(), 10);
        let k = p.k();
        for pair in legs.windows(2) {
            prop_assert!(pair[0].region != pair[1].region);
        }
        for leg in &legs {
            if let Some(end) = leg.end {
                let scale = end[1].abs().max(p.q0);
                prop_assert!((end[0] + k * end[1]).abs() < 1e-6 * scale.max(1.0),
                    "end off line: {:?}", end);
            }
        }
    }

    /// The semi-analytic engine and DOPRI5 trace the same switched
    /// trajectory on any drawn parameter set: identical region-switch
    /// sequence, switch times to integrator tolerance, queue extrema to
    /// 1e-6 relative (exact analytic extrema vs parabola-refined numeric
    /// samples), matching endpoints, and the same derived
    /// strong-stability verdict.
    #[test]
    fn engines_agree_on_random_params(p in params_strategy()) {
        let sys = BcnFluid::linearized(p.clone());
        let beta_fast = p.a().max(p.b() * p.capacity).sqrt();
        let beta_slow = p.a().min(p.b() * p.capacity).sqrt();
        // A few slow rotations, capped both in absolute time and in fast
        // half-rounds so extreme rate ratios keep the sample count sane.
        let t_end = (4.0 * std::f64::consts::PI / beta_slow)
            .min(200.0 * std::f64::consts::PI / beta_fast)
            .min(0.4);
        let numeric_opts = FluidOptions {
            t_end,
            tol: 1e-12,
            max_switches: 400,
            record_dt: Some(0.03 / beta_fast),
            engine: Engine::Dopri5,
        };
        let analytic_opts = FluidOptions { engine: Engine::Analytic, ..numeric_opts.clone() };
        let num = fluid_trajectory(&sys, p.initial_point(), &numeric_opts).unwrap();
        let ana = fluid_trajectory(&sys, p.initial_point(), &analytic_opts).unwrap();

        let modes_a: Vec<usize> = ana.intervals.iter().map(|iv| iv.mode).collect();
        let modes_n: Vec<usize> = num.intervals.iter().map(|iv| iv.mode).collect();
        prop_assert_eq!(modes_a, modes_n, "mode sequences differ on {:?}", p);
        for (a, n) in ana.intervals.iter().zip(num.intervals.iter()) {
            prop_assert!((a.t_end - n.t_end).abs() <= 1e-6 * t_end,
                "switch time {} vs {} on {:?}", a.t_end, n.t_end, p);
        }
        let max_a = ana.solution.max_component(0);
        let max_n = num.solution.refined_max_component(0);
        let min_a = ana.solution.min_component(0);
        let min_n = num.solution.refined_min_component(0);
        prop_assert!((max_a - max_n).abs() <= 1e-6 * max_a.abs().max(p.q0),
            "max {} vs {} on {:?}", max_a, max_n, p);
        prop_assert!((min_a - min_n).abs() <= 1e-6 * min_a.abs().max(p.q0),
            "min {} vs {} on {:?}", min_a, min_n, p);
        let (za, zn) = (ana.solution.last_state(), num.solution.last_state());
        prop_assert!((za[0] - zn[0]).abs() <= 1e-6 * za[0].abs().max(p.q0));
        prop_assert!((za[1] - zn[1]).abs() <= 1e-6 * za[1].abs().max(p.capacity));
        // Same wall verdict (0 < q < B away from the start).
        let verdict = |max_x: f64, min_x: f64| {
            max_x < p.buffer - p.q0 && min_x > -p.q0 * (1.0 + 1e-9)
        };
        prop_assert_eq!(verdict(max_a, min_a), verdict(max_n, min_n),
            "stability verdict flipped across engines on {:?}", p);
    }

    /// The batched query engine is a pure re-batching of the serial
    /// path: over random parameter mixes (with deliberate duplicates so
    /// dedup and propagator-group sharing both engage), every answer is
    /// bitwise-equal to the per-call `exact_verdict` +
    /// `theorem1_required_buffer` loop, at worker widths 1 and 4, with
    /// the propagator cache both cold (first evaluation of fresh random
    /// keys) and pre-warmed (second evaluation of the same batch).
    #[test]
    fn batched_queries_match_serial_bitwise(
        ps in proptest::collection::vec(params_strategy(), 1..8),
        dup in 0usize..8,
    ) {
        let mut queries: Vec<StabilityQuery> = ps
            .iter()
            .map(|p| StabilityQuery { params: p.clone(), max_legs: 32 })
            .collect();
        // Repeat one configuration so the batch has duplicates to fold.
        let repeat = queries[dup % queries.len()].clone();
        queries.push(repeat);

        let expected: Vec<(bool, u64, u64, u64, usize)> = queries
            .iter()
            .map(|q| {
                let v = exact_verdict(&q.params, q.max_legs);
                (
                    v.strongly_stable,
                    theorem1_required_buffer(&q.params).to_bits(),
                    v.max_x.to_bits(),
                    v.min_x.to_bits(),
                    v.legs,
                )
            })
            .collect();
        let batch = QueryBatch::new(&queries);
        // Cold pass (fresh random keys), then warm pass, at both widths.
        for answers in
            [batch.evaluate_in(1), batch.evaluate_in(4), batch.evaluate_in(1), batch.evaluate_in(4)]
        {
            prop_assert_eq!(answers.len(), expected.len());
            for (a, e) in answers.iter().zip(&expected) {
                prop_assert_eq!(a.strongly_stable, e.0);
                prop_assert_eq!(a.required_buffer.to_bits(), e.1);
                prop_assert_eq!(a.max_x.to_bits(), e.2);
                prop_assert_eq!(a.min_x.to_bits(), e.3);
                prop_assert_eq!(a.legs, e.4);
            }
        }
    }

    /// Generic phase-plane classifier: trace/det signs decide the kind.
    #[test]
    fn trace_det_classification(m in -5.0..5.0f64, n in -5.0..5.0f64) {
        let j = Mat2::companion(m, n);
        let kind = classify(&j);
        if n < 0.0 {
            prop_assert_eq!(kind, FixedPointKind::Saddle);
        } else if n > 0.0 && m > 0.0 {
            prop_assert!(kind.is_attracting());
        } else if n > 0.0 && m < 0.0 {
            prop_assert!(!kind.is_attracting());
            prop_assert!(kind != FixedPointKind::Saddle);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The wire codec never panics on corrupted input: any number of
    /// byte flips yields either a typed decode error or a message whose
    /// fields survive a re-encode. This is the property the fault
    /// layer's feedback-corruption path leans on.
    #[test]
    fn wire_decode_survives_arbitrary_corruption(
        sigma in -1e9..1e9f64,
        dst in any::<u32>(),
        cpid in any::<u64>(),
        flips in proptest::collection::vec((0usize..30, 0u8..8), 0..16),
    ) {
        use dcesim::frame::{BcnMessage, CpId, SourceId};
        use dcesim::wire;

        let m = BcnMessage { dst: SourceId(dst), cpid: CpId(cpid), sigma };
        let mut bytes = wire::encode(&m);
        for (pos, bit) in flips {
            bytes[pos] ^= 1u8 << bit;
        }
        match wire::decode(&bytes) {
            Ok(decoded) => {
                prop_assert!(decoded.sigma.is_finite());
                let _ = wire::encode(&decoded);
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// Fault plans are pure functions of their configuration: two plans
    /// built from the same `FaultConfig` replay the identical decision
    /// stream, which is what makes faulty batch runs bit-identical at
    /// any thread count (each seed owns its own plan and counter).
    #[test]
    fn fault_plans_replay_their_decision_stream(
        seed in any::<u64>(),
        loss in 0.0..1.0f64,
        corrupt in 0.0..1.0f64,
        data_loss in 0.0..1.0f64,
        storm in 0.0..1.0f64,
        draws in 1usize..200,
    ) {
        use dcesim::faults::{FaultConfig, FaultPlan};
        use dcesim::frame::{BcnMessage, CpId, SourceId};
        use dcesim::time::Duration;

        let cfg = FaultConfig {
            seed,
            feedback_loss: loss,
            feedback_corrupt: corrupt,
            data_loss,
            pause_storm: storm,
            pause_storm_factor: 3.0,
            ..FaultConfig::none()
        };
        cfg.validate().unwrap();
        let mut a = FaultPlan::new(cfg.clone());
        let mut b = FaultPlan::new(cfg);
        let msg = BcnMessage { dst: SourceId(7), cpid: CpId(11), sigma: -512.0 };
        let hold = Duration::from_secs(1e-6);
        for _ in 0..draws {
            prop_assert_eq!(a.data_frame_lost(), b.data_frame_lost());
            prop_assert_eq!(a.pause_hold(hold), b.pause_hold(hold));
            prop_assert_eq!(a.feedback_fate(&msg), b.feedback_fate(&msg));
        }
        prop_assert_eq!(a.counts(), b.counts());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash-recovery round trip over random kill points: persist a
    /// random prefix of a batch's seeds, resume from the checkpoint at
    /// a random worker width, and the merged report (per-seed outcomes
    /// plus the telemetry aggregate, both serialized through the
    /// checkpoint codec) is byte-identical to an uninterrupted run at
    /// widths 1 and 4. The deterministic CI twin lives in
    /// `tests/packet_level.rs`.
    #[test]
    fn checkpoint_resume_is_bit_identical_over_random_kill_points(
        kill_after in 0usize..=4,
        first_width in 1usize..5,
        resume_width in 1usize..5,
        feedback_loss in 0.0..0.4f64,
        fault_seed in any::<u64>(),
    ) {
        use dcesim::batch::{run_batch, run_batch_checkpointed, BatchConfig, BatchReport};
        use dcesim::checkpoint::{encode_seed_outcome, BatchCheckpoint};
        use dcesim::faults::FaultConfig;
        use dcesim::sim::{fluid_validation_params, SimConfig};
        use dcesim::time::Duration;

        let fingerprint = |r: &BatchReport| {
            let mut s = String::new();
            for (&seed, out) in r.seeds.iter().zip(&r.outcomes) {
                encode_seed_outcome(seed, out, &mut s);
            }
            if let Some(tel) = &r.telemetry {
                s.push_str(&telemetry::snapshot_to_jsonl(tel));
            }
            s
        };

        let mut base = SimConfig::from_fluid(
            &fluid_validation_params(),
            8_000.0,
            Duration::from_secs(2e-6),
            0.02,
        );
        base.faults = FaultConfig { seed: fault_seed, feedback_loss, ..FaultConfig::none() };
        let mut cfg = BatchConfig::quick(base, 4);
        cfg.level = telemetry::TelemetryLevel::Full;
        cfg.panic_seeds = vec![2];

        parkit::set_threads(1);
        let clean = fingerprint(&run_batch(&cfg));
        parkit::set_threads(4);
        prop_assert_eq!(&fingerprint(&run_batch(&cfg)), &clean);

        let dir = std::env::temp_dir().join(format!(
            "dcesim_pt_resume-{}-{kill_after}-{first_width}x{resume_width}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        parkit::set_threads(first_width);
        let partial = BatchConfig { seeds: cfg.seeds[..kill_after].to_vec(), ..cfg.clone() };
        let ck = BatchCheckpoint::create(&dir, &cfg).unwrap();
        run_batch_checkpointed(&partial, &ck).unwrap();
        drop(ck);

        parkit::set_threads(resume_width);
        let ck = BatchCheckpoint::resume(&dir, &cfg).unwrap();
        prop_assert_eq!(ck.restored_seeds().len(), kill_after);
        let resumed = run_batch_checkpointed(&cfg, &ck).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        parkit::set_threads(0);
        prop_assert_eq!(&fingerprint(&resumed), &clean,
            "kill at {} widths {}->{}", kill_after, first_width, resume_width);
    }
}
