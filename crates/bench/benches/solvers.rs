//! Performance of the ODE substrate on the BCN vector fields: raw
//! stepper throughput, event-location overhead, and hybrid integration.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use bcn::simulate::{fluid_trajectory, FluidOptions};
use bcn::{BcnFluid, BcnParams};
use odesolve::{integrate, integrate_with_events, Dopri5, EventSpec, Options, Rk4};
use phaseplane::PlaneSystem;

fn bench_steppers(c: &mut Criterion) {
    let params = BcnParams::test_defaults();
    let sys = BcnFluid::linearized(params.clone());
    let ode = move |_t: f64, z: &[f64; 2]| PlaneSystem::deriv(&sys, *z);
    let p0 = params.initial_point();

    let mut group = c.benchmark_group("steppers");
    group.bench_function("rk4_fixed_1e-5_over_10ms", |b| {
        b.iter(|| {
            let sol = integrate(
                &ode,
                0.0,
                black_box(p0),
                0.01,
                &mut Rk4::with_step(1e-5),
                &Options::default(),
            )
            .unwrap();
            black_box(sol.last_state())
        })
    });
    group.bench_function("dopri5_tol_1e-9_over_10ms", |b| {
        b.iter(|| {
            let sol = integrate(
                &ode,
                0.0,
                black_box(p0),
                0.01,
                &mut Dopri5::with_tolerances(1e-9, 1e-9),
                &Options::default(),
            )
            .unwrap();
            black_box(sol.last_state())
        })
    });
    group.finish();
}

fn bench_event_location(c: &mut Criterion) {
    let params = BcnParams::test_defaults();
    let sys = BcnFluid::linearized(params.clone());
    let k = params.k();
    let ode = move |_t: f64, z: &[f64; 2]| PlaneSystem::deriv(&sys, *z);
    let guard = move |_t: f64, z: &[f64; 2]| z[0] + k * z[1];
    let p0 = params.initial_point();

    let mut group = c.benchmark_group("events");
    group.bench_function("integrate_plain_10ms", |b| {
        b.iter(|| {
            integrate(&ode, 0.0, black_box(p0), 0.01, &mut Dopri5::new(), &Options::default())
                .unwrap()
        })
    });
    group.bench_function("integrate_with_guard_10ms", |b| {
        b.iter(|| {
            let events = [EventSpec::recorded(&guard)];
            integrate_with_events(
                &ode,
                0.0,
                black_box(p0),
                0.01,
                &mut Dopri5::new(),
                &events,
                &Options::default(),
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_hybrid(c: &mut Criterion) {
    let params = BcnParams::test_defaults();
    let sys = BcnFluid::linearized(params.clone());
    let opts = FluidOptions::default().with_t_end(0.2);
    c.bench_function("hybrid_bcn_trajectory_0.2s", |b| {
        b.iter_batched(
            || sys.clone(),
            |s| black_box(fluid_trajectory(&s, params.initial_point(), &opts).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_steppers, bench_event_location, bench_hybrid);
criterion_main!(benches);
