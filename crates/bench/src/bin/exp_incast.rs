//! Regenerates the incast fan-in sweep.

fn main() {
    if let Err(e) = bench::experiments::incast::main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
