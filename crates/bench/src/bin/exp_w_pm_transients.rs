//! Regenerates the w/pm transients ablation.

fn main() {
    if let Err(e) = bench::experiments::w_pm_transients::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
