//! Regenerates the fluid-vs-packet validation.

fn main() {
    if let Err(e) = bench::experiments::fluid_vs_packet::main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
