//! Fig. 5 — stable-node phase trajectories (`m^2 - 4n > 0`) with the
//! eigenline asymptotes `y = lambda_1 x` and `y = lambda_2 x`.
//!
//! Node-shaped regions arise when a gain exceeds its threshold
//! (`a > 4 pm^2 C^2 / w^2` for the increase region). Trajectories are
//! parabola-like (Eq. 21/26), approach the origin tangent to the *slow*
//! eigenline `y = lambda_2 x`, and the global extremum obeys Eq. 28.

use std::path::Path;

use bcn::cases::{exemplar, CaseId};
use bcn::closed_form::{NodeForm, RegionFlow, Spectrum};
use bcn::extrema::{node_extremum, node_extremum_paper};
use bcn::model::Region;
use bcn::{BcnFluid, BcnParams};
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot, Table};

use crate::common::{banner, out_dir, save_plot};
use crate::ExpResult;

/// Runs the generator; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    banner("Fig. 5: stable-node trajectories and eigenline asymptotes");
    // Case 2 places the node in the increase region.
    let params = exemplar(&BcnParams::test_defaults(), CaseId::Case2);
    let sys = BcnFluid::linearized(params.clone());
    let flow = RegionFlow::from_kn(params.k(), sys.region_n(Region::Increase));
    let Spectrum::Node { l1, l2 } = flow.spectrum() else {
        return Err("increase region is not node-shaped".into());
    };
    println!(
        "node eigenvalues: lambda1 = {l1:.4}, lambda2 = {l2:.4} (both < -1/k = {:.4})",
        -1.0 / params.k()
    );

    let q0 = params.q0;
    let starts = [
        ("start y(0) > 0", [-0.8 * q0, -l1 * 1.2 * q0]),
        ("start y(0) < 0", [0.7 * q0, l1 * 1.1 * q0]),
        ("between eigenlines", [0.9 * q0, 0.5 * (l1 + l2) * 0.9 * q0]),
    ];

    let mut plot =
        SvgPlot::new("Fig. 5: node trajectories (m^2 - 4n > 0)", "x (bits)", "y (bit/s)");
    let mut csv = Csv::new(&["trajectory", "t", "x", "y"]);
    let mut table = Table::new(&["x(0)", "y(0)", "x* robust", "x* Eq.28", "on eigenline"]);

    let span = 8.0 / l2.abs();
    for (idx, (label, z0)) in starts.iter().enumerate() {
        let n = 800;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let t = span * i as f64 / (n - 1) as f64;
            let z = flow.at(t, *z0);
            xs.push(z[0]);
            ys.push(z[1]);
            csv.row(&[idx as f64, t, z[0], z[1]]);
        }
        plot = plot.with_series(Series::line(label, &xs, &ys, COLOR_CYCLE[idx]));

        let nf = NodeForm::new(l1, l2, *z0);
        let (robust, paper) = match (node_extremum(l1, l2, *z0), node_extremum_paper(l1, l2, *z0)) {
            (Some(r), Some(p)) => (r.x, p.x),
            _ => (f64::NAN, f64::NAN),
        };
        table.row(&[
            format!("{:.1}", z0[0]),
            format!("{:.1}", z0[1]),
            format!("{robust:.2}"),
            format!("{paper:.2}"),
            nf.on_eigenline().to_string(),
        ]);
    }
    // Draw the eigenlines as asymptote references.
    let x_ref = [-q0, q0];
    for (l, name, color) in
        [(l1, "y = lambda1 x (fast)", "#aaaaaa"), (l2, "y = lambda2 x (slow)", "#666666")]
    {
        let ys: Vec<f64> = x_ref.iter().map(|x| l * x).collect();
        plot = plot.with_series(Series::line(name, &x_ref, &ys, color));
    }
    print!("{table}");

    csv.save(out.join("fig05_node.csv"))?;
    println!("wrote {}", out.join("fig05_node.csv").display());
    save_plot(&plot, out, "fig05_node.svg")?;
    Ok(())
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("fig05_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        assert!(dir.join("fig05_node.svg").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
