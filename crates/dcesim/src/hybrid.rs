//! Hybrid fluid–packet co-simulation: analytic fast-forward through
//! quiescent epochs.
//!
//! The packet engine ([`Simulation`]) prices every frame, feedback
//! message, and PAUSE at an event each; a converged BCN loop spends the
//! bulk of that budget re-confirming a fixed point the fluid model
//! ([`bcn::propagate::Propagator`]) describes in closed form. The
//! [`HybridSim`] wrapper runs the packet engine only through the
//! *interesting* stretches — transients near the switching line, fault
//! windows, PAUSE episodes, flow churn — and fast-forwards the
//! quiescent stretches analytically:
//!
//! * **Epoch controller.** At every record-grid tick the controller
//!   projects the packet state onto the fluid coordinates
//!   `z = (q - q0, w - C)` and walks the closed-form flow one grid step
//!   at a time. Far from the equilibrium it allows no region switches
//!   (a switching-line crossing inside a step vetoes it — the packet
//!   engine should price crossings); inside the small equilibrium ball
//!   (`eq_frac`) it walks up to `max_legs` analytic legs per step, so
//!   the terminal spiral — which straddles the line forever — can still
//!   be fast-forwarded.
//! * **Guards.** Structural guards ([`Simulation::hybrid_quiescent`])
//!   require fluid-calibrated BCN control, no faults, no PAUSE asserted
//!   or in flight, and steady homogeneous flows. Dynamic guards keep
//!   the queue inside `(q_margin_frac * q0, (1 - q_margin_frac) * qsc)`
//!   at every grid point *and* at intra-step extrema, so a
//!   fast-forwarded stretch can never have dropped a frame or tripped a
//!   PAUSE. An epoch shorter than `min_ff_secs` is not worth a reseed
//!   and is skipped.
//! * **Re-seeding.** A committed epoch replays its samples onto the
//!   record grid, credits delivery at capacity (the guards imply
//!   `0 < q` throughout, so the server never idles), and re-seeds the
//!   packet state from the fluid endpoint
//!   ([`Simulation::reseed_fluid`]): regulator rates at the fair share,
//!   the FIFO rebuilt to exactly `q` bits, the event set re-populated
//!   through the stats-preserving scheduler clear. The rate-clamp
//!   residue is carried so an immediate packet→fluid extraction
//!   reproduces `(q, w)` bit-exactly.
//!
//! The divergence budget of an epoch switch is the in-flight state the
//! reseed discards (frames and feedback on the wire) plus the fluid
//! model's own averaging; [`DIVERGENCE_BOUND_FRAC`] documents the
//! resulting bound on queue-extrema disagreement, and the
//! `hybrid_engine` bench gates on it. With `always_packet` the
//! controller never runs and the wrapper is bit-identical to the pure
//! packet engine.

use bcn::extrema::region_extremum;
use bcn::propagate::Propagator;
use bcn::BcnParams;

use crate::error::ConfigError;
use crate::sim::{Control, SimConfig, SimReport, SimWorkspace, Simulation};

/// Documented bound on hybrid-vs-pure-packet queue-extrema divergence,
/// as a fraction of the fluid equilibrium `q0`: for a scenario whose
/// structural guards hold (fluid-calibrated BCN, no faults, steady
/// flows), the global queue maximum and minimum of a hybrid run agree
/// with the pure packet engine within `DIVERGENCE_BOUND_FRAC * q0`.
///
/// Scenarios where the guards never admit an epoch (faults, incast
/// churn, PAUSE pressure) degenerate to pure packet simulation and
/// diverge by exactly zero.
pub const DIVERGENCE_BOUND_FRAC: f64 = 0.1;

/// Tuning knobs of the hybrid epoch controller. The defaults are
/// conservative: fast-forward only well-margined, millisecond-or-longer
/// stretches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridGuards {
    /// Disable fast-forwarding entirely: the run is driven through the
    /// hybrid wrapper but every event is packet-simulated, bit-identical
    /// to [`Simulation`] (the CI equivalence gate runs this).
    pub always_packet: bool,
    /// Minimum epoch length (seconds) worth a reseed; shorter analytic
    /// stretches stay packet-simulated. Rounded up to whole record
    /// intervals.
    pub min_ff_secs: f64,
    /// Maximum epoch length (seconds); `0` means unlimited. Bounds the
    /// staleness of the packet state for long quiescent tails.
    pub max_ff_secs: f64,
    /// Half-width of the equilibrium ball, as a fraction of `q0` (for
    /// `|x|`) and of `C` (for `|y|`). Inside the ball multi-leg
    /// advances are allowed; outside, any switching-line crossing
    /// returns control to the packet engine.
    pub eq_frac: f64,
    /// Queue safety margin: fast-forwarding requires
    /// `q_margin_frac * q0 < q < (1 - q_margin_frac) * qsc` throughout
    /// the epoch, keeping it clear of both underflow (server idling)
    /// and the PAUSE threshold.
    pub q_margin_frac: f64,
    /// Region-switch budget per grid step inside the equilibrium ball.
    pub max_legs: u32,
}

impl Default for HybridGuards {
    fn default() -> Self {
        Self {
            always_packet: false,
            min_ff_secs: 1e-3,
            max_ff_secs: 0.0,
            eq_frac: 0.05,
            q_margin_frac: 0.1,
            max_legs: 64,
        }
    }
}

impl HybridGuards {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first invalid field: a
    /// non-finite or negative duration, a fraction outside `(0, 0.5)`,
    /// or a zero leg budget.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, v) in [("hybrid.min_ff", self.min_ff_secs), ("hybrid.max_ff", self.max_ff_secs)]
        {
            if !(v.is_finite() && v >= 0.0) {
                return Err(ConfigError::new(field, "duration must be finite and non-negative"));
            }
        }
        for (field, v) in [("hybrid.eq", self.eq_frac), ("hybrid.margin", self.q_margin_frac)] {
            if !(v.is_finite() && v > 0.0 && v < 0.5) {
                return Err(ConfigError::new(field, "fraction must be in (0, 0.5)"));
            }
        }
        if self.max_legs == 0 {
            return Err(ConfigError::new("hybrid.max-legs", "leg budget must be at least 1"));
        }
        Ok(())
    }
}

/// Epoch accounting of one hybrid run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HybridStats {
    /// Committed fast-forward epochs.
    pub epochs: u64,
    /// Fluid→packet reseeds performed (one per committed epoch).
    pub reseeds: u64,
    /// Simulated nanoseconds covered analytically.
    pub ff_ns: u64,
    /// Simulated nanoseconds covered by the packet engine (filled in
    /// when the run finishes).
    pub packet_ns: u64,
}

/// The fluid parameters and controller knobs that turn a packet run
/// into a hybrid one (the batch runner stores this next to its
/// [`SimConfig`]).
#[derive(Debug, Clone, PartialEq)]
pub struct HybridSpec {
    /// Fluid model the analytic legs propagate.
    pub params: BcnParams,
    /// Epoch-controller tuning.
    pub guards: HybridGuards,
}

impl HybridSpec {
    /// The default controller over `params`.
    #[must_use]
    pub fn new(params: BcnParams) -> Self {
        Self { params, guards: HybridGuards::default() }
    }

    /// Validates the guards and the fluid↔packet consistency against
    /// the packet configuration this spec will wrap — the non-panicking
    /// front door the batch runner uses before construction.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] from [`HybridGuards::validate`]
    /// or the consistency check [`HybridSim::new`] would panic on.
    pub fn validate_for(&self, cfg: &SimConfig) -> Result<(), ConfigError> {
        self.guards.validate()?;
        check_consistent(&self.params, cfg)
    }
}

/// Outcome of a hybrid run: the packet engine's report plus the epoch
/// accounting.
#[derive(Debug)]
pub struct HybridReport {
    /// The underlying simulation report (metrics, final rates,
    /// telemetry).
    pub sim: SimReport,
    /// Fast-forward accounting.
    pub stats: HybridStats,
}

/// The epoch-switching co-simulator: a [`Simulation`] plus the fluid
/// [`Propagator`] and the controller state deciding which engine owns
/// the next stretch of simulated time.
#[derive(Debug)]
pub struct HybridSim {
    sim: Simulation,
    prop: Propagator,
    params: BcnParams,
    guards: HybridGuards,
    stats: HybridStats,
    /// Rate-clamp residue of the last reseed: adding it to the packet
    /// aggregate reproduces the fluid `w` bit-exactly (Sterbenz), so
    /// consecutive epochs chain without rate drift.
    residue: f64,
    /// `min_ff_secs` / `max_ff_secs` in record-grid steps.
    min_steps: u64,
    max_steps: u64,
    /// Candidate epoch samples `(q, w)` per grid point, buffered until
    /// the epoch commits. Reserved once at construction so the warm
    /// path stays allocation-free.
    scratch: Vec<[f64; 2]>,
}

impl HybridSim {
    /// Builds the co-simulator. `cfg` must be the fluid-calibrated
    /// packet configuration of `params` (see [`SimConfig::from_fluid`]).
    ///
    /// # Panics
    ///
    /// Panics on invalid `cfg` or guards, or when `cfg` does not match
    /// `params` (wrong capacity, flow count, or BCN thresholds).
    #[must_use]
    pub fn new(params: BcnParams, cfg: SimConfig, guards: HybridGuards) -> Self {
        Self::new_in(params, cfg, guards, &mut SimWorkspace::new())
    }

    /// [`HybridSim::new`] reusing the buffers of `ws` (the batch
    /// runner's per-worker workspace).
    ///
    /// # Panics
    ///
    /// Same as [`HybridSim::new`].
    #[must_use]
    pub fn new_in(
        params: BcnParams,
        cfg: SimConfig,
        guards: HybridGuards,
        ws: &mut SimWorkspace,
    ) -> Self {
        if let Err(e) = guards.validate() {
            panic!("{e}");
        }
        if let Err(e) = check_consistent(&params, &cfg) {
            panic!("{e}");
        }
        let delta = cfg.record_interval.as_secs();
        let min_steps = ((guards.min_ff_secs / delta).ceil() as u64).max(1);
        let max_steps = if guards.max_ff_secs > 0.0 {
            ((guards.max_ff_secs / delta).floor() as u64).max(1)
        } else {
            u64::MAX
        };
        let records = (cfg.t_end.as_secs() / delta).ceil() as usize + 2;
        let prop = Propagator::for_params(&params);
        let sim = Simulation::new_in(cfg, ws);
        let scratch = Vec::with_capacity(records);
        Self {
            sim,
            prop,
            params,
            guards,
            stats: HybridStats::default(),
            residue: 0.0,
            min_steps,
            max_steps,
            scratch,
        }
    }

    /// Attaches a telemetry sink (see [`Simulation::with_telemetry`]):
    /// in addition to the packet engine's hooks, the hybrid layer
    /// records `hybrid.*` counters and one eager `HybridEpoch` span per
    /// committed epoch.
    #[must_use]
    pub fn with_telemetry_sink(mut self, tel: telemetry::Telemetry) -> Self {
        self.sim = self.sim.with_telemetry_sink(tel);
        self
    }

    /// Epoch accounting so far (`packet_ns` is filled in by
    /// [`HybridSim::finish`]).
    #[must_use]
    pub fn stats(&self) -> HybridStats {
        self.stats
    }

    /// Detaches the telemetry sink mid-run (the crash-flight-recorder
    /// escape hatch; see [`Simulation::take_telemetry`]).
    pub fn take_telemetry(&mut self) -> Option<telemetry::Telemetry> {
        self.sim.take_telemetry()
    }

    /// Dispatches the next packet event, then — exactly at record-grid
    /// ticks — lets the epoch controller try to fast-forward. Returns
    /// `false` once the horizon is reached.
    pub fn step(&mut self) -> bool {
        if !self.sim.step() {
            return false;
        }
        if !self.guards.always_packet && self.sim.take_record_mark() {
            self.try_fast_forward();
        }
        true
    }

    /// Runs to completion.
    #[must_use]
    pub fn run(mut self) -> HybridReport {
        while self.step() {}
        self.finish()
    }

    /// Runs to completion, returning the buffers to `ws` for the next
    /// run.
    #[must_use]
    pub fn run_into(mut self, ws: &mut SimWorkspace) -> HybridReport {
        while self.step() {}
        self.finish_into(ws)
    }

    /// Finalizes a stepped run into a report.
    #[must_use]
    pub fn finish(mut self) -> HybridReport {
        self.flush_stats();
        HybridReport { sim: self.sim.finish(), stats: self.stats }
    }

    /// Finalizes a stepped run and returns the buffers to `ws`.
    #[must_use]
    pub fn finish_into(mut self, ws: &mut SimWorkspace) -> HybridReport {
        self.flush_stats();
        HybridReport { sim: self.sim.finish_into(ws), stats: self.stats }
    }

    /// Computes the packet/fluid time split and flushes the `hybrid.*`
    /// telemetry counters (once, off the hot path).
    fn flush_stats(&mut self) {
        let horizon = self.sim.config().t_end.as_nanos();
        self.stats.packet_ns = horizon.saturating_sub(self.stats.ff_ns);
        let s = self.stats;
        if let Some(tel) = self.sim.telemetry_mut() {
            tel.hybrid_stats(s.reseeds, s.ff_ns, s.packet_ns);
        }
    }

    /// The epoch controller: from the current record-grid tick, walk
    /// the closed-form flow forward one grid step at a time for as long
    /// as every guard holds, and commit the stretch as a fast-forward
    /// epoch if it is long enough to be worth a reseed.
    fn try_fast_forward(&mut self) {
        if !self.sim.hybrid_quiescent() {
            return;
        }
        let (dt, t_end) = {
            let cfg = self.sim.config();
            (cfg.record_interval, cfg.t_end)
        };
        let delta = dt.as_secs();
        let t0 = self.sim.now();
        let p = &self.params;
        let q_lo = self.guards.q_margin_frac * p.q0;
        let q_hi = (1.0 - self.guards.q_margin_frac) * p.qsc;
        let [q, w_packet] = self.sim.fluid_state();
        if !(q > q_lo && q < q_hi) {
            return;
        }
        let w = w_packet + self.residue;
        let mut z = [q - p.q0, w - p.capacity];
        let mut region = self.prop.departing_region(z);
        let eq_x = self.guards.eq_frac * p.q0;
        let eq_y = self.guards.eq_frac * p.capacity;
        self.scratch.clear();
        let mut t_next = t0;
        let mut steps: u64 = 0;
        while steps < self.max_steps {
            // The packet engine only schedules a record tick that fits
            // the horizon; mirror that so the grids stay identical.
            let Some(after) = t_next.checked_add(dt) else { break };
            if after > t_end {
                break;
            }
            let in_ball = z[0].abs() <= eq_x && z[1].abs() <= eq_y;
            let legs = if in_ball { self.guards.max_legs as usize } else { 0 };
            let c = self.prop.advance(region, z, delta, legs);
            if c.t < delta {
                // Switch budget exhausted inside the step: outside the
                // ball that is the first switching-line crossing, which
                // the packet engine should price.
                break;
            }
            let q_end = p.q0 + c.z[0];
            if !(q_end > q_lo && q_end < q_hi) {
                break;
            }
            if c.switches == 0 {
                // Endpoints inside the margins do not bound the path:
                // a single-leg step can overshoot in between. The
                // closed form knows its own extremum.
                if let Some(e) = region_extremum(self.prop.flow(region), z) {
                    if e.t < delta {
                        let q_ext = p.q0 + e.x;
                        if !(q_ext > q_lo && q_ext < q_hi) {
                            break;
                        }
                    }
                }
            }
            z = c.z;
            region = c.region;
            t_next = after;
            steps += 1;
            self.scratch.push([q_end, p.capacity + c.z[1]]);
        }
        if steps < self.min_steps {
            return;
        }
        let t1 = t_next;
        let mut t = t0;
        for j in 0..steps as usize {
            t += dt;
            let [qj, wj] = self.scratch[j];
            self.sim.hybrid_record_sample(t, qj, wj);
        }
        self.sim.hybrid_credit_delivery((t1 - t0).as_secs());
        let epoch = u32::try_from(self.stats.epochs).unwrap_or(u32::MAX);
        if let Some(tel) = self.sim.telemetry_mut() {
            tel.hybrid_epoch(t0.as_secs(), t1.as_secs(), epoch);
        }
        let [q1, w1] = self.scratch[steps as usize - 1];
        self.residue = self.sim.reseed_fluid(t1, q1, w1);
        self.stats.epochs += 1;
        self.stats.reseeds += 1;
        self.stats.ff_ns += (t1 - t0).as_nanos();
    }
}

/// Checks that the packet configuration is the fluid calibration of
/// `params` — the correspondence [`SimConfig::from_fluid`] establishes
/// and the divergence bound depends on.
fn check_consistent(params: &BcnParams, cfg: &SimConfig) -> Result<(), ConfigError> {
    let Control::Bcn { cp, .. } = &cfg.control else {
        return Err(ConfigError::new("hybrid.control", "hybrid engine requires BCN control"));
    };
    if cfg.capacity != params.capacity {
        return Err(ConfigError::new("hybrid.capacity", "packet capacity != fluid capacity"));
    }
    if cfg.flows.len() != params.n_flows as usize {
        return Err(ConfigError::new("hybrid.flows", "packet flow count != fluid N"));
    }
    if cp.q0_bits != params.q0 || cp.qsc_bits != params.qsc {
        return Err(ConfigError::new("hybrid.thresholds", "packet q0/qsc != fluid q0/qsc"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::fluid_validation_params;
    use crate::time::{Duration, Time};

    fn quiescent_setup() -> (BcnParams, SimConfig) {
        let params = fluid_validation_params();
        let cfg = SimConfig::from_fluid(&params, 8_000.0, Duration::from_secs(2e-6), 0.5);
        (params, cfg)
    }

    #[test]
    fn reseed_round_trip_is_bit_exact() {
        let (_, cfg) = quiescent_setup();
        let mut sim = Simulation::new(cfg);
        for _ in 0..20_000 {
            if !sim.step() {
                break;
            }
        }
        let t = sim.now();
        for (q, w) in [(1.234e6, 0.97e9), (0.8e6, 1.02e9), (2.5e6 + 0.125, 9.99e8 + 0.25)] {
            let residue = sim.reseed_fluid(t, q, w);
            let [q2, w2] = sim.fluid_state();
            assert_eq!(q2.to_bits(), q.to_bits(), "queue must round-trip bit-exactly");
            assert_eq!(
                (w2 + residue).to_bits(),
                w.to_bits(),
                "aggregate rate + residue must round-trip bit-exactly"
            );
        }
    }

    #[test]
    fn always_packet_is_bit_identical_to_pure_packet() {
        let (params, cfg) = quiescent_setup();
        let pure = Simulation::new(cfg.clone()).run();
        let guards = HybridGuards { always_packet: true, ..HybridGuards::default() };
        let hybrid = HybridSim::new(params, cfg, guards).run();
        assert_eq!(hybrid.stats.epochs, 0);
        assert_eq!(hybrid.stats.ff_ns, 0);
        assert_eq!(pure.metrics.queue.values(), hybrid.sim.metrics.queue.values());
        assert_eq!(
            pure.metrics.aggregate_rate.values(),
            hybrid.sim.metrics.aggregate_rate.values()
        );
        assert_eq!(pure.metrics.delivered_frames, hybrid.sim.metrics.delivered_frames);
        assert_eq!(pure.final_rates, hybrid.sim.final_rates);
    }

    #[test]
    fn fast_forward_fires_and_keeps_the_record_grid_dense() {
        let (params, cfg) = quiescent_setup();
        let pure = Simulation::new(cfg.clone()).run();
        let hybrid = HybridSim::new(params, cfg, HybridGuards::default()).run();
        assert!(hybrid.stats.epochs > 0, "quiescent tail must fast-forward");
        assert!(hybrid.stats.ff_ns > 0);
        assert_eq!(hybrid.stats.reseeds, hybrid.stats.epochs);
        assert_eq!(
            hybrid.stats.ff_ns + hybrid.stats.packet_ns,
            Time::from_secs(0.5).as_nanos(),
            "time split must cover the horizon exactly"
        );
        // The sampled series must stay grid-dense: same number of
        // samples as the pure packet run, on the same grid.
        assert_eq!(hybrid.sim.metrics.queue.len(), pure.metrics.queue.len());
        assert_eq!(hybrid.sim.metrics.queue.times(), pure.metrics.queue.times());
    }

    #[test]
    fn divergence_stays_within_the_documented_bound() {
        // Hand-rolled property test: splitmix64-driven random parameter
        // sets around the fluid-calibrated baseline, each checked for
        // hybrid-vs-pure queue-extrema agreement within the bound.
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn uniform(state: &mut u64, lo: f64, hi: f64) -> f64 {
            let u = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
            lo + u * (hi - lo)
        }
        let mut state = 0x5eed_5eed_5eed_5eed_u64;
        for case in 0..4 {
            let gi = uniform(&mut state, 0.8, 1.6);
            let gd = uniform(&mut state, 0.7, 1.4) / 16_384.0;
            let ru = uniform(&mut state, 0.7, 1.5) * 1.0e4;
            let params = fluid_validation_params().with_gi(gi).with_gd(gd).with_ru(ru);
            let cfg = SimConfig::from_fluid(&params, 8_000.0, Duration::from_secs(2e-6), 0.3);
            let pure = Simulation::new(cfg.clone()).run();
            let hybrid = HybridSim::new(params.clone(), cfg, HybridGuards::default()).run();
            let bound = DIVERGENCE_BOUND_FRAC * params.q0;
            let dmax = (pure.metrics.queue.max() - hybrid.sim.metrics.queue.max()).abs();
            let dmin = (pure.metrics.queue.min_after(0.05)
                - hybrid.sim.metrics.queue.min_after(0.05))
            .abs();
            assert!(
                dmax <= bound && dmin <= bound,
                "case {case} (gi={gi:.3} gd={gd:.3e} ru={ru:.3e}): \
                 extrema divergence max={dmax:.1} min={dmin:.1} exceeds bound {bound:.1}"
            );
        }
    }

    #[test]
    fn guards_reject_invalid_knobs() {
        assert!(HybridGuards::default().validate().is_ok());
        let bad = HybridGuards { eq_frac: 0.0, ..HybridGuards::default() };
        assert_eq!(bad.validate().unwrap_err().field, "hybrid.eq");
        let bad = HybridGuards { q_margin_frac: 0.6, ..HybridGuards::default() };
        assert_eq!(bad.validate().unwrap_err().field, "hybrid.margin");
        let bad = HybridGuards { min_ff_secs: f64::NAN, ..HybridGuards::default() };
        assert_eq!(bad.validate().unwrap_err().field, "hybrid.min_ff");
        let bad = HybridGuards { max_legs: 0, ..HybridGuards::default() };
        assert_eq!(bad.validate().unwrap_err().field, "hybrid.max-legs");
    }

    #[test]
    #[should_panic(expected = "hybrid.capacity")]
    fn mismatched_fluid_params_are_rejected() {
        let (params, cfg) = quiescent_setup();
        let wrong = params.with_capacity(2.0e9);
        let _ = HybridSim::new(wrong, cfg, HybridGuards::default());
    }

    #[test]
    fn fault_injection_disables_fast_forward() {
        let (params, mut cfg) = quiescent_setup();
        cfg.faults.seed = 7;
        cfg.faults.feedback_loss = 0.1;
        let hybrid = HybridSim::new(params, cfg, HybridGuards::default()).run();
        assert_eq!(hybrid.stats.epochs, 0, "faulty runs must stay pure packet");
    }
}
