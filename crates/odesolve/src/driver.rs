//! One-shot integration drivers.

use crate::event::{locate_zero_counted, EventOccurrence, EventSpec};
use crate::interp::CubicHermite;
use crate::solution::Solution;
use crate::stepper::Stepper;
use crate::{Ode, SolveError};
use telemetry::Telemetry;

/// Driver-level configuration shared by all integration runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Hard cap on the number of accepted steps.
    pub max_steps: usize,
    /// Upper bound on any single step (0 disables the bound).
    pub max_step: f64,
    /// If set, accepted points are recorded no further apart than this
    /// (extra points come from the dense-output interpolant), giving
    /// uniform-looking traces for plotting. `None` records only accepted
    /// step endpoints.
    pub record_dt: Option<f64>,
}

impl Default for Options {
    fn default() -> Self {
        Self { max_steps: 1_000_000, max_step: 0.0, record_dt: None }
    }
}

impl Options {
    /// Sets the accepted-step budget.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Sets the maximum allowed step size.
    #[must_use]
    pub fn with_max_step(mut self, max_step: f64) -> Self {
        self.max_step = max_step;
        self
    }

    /// Requests dense recording at roughly the given spacing.
    #[must_use]
    pub fn with_record_dt(mut self, dt: f64) -> Self {
        self.record_dt = Some(dt);
        self
    }
}

/// Integrates `dy/dt = ode(t, y)` from `(t0, y0)` to `t_end` and records the
/// trajectory.
///
/// # Errors
///
/// Propagates stepper failures ([`SolveError::StepSizeUnderflow`],
/// [`SolveError::NonFiniteState`]) and returns
/// [`SolveError::MaxStepsExceeded`] when the budget runs out, or
/// [`SolveError::BadInput`] when `t_end < t0` or the inputs are non-finite.
pub fn integrate<const N: usize>(
    ode: &dyn Ode<N>,
    t0: f64,
    y0: [f64; N],
    t_end: f64,
    stepper: &mut dyn Stepper<N>,
    opts: &Options,
) -> Result<Solution<N>, SolveError> {
    integrate_with_events(ode, t0, y0, t_end, stepper, &[], opts)
}

/// Integrates like [`integrate`], additionally watching the guard functions
/// in `events`. Every directional sign change is located with the
/// dense-output interpolant and recorded; if the triggering spec is
/// `terminal` the run stops exactly at the event point (which becomes the
/// final recorded state).
///
/// # Errors
///
/// Same as [`integrate`].
pub fn integrate_with_events<const N: usize>(
    ode: &dyn Ode<N>,
    t0: f64,
    y0: [f64; N],
    t_end: f64,
    stepper: &mut dyn Stepper<N>,
    events: &[EventSpec<'_, N>],
    opts: &Options,
) -> Result<Solution<N>, SolveError> {
    integrate_with_events_telemetry(ode, t0, y0, t_end, stepper, events, opts, None)
}

/// Like [`integrate_with_events`], recording per-step telemetry (accepted
/// and rejected step counts, step sizes, error estimates, event-location
/// iterations) into `tel` when provided.
///
/// With `tel = None` (or a sink at level `Off`) the instrumentation is a
/// near-no-op, so the plain entry points delegate here at no cost.
///
/// # Errors
///
/// Same as [`integrate`].
#[allow(clippy::too_many_arguments)]
pub fn integrate_with_events_telemetry<const N: usize>(
    ode: &dyn Ode<N>,
    t0: f64,
    y0: [f64; N],
    t_end: f64,
    stepper: &mut dyn Stepper<N>,
    events: &[EventSpec<'_, N>],
    opts: &Options,
    mut tel: Option<&mut Telemetry>,
) -> Result<Solution<N>, SolveError> {
    if !t0.is_finite() || !t_end.is_finite() {
        return Err(SolveError::BadInput("non-finite time bounds".into()));
    }
    if t_end < t0 {
        return Err(SolveError::BadInput(format!("t_end ({t_end}) must not precede t0 ({t0})")));
    }
    if !crate::vecn::all_finite(&y0) {
        return Err(SolveError::BadInput("non-finite initial state".into()));
    }

    let mut sol = Solution::new(t0, y0);
    if t_end == t0 {
        return Ok(sol);
    }

    let mut t = t0;
    let mut y = y0;
    let mut f = ode.rhs(t, &y);
    let mut g: Vec<f64> = events.iter().map(|e| e.guard.guard(t, &y)).collect();
    let mut h = stepper.initial_step(t, &y, &f, t_end);
    if opts.max_step > 0.0 {
        h = h.min(opts.max_step);
    }

    for _ in 0..opts.max_steps {
        h = h.min(t_end - t);
        if opts.max_step > 0.0 {
            h = h.min(opts.max_step);
        }
        let out = stepper.step(ode, t, &y, &f, h)?;
        if let Some(tel) = tel.as_deref_mut() {
            let rejected = stepper.take_rejections();
            tel.steps_rejected(t, h, rejected);
            tel.step_accepted(out.t_new, out.t_new - t, stepper.last_error_estimate());
        }
        let interp = CubicHermite::new(t, y, f, out.t_new, out.y_new, out.f_new);

        // Check guards across this step; find the earliest triggering event.
        let mut hit: Option<EventOccurrence<N>> = None;
        for (idx, spec) in events.iter().enumerate() {
            let g_new = spec.guard.guard(out.t_new, &out.y_new);
            if spec.direction.matches(g[idx], g_new) {
                let (te, ye, iters) =
                    locate_zero_counted(spec.guard, &interp, g[idx], g_new, spec.direction);
                if let Some(tel) = tel.as_deref_mut() {
                    tel.event_located(te, iters);
                }
                let better = match &hit {
                    Some(prev) => te < prev.t,
                    None => true,
                };
                if better {
                    hit =
                        Some(EventOccurrence { index: idx, t: te, y: ye, terminal: spec.terminal });
                }
            }
        }

        if let Some(ev) = hit {
            record_dense(&mut sol, &interp, t, ev.t, opts);
            sol.push(ev.t, ev.y);
            let terminal = ev.terminal;
            sol.push_event(ev.clone());
            if terminal {
                return Ok(sol);
            }
            // Continue from the event point with fresh derivative/guards.
            t = ev.t;
            y = ev.y;
            f = ode.rhs(t, &y);
            for (idx, spec) in events.iter().enumerate() {
                g[idx] = spec.guard.guard(t, &y);
            }
            h = out.h_next;
            if t >= t_end {
                return Ok(sol);
            }
            continue;
        }

        record_dense(&mut sol, &interp, t, out.t_new, opts);
        sol.push(out.t_new, out.y_new);
        t = out.t_new;
        y = out.y_new;
        f = out.f_new;
        for (idx, spec) in events.iter().enumerate() {
            g[idx] = spec.guard.guard(t, &y);
        }
        h = out.h_next;
        if t >= t_end {
            return Ok(sol);
        }
    }
    Err(SolveError::MaxStepsExceeded { t, max_steps: opts.max_steps })
}

/// Records intermediate interpolated points in `(t_from, t_to)` when
/// `opts.record_dt` requests denser output than the accepted steps provide.
fn record_dense<const N: usize>(
    sol: &mut Solution<N>,
    interp: &CubicHermite<N>,
    t_from: f64,
    t_to: f64,
    opts: &Options,
) {
    let Some(dt) = opts.record_dt else { return };
    if dt <= 0.0 {
        return;
    }
    let mut t = t_from + dt;
    while t < t_to - 1e-12 * dt {
        sol.push(t, interp.eval(t));
        t += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Direction;
    use crate::{Dopri5, Rk4};

    #[test]
    fn reaches_end_time() {
        let sol = integrate(
            &|_t: f64, y: &[f64; 1]| [-y[0]],
            0.0,
            [1.0],
            2.0,
            &mut Dopri5::new(),
            &Options::default(),
        )
        .unwrap();
        assert!((sol.last_time() - 2.0).abs() < 1e-12);
        assert!((sol.last_state()[0] - (-2.0f64).exp()).abs() < 1e-7);
    }

    #[test]
    fn zero_length_interval_is_trivial() {
        let sol = integrate(
            &|_t: f64, y: &[f64; 1]| [y[0]],
            1.0,
            [3.0],
            1.0,
            &mut Dopri5::new(),
            &Options::default(),
        )
        .unwrap();
        assert_eq!(sol.len(), 1);
        assert_eq!(sol.last_state(), [3.0]);
    }

    #[test]
    fn rejects_reversed_interval() {
        let err = integrate(
            &|_t: f64, y: &[f64; 1]| [y[0]],
            1.0,
            [3.0],
            0.0,
            &mut Dopri5::new(),
            &Options::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SolveError::BadInput(_)));
    }

    #[test]
    fn terminal_event_stops_run() {
        // Falling object: stop when height crosses zero.
        // y'' = -9.81 from y(0)=10, v(0)=0 => hits 0 at t = sqrt(20/9.81).
        let ode = |_t: f64, y: &[f64; 2]| [y[1], -9.81];
        let guard = |_t: f64, y: &[f64; 2]| y[0];
        let events = [EventSpec::terminal(&guard).with_direction(Direction::Falling)];
        let sol = integrate_with_events(
            &ode,
            0.0,
            [10.0, 0.0],
            10.0,
            &mut Dopri5::new(),
            &events,
            &Options::default(),
        )
        .unwrap();
        let t_hit = (2.0 * 10.0 / 9.81_f64).sqrt();
        assert_eq!(sol.events().len(), 1);
        assert!((sol.last_time() - t_hit).abs() < 1e-8, "hit at {}", sol.last_time());
        assert!(sol.last_state()[0].abs() < 1e-7);
    }

    #[test]
    fn non_terminal_events_are_recorded_and_run_continues() {
        // sin crosses zero at pi and 2 pi within (0, 7].
        let ode = |_t: f64, y: &[f64; 2]| [y[1], -y[0]];
        let guard = |_t: f64, y: &[f64; 2]| y[0];
        let events = [EventSpec::recorded(&guard)];
        let sol = integrate_with_events(
            &ode,
            0.0,
            [0.0, 1.0], // y = sin t starting just past its t=0 zero
            7.0,
            &mut Dopri5::with_tolerances(1e-10, 1e-10),
            &events,
            &Options::default(),
        )
        .unwrap();
        assert!((sol.last_time() - 7.0).abs() < 1e-12);
        assert_eq!(sol.events().len(), 2, "events: {:?}", sol.events());
        assert!((sol.events()[0].t - std::f64::consts::PI).abs() < 1e-8);
        assert!((sol.events()[1].t - std::f64::consts::TAU).abs() < 1e-8);
    }

    #[test]
    fn directional_filter_skips_wrong_crossings() {
        let ode = |_t: f64, y: &[f64; 2]| [y[1], -y[0]];
        let guard = |_t: f64, y: &[f64; 2]| y[0];
        // Only falling crossings of sin t: first at pi.
        let events = [EventSpec::terminal(&guard).with_direction(Direction::Falling)];
        let sol = integrate_with_events(
            &ode,
            0.0,
            [0.0, 1.0],
            10.0,
            &mut Dopri5::new(),
            &events,
            &Options::default(),
        )
        .unwrap();
        assert!((sol.last_time() - std::f64::consts::PI).abs() < 1e-7);
    }

    #[test]
    fn dense_recording_bounds_spacing() {
        let opts = Options::default().with_record_dt(0.01);
        let sol = integrate(
            &|_t: f64, y: &[f64; 1]| [-y[0]],
            0.0,
            [1.0],
            1.0,
            &mut Dopri5::with_tolerances(1e-6, 1e-6),
            &opts,
        )
        .unwrap();
        let ts = sol.times();
        for w in ts.windows(2) {
            assert!(w[1] - w[0] <= 0.011, "gap {} too wide", w[1] - w[0]);
        }
        // Dense samples must lie on the true solution.
        for (t, y) in ts.iter().zip(sol.states()) {
            assert!((y[0] - (-t).exp()).abs() < 1e-4, "at t={t}");
        }
    }

    #[test]
    fn max_steps_is_enforced() {
        let err = integrate(
            &|_t: f64, y: &[f64; 1]| [-y[0]],
            0.0,
            [1.0],
            100.0,
            &mut Rk4::with_step(1e-4),
            &Options::default().with_max_steps(10),
        )
        .unwrap_err();
        assert!(matches!(err, SolveError::MaxStepsExceeded { .. }));
    }

    #[test]
    fn max_step_bound_is_respected() {
        let sol = integrate(
            &|_t: f64, y: &[f64; 1]| [-y[0]],
            0.0,
            [1.0],
            1.0,
            &mut Dopri5::with_tolerances(1e-3, 1e-3),
            &Options::default().with_max_step(0.05),
        )
        .unwrap();
        for w in sol.times().windows(2) {
            assert!(w[1] - w[0] <= 0.05 + 1e-12);
        }
    }
}
