//! Design-choice ablation (called out in DESIGN.md): exact event-located
//! hybrid integration vs naively integrating the discontinuous
//! right-hand side, at matched wall-clock cost — quantifying why the
//! hybrid driver exists.
//!
//! The naive approach feeds the piecewise vector field straight to the
//! adaptive stepper; the controller brute-forces the kink at the
//! switching line by shrinking steps, costing accuracy *and* time. The
//! hybrid driver stops exactly on the line and restarts, so each smooth
//! leg integrates at full order.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bcn::simulate::{fluid_trajectory, Engine, FluidOptions};
use bcn::{BcnFluid, BcnParams};
use odesolve::{integrate, Dopri5, Options};
use phaseplane::PlaneSystem;

fn bench_ablation(c: &mut Criterion) {
    let params = BcnParams::test_defaults();
    let sys = BcnFluid::linearized(params.clone());
    let p0 = params.initial_point();
    let t_end = 0.1;

    let mut group = c.benchmark_group("event_location_ablation");
    group.bench_function("hybrid_event_located", |b| {
        // Pinned to the numeric engine: this ablation measures the
        // event-located DOPRI5 path, not the closed-form propagator.
        let opts = FluidOptions {
            t_end,
            tol: 1e-9,
            max_switches: 100,
            record_dt: None,
            engine: Engine::Dopri5,
        };
        b.iter(|| black_box(fluid_trajectory(&sys, p0, &opts).unwrap()))
    });
    group.bench_function("semi_analytic_propagator", |b| {
        let opts = FluidOptions {
            t_end,
            tol: 1e-9,
            max_switches: 100,
            record_dt: None,
            engine: Engine::Analytic,
        };
        b.iter(|| black_box(fluid_trajectory(&sys, p0, &opts).unwrap()))
    });
    group.bench_function("naive_discontinuous_rhs", |b| {
        let sys = sys.clone();
        let ode = move |_t: f64, z: &[f64; 2]| PlaneSystem::deriv(&sys, *z);
        b.iter(|| {
            black_box(
                integrate(
                    &ode,
                    0.0,
                    p0,
                    t_end,
                    &mut Dopri5::with_tolerances(1e-9, 1e-9),
                    &Options::default(),
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
