//! The prior linear stability analysis of Lu et al. \[4\]
//! ("Congestion Control in Networks with No Congestion Drops",
//! Allerton 2006) — the baseline the paper argues against.
//!
//! That analysis splits the switched BCN system into its two linear
//! subsystems, checks each in isolation with classical criteria
//! (Nyquist there; equivalently Routh–Hurwitz for these second-order
//! characteristic polynomials), and declares the overall system stable
//! when both subsystems are. The reproduced paper's Proposition 1 notes
//! the result: **every** positive parameterisation passes, because
//! `lambda^2 + m lambda + n` with `m, n > 0` is always Hurwitz.
//!
//! The baseline's blind spots — exactly what the paper's strong-stability
//! analysis fixes — are:
//!
//! * it says nothing about the switching transient, so it cannot predict
//!   the buffer overshoot (its verdict is independent of `B`);
//! * it cannot explain the sustained queue oscillations (limit cycle)
//!   observed in experiments.

use crate::model::{BcnFluid, Region};
use crate::params::BcnParams;

/// Routh–Hurwitz data for one isolated subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubsystemStability {
    /// Coefficient `m` of `lambda^2 + m lambda + n`.
    pub m: f64,
    /// Coefficient `n`.
    pub n: f64,
    /// Hurwitz verdict: both coefficients positive.
    pub stable: bool,
}

/// The baseline's overall analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearAnalysis {
    /// The rate-increase subsystem viewed in isolation.
    pub increase: SubsystemStability,
    /// The rate-decrease subsystem viewed in isolation.
    pub decrease: SubsystemStability,
    /// The baseline's verdict: stable iff both subsystems are.
    pub overall_stable: bool,
}

/// Runs the Lu et al. \[4\]-style analysis: Routh–Hurwitz on each isolated
/// linearised subsystem (paper Eq. 10 coefficients `m1 = a k`, `n1 = a`,
/// `m2 = b w / pm = k b C`, `n2 = b C`).
#[must_use]
pub fn analyze(params: &BcnParams) -> LinearAnalysis {
    let sys = BcnFluid::linearized(params.clone());
    let sub = |region: Region| {
        let j = sys.jacobian(region);
        let m = -j.trace();
        let n = j.det();
        SubsystemStability { m, n, stable: m > 0.0 && n > 0.0 }
    };
    let increase = sub(Region::Increase);
    let decrease = sub(Region::Decrease);
    LinearAnalysis { increase, decrease, overall_stable: increase.stable && decrease.stable }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability;

    #[test]
    fn proposition_1_all_positive_parameters_pass() {
        // Any valid parameter set is declared stable by the baseline.
        let variants = [
            BcnParams::paper_defaults(),
            BcnParams::test_defaults(),
            BcnParams::paper_defaults().with_gi(1000.0),
            BcnParams::paper_defaults().with_gd(0.9),
            BcnParams::paper_defaults().with_n_flows(10_000),
        ];
        for p in variants {
            let a = analyze(&p);
            assert!(a.overall_stable, "baseline rejected {p:?}");
            assert!(a.increase.stable && a.decrease.stable);
        }
    }

    #[test]
    fn coefficients_match_paper_eq10() {
        let p = BcnParams::paper_defaults();
        let a = analyze(&p);
        assert!((a.increase.m - p.a() * p.k()).abs() < 1e-9 * a.increase.m);
        assert!((a.increase.n - p.a()).abs() < 1e-9 * a.increase.n);
        let m2 = p.b() * p.w / p.pm;
        assert!((a.decrease.m - m2).abs() < 1e-9 * m2);
        assert!((a.decrease.n - p.b() * p.capacity).abs() < 1e-6);
    }

    #[test]
    fn verdict_is_blind_to_buffer_size() {
        // The baseline cannot see B at all — same verdict with a buffer
        // 1000x smaller.
        let p = BcnParams::paper_defaults();
        let small = p.clone().with_buffer(p.q0 * 1.001);
        assert_eq!(analyze(&p), analyze(&small));
    }

    #[test]
    fn baseline_passes_where_strong_stability_fails() {
        // The paper's motivating gap: with the 5 Mbit BDP buffer the
        // baseline says "stable" but the exact switched trajectory
        // overflows the buffer.
        let p = BcnParams::paper_defaults();
        assert!(analyze(&p).overall_stable);
        let exact = stability::exact_verdict(&p, 20);
        assert!(!exact.strongly_stable, "the 5 Mbit buffer should overflow: {exact:?}");
        assert!(!stability::theorem1_holds(&p));
    }
}
