//! The victim-flow story: why Data Center Ethernet needed end-to-end
//! congestion management instead of relying on hop-by-hop PAUSE.
//!
//! Four "culprit" flows overload a quarter-rate leaf port behind a shared
//! trunk; one innocent "victim" flow shares only the trunk. Watch what
//! each policy does to the victim.
//!
//! Run with `cargo run --release --example victim_flow`.

use dcesim::cp::CpConfig;
use dcesim::frame::CpId;
use dcesim::net::{victim_topology, NetSim, PauseConfig};
use dcesim::rp::RpConfig;
use dcesim::time::Duration;

const TRUNK: f64 = 1.0e9;
const FRAME: f64 = 8_000.0;
const T_END: f64 = 0.25;

fn main() {
    println!("victim scenario: 4 culprits -> [S1] -> trunk -> [S2] -> 0.25C sink");
    println!("                 victim ----/                    \\--> 1.0C sink");
    println!("victim demand: 0.25C = {:.0e} bit/s\n", 0.25 * TRUNK);

    let pause_on = PauseConfig {
        enabled: true,
        hold: Duration::from_secs(40.0 * FRAME / TRUNK),
        per_priority: false,
    };
    let pfc_on = PauseConfig { per_priority: true, ..pause_on };
    let pause_off = PauseConfig { enabled: false, hold: Duration::ZERO, per_priority: false };

    let bcn = || {
        let cp = CpConfig {
            cpid: CpId(2),
            q0_bits: 10.0 * FRAME,
            qsc_bits: 50.0 * FRAME,
            w: 200.0 / FRAME,
            sample_every: 5,
            fb_quant: None,
            gate_positive: false,
        };
        let rp = RpConfig {
            gi: 0.5,
            gd: 1.0 / 512.0,
            ru: 1.0e4,
            gain_scale: FRAME * 4.0 / (0.2 * TRUNK),
            r_min: TRUNK * 1e-6,
            r_max: TRUNK,
        };
        (cp, rp)
    };

    for (name, pause, control, victim_class) in [
        ("lossy Ethernet (drop-tail)", pause_off, None, 0u8),
        ("PAUSE only (lossless, pre-BCN)", pause_on, None, 0),
        ("PFC, victim on its own class", pfc_on, None, 1),
        ("BCN + PAUSE backstop", pause_on, Some(bcn()), 0),
    ] {
        let (mut cfg, victim) =
            victim_topology(4, TRUNK, FRAME, Duration::from_secs(1e-6), T_END, pause, control);
        cfg.flows[victim].priority = victim_class;
        let report = NetSim::new(cfg).run();
        let vt = report.throughput(victim, T_END);
        let drops: u64 = report.flows.iter().map(|f| f.dropped_frames).sum();
        let trunk_pauses = report.pause_counts[5];
        println!("{name}:");
        println!(
            "  victim throughput: {:>6.1}% of demand    drops: {:>6}    trunk PAUSEs: {:>4}",
            vt / (0.25 * TRUNK) * 100.0,
            drops,
            trunk_pauses
        );
    }

    println!();
    println!("drop-tail spares the victim but loses frames (fatal for FCoE storage);");
    println!("PAUSE is lossless but the stalled trunk starves the innocent victim —");
    println!("the congestion 'rolls back from switch to switch' exactly as the paper's");
    println!("introduction describes; BCN throttles the culprits at the edge and");
    println!("delivers both losslessness and victim isolation.");
}
