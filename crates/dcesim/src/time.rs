//! Integer simulation time.
//!
//! Event-driven simulation needs exact time comparison; floating-point
//! accumulation would make event ordering platform-dependent. Time is a
//! `u64` count of nanoseconds (enough for ~584 years of simulated time).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);

    /// The far end of representable time (~584 years of nanoseconds).
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw nanoseconds.
    #[must_use]
    pub fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Creates a time from seconds (rounded to the nearest nanosecond).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or overflows the range.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "time must be non-negative, got {secs}");
        let ns = secs * 1e9;
        assert!(ns <= u64::MAX as f64, "time {secs} s overflows");
        Time(ns.round() as u64)
    }

    /// Raw nanoseconds.
    #[must_use]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The time in (floating-point) seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: Time) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Checked addition: `None` when the sum would overflow the
    /// nanosecond range. Event schedulers use this so far-future
    /// timestamps saturate (to [`Time::MAX`]) instead of silently
    /// wrapping on pathological horizons.
    #[must_use]
    pub fn checked_add(self, rhs: Duration) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs())
    }
}

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// Zero span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from raw nanoseconds.
    #[must_use]
    pub fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Creates a duration from seconds (rounded to nanoseconds; at least
    /// 1 ns for any strictly positive input so events always advance).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or non-finite.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be non-negative, got {secs}");
        let ns = (secs * 1e9).round() as u64;
        if ns == 0 && secs > 0.0 {
            Duration(1)
        } else {
            Duration(ns)
        }
    }

    /// The serialization time of `bits` on a link of `rate_bps`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    #[must_use]
    pub fn serialization(bits: f64, rate_bps: f64) -> Self {
        assert!(rate_bps > 0.0, "link rate must be positive");
        Duration::from_secs(bits / rate_bps)
    }

    /// Raw nanoseconds.
    #[must_use]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 * 1e-9
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for Time {
    type Output = Duration;
    /// # Panics
    ///
    /// Panics (in debug) on negative spans; use
    /// [`Time::saturating_sub`] when order is uncertain.
    fn sub(self, rhs: Time) -> Duration {
        debug_assert!(self.0 >= rhs.0, "negative time span");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_nanosecond_roundtrip() {
        let t = Time::from_secs(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(1.0) + Duration::from_secs(0.5);
        assert_eq!(t, Time::from_secs(1.5));
        assert_eq!(t - Time::from_secs(1.0), Duration::from_secs(0.5));
        assert_eq!(Time::from_secs(1.0).saturating_sub(t), Duration::ZERO);
    }

    #[test]
    fn serialization_time() {
        // 12000 bits at 10 Gbit/s = 1.2 us.
        let d = Duration::serialization(12_000.0, 10.0e9);
        assert_eq!(d.as_nanos(), 1_200);
    }

    #[test]
    fn positive_durations_never_round_to_zero() {
        let d = Duration::from_secs(1e-12);
        assert!(d.as_nanos() >= 1);
        assert_eq!(Duration::from_secs(0.0), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_time() {
        let _ = Time::from_secs(-1.0);
    }

    #[test]
    fn checked_add_saturates_only_via_none() {
        let near_max = Time::from_nanos(u64::MAX - 5);
        assert_eq!(near_max.checked_add(Duration::from_nanos(5)), Some(Time::MAX));
        assert_eq!(near_max.checked_add(Duration::from_nanos(6)), None);
        assert_eq!(Time::ZERO.checked_add(Duration::from_nanos(7)), Some(Time::from_nanos(7)));
        // The Add impl saturates; checked_add surfaces the overflow.
        assert_eq!(near_max + Duration::from_nanos(6), Time::MAX);
    }

    #[test]
    fn ordering_is_total() {
        let a = Time::from_nanos(5);
        let b = Time::from_nanos(7);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }
}
