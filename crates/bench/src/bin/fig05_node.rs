//! Regenerates the paper's Fig. 5 (node trajectories).

fn main() {
    if let Err(e) = bench::figures::fig05::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
