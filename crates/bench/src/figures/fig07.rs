//! Fig. 7 — the limit cycle: sustained, amplitude-preserving queue/rate
//! oscillation that linear analysis cannot explain.
//!
//! In the linearised model the round map is `P(s) = rho s`; the
//! limit-cycle condition `rho = 1` is reached exactly on the undamped
//! boundary `w -> 0` (no queue-derivative feedback). The generator:
//!
//! 1. shows `rho(w)` approaching 1 as `w` shrinks,
//! 2. integrates the (near-)undamped system to exhibit the closed orbit
//!    and the periodic `q(t)` of the paper's Fig. 7, and
//! 3. probes the full **nonlinear** decrease law with a Poincaré return
//!    map, reporting the amplitude-dependent ratio (the mechanism that
//!    can pin isolated cycles once physical nonlinearities enter).

use std::path::Path;

use bcn::limit_cycle::{distance_to_limit_cycle, nonlinear_round_ratio};
use bcn::rounds::round_ratio;
use bcn::{BcnFluid, BcnParams};
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot, Table};

use crate::common::{banner, out_dir, phase_plot, save_plot, trace};
use crate::ExpResult;

/// Runs the generator; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    banner("Fig. 7: limit-cycle motion");
    let base = BcnParams::test_defaults();

    // 1. rho(w): the route to the limit cycle.
    let mut table = Table::new(&["w", "round ratio rho", "|rho - 1|"]);
    let mut ws = Vec::new();
    let mut rhos = Vec::new();
    for exp in 0..=8 {
        let w = 4.0 / f64::powi(4.0, exp);
        let p = base.clone().with_w(w);
        let rho = round_ratio(&p).expect("case 1");
        table.row_f64(&[w, rho, distance_to_limit_cycle(&p).unwrap()]);
        ws.push(w);
        rhos.push(rho);
    }
    print!("{table}");
    let rho_plot = SvgPlot::new("Fig. 7 aux: rho(w) -> 1 as w -> 0", "w", "round ratio rho")
        .with_series(Series::scatter("rho", &ws, &rhos, COLOR_CYCLE[0]))
        .with_hline(1.0, "#d62728");
    save_plot(&rho_plot, out, "fig07_rho_vs_w.svg")?;

    // 2. The (near-)undamped orbit: closed trajectory + periodic q(t).
    let cyc = base.clone().with_w(1e-9);
    let sys = BcnFluid::linearized(cyc.clone());
    let beta_i = cyc.a().sqrt();
    let beta_d = (cyc.b() * cyc.capacity).sqrt();
    let round_time = std::f64::consts::PI * (1.0 / beta_i + 1.0 / beta_d);
    let tr = trace(&sys, cyc.initial_point(), 5.0 * round_time, 4000);
    println!(
        "undamped orbit: {} switches over {:.3} s; |x| range [{:.1}, {:.1}]",
        tr.switches,
        5.0 * round_time,
        tr.xs.iter().copied().fold(f64::INFINITY, f64::min),
        tr.xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );
    let mut csv = Csv::new(&["t", "x", "y"]);
    for i in 0..tr.ts.len() {
        csv.row(&[tr.ts[i], tr.xs[i], tr.ys[i]]);
    }
    csv.save(out.join("fig07_limit_cycle.csv"))?;
    println!("wrote {}", out.join("fig07_limit_cycle.csv").display());

    let plot_a = phase_plot(
        "Fig. 7a: limit-cycle orbit (w -> 0)",
        &cyc,
        vec![Series::line("closed orbit", &tr.xs, &tr.ys, COLOR_CYCLE[0])],
    );
    save_plot(&plot_a, out, "fig07a_orbit.svg")?;
    let plot_b = SvgPlot::new("Fig. 7b: periodic queue oscillation", "t (s)", "x (bits)")
        .with_series(Series::line("x(t)", &tr.ts, &tr.xs, COLOR_CYCLE[1]))
        .with_hline(0.0, "#999999");
    save_plot(&plot_b, out, "fig07b_queue.svg")?;

    // 3. Nonlinear decrease law: amplitude-dependent ratio.
    let nl = BcnFluid::new(base.clone());
    let mut amp_table = Table::new(&["amplitude s / q0", "nonlinear P(s)/s", "linearized rho"]);
    let rho_lin = round_ratio(&base).unwrap();
    for frac in [0.05, 0.2, 0.5, 1.0] {
        let s = -frac * base.q0;
        match nonlinear_round_ratio(&nl, s) {
            Ok(rho_nl) => amp_table.row_f64(&[frac, rho_nl, rho_lin]),
            Err(e) => println!("nonlinear ratio at {frac} q0 failed: {e}"),
        }
    }
    print!("{amp_table}");
    Ok(())
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("fig07_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        for f in ["fig07_rho_vs_w.svg", "fig07a_orbit.svg", "fig07b_queue.svg"] {
            assert!(dir.join(f).exists(), "{f}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
