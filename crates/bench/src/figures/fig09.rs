//! Fig. 9: Case 3 (spiral increase, node decrease) — generated through the shared per-case harness
//! (see [`crate::figures::case_fig`] for the panel layout).

use std::path::Path;

use bcn::CaseId;

use crate::common::out_dir;
use crate::figures::case_fig::run_case;
use crate::ExpResult;

/// Runs the generator; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    run_case(out, CaseId::Case3, "fig09_case", "Fig. 9: Case 3 (spiral increase, node decrease)")
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("fig09_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        assert!(dir.join("fig09_case_phase.svg").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
