//! Unit conventions and conversion constants.
//!
//! Throughout the workspace: queue lengths and buffer sizes are in **bits**,
//! rates in **bits per second**, and times in **seconds** (all `f64`).
//! These constants make parameter definitions read like the paper
//! ("C = 10 Gbit/s, q0 = 2.5 Mbit").

/// One kilobit in bits.
pub const KBIT: f64 = 1e3;
/// One megabit in bits.
pub const MBIT: f64 = 1e6;
/// One gigabit in bits.
pub const GBIT: f64 = 1e9;

/// One kilobit per second in bit/s.
pub const KBPS: f64 = 1e3;
/// One megabit per second in bit/s.
pub const MBPS: f64 = 1e6;
/// One gigabit per second in bit/s.
pub const GBPS: f64 = 1e9;

/// One millisecond in seconds.
pub const MSEC: f64 = 1e-3;
/// One microsecond in seconds.
pub const USEC: f64 = 1e-6;
/// One nanosecond in seconds.
pub const NSEC: f64 = 1e-9;

/// Bits in one standard 1500-byte Ethernet frame payload.
pub const MTU_BITS: f64 = 1500.0 * 8.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        fn close(a: f64, b: f64) {
            assert!((a - b).abs() <= 1e-12 * a.abs(), "{a} vs {b}");
        }
        close(GBIT, 1000.0 * MBIT);
        close(MBIT, 1000.0 * KBIT);
        close(GBPS, 1000.0 * MBPS);
        close(MSEC, 1000.0 * USEC);
        close(USEC, 1000.0 * NSEC);
        assert_eq!(MTU_BITS, 12000.0);
    }
}
