//! Terminal-friendly scatter/line rendering.

/// A character-grid chart of one or more `(x, y)` series.
///
/// Each series is drawn with its own glyph; axes are annotated with the
/// data ranges. Intended for quick looks at experiment output without
/// leaving the terminal.
///
/// # Example
///
/// ```
/// use plotkit::AsciiChart;
///
/// let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.2).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| x.sin()).collect();
/// let chart = AsciiChart::new(60, 12).with_series(&xs, &ys, '*');
/// let out = chart.render();
/// assert!(out.contains('*'));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    series: Vec<(Vec<f64>, Vec<f64>, char)>,
}

impl AsciiChart {
    /// Creates an empty chart of the given character dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 8 characters.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 8, "chart must be at least 8x8");
        Self { width, height, series: Vec::new() }
    }

    /// Adds a series drawn with `glyph`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` lengths differ.
    #[must_use]
    pub fn with_series(mut self, xs: &[f64], ys: &[f64], glyph: char) -> Self {
        assert_eq!(xs.len(), ys.len(), "series coordinates must pair up");
        self.series.push((xs.to_vec(), ys.to_vec(), glyph));
        self
    }

    /// Renders the chart to a string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut grid = vec![vec![' '; self.width]; self.height];
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for (xs, ys, _) in &self.series {
            for (&x, &y) in xs.iter().zip(ys) {
                if x.is_finite() && y.is_finite() {
                    x_min = x_min.min(x);
                    x_max = x_max.max(x);
                    y_min = y_min.min(y);
                    y_max = y_max.max(y);
                }
            }
        }
        if !x_min.is_finite() {
            return String::from("(empty chart)\n");
        }
        let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);
        let y_span = (y_max - y_min).max(f64::MIN_POSITIVE);
        for (xs, ys, glyph) in &self.series {
            for (&x, &y) in xs.iter().zip(ys) {
                if !(x.is_finite() && y.is_finite()) {
                    continue;
                }
                let col = ((x - x_min) / x_span * (self.width - 1) as f64).round() as usize;
                let row = ((y - y_min) / y_span * (self.height - 1) as f64).round() as usize;
                grid[self.height - 1 - row][col] = *glyph;
            }
        }
        let mut out = String::new();
        out.push_str(&format!("y: [{y_min:.4e}, {y_max:.4e}]\n"));
        for row in &grid {
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', self.width));
        out.push('\n');
        out.push_str(&format!("x: [{x_min:.4e}, {x_max:.4e}]\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_extremes_at_edges() {
        let chart = AsciiChart::new(10, 8).with_series(&[0.0, 1.0], &[0.0, 1.0], 'o');
        let out = chart.render();
        let lines: Vec<&str> = out.lines().collect();
        // First grid line (top) holds the max-y point at the right edge.
        assert!(lines[1].ends_with('o'), "top line: {:?}", lines[1]);
        // Last grid line holds the min-y point at the left edge.
        assert_eq!(&lines[8][1..2], "o", "bottom line: {:?}", lines[8]);
    }

    #[test]
    fn empty_chart_is_handled() {
        let chart = AsciiChart::new(10, 8);
        assert_eq!(chart.render(), "(empty chart)\n");
    }

    #[test]
    fn multiple_series_use_their_glyphs() {
        let chart = AsciiChart::new(12, 8).with_series(&[0.0], &[0.0], 'a').with_series(
            &[1.0],
            &[1.0],
            'b',
        );
        let out = chart.render();
        assert!(out.contains('a') && out.contains('b'));
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let chart =
            AsciiChart::new(10, 8).with_series(&[0.0, f64::NAN, 1.0], &[0.0, 1.0, 1.0], '*');
        let out = chart.render();
        assert!(out.contains('*'));
    }

    #[test]
    #[should_panic(expected = "at least 8x8")]
    fn rejects_tiny_grid() {
        let _ = AsciiChart::new(2, 2);
    }
}
