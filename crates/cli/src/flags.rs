//! Hand-rolled `--flag value` parsing (the workspace's dependency policy
//! excludes an argument-parsing crate; the grammar here is a flat list
//! of `--key value` pairs, which this covers completely).

use std::collections::BTreeMap;

use bcn::{BcnParams, Engine};
use dcesim::faults::FaultConfig;
use dcesim::hybrid::HybridGuards;
use dcesim::sched::Scheduler;
use dcesim::time::Duration;
use dcesim::topo::{TopoSpec, Traffic};
use telemetry::TelemetryLevel;

use crate::CliError;

/// Parsed `--key value` pairs with typed accessors.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
}

impl Flags {
    /// Parses an argument list of `--key value` pairs.
    ///
    /// # Errors
    ///
    /// Rejects positional arguments, repeated keys, and keys without a
    /// value.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut values = BTreeMap::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(CliError::Usage(format!("unexpected positional argument `{arg}`")));
            };
            // Boolean flags: present without a value when the next token
            // is another flag or the list ends.
            let value = match it.clone().next() {
                Some(v) if !v.starts_with("--") => {
                    it.next();
                    v.clone()
                }
                _ => "true".to_string(),
            };
            if values.insert(key.to_string(), value).is_some() {
                return Err(CliError::Usage(format!("flag --{key} given twice")));
            }
        }
        Ok(Self { values })
    }

    /// A string flag.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A float flag (scientific notation accepted).
    ///
    /// # Errors
    ///
    /// Rejects unparsable numbers.
    pub fn get_f64(&self, key: &str) -> Result<Option<f64>, CliError> {
        self.values
            .get(key)
            .map(|v| {
                v.parse::<f64>()
                    .map_err(|_| CliError::Usage(format!("--{key} expects a number, got `{v}`")))
            })
            .transpose()
    }

    /// An integer flag.
    ///
    /// # Errors
    ///
    /// Rejects unparsable integers.
    pub fn get_usize(&self, key: &str) -> Result<Option<usize>, CliError> {
        self.values
            .get(key)
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| CliError::Usage(format!("--{key} expects an integer, got `{v}`")))
            })
            .transpose()
    }

    /// Whether a boolean flag is present and truthy.
    #[must_use]
    pub fn get_bool(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true" | "1" | "yes"))
    }

    /// Verifies every provided key is in the allowed set.
    ///
    /// # Errors
    ///
    /// Names the first unknown flag.
    pub fn ensure_known(&self, allowed: &[&str]) -> Result<(), CliError> {
        for key in self.values.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(CliError::Usage(format!("unknown flag --{key}")));
            }
        }
        Ok(())
    }
}

/// The parameter flags shared by every subcommand.
pub const PARAM_FLAGS: &[&str] =
    &["n", "capacity", "q0", "buffer", "gi", "gd", "ru", "w", "pm", "qsc"];

/// Resolves the global `--telemetry <off|summary|full>` flag, falling
/// back to `default` when absent.
///
/// # Errors
///
/// Rejects unknown level names.
pub fn telemetry_level(flags: &Flags, default: TelemetryLevel) -> Result<TelemetryLevel, CliError> {
    match flags.get("telemetry") {
        None => Ok(default),
        Some(v) => v.parse().map_err(CliError::Usage),
    }
}

/// Resolves the `--engine <analytic|dopri5>` flag for the fluid
/// integration commands, falling back to the library default
/// (the semi-analytic engine) when absent.
///
/// # Errors
///
/// Rejects unknown engine names.
pub fn engine_choice(flags: &Flags) -> Result<Engine, CliError> {
    match flags.get("engine") {
        None => Ok(Engine::default()),
        Some("analytic") => Ok(Engine::Analytic),
        Some("dopri5") => Ok(Engine::Dopri5),
        Some(v) => Err(CliError::Usage(format!("--engine expects analytic or dopri5, got `{v}`"))),
    }
}

/// The engine behind the packet-level commands: the pure packet engine
/// or the hybrid fluid–packet co-simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimEngine {
    /// Every event packet-simulated (the default).
    #[default]
    Packet,
    /// Epoch-switching co-simulation: quiescent stretches fast-forwarded
    /// with the closed-form fluid solution.
    Hybrid,
}

/// Resolves the `--engine <packet|hybrid>` flag for the packet-level
/// commands (`packet`, `batch`, `trace packet`), defaulting to the pure
/// packet engine when absent.
///
/// # Errors
///
/// Rejects fluid-integrator names and unknown engines, listing the
/// engines valid here.
pub fn sim_engine_choice(flags: &Flags) -> Result<SimEngine, CliError> {
    match flags.get("engine") {
        None | Some("packet") => Ok(SimEngine::Packet),
        Some("hybrid") => Ok(SimEngine::Hybrid),
        Some(v) => Err(CliError::Usage(format!(
            "--engine expects packet or hybrid for the packet-level commands, got `{v}` \
             (analytic and dopri5 apply to the fluid scenarios only)"
        ))),
    }
}

/// Parses the `--hybrid-guard key=value,key=value` specification into
/// the hybrid epoch-controller knobs, starting from the conservative
/// defaults.
///
/// Keys: `eq` (equilibrium-ball half-width, fraction), `margin` (queue
/// safety margin, fraction), `min-ff` (seconds), `max-ff` (seconds, 0 =
/// unlimited), `max-legs` (region switches per grid step),
/// `always-packet` (boolean; bare key means true).
///
/// # Errors
///
/// Rejects malformed items, unknown keys, unparsable values, and knob
/// combinations [`HybridGuards::validate`] refuses.
pub fn hybrid_guards_from(flags: &Flags) -> Result<HybridGuards, CliError> {
    let mut g = HybridGuards::default();
    let Some(spec) = flags.get("hybrid-guard") else {
        return Ok(g);
    };
    for item in spec.split(',').filter(|s| !s.is_empty()) {
        // `always-packet` may appear bare; every other key needs `=`.
        let (key, value) = item.split_once('=').unwrap_or((item, "true"));
        let num = || {
            value.parse::<f64>().map_err(|_| {
                CliError::Usage(format!("--hybrid-guard {key} expects a number, got `{value}`"))
            })
        };
        match key {
            "eq" => g.eq_frac = num()?,
            "margin" => g.q_margin_frac = num()?,
            "min-ff" => g.min_ff_secs = num()?,
            "max-ff" => g.max_ff_secs = num()?,
            "max-legs" => {
                g.max_legs = value.parse::<u32>().map_err(|_| {
                    CliError::Usage(format!(
                        "--hybrid-guard max-legs expects an integer, got `{value}`"
                    ))
                })?;
            }
            "always-packet" => g.always_packet = matches!(value, "true" | "1" | "yes"),
            other => {
                return Err(CliError::Usage(format!("unknown --hybrid-guard key `{other}`")));
            }
        }
    }
    g.validate()?;
    Ok(g)
}

/// Resolves the `--scheduler <wheel|heap>` flag for the packet-level
/// commands, falling back to the library default (the timing wheel)
/// when absent.
///
/// # Errors
///
/// Rejects unknown scheduler names.
pub fn scheduler_choice(flags: &Flags) -> Result<Scheduler, CliError> {
    match flags.get("scheduler") {
        None => Ok(Scheduler::default()),
        Some("wheel") => Ok(Scheduler::Wheel),
        Some("heap") => Ok(Scheduler::Heap),
        Some(v) => Err(CliError::Usage(format!("--scheduler expects wheel or heap, got `{v}`"))),
    }
}

/// Resolves the global `--threads <n>` flag: the requested parallel
/// worker count, or `None` to keep the `DCE_BCN_THREADS` /
/// auto-detected default.
///
/// # Errors
///
/// Rejects zero and non-integers (a sweep needs at least one worker).
pub fn thread_count(flags: &Flags) -> Result<Option<usize>, CliError> {
    match flags.get_usize("threads")? {
        Some(0) => Err(CliError::Usage("--threads must be at least 1".into())),
        other => Ok(other),
    }
}

/// Parses the `--faults key=value,key=value` specification into a
/// [`FaultConfig`] plus the `panic-seed` list (batch-only test hook).
///
/// Keys: `seed`, `feedback-loss`, `feedback-corrupt`, `feedback-delay`
/// (seconds), `feedback-reorder`, `reorder-window` (seconds),
/// `data-loss`, `data-burst`, `flap-period` (seconds), `flap-down`
/// (seconds), `pause-storm`, `pause-factor`, `panic-seed` (repeatable).
///
/// # Errors
///
/// Rejects malformed items, unknown keys, unparsable values, and
/// configurations [`FaultConfig::validate`] refuses.
pub fn faults_from(flags: &Flags) -> Result<(FaultConfig, Vec<u64>), CliError> {
    let mut cfg = FaultConfig::none();
    let mut panic_seeds = Vec::new();
    let Some(spec) = flags.get("faults") else {
        return Ok((cfg, panic_seeds));
    };
    for item in spec.split(',').filter(|s| !s.is_empty()) {
        let Some((key, value)) = item.split_once('=') else {
            return Err(CliError::Usage(format!(
                "--faults expects comma-separated key=value items, got `{item}`"
            )));
        };
        let num = || {
            value.parse::<f64>().map_err(|_| {
                CliError::Usage(format!("--faults {key} expects a number, got `{value}`"))
            })
        };
        let int = || {
            value.parse::<u64>().map_err(|_| {
                CliError::Usage(format!("--faults {key} expects an integer, got `{value}`"))
            })
        };
        let dur = || {
            let v = num()?;
            if !(v.is_finite() && v >= 0.0) {
                return Err(CliError::Usage(format!(
                    "--faults {key} expects a non-negative duration in seconds, got `{value}`"
                )));
            }
            Ok(Duration::from_secs(v))
        };
        match key {
            "seed" => cfg.seed = int()?,
            "feedback-loss" => cfg.feedback_loss = num()?,
            "feedback-corrupt" => cfg.feedback_corrupt = num()?,
            "feedback-delay" => cfg.feedback_extra_delay = dur()?,
            "feedback-reorder" => cfg.feedback_reorder = num()?,
            "reorder-window" => cfg.reorder_window = dur()?,
            "data-loss" => cfg.data_loss = num()?,
            "data-burst" => cfg.data_burst_len = int()?,
            "flap-period" => cfg.link_flap_period = dur()?,
            "flap-down" => cfg.link_flap_down = dur()?,
            "pause-storm" => cfg.pause_storm = num()?,
            "pause-factor" => cfg.pause_storm_factor = num()?,
            "panic-seed" => panic_seeds.push(int()?),
            other => {
                return Err(CliError::Usage(format!("unknown --faults key `{other}`")));
            }
        }
    }
    cfg.validate()?;
    Ok((cfg, panic_seeds))
}

/// Resolves `--topo` / `--traffic` into a fabric spec plus traffic
/// pattern for the multi-hop engine. Returns `None` when `--topo` is
/// absent (a bare `--traffic` is a usage error). Without `--traffic` —
/// or with an `incast` that omits `senders` — the pattern defaults to
/// every host fanning into the last one at 2× its access capacity.
///
/// # Errors
///
/// Propagates [`TopoSpec::parse`] / [`Traffic::parse`] rejections as
/// typed config errors.
pub fn topo_request(flags: &Flags) -> Result<Option<(TopoSpec, Traffic)>, CliError> {
    let Some(spec) = flags.get("topo") else {
        if flags.get("traffic").is_some() {
            return Err(CliError::Usage("--traffic requires --topo".into()));
        }
        return Ok(None);
    };
    let topo = TopoSpec::parse(spec)?;
    let mut traffic = match flags.get("traffic") {
        Some(t) => Traffic::parse(t)?,
        None => Traffic::Incast { senders: 0, dst: usize::MAX, load: 2.0 },
    };
    if let Traffic::Incast { senders, .. } = &mut traffic {
        if *senders == 0 {
            *senders = topo.hosts().saturating_sub(1);
        }
    }
    Ok(Some((topo, traffic)))
}

/// Builds a [`BcnParams`] from the paper defaults overridden by flags.
///
/// # Errors
///
/// Propagates flag-parse failures and parameter-validation failures.
pub fn params_from(flags: &Flags) -> Result<BcnParams, CliError> {
    let mut p = BcnParams::paper_defaults();
    if let Some(n) = flags.get_usize("n")? {
        p.n_flows =
            u32::try_from(n).map_err(|_| CliError::Usage(format!("--n {n} out of range")))?;
    }
    if let Some(v) = flags.get_f64("capacity")? {
        p.capacity = v;
    }
    if let Some(v) = flags.get_f64("q0")? {
        p.q0 = v;
    }
    if let Some(v) = flags.get_f64("buffer")? {
        p = p.with_buffer(v);
    }
    if let Some(v) = flags.get_f64("gi")? {
        p.gi = v;
    }
    if let Some(v) = flags.get_f64("gd")? {
        p.gd = v;
    }
    if let Some(v) = flags.get_f64("ru")? {
        p.ru = v;
    }
    if let Some(v) = flags.get_f64("w")? {
        p.w = v;
    }
    if let Some(v) = flags.get_f64("pm")? {
        p.pm = v;
    }
    if let Some(v) = flags.get_f64("qsc")? {
        p.qsc = v;
    }
    p.validate().map_err(|e| CliError::Analysis(e.to_string()))?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_key_value_pairs() {
        let f = Flags::parse(&argv("--n 10 --capacity 1e9 --nonlinear")).unwrap();
        assert_eq!(f.get_usize("n").unwrap(), Some(10));
        assert_eq!(f.get_f64("capacity").unwrap(), Some(1e9));
        assert!(f.get_bool("nonlinear"));
        assert!(!f.get_bool("absent"));
    }

    #[test]
    fn rejects_positional_and_duplicates() {
        assert!(Flags::parse(&argv("stray")).is_err());
        assert!(Flags::parse(&argv("--n 1 --n 2")).is_err());
    }

    #[test]
    fn rejects_bad_numbers() {
        let f = Flags::parse(&argv("--n abc")).unwrap();
        assert!(f.get_usize("n").is_err());
    }

    #[test]
    fn unknown_flags_are_caught() {
        let f = Flags::parse(&argv("--bogus 1")).unwrap();
        assert!(f.ensure_known(&["n"]).is_err());
        assert!(f.ensure_known(&["bogus"]).is_ok());
    }

    #[test]
    fn params_default_to_paper_and_override() {
        let f = Flags::parse(&argv("--n 100 --buffer 2e7")).unwrap();
        let p = params_from(&f).unwrap();
        assert_eq!(p.n_flows, 100);
        assert_eq!(p.buffer, 2e7);
        assert_eq!(p.capacity, 10e9); // untouched default
    }

    #[test]
    fn telemetry_level_parses_and_defaults() {
        let f = Flags::parse(&argv("--telemetry summary")).unwrap();
        assert_eq!(telemetry_level(&f, TelemetryLevel::Off).unwrap(), TelemetryLevel::Summary);
        let f = Flags::parse(&argv("")).unwrap();
        assert_eq!(telemetry_level(&f, TelemetryLevel::Full).unwrap(), TelemetryLevel::Full);
        let f = Flags::parse(&argv("--telemetry verbose")).unwrap();
        assert!(telemetry_level(&f, TelemetryLevel::Off).is_err());
    }

    #[test]
    fn engine_choice_parses_and_defaults() {
        let f = Flags::parse(&argv("--engine dopri5")).unwrap();
        assert_eq!(engine_choice(&f).unwrap(), Engine::Dopri5);
        let f = Flags::parse(&argv("--engine analytic")).unwrap();
        assert_eq!(engine_choice(&f).unwrap(), Engine::Analytic);
        let f = Flags::parse(&argv("")).unwrap();
        assert_eq!(engine_choice(&f).unwrap(), Engine::Analytic);
        let f = Flags::parse(&argv("--engine rk4")).unwrap();
        assert!(engine_choice(&f).is_err());
    }

    #[test]
    fn sim_engine_choice_parses_and_rejects_fluid_engines() {
        let f = Flags::parse(&argv("")).unwrap();
        assert_eq!(sim_engine_choice(&f).unwrap(), SimEngine::Packet);
        let f = Flags::parse(&argv("--engine packet")).unwrap();
        assert_eq!(sim_engine_choice(&f).unwrap(), SimEngine::Packet);
        let f = Flags::parse(&argv("--engine hybrid")).unwrap();
        assert_eq!(sim_engine_choice(&f).unwrap(), SimEngine::Hybrid);
        for fluid in ["analytic", "dopri5", "rk4"] {
            let f = Flags::parse(&argv(&format!("--engine {fluid}"))).unwrap();
            let err = sim_engine_choice(&f).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{fluid}");
            let msg = err.to_string();
            assert!(msg.contains("packet or hybrid"), "{fluid}: {msg}");
        }
    }

    #[test]
    fn hybrid_guard_spec_parses_every_key() {
        let f = Flags::parse(&argv(
            "--hybrid-guard eq=0.1,margin=0.2,min-ff=5e-4,max-ff=0.1,max-legs=8,always-packet",
        ))
        .unwrap();
        let g = hybrid_guards_from(&f).unwrap();
        assert_eq!(g.eq_frac, 0.1);
        assert_eq!(g.q_margin_frac, 0.2);
        assert_eq!(g.min_ff_secs, 5e-4);
        assert_eq!(g.max_ff_secs, 0.1);
        assert_eq!(g.max_legs, 8);
        assert!(g.always_packet);
        // Absent flag keeps the defaults.
        let f = Flags::parse(&argv("")).unwrap();
        assert_eq!(hybrid_guards_from(&f).unwrap(), HybridGuards::default());
    }

    #[test]
    fn hybrid_guard_spec_rejects_garbage() {
        for bad in [
            "--hybrid-guard bogus=1",      // unknown key
            "--hybrid-guard eq=often",     // not a number
            "--hybrid-guard eq=0.9",       // fraction outside (0, 0.5)
            "--hybrid-guard min-ff=-1",    // negative duration
            "--hybrid-guard max-legs=0",   // zero leg budget
            "--hybrid-guard max-legs=1.5", // not an integer
        ] {
            let f = Flags::parse(&argv(bad)).unwrap();
            assert!(hybrid_guards_from(&f).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn scheduler_choice_parses_and_defaults() {
        let f = Flags::parse(&argv("--scheduler heap")).unwrap();
        assert_eq!(scheduler_choice(&f).unwrap(), Scheduler::Heap);
        let f = Flags::parse(&argv("--scheduler wheel")).unwrap();
        assert_eq!(scheduler_choice(&f).unwrap(), Scheduler::Wheel);
        let f = Flags::parse(&argv("")).unwrap();
        assert_eq!(scheduler_choice(&f).unwrap(), Scheduler::Wheel);
        let f = Flags::parse(&argv("--scheduler calendar")).unwrap();
        assert!(scheduler_choice(&f).is_err());
    }

    #[test]
    fn thread_count_parses_and_rejects_zero() {
        let f = Flags::parse(&argv("--threads 4")).unwrap();
        assert_eq!(thread_count(&f).unwrap(), Some(4));
        let f = Flags::parse(&argv("")).unwrap();
        assert_eq!(thread_count(&f).unwrap(), None);
        let f = Flags::parse(&argv("--threads 0")).unwrap();
        assert!(thread_count(&f).is_err());
        let f = Flags::parse(&argv("--threads many")).unwrap();
        assert!(thread_count(&f).is_err());
    }

    #[test]
    fn invalid_params_are_reported() {
        let f = Flags::parse(&argv("--q0 1e9")).unwrap(); // q0 above buffer
        let err = params_from(&f).unwrap_err();
        assert!(err.to_string().contains("q0"));
    }

    #[test]
    fn faults_spec_parses_every_key() {
        let f = Flags::parse(&argv(
            "--faults seed=9,feedback-loss=0.1,feedback-corrupt=0.05,feedback-delay=1e-4,\
             feedback-reorder=0.2,reorder-window=2e-4,data-loss=0.01,data-burst=3,\
             flap-period=0.01,flap-down=0.001,pause-storm=0.5,pause-factor=4,panic-seed=2",
        ))
        .unwrap();
        let (cfg, panic_seeds) = faults_from(&f).unwrap();
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.feedback_loss, 0.1);
        assert_eq!(cfg.data_burst_len, 3);
        assert_eq!(cfg.pause_storm_factor, 4.0);
        assert!(cfg.enabled());
        assert_eq!(panic_seeds, vec![2]);
    }

    #[test]
    fn absent_faults_flag_yields_the_inert_plan() {
        let f = Flags::parse(&argv("")).unwrap();
        let (cfg, panic_seeds) = faults_from(&f).unwrap();
        assert!(!cfg.enabled());
        assert!(panic_seeds.is_empty());
    }

    #[test]
    fn faults_spec_rejects_garbage() {
        for bad in [
            "--faults feedback-loss",              // no value
            "--faults bogus=1",                    // unknown key
            "--faults feedback-loss=often",        // not a number
            "--faults feedback-loss=1.5",          // out of [0, 1]
            "--faults feedback-delay=-1",          // negative duration
            "--faults data-loss=0.1,data-burst=0", // burst needs >= 1
        ] {
            let f = Flags::parse(&argv(bad)).unwrap();
            assert!(faults_from(&f).is_err(), "{bad} should be rejected");
        }
    }
}
