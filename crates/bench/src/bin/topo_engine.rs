//! Scale-out fabric benchmark and equivalence gate for the multi-hop
//! engine.
//!
//! Runs generator-compiled fabrics (`dcesim::topo`) through [`NetSim`]
//! at data-center fan-ins and enforces the PR's four guarantees:
//!
//! 1. **Bit-identity** — [`NetReport`] matches byte for byte across
//!    schedulers on a mid-size incast (faults off *and* on), and a
//!    fabric batch matches across schedulers *and* worker counts
//!    (1 vs 4).
//! 2. **Route-lookup speedup** — the flat next-hop table must answer
//!    lookups at least 5x faster than the per-frame linear scan it
//!    replaced, measured on a 1024-host fabric.
//! 3. **Zero steady-state allocations** — a warmed-up run performs no
//!    heap allocations on the frame-forwarding path (counted by this
//!    binary's wrapping allocator).
//! 4. **End-to-end throughput** — the timing wheel must beat the binary
//!    heap by at least 1.2x in events/sec on the 512-sender and
//!    2048-sender incasts (the deep-backlog workload the ROADMAP named
//!    as the ratio flip).
//!
//! Results land in `BENCH_topo.json` under the usual results directory.
//! Run release builds only:
//!
//! ```console
//! $ cargo run --release -p bench --bin topo_engine
//! ```
//!
//! `DCE_BCN_QUICK` shrinks the fabrics (fat-tree k=4 scale) and skips
//! the two speedup gates (CI smoke mode — every equivalence and
//! allocation check still runs in full).

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bench::common::out_dir;
use dcesim::batch::{run_net_batch, NetBatchConfig};
use dcesim::faults::FaultConfig;
use dcesim::net::{NetConfig, NetReport, NetSim};
use dcesim::sched::Scheduler;
use dcesim::topo::{compile, TopoSpec, Traffic};

/// End-to-end throughput gate: wheel events/sec over heap events/sec on
/// the large incasts.
const MIN_END_TO_END_SPEEDUP: f64 = 1.2;
/// Route-lookup gate: flat next-hop table over linear scan at 1024
/// hosts.
const MIN_LOOKUP_SPEEDUP: f64 = 5.0;

// --- counting allocator (bench binary only) -------------------------------

/// Counts allocation events (alloc + realloc) on top of the system
/// allocator. Used to prove the warm forwarding path allocates nothing;
/// never enabled in the library, which forbids unsafe code.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System` unchanged; the counter is
// a relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// --- scenarios ------------------------------------------------------------

fn quick() -> bool {
    std::env::var_os("DCE_BCN_QUICK").is_some()
}

/// An incast compiled onto a fabric at 4x overload of the destination
/// access link.
fn incast_on(spec: &TopoSpec, senders: usize, t_end: f64) -> NetConfig {
    let traffic = Traffic::Incast { senders, dst: usize::MAX, load: 4.0 };
    compile(spec, &traffic, t_end).expect("bench fabric compiles")
}

/// A deterministic mixed fault plan for the faulted equivalence runs.
fn fault_plan() -> FaultConfig {
    let mut f = FaultConfig::none();
    f.seed = 7;
    f.feedback_loss = 0.05;
    f.data_loss = 0.005;
    f
}

fn run_with(cfg: &NetConfig, scheduler: Scheduler) -> NetReport {
    let mut c = cfg.clone();
    c.scheduler = scheduler;
    NetSim::new(c).run()
}

/// Events dispatched by one run plus best-of-`reps` wall time.
fn time_run(cfg: &NetConfig, scheduler: Scheduler, reps: usize) -> (u64, f64) {
    let mut events = 0;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut c = cfg.clone();
        c.scheduler = scheduler;
        let mut sim = NetSim::new(c);
        let t0 = Instant::now();
        while sim.step() {}
        best = best.min(t0.elapsed().as_secs_f64());
        events = sim.events_popped();
        black_box(sim.finish());
    }
    (events, best)
}

// --- equivalence gates ----------------------------------------------------

/// Scheduler bit-identity on a generator-compiled incast, with and
/// without wire faults.
fn check_scheduler_equivalence(failures: &mut Vec<String>, spec: &TopoSpec, senders: usize) {
    for faults in [FaultConfig::none(), fault_plan()] {
        let faulty = faults.enabled();
        let mut cfg = incast_on(spec, senders, 0.01);
        cfg.faults = faults;
        if run_with(&cfg, Scheduler::Wheel) != run_with(&cfg, Scheduler::Heap) {
            failures.push(format!(
                "incast-{senders} (faults: {faulty}): wheel and heap reports differ"
            ));
        }
    }
}

/// Scheduler and worker-count bit-identity on fabric batches.
fn check_batch_equivalence(failures: &mut Vec<String>, spec: &TopoSpec, senders: usize) {
    let run = |scheduler: Scheduler, threads: usize| {
        parkit::set_threads(threads);
        let mut base = incast_on(spec, senders, 0.005);
        base.scheduler = scheduler;
        base.faults = fault_plan();
        let cfg = NetBatchConfig::quick(base, 4);
        let report = run_net_batch(&cfg);
        let out: Vec<(u64, NetReport)> =
            report.completed().map(|(seed, r)| (seed, r.clone())).collect();
        parkit::set_threads(0);
        out
    };
    let baseline = run(Scheduler::Wheel, 1);
    for (scheduler, threads) in [(Scheduler::Wheel, 4), (Scheduler::Heap, 1), (Scheduler::Heap, 4)]
    {
        if run(scheduler, threads) != baseline {
            failures.push(format!(
                "fabric batch ({}, {threads} workers) diverged from (wheel, 1 worker)",
                scheduler.name()
            ));
        }
    }
}

/// Steady-state allocation count of a warm run: step past warm-up (the
/// event-queue slab, PAUSE maps, and reserved time series have all
/// reached capacity), then count allocations over the remaining frames.
fn steady_state_allocations(cfg: &NetConfig, warmup_steps: u64) -> u64 {
    let mut sim = NetSim::new(cfg.clone());
    for _ in 0..warmup_steps {
        if !sim.step() {
            break;
        }
    }
    let before = allocations();
    while sim.step() {}
    let after = allocations();
    black_box(sim.finish());
    after - before
}

// --- route-lookup microbench ----------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Route-lookup throughput: the flat `u32` next-hop table (what the
/// engine builds at `NetSim::try_new`) against the per-frame
/// `routes.iter().find(...)` linear scan it replaced, on the same
/// deterministic lookup stream over a 1024-host fabric. Returns
/// (speedup, lookups).
fn route_lookup_speedup(reps: usize, lookups: usize) -> (f64, usize) {
    let spec = TopoSpec::leaf_spine(32, 8, 32); // 1024 hosts, 40 switches
    let fabric = spec.build().expect("microbench fabric");
    let hosts = fabric.hosts;
    let routes: Vec<&[(usize, usize)]> =
        fabric.switches.iter().map(|s| s.routes.as_slice()).collect();
    // The dense table, built once — exactly the engine's layout.
    let mut table = vec![u32::MAX; routes.len() * hosts];
    for (si, rs) in routes.iter().enumerate() {
        for &(dst, link) in *rs {
            table[si * hosts + dst] = u32::try_from(link).expect("link index fits u32");
        }
    }
    let mut rng = 0x5eed;
    let queries: Vec<(usize, usize)> = (0..lookups)
        .map(|_| {
            (splitmix64(&mut rng) as usize % routes.len(), splitmix64(&mut rng) as usize % hosts)
        })
        .collect();
    let mut best_linear = f64::INFINITY;
    let mut best_flat = f64::INFINITY;
    let mut sums = (0u64, 0u64);
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut sum = 0u64;
        for &(si, dst) in &queries {
            let link = routes[si].iter().find(|&&(d, _)| d == dst).map_or(usize::MAX, |r| r.1);
            sum = sum.wrapping_add(link as u64);
        }
        best_linear = best_linear.min(t0.elapsed().as_secs_f64());
        sums.0 = black_box(sum);

        let t0 = Instant::now();
        let mut sum = 0u64;
        for &(si, dst) in &queries {
            sum = sum.wrapping_add(u64::from(table[si * hosts + dst]));
        }
        best_flat = best_flat.min(t0.elapsed().as_secs_f64());
        sums.1 = black_box(sum);
    }
    // u32::MAX sentinel vs usize::MAX truncation differ only on missing
    // routes, which this fabric has none of.
    assert_eq!(sums.0 & 0xFFFF_FFFF, sums.1 & 0xFFFF_FFFF, "lookup answers diverged");
    (best_linear / best_flat, lookups)
}

// --- main -----------------------------------------------------------------

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() {
    let q = quick();
    // Quick mode shrinks every fabric to fat-tree-k=4 scale and skips
    // the two speedup gates; equivalence and allocation gates still run.
    let (reps, lookups) = if q { (1, 200_000) } else { (3, 2_000_000) };
    let mut failures: Vec<String> = Vec::new();

    // Equivalence fabric: small enough to run four batch configurations.
    let eq_spec = if q {
        TopoSpec::fat_tree(4)
    } else {
        TopoSpec::leaf_spine(16, 4, 8) /* 128 hosts */
    };
    let eq_senders = if q { 12 } else { 96 };
    println!("topo engine benchmark: equivalence on {} hosts, best of {reps}", eq_spec.hosts());
    check_scheduler_equivalence(&mut failures, &eq_spec, eq_senders);
    check_batch_equivalence(&mut failures, &eq_spec, eq_senders);
    println!(
        "equivalence: {}",
        if failures.is_empty() { "all reports bit-identical" } else { "FAILURES (see below)" }
    );

    // Route-lookup microbench (gated at 1024 hosts unless quick).
    let (lookup_speedup, n_lookups) = route_lookup_speedup(reps, lookups);
    println!("route lookup at 1024 hosts: flat table {lookup_speedup:.1}x vs linear scan");
    if !q && lookup_speedup < MIN_LOOKUP_SPEEDUP {
        failures.push(format!(
            "route-lookup speedup {lookup_speedup:.2}x below the {MIN_LOOKUP_SPEEDUP}x gate"
        ));
    }

    // End-to-end incasts: the deep-backlog workload. Quick mode runs a
    // k=4 fat-tree smoke (16 hosts); full mode runs the gated 512- and
    // 2048-sender fan-ins.
    let scenarios: Vec<(String, NetConfig)> = if q {
        vec![("fat_tree_k4_incast_12".into(), incast_on(&TopoSpec::fat_tree(4), 12, 0.02))]
    } else {
        vec![
            (
                "fat_tree_k16_incast_512".into(),
                incast_on(&TopoSpec::fat_tree(16), 512, 0.06), // 1024 hosts
            ),
            (
                "leaf_spine_2112_incast_2048".into(),
                incast_on(&TopoSpec::leaf_spine(64, 8, 33), 2048, 0.06), // 2112 hosts
            ),
        ]
    };
    let mut scenario_json = Vec::new();
    for (name, cfg) in &scenarios {
        let (events, wheel_s) = time_run(cfg, Scheduler::Wheel, reps);
        let (heap_events, heap_s) = time_run(cfg, Scheduler::Heap, reps);
        assert_eq!(events, heap_events, "schedulers must dispatch identical event counts");
        let (wheel_eps, heap_eps) = (events as f64 / wheel_s, events as f64 / heap_s);
        let speedup = wheel_eps / heap_eps;
        println!(
            "  {name}: {events} events — wheel {:.2} M ev/s, heap {:.2} M ev/s ({speedup:.2}x)",
            wheel_eps / 1e6,
            heap_eps / 1e6,
        );
        if !q && speedup < MIN_END_TO_END_SPEEDUP {
            failures.push(format!(
                "{name}: end-to-end speedup {speedup:.2}x below the {MIN_END_TO_END_SPEEDUP}x gate"
            ));
        }
        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"scenario\": \"{name}\", \"hosts\": {}, \"flows\": {}, \"events\": {events}, \
             \"wheel_events_per_sec\": {wheel_eps:.0}, \"heap_events_per_sec\": {heap_eps:.0}, \
             \"end_to_end_speedup\": {speedup:.3}}}",
            cfg.hosts,
            cfg.flows.len(),
        );
        scenario_json.push(row);
    }

    // Zero steady-state allocations on the largest scenario.
    let (alloc_name, alloc_cfg) = scenarios.last().expect("at least one scenario");
    let steady_allocs = steady_state_allocations(alloc_cfg, 20_000);
    println!("steady-state allocations ({alloc_name}): {steady_allocs}");
    if steady_allocs != 0 {
        failures.push(format!("warm forwarding path performed {steady_allocs} allocation(s)"));
    }

    let note = "End-to-end speedup is gated on generator-compiled incasts whose fan-in \
                keeps thousands of events pending — the deep-backlog regime where the heap \
                pays its O(log n) (BENCH_packet.json gates the same engines on shallow \
                dumbbell scenarios, where the ratio is informational only). The route-lookup \
                row replays one deterministic query stream through the flat next-hop table \
                and the linear scan it replaced. Steady-state allocations are counted by \
                this binary's wrapping allocator after 20k warm-up events.";
    let json = format!(
        "{{\n  \"quick\": {q},\n  \"reps\": {reps},\n  \"scenarios\": [{}],\n  \
         \"route_lookup\": {{\"hosts\": 1024, \"lookups\": {n_lookups}, \
         \"speedup\": {lookup_speedup:.3}, \"gate\": {MIN_LOOKUP_SPEEDUP}}},\n  \
         \"end_to_end_gate\": {MIN_END_TO_END_SPEEDUP},\n  \
         \"steady_state_allocations\": {steady_allocs},\n  \
         \"equivalence_failures\": {},\n  \"note\": \"{note}\"\n}}\n",
        scenario_json.join(", "),
        failures.len(),
    );
    let out = out_dir();
    let path = out.join("BENCH_topo.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("FAIL: could not write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
