//! Heterogeneous (per-flow) fluid model — testing the paper's
//! homogeneity assumption.
//!
//! The paper reduces the `N+1`-dimensional system `(q, r_1 … r_N)` to the
//! plane by assuming homogeneous sources (Section III-A: same routes,
//! same delays, same rates). This module integrates the full
//! `N+1`-dimensional fluid system so that assumption becomes testable:
//!
//! * with equal initial rates the aggregate trajectory must coincide with
//!   the planar model (exact reduction);
//! * with unequal initial rates the per-flow rates must *converge* to the
//!   fair share — the AIMD fairness property (Chiu–Jain) the paper cites
//!   for adopting the rate law — while the aggregate still follows the
//!   planar dynamics.
//!
//! Two feedback models are provided. [`FeedbackModel::Uniform`] is the
//! paper's Eq. 7 read literally: every source integrates the same
//! `sigma`. [`FeedbackModel::RateProportional`] models the *protocol*
//! reality that feedback messages are triggered by sampled packets, so a
//! source receives feedback at a rate proportional to its own sending
//! rate; interestingly this moves the fairness mechanism from the
//! additive-increase side to the multiplicative-decrease side (faster
//! flows are told to slow down more often).

use crate::params::BcnParams;

/// How per-flow feedback intensity scales with the flow's rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FeedbackModel {
    /// Every flow integrates the same feedback (paper Eq. 7).
    #[default]
    Uniform,
    /// Feedback intensity proportional to the flow's share of the
    /// aggregate (`N r_i / R`): the sampled-packet protocol reality.
    RateProportional,
}

/// The heterogeneous fluid system.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroBcn {
    params: BcnParams,
    feedback: FeedbackModel,
}

/// Result of a heterogeneous run.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroRun {
    /// Sample times (s).
    pub times: Vec<f64>,
    /// Queue length (bits), clamped to `[0, B]`.
    pub queue: Vec<f64>,
    /// Per-flow rates at each sample time (`rates[sample][flow]`).
    pub rates: Vec<Vec<f64>>,
    /// Jain fairness index of the rates at each sample.
    pub fairness: Vec<f64>,
    /// Largest queue observed.
    pub max_queue: f64,
    /// Total bits dropped at the full buffer.
    pub dropped_bits: f64,
}

impl HeteroRun {
    /// Aggregate rate at sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn aggregate_rate(&self, i: usize) -> f64 {
        self.rates[i].iter().sum()
    }

    /// Final Jain fairness index.
    #[must_use]
    pub fn final_fairness(&self) -> f64 {
        *self.fairness.last().expect("run always has samples")
    }
}

impl HeteroBcn {
    /// Builds the heterogeneous model (full nonlinear per-flow law).
    #[must_use]
    pub fn new(params: BcnParams, feedback: FeedbackModel) -> Self {
        Self { params, feedback }
    }

    /// The parameter set.
    #[must_use]
    pub fn params(&self) -> &BcnParams {
        &self.params
    }

    /// Integrates from queue `q_init` and per-flow rates `rates_init`
    /// for `t_end` seconds with fixed step `dt` (forward integration
    /// with queue saturation, mirroring
    /// [`crate::simulate::SaturatingFluid`]), recording every
    /// `record_every`-th step.
    ///
    /// # Panics
    ///
    /// Panics if `rates_init` length differs from `params.n_flows`, if
    /// any rate is negative, or if `dt`/`t_end` are non-positive.
    #[must_use]
    pub fn run(
        &self,
        q_init: f64,
        rates_init: &[f64],
        t_end: f64,
        dt: f64,
        record_every: usize,
    ) -> HeteroRun {
        let p = &self.params;
        assert_eq!(rates_init.len(), p.n_flows as usize, "need one initial rate per flow");
        assert!(rates_init.iter().all(|r| *r >= 0.0), "rates must be non-negative");
        assert!(dt > 0.0 && t_end > 0.0, "dt and t_end must be positive");
        assert!(record_every > 0, "record_every must be at least 1");

        let n = p.n_flows as usize;
        let cap = p.capacity;
        let k = p.k();
        let gi_ru = p.gi * p.ru;
        let gd = p.gd;
        let n_steps = (t_end / dt).ceil() as usize;

        let mut q = q_init.clamp(0.0, p.buffer);
        let mut rates = rates_init.to_vec();
        let mut dropped = 0.0;
        let mut max_q = q;

        let mut out_t = Vec::new();
        let mut out_q = Vec::new();
        let mut out_r = Vec::new();
        let mut out_f = Vec::new();
        let mut record = |t: f64, q: f64, rates: &[f64]| {
            out_t.push(t);
            out_q.push(q);
            out_r.push(rates.to_vec());
            out_f.push(jain(rates));
        };
        record(0.0, q, &rates);

        for step in 1..=n_steps {
            let aggregate: f64 = rates.iter().sum();
            let drift = aggregate - cap;
            let q_dot = if (q <= 0.0 && drift < 0.0) || (q >= p.buffer && drift > 0.0) {
                0.0
            } else {
                drift
            };
            let sigma = (p.q0 - q) - k * q_dot;
            if q >= p.buffer && drift > 0.0 {
                dropped += drift * dt;
            }

            for (i, r) in rates.iter_mut().enumerate() {
                let weight = match self.feedback {
                    FeedbackModel::Uniform => 1.0,
                    FeedbackModel::RateProportional => {
                        if aggregate > 0.0 {
                            *r * n as f64 / aggregate
                        } else {
                            1.0
                        }
                    }
                };
                let dr =
                    if sigma > 0.0 { weight * gi_ru * sigma } else { weight * gd * sigma * *r };
                *r = (*r + dr * dt).max(0.0);
                let _ = i;
            }
            q = (q + q_dot * dt).clamp(0.0, p.buffer);
            max_q = max_q.max(q);
            if step % record_every == 0 || step == n_steps {
                record(step as f64 * dt, q, &rates);
            }
        }

        HeteroRun {
            times: out_t,
            queue: out_q,
            rates: out_r,
            fairness: out_f,
            max_queue: max_q,
            dropped_bits: dropped,
        }
    }

    /// Runs from the canonical start (empty queue) with the given
    /// initial rates and an automatically chosen step.
    #[must_use]
    pub fn run_canonical(&self, rates_init: &[f64], t_end: f64) -> HeteroRun {
        let p = &self.params;
        let beta_fast = (p.a().max(p.b() * p.capacity)).sqrt();
        let dt = (0.002 / beta_fast).min(t_end / 1000.0);
        let record_every = ((t_end / dt / 2000.0).ceil() as usize).max(1);
        self.run(0.0, rates_init, t_end, dt, record_every)
    }
}

fn jain(rates: &[f64]) -> f64 {
    let sum: f64 = rates.iter().sum();
    let sum_sq: f64 = rates.iter().map(|r| r * r).sum();
    if sum_sq == 0.0 {
        1.0
    } else {
        sum * sum / (rates.len() as f64 * sum_sq)
    }
}

/// Maximum relative gap between the heterogeneous aggregate queue trace
/// (with equal initial rates) and the planar saturating model — the
/// exactness check of the paper's homogeneity reduction.
#[must_use]
pub fn reduction_error(params: &BcnParams, t_end: f64) -> f64 {
    let n = params.n_flows as usize;
    let fair = params.capacity / n as f64;
    let hetero =
        HeteroBcn::new(params.clone(), FeedbackModel::Uniform).run_canonical(&vec![fair; n], t_end);
    let planar = crate::simulate::SaturatingFluid::new(params.clone()).run_canonical(t_end);
    // Compare max queue (the strong-stability-relevant statistic).
    (hetero.max_queue - planar.max_queue).abs() / planar.max_queue.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> BcnParams {
        BcnParams::test_defaults().with_buffer(3.0e5)
    }

    #[test]
    fn homogeneous_reduction_is_exact() {
        let err = reduction_error(&p(), 2.0);
        assert!(err < 1e-3, "reduction error {err}");
    }

    #[test]
    fn equal_rates_stay_equal() {
        let params = p();
        let n = params.n_flows as usize;
        let fair = params.fair_share();
        let sys = HeteroBcn::new(params, FeedbackModel::Uniform);
        let run = sys.run_canonical(&vec![fair; n], 1.0);
        for rates in &run.rates {
            let (lo, hi) = rates
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), r| (l.min(*r), h.max(*r)));
            assert!((hi - lo) <= 1e-9 * hi.max(1.0), "rates diverged: {rates:?}");
        }
        assert!((run.final_fairness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_feedback_converges_to_fairness() {
        let params = p();
        let n = params.n_flows as usize;
        // Wildly skewed start: one hog, the rest trickling.
        let mut init = vec![0.02 * params.capacity / n as f64; n];
        init[0] = 0.8 * params.capacity;
        let sys = HeteroBcn::new(params.clone(), FeedbackModel::Uniform);
        let run = sys.run_canonical(&init, 25.0);
        let start_fairness = run.fairness[0];
        let end_fairness = run.final_fairness();
        assert!(start_fairness < 0.4, "start {start_fairness}");
        assert!(end_fairness > 0.9, "end fairness {end_fairness}");
    }

    #[test]
    fn rate_proportional_feedback_also_converges() {
        // The protocol-faithful model: fairness comes from the decrease
        // side (faster flows sampled more often).
        let params = p();
        let n = params.n_flows as usize;
        let mut init = vec![0.02 * params.capacity / n as f64; n];
        init[0] = 0.8 * params.capacity;
        let sys = HeteroBcn::new(params.clone(), FeedbackModel::RateProportional);
        let run = sys.run_canonical(&init, 25.0);
        assert!(run.final_fairness() > 0.85, "end fairness {}", run.final_fairness());
    }

    #[test]
    fn aggregate_dynamics_insensitive_to_distribution() {
        // Same aggregate initial rate, different splits: the queue peak
        // is nearly the same (the aggregate obeys the planar model as
        // long as sigma feedback is uniform).
        let params = p();
        let n = params.n_flows as usize;
        let sys = HeteroBcn::new(params.clone(), FeedbackModel::Uniform);
        let even = sys.run_canonical(&vec![params.fair_share(); n], 1.5);
        let mut skew = vec![0.5 * params.fair_share(); n];
        skew[0] = params.fair_share() * (1.0 + 0.5 * (n as f64 - 1.0));
        let skewed = sys.run_canonical(&skew, 1.5);
        let gap = (even.max_queue - skewed.max_queue).abs() / even.max_queue;
        assert!(gap < 0.02, "distribution changed aggregate peak by {gap}");
    }

    #[test]
    fn rates_never_negative_and_queue_bounded() {
        let params = p();
        let n = params.n_flows as usize;
        let sys = HeteroBcn::new(params.clone(), FeedbackModel::RateProportional);
        let run = sys.run_canonical(&vec![2.0 * params.fair_share(); n], 2.0);
        for rates in &run.rates {
            assert!(rates.iter().all(|r| *r >= 0.0));
        }
        for q in &run.queue {
            assert!((0.0..=params.buffer).contains(q));
        }
    }

    #[test]
    #[should_panic(expected = "one initial rate per flow")]
    fn rejects_wrong_rate_count() {
        let params = p();
        let sys = HeteroBcn::new(params, FeedbackModel::Uniform);
        let _ = sys.run(0.0, &[1.0, 2.0], 1.0, 1e-3, 1);
    }
}
