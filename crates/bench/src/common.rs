//! Shared helpers for the experiment binaries.

use std::path::{Path, PathBuf};

use bcn::simulate::{fluid_trajectory, FluidOptions};
use bcn::{BcnFluid, BcnParams};
use plotkit::{Series, SvgPlot};

/// Where artifacts go: `$DCE_BCN_RESULTS` or `./results`.
#[must_use]
pub fn out_dir() -> PathBuf {
    std::env::var_os("DCE_BCN_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// A traced trajectory decomposed into plottable series.
#[derive(Debug, Clone, PartialEq)]
pub struct Traced {
    /// Times (s).
    pub ts: Vec<f64>,
    /// Queue deviation `x = q - q0` (bits).
    pub xs: Vec<f64>,
    /// Rate deviation `y = N r - C` (bit/s).
    pub ys: Vec<f64>,
    /// Number of region switches.
    pub switches: usize,
}

/// Integrates the switched fluid system and returns plottable arrays.
///
/// # Panics
///
/// Panics if the integration fails (experiment configurations are fixed
/// and known-good; a failure is a bug worth crashing on).
#[must_use]
pub fn trace(sys: &BcnFluid, p0: [f64; 2], t_end: f64, samples: usize) -> Traced {
    let opts = FluidOptions::default().with_t_end(t_end).with_record_dt(t_end / samples as f64);
    let sol = fluid_trajectory(sys, p0, &opts).expect("fluid integration");
    Traced {
        ts: sol.solution.times().to_vec(),
        xs: sol.solution.component(0),
        ys: sol.solution.component(1),
        switches: sol.switch_count(),
    }
}

/// Builds the standard phase-plane plot: trajectory series plus the
/// switching line `x + k y = 0` and the buffer walls `x = -q0`,
/// `x = B - q0`.
#[must_use]
pub fn phase_plot(title: &str, params: &BcnParams, series: Vec<Series>) -> SvgPlot {
    let mut plot = SvgPlot::new(title, "x = q - q0 (bits)", "y = N r - C (bit/s)");
    // The switching line across the y-range of the first series.
    let k = params.k();
    if let Some(s) = series.first() {
        let y_lo = s.ys.iter().copied().fold(f64::INFINITY, f64::min);
        let y_hi = s.ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if y_lo.is_finite() {
            let line =
                Series::line("switching line", &[-k * y_lo, -k * y_hi], &[y_lo, y_hi], "#999999");
            plot = plot.with_series(line);
        }
    }
    for s in series {
        plot = plot.with_series(s);
    }
    plot.with_vline(-params.q0, "#d62728").with_vline(params.buffer - params.q0, "#d62728")
}

/// Prints a section banner for the console output.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Saves an SVG plot and reports the path.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_plot(plot: &SvgPlot, out: &Path, name: &str) -> std::io::Result<()> {
    let path = out.join(name);
    plot.save(&path)?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dir_defaults_to_results() {
        if std::env::var_os("DCE_BCN_RESULTS").is_none() {
            assert_eq!(out_dir(), PathBuf::from("results"));
        }
    }

    #[test]
    fn trace_produces_matching_lengths() {
        let params = BcnParams::test_defaults();
        let sys = BcnFluid::linearized(params.clone());
        let tr = trace(&sys, params.initial_point(), 0.5, 100);
        assert_eq!(tr.ts.len(), tr.xs.len());
        assert_eq!(tr.ts.len(), tr.ys.len());
        assert!(tr.ts.len() >= 100);
    }

    #[test]
    fn phase_plot_renders_with_walls() {
        let params = BcnParams::test_defaults();
        let s = Series::line("t", &[0.0, 1.0], &[0.0, 1.0], "#000000");
        let svg = phase_plot("demo", &params, vec![s]).render();
        assert!(svg.contains("switching line"));
        assert!(svg.contains("stroke-dasharray"));
    }
}
