//! Trajectory tracing for planar systems.

use odesolve::{integrate_with_events, Dopri5, EventSpec, Options, Solution, SolveError};

use crate::system::PlaneSystem;

/// Options for [`trajectory`] tracing.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryOptions {
    /// Integration horizon (time units of the system).
    pub t_end: f64,
    /// Absolute/relative tolerance of the adaptive integrator.
    pub tol: f64,
    /// Spacing of recorded points (`None` records accepted steps only).
    pub record_dt: Option<f64>,
    /// Accepted-step budget.
    pub max_steps: usize,
}

impl Default for TrajectoryOptions {
    fn default() -> Self {
        Self { t_end: 10.0, tol: 1e-9, record_dt: None, max_steps: 1_000_000 }
    }
}

impl TrajectoryOptions {
    /// Sets the integration horizon.
    #[must_use]
    pub fn with_t_end(mut self, t_end: f64) -> Self {
        self.t_end = t_end;
        self
    }

    /// Sets the integrator tolerance.
    #[must_use]
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Records points at roughly this spacing.
    #[must_use]
    pub fn with_record_dt(mut self, dt: f64) -> Self {
        self.record_dt = Some(dt);
        self
    }
}

/// Traces the trajectory of `sys` starting at `p0` for `opts.t_end` time
/// units.
///
/// # Errors
///
/// Propagates integration failures from `odesolve`.
pub fn trajectory<S: PlaneSystem>(
    sys: &S,
    p0: [f64; 2],
    opts: &TrajectoryOptions,
) -> Result<Solution<2>, SolveError> {
    trajectory_with_events(sys, p0, &[], opts)
}

/// Traces a trajectory while watching the given guard events (e.g. a
/// Poincaré section crossing); a terminal event stops the trace exactly on
/// the guard zero.
///
/// # Errors
///
/// Propagates integration failures from `odesolve`.
pub fn trajectory_with_events<S: PlaneSystem>(
    sys: &S,
    p0: [f64; 2],
    events: &[EventSpec<'_, 2>],
    opts: &TrajectoryOptions,
) -> Result<Solution<2>, SolveError> {
    let ode = |_t: f64, y: &[f64; 2]| sys.deriv(*y);
    let mut stepper = Dopri5::with_tolerances(opts.tol, opts.tol);
    let mut o = Options::default().with_max_steps(opts.max_steps);
    if let Some(dt) = opts.record_dt {
        o = o.with_record_dt(dt);
    }
    integrate_with_events(&ode, 0.0, p0, opts.t_end, &mut stepper, events, &o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odesolve::Direction;

    #[test]
    fn circle_trajectory_stays_on_circle() {
        let rotation = |p: [f64; 2]| [-p[1], p[0]];
        let sol = trajectory(
            &rotation,
            [1.0, 0.0],
            &TrajectoryOptions::default().with_t_end(std::f64::consts::TAU).with_tol(1e-11),
        )
        .unwrap();
        for p in sol.states() {
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            assert!((r - 1.0).abs() < 1e-8);
        }
        let end = sol.last_state();
        assert!((end[0] - 1.0).abs() < 1e-7 && end[1].abs() < 1e-7);
    }

    #[test]
    fn damped_oscillator_converges_to_origin() {
        let damped = |p: [f64; 2]| [p[1], -p[0] - 0.5 * p[1]];
        let sol = trajectory(&damped, [2.0, 0.0], &TrajectoryOptions::default().with_t_end(60.0))
            .unwrap();
        let end = sol.last_state();
        assert!(end[0].abs() < 1e-4 && end[1].abs() < 1e-4, "end {end:?}");
    }

    #[test]
    fn event_stops_on_axis_crossing() {
        let rotation = |p: [f64; 2]| [-p[1], p[0]];
        let guard = |_t: f64, p: &[f64; 2]| p[0]; // x = 0 at quarter turn
        let events = [EventSpec::terminal(&guard).with_direction(Direction::Falling)];
        let sol = trajectory_with_events(
            &rotation,
            [1.0, 0.0],
            &events,
            &TrajectoryOptions::default().with_t_end(10.0).with_tol(1e-11),
        )
        .unwrap();
        assert!((sol.last_time() - std::f64::consts::FRAC_PI_2).abs() < 1e-8);
        let end = sol.last_state();
        assert!(end[0].abs() < 1e-9 && (end[1] - 1.0).abs() < 1e-7);
    }
}
