//! Heap-vs-wheel scheduler equivalence on randomized configurations.
//!
//! The timing wheel must be an invisible substitution for the binary
//! heap: same event order, same metrics, same telemetry (modulo the
//! `scheduler.*` self-counters, which describe backend internals), same
//! final rates — at any worker count. These tests drive both backends
//! through a splitmix64-seeded family of configurations and demand
//! bit-identical results. A proptest-powered generalisation lives in
//! `tests/properties.rs` behind the `proptest-tests` feature.

use dcesim::batch::{run_batch, BatchConfig};
use dcesim::faults::{splitmix64, FaultConfig};
use dcesim::metrics::SimMetrics;
use dcesim::sched::Scheduler;
use dcesim::sim::{fluid_validation_params, SimConfig, Simulation};
use dcesim::time::Duration;
use dcesim::workload;
use telemetry::{Telemetry, TelemetryLevel};

/// A unit-interval sample from the splitmix64 stream.
fn unit(z: u64) -> f64 {
    (splitmix64(z) >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic random configuration drawn from `seed`: frame size,
/// propagation delay, workload shape, horizon, and (for odd seeds) a
/// random wire-fault plan all vary.
fn random_config(seed: u64) -> SimConfig {
    let params = fluid_validation_params();
    let frame_bits = (4_000.0 + 8_000.0 * unit(seed)).round();
    let prop_delay = Duration::from_secs(5e-7 + 3.5e-6 * unit(seed ^ 1));
    let t_end = 0.01 + 0.02 * unit(seed ^ 2);
    let mut cfg = SimConfig::from_fluid(&params, frame_bits, prop_delay, t_end);

    let n = 2 + (splitmix64(seed ^ 3) % 19) as usize;
    let share = params.capacity / n as f64;
    cfg.flows = match splitmix64(seed ^ 4) % 3 {
        0 => workload::homogeneous(n, share),
        1 => workload::staggered(n, share, t_end / (2.0 * n as f64)),
        _ => workload::incast(n, 2.0 * share, 200.0 * frame_bits),
    };

    if seed % 2 == 1 {
        let mut f = FaultConfig::none();
        f.seed = splitmix64(seed ^ 5);
        f.feedback_loss = 0.1 * unit(seed ^ 6);
        f.feedback_corrupt = 0.05 * unit(seed ^ 7);
        f.data_loss = 0.01 * unit(seed ^ 8);
        cfg.faults = f;
    }
    cfg
}

/// Everything a run observably produces, with the scheduler's
/// self-describing `scheduler.*` series filtered out (cascade and
/// overflow counts legitimately differ between backends). Floats are
/// compared by bit pattern so byte-identity is literal — an untouched
/// gauge is `NaN` on both sides and must still match.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    metrics: SimMetrics,
    final_rates: Vec<u64>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, u64, u64, u64, u64)>,
    quantiles: Vec<(String, u64, u64, u64)>,
}

fn fingerprint(mut cfg: SimConfig, scheduler: Scheduler) -> Fingerprint {
    cfg.scheduler = scheduler;
    let report = Simulation::with_telemetry(cfg, Telemetry::new(TelemetryLevel::Summary)).run();
    let tel = report.telemetry.expect("telemetry requested");
    let keep = |name: &str| !name.starts_with("scheduler.");
    Fingerprint {
        metrics: report.metrics,
        final_rates: report.final_rates.iter().map(|r| r.to_bits()).collect(),
        counters: tel
            .metrics
            .counters()
            .filter(|(name, _)| keep(name))
            .map(|(name, v)| (name.to_string(), v))
            .collect(),
        gauges: tel
            .metrics
            .gauges()
            .filter(|(name, _)| keep(name))
            .map(|(name, g)| {
                (name.to_string(), g.last.to_bits(), g.min.to_bits(), g.max.to_bits(), g.samples)
            })
            .collect(),
        quantiles: tel
            .metrics
            .histograms()
            .filter(|(name, _)| keep(name))
            .map(|(name, h)| {
                (name.to_string(), h.p50().to_bits(), h.p90().to_bits(), h.p99().to_bits())
            })
            .collect(),
    }
}

/// Both backends agree — metrics, rates, and telemetry — on a family of
/// random configurations, faulted and clean alike.
#[test]
fn schedulers_agree_on_random_configs() {
    for seed in 0..8u64 {
        let cfg = random_config(seed);
        let wheel = fingerprint(cfg.clone(), Scheduler::Wheel);
        let heap = fingerprint(cfg, Scheduler::Heap);
        assert_eq!(wheel, heap, "seed {seed}: wheel and heap runs diverged");
        assert!(!wheel.counters.is_empty(), "seed {seed}: telemetry captured nothing");
    }
}

/// Batched multi-seed runs agree across schedulers *and* worker counts:
/// (wheel, 4 workers), (heap, 1), and (heap, 4) must all reproduce the
/// (wheel, 1 worker) report seed for seed.
#[test]
fn schedulers_agree_across_worker_counts() {
    let run = |scheduler: Scheduler, threads: usize| {
        parkit::set_threads(threads);
        let mut base = random_config(2);
        base.scheduler = scheduler;
        let mut cfg = BatchConfig::quick(base, 5);
        cfg.level = TelemetryLevel::Off;
        let report = run_batch(&cfg);
        let out: Vec<(u64, SimMetrics, Vec<f64>)> = report
            .completed()
            .map(|(seed, r)| (seed, r.metrics.clone(), r.final_rates.clone()))
            .collect();
        parkit::set_threads(0);
        assert_eq!(out.len(), 5, "every seed must complete");
        out
    };
    let baseline = run(Scheduler::Wheel, 1);
    for (scheduler, threads) in [(Scheduler::Wheel, 4), (Scheduler::Heap, 1), (Scheduler::Heap, 4)]
    {
        assert_eq!(
            run(scheduler, threads),
            baseline,
            "batch ({}, {threads} workers) diverged from (wheel, 1 worker)",
            scheduler.name()
        );
    }
}
