//! Bit-exact JSONL snapshots of a whole [`Telemetry`] sink.
//!
//! The batch checkpoint layer persists each completed seed's telemetry
//! shard so a resumed run can merge *exactly* the bytes an
//! uninterrupted run would have produced. That demands more than the
//! public recording API can restore: unset gauges hold a NaN `last`,
//! empty histograms hold `±inf` envelopes, ring traces remember how
//! many events they discarded, and series carry a stride/offered pair
//! that only the full (discarded) sample stream could reproduce. This
//! codec therefore round-trips the raw internal state, using the same
//! float conventions as the event codec ([`fmt_num`]: shortest
//! round-trip representation plus `NaN`/`inf`/`-inf` tokens).
//!
//! The snapshot is a self-delimiting run of JSONL lines — a `telemetry`
//! header carrying section counts, then that many `counter`, `gauge`,
//! `histogram`, `series`, and `open_span` records followed by raw trace
//! event lines — so it embeds directly inside a larger JSONL document
//! (a checkpoint shard) without its own schema header or terminator.
//!
//! Contract: integers above 2^53 (counter values, span ids) do not
//! survive the flat codec's f64 funnel; the batch runner's span-id
//! bases stay far below that, and the decoder rejects anything bigger
//! rather than silently rounding.

use crate::jsonl::{fmt_num, parse_scalars, JsonlError, Scalar};
use crate::series::TimeSeries;
use crate::trace::EventTrace;
use crate::{event_from_jsonl, event_to_jsonl, Gauge, Histogram, SeriesKind, SpanInfo, SpanKind};
use crate::{Telemetry, TelemetryLevel};

/// Serializes the full state of a telemetry sink as a run of JSONL
/// lines (each newline-terminated, no schema header), suitable for
/// embedding in a checkpoint shard and decoding with
/// [`snapshot_from_jsonl`].
#[must_use]
pub fn snapshot_to_jsonl(tel: &Telemetry) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let n_counters = tel.metrics.counters().count();
    let n_gauges = tel.metrics.gauges().count();
    let n_histograms = tel.metrics.histograms().count();
    let n_series = tel.series.len();
    let n_spans = tel.open_spans.len();
    let n_events = tel.trace.len();
    let _ = writeln!(
        out,
        r#"{{"type":"telemetry","level":"{}","trace_capacity":{},"trace_overwritten":{},"next_span_id":{},"counters":{n_counters},"gauges":{n_gauges},"histograms":{n_histograms},"series":{n_series},"open_spans":{n_spans},"events":{n_events}}}"#,
        tel.level,
        tel.trace.capacity(),
        tel.trace.overwritten(),
        tel.next_span_id,
    );
    for (name, v) in tel.metrics.counters() {
        let _ = writeln!(out, r#"{{"type":"counter","name":"{name}","value":{v}}}"#);
    }
    for (name, g) in tel.metrics.gauges() {
        let _ = writeln!(
            out,
            r#"{{"type":"gauge","name":"{name}","last":{},"min":{},"max":{},"samples":{}}}"#,
            fmt_num(g.last),
            fmt_num(g.min),
            fmt_num(g.max),
            g.samples,
        );
    }
    for (name, h) in tel.metrics.histograms() {
        let (count, sum, min, max, nonpositive, buckets) = h.parts();
        let mut packed = String::new();
        for (idx, &n) in buckets.iter().enumerate().filter(|(_, &n)| n > 0) {
            if !packed.is_empty() {
                packed.push(',');
            }
            let _ = write!(packed, "{idx}:{n}");
        }
        let _ = writeln!(
            out,
            r#"{{"type":"histogram","name":"{name}","count":{count},"sum":{},"min":{},"max":{},"nonpositive":{nonpositive},"bucket_len":{},"buckets":"{packed}"}}"#,
            fmt_num(sum),
            fmt_num(min),
            fmt_num(max),
            buckets.len(),
        );
    }
    for (kind, entity, s) in tel.series.iter() {
        let mut packed = String::new();
        for &(t, v) in s.points() {
            if !packed.is_empty() {
                packed.push(',');
            }
            let _ = write!(packed, "{}:{}", fmt_num(t), fmt_num(v));
        }
        let _ = writeln!(
            out,
            r#"{{"type":"series","kind":"{}","entity":{entity},"capacity":{},"stride":{},"offered":{},"points":"{packed}"}}"#,
            kind.name(),
            s.capacity(),
            s.stride(),
            s.offered(),
        );
    }
    for span in &tel.open_spans {
        let _ = writeln!(
            out,
            r#"{{"type":"open_span","id":{},"parent":{},"kind":"{}","entity":{},"t_begin":{}}}"#,
            span.id,
            span.parent,
            span.kind.name(),
            span.entity,
            fmt_num(span.t_begin),
        );
    }
    for e in tel.trace.iter() {
        out.push_str(&event_to_jsonl(e));
        out.push('\n');
    }
    out
}

fn field<'a>(fields: &'a [(String, Scalar)], key: &str) -> Result<&'a Scalar, JsonlError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| JsonlError(format!("missing field `{key}` in snapshot record")))
}

fn next_record<'a, I: Iterator<Item = &'a str>>(
    lines: &mut I,
    what: &str,
) -> Result<Vec<(String, Scalar)>, JsonlError> {
    let line = lines
        .next()
        .ok_or_else(|| JsonlError(format!("truncated snapshot: expected {what} record")))?;
    parse_scalars(line)
}

fn expect_type(fields: &[(String, Scalar)], want: &str) -> Result<(), JsonlError> {
    let ty = field(fields, "type")?.as_str("type")?;
    if ty == want {
        Ok(())
    } else {
        Err(JsonlError(format!("expected `{want}` snapshot record, found `{ty}`")))
    }
}

/// Parses a number token using the codec's conventions (`NaN`, `inf`,
/// `-inf`, else shortest-round-trip decimal).
fn parse_num(tok: &str, what: &str) -> Result<f64, JsonlError> {
    match tok {
        "NaN" => Ok(f64::NAN),
        "inf" => Ok(f64::INFINITY),
        "-inf" => Ok(f64::NEG_INFINITY),
        _ => tok
            .parse::<f64>()
            .map_err(|_| JsonlError(format!("bad number `{tok}` in snapshot {what}"))),
    }
}

/// Decodes a telemetry snapshot produced by [`snapshot_to_jsonl`],
/// consuming exactly the snapshot's lines from `lines` (so the caller
/// can continue reading the surrounding document).
///
/// The restored sink is bit-identical to the snapshotted one: metric
/// registration order, gauge/histogram envelopes (including the unset
/// sentinels), series stride/offered state, the trace ring with its
/// discard counter, the open-span stack, and the span-id allocator all
/// round-trip, so merging restored shards reproduces an uninterrupted
/// run's merged telemetry byte for byte.
///
/// # Errors
///
/// Fails on a truncated run, an unknown record type, or any field that
/// does not parse back (including integers above 2^53).
pub fn snapshot_from_jsonl<'a, I: Iterator<Item = &'a str>>(
    lines: &mut I,
) -> Result<Telemetry, JsonlError> {
    let header = next_record(lines, "telemetry header")?;
    expect_type(&header, "telemetry")?;
    let level: TelemetryLevel =
        field(&header, "level")?.as_str("level")?.parse().map_err(JsonlError)?;
    let capacity = field(&header, "trace_capacity")?.as_u64("trace_capacity")? as usize;
    let overwritten = field(&header, "trace_overwritten")?.as_u64("trace_overwritten")?;
    let next_span_id = field(&header, "next_span_id")?.as_u64("next_span_id")?;
    let n_counters = field(&header, "counters")?.as_u64("counters")?;
    let n_gauges = field(&header, "gauges")?.as_u64("gauges")?;
    let n_histograms = field(&header, "histograms")?.as_u64("histograms")?;
    let n_series = field(&header, "series")?.as_u64("series")?;
    let n_spans = field(&header, "open_spans")?.as_u64("open_spans")?;
    let n_events = field(&header, "events")?.as_u64("events")?;

    let mut tel = Telemetry::with_trace_capacity(level, capacity);
    // Registering in snapshot order reproduces the original registration
    // order exactly: the core ids laid down by the constructor are a
    // prefix of every snapshot taken by this build, and any custom
    // metrics follow in their first-use order.
    for _ in 0..n_counters {
        let rec = next_record(lines, "counter")?;
        expect_type(&rec, "counter")?;
        let name = field(&rec, "name")?.as_str("name")?.to_string();
        let v = field(&rec, "value")?.as_u64("value")?;
        let id = tel.metrics.counter(&name);
        tel.metrics.set_counter(id, v);
    }
    for _ in 0..n_gauges {
        let rec = next_record(lines, "gauge")?;
        expect_type(&rec, "gauge")?;
        let name = field(&rec, "name")?.as_str("name")?.to_string();
        let g = Gauge {
            last: field(&rec, "last")?.as_f64("last")?,
            min: field(&rec, "min")?.as_f64("min")?,
            max: field(&rec, "max")?.as_f64("max")?,
            samples: field(&rec, "samples")?.as_u64("samples")?,
        };
        let id = tel.metrics.gauge(&name);
        tel.metrics.restore_gauge(id, g);
    }
    for _ in 0..n_histograms {
        let rec = next_record(lines, "histogram")?;
        expect_type(&rec, "histogram")?;
        let name = field(&rec, "name")?.as_str("name")?.to_string();
        let bucket_len = field(&rec, "bucket_len")?.as_u64("bucket_len")? as usize;
        let mut buckets = vec![0u64; bucket_len];
        let packed = field(&rec, "buckets")?.as_str("buckets")?;
        for pair in packed.split(',').filter(|p| !p.is_empty()) {
            let (idx, n) = pair
                .split_once(':')
                .ok_or_else(|| JsonlError(format!("bad bucket pair `{pair}`")))?;
            let idx: usize =
                idx.parse().map_err(|_| JsonlError(format!("bad bucket index `{idx}`")))?;
            let n: u64 = n.parse().map_err(|_| JsonlError(format!("bad bucket count `{n}`")))?;
            *buckets
                .get_mut(idx)
                .ok_or_else(|| JsonlError(format!("bucket index {idx} out of range")))? = n;
        }
        let h = Histogram::from_parts(
            field(&rec, "count")?.as_u64("count")?,
            field(&rec, "sum")?.as_f64("sum")?,
            field(&rec, "min")?.as_f64("min")?,
            field(&rec, "max")?.as_f64("max")?,
            field(&rec, "nonpositive")?.as_u64("nonpositive")?,
            buckets,
        );
        let id = tel.metrics.histogram(&name);
        tel.metrics.restore_histogram(id, h);
    }
    for _ in 0..n_series {
        let rec = next_record(lines, "series")?;
        expect_type(&rec, "series")?;
        let kind_name = field(&rec, "kind")?.as_str("kind")?;
        let kind = SeriesKind::from_name(kind_name)
            .ok_or_else(|| JsonlError(format!("unknown series kind `{kind_name}`")))?;
        let entity = field(&rec, "entity")?.as_u32("entity")?;
        let mut points = Vec::new();
        let packed = field(&rec, "points")?.as_str("points")?;
        for pair in packed.split(',').filter(|p| !p.is_empty()) {
            let (t, v) = pair
                .split_once(':')
                .ok_or_else(|| JsonlError(format!("bad series point `{pair}`")))?;
            points.push((parse_num(t, "series time")?, parse_num(v, "series value")?));
        }
        let series = TimeSeries::from_parts(
            field(&rec, "capacity")?.as_u64("capacity")? as usize,
            field(&rec, "stride")?.as_u64("stride")?,
            field(&rec, "offered")?.as_u64("offered")?,
            points,
        );
        tel.series.insert(kind, entity, series);
    }
    for _ in 0..n_spans {
        let rec = next_record(lines, "open_span")?;
        expect_type(&rec, "open_span")?;
        let kind_name = field(&rec, "kind")?.as_str("kind")?;
        let kind = SpanKind::from_name(kind_name)
            .ok_or_else(|| JsonlError(format!("unknown span kind `{kind_name}`")))?;
        tel.open_spans.push(SpanInfo {
            id: field(&rec, "id")?.as_u64("id")?,
            parent: field(&rec, "parent")?.as_u64("parent")?,
            kind,
            entity: field(&rec, "entity")?.as_u32("entity")?,
            t_begin: field(&rec, "t_begin")?.as_f64("t_begin")?,
        });
    }
    let mut trace = EventTrace::with_capacity(capacity);
    for _ in 0..n_events {
        let line = lines
            .next()
            .ok_or_else(|| JsonlError("truncated snapshot: expected trace event".into()))?;
        trace.push(event_from_jsonl(line)?);
    }
    trace.set_overwritten(overwritten);
    tel.trace = trace;
    tel.next_span_id = next_span_id;
    Ok(tel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExtremumKind;

    /// A sink with every kind of state populated: counters, an unset
    /// and a set gauge, histograms, series past their first decimation,
    /// a wrapped trace ring, custom metrics, and an open span.
    fn busy_sink() -> Telemetry {
        let mut tel = Telemetry::with_trace_capacity(TelemetryLevel::Full, 32);
        tel.set_span_id_base((7 + 1) << 32);
        let seed_span = tel.span_begin(0.0, SpanKind::BatchSeed, 7, 0);
        let _ = seed_span;
        for i in 0..600u32 {
            let t = f64::from(i) * 1e-4;
            tel.step_accepted(t, 1e-4, 0.3);
            tel.queue_sample(t, f64::from(i % 97) * 1e4);
            if i % 5 == 0 {
                tel.bcn_message(t, -f64::from(i % 11), i % 3);
            }
        }
        tel.pause(0.07, 0.08, 2);
        tel.queue_extremum(0.09, 1.5e6, ExtremumKind::Max);
        tel.fault_injected(0.095, crate::FaultClass::FeedbackDrop, 1);
        let custom = tel.metrics.counter("custom.widgets");
        tel.metrics.inc(custom, 41);
        tel
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let tel = busy_sink();
        let doc = snapshot_to_jsonl(&tel);
        let restored = snapshot_from_jsonl(&mut doc.lines()).expect("decode");
        // Telemetry derives PartialEq but NaN gauge fields poison direct
        // comparison; compare every rendered form instead, which is what
        // downstream consumers (merge, reports) actually see.
        assert_eq!(snapshot_to_jsonl(&restored), doc, "re-snapshot differs");
        assert_eq!(restored.trace_to_jsonl(), tel.trace_to_jsonl());
        assert_eq!(restored.metrics.to_prometheus(), tel.metrics.to_prometheus());
        assert_eq!(restored.level(), tel.level());
        assert_eq!(restored.open_spans(), tel.open_spans());
        assert_eq!(restored.trace.overwritten(), tel.trace.overwritten());
        assert_eq!(restored.trace.capacity(), tel.trace.capacity());
        // Registration order survives (merge identity depends on it).
        let a: Vec<_> = tel.metrics.counters().map(|(n, _)| n.to_string()).collect();
        let b: Vec<_> = restored.metrics.counters().map(|(n, _)| n.to_string()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn span_id_allocation_continues_identically_after_restore() {
        let mut tel = busy_sink();
        let doc = snapshot_to_jsonl(&tel);
        let mut restored = snapshot_from_jsonl(&mut doc.lines()).expect("decode");
        let a = tel.span_begin(0.5, SpanKind::FlowLifetime, 1, tel.root_span());
        let b = restored.span_begin(0.5, SpanKind::FlowLifetime, 1, restored.root_span());
        assert_eq!(a, b, "span-id allocator state must survive the round trip");
    }

    #[test]
    fn merging_restored_shards_equals_merging_originals() {
        let shard_a = busy_sink();
        let mut shard_b = Telemetry::with_trace_capacity(TelemetryLevel::Full, 32);
        shard_b.set_span_id_base((8 + 1) << 32);
        for i in 0..50u32 {
            shard_b.step_accepted(f64::from(i) * 2e-4, 2e-4, 0.1);
        }
        let mut direct = Telemetry::new(TelemetryLevel::Full);
        direct.merge(&shard_a);
        direct.merge(&shard_b);
        let ra = snapshot_from_jsonl(&mut snapshot_to_jsonl(&shard_a).lines()).unwrap();
        let rb = snapshot_from_jsonl(&mut snapshot_to_jsonl(&shard_b).lines()).unwrap();
        let mut via_snapshot = Telemetry::new(TelemetryLevel::Full);
        via_snapshot.merge(&ra);
        via_snapshot.merge(&rb);
        assert_eq!(snapshot_to_jsonl(&via_snapshot), snapshot_to_jsonl(&direct));
        assert_eq!(via_snapshot.trace_to_jsonl(), direct.trace_to_jsonl());
    }

    #[test]
    fn fresh_sink_with_nan_gauges_round_trips() {
        // An untouched sink has NaN gauge `last` values and ±inf
        // histogram envelopes — exactly the states the public API can't
        // restore. The raw codec must carry them.
        for level in [TelemetryLevel::Off, TelemetryLevel::Summary, TelemetryLevel::Full] {
            let tel = Telemetry::new(level);
            let doc = snapshot_to_jsonl(&tel);
            let restored = snapshot_from_jsonl(&mut doc.lines()).expect("decode");
            assert_eq!(snapshot_to_jsonl(&restored), doc, "level {level}");
            assert_eq!(restored.level(), level);
        }
    }

    #[test]
    fn decoder_consumes_exactly_the_snapshot_lines() {
        let tel = busy_sink();
        let mut doc = snapshot_to_jsonl(&tel);
        doc.push_str("{\"type\":\"trailer\",\"x\":1}\n");
        let mut lines = doc.lines();
        let _ = snapshot_from_jsonl(&mut lines).expect("decode");
        assert_eq!(lines.next(), Some("{\"type\":\"trailer\",\"x\":1}"));
    }

    #[test]
    fn truncated_and_malformed_snapshots_are_rejected() {
        let tel = busy_sink();
        let doc = snapshot_to_jsonl(&tel);
        // Truncations at every record boundary must error, not panic.
        let total = doc.lines().count();
        for keep in [0, 1, total / 2, total - 1] {
            let partial: Vec<&str> = doc.lines().take(keep).collect();
            assert!(
                snapshot_from_jsonl(&mut partial.clone().into_iter()).is_err(),
                "accepted truncation at {keep}/{total}"
            );
        }
        // A non-snapshot first record is rejected.
        let mut lines = std::iter::once(r#"{"type":"schema","version":2}"#);
        assert!(snapshot_from_jsonl(&mut lines).is_err());
    }
}
