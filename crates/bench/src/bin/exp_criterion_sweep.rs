//! Regenerates the criterion atlas over (Gi, Gd).

fn main() {
    if let Err(e) = bench::experiments::criterion_sweep::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
