//! Regenerates the transient-performance frontier.

fn main() {
    if let Err(e) = bench::experiments::transient_frontier::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
