//! The planar autonomous system abstraction.

/// An autonomous vector field on the plane: `d(x, y)/dt = f(x, y)`.
///
/// Implemented for any `Fn([f64; 2]) -> [f64; 2]` closure. Piecewise-smooth
/// fields (like the BCN variable-structure law) can implement this directly
/// by branching on the state; for accurate integration across the
/// discontinuity use `odesolve::hybrid` instead of a plain trajectory
/// trace.
pub trait PlaneSystem {
    /// Evaluates the vector field at point `p = (x, y)`.
    fn deriv(&self, p: [f64; 2]) -> [f64; 2];
}

impl<F> PlaneSystem for F
where
    F: Fn([f64; 2]) -> [f64; 2],
{
    fn deriv(&self, p: [f64; 2]) -> [f64; 2] {
        self(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_plane_systems() {
        fn takes_system<S: PlaneSystem>(s: &S, p: [f64; 2]) -> [f64; 2] {
            s.deriv(p)
        }
        let rotation = |p: [f64; 2]| [-p[1], p[0]];
        assert_eq!(takes_system(&rotation, [1.0, 0.0]), [0.0, 1.0]);
    }

    #[test]
    fn trait_objects_work() {
        let damped = |p: [f64; 2]| [p[1], -p[0] - 0.1 * p[1]];
        let obj: &dyn PlaneSystem = &damped;
        assert_eq!(obj.deriv([0.0, 1.0]), [1.0, -0.1]);
    }
}
