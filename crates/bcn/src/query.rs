//! Batched stability queries — the criterion atlas as a serving surface.
//!
//! The ROADMAP's production framing of Theorem 1 asks, for a stream of
//! parameter sets `(Ru, Gi, N, Gd, C, q0, B)`: *is this configuration
//! strongly stable, how much buffer does Theorem 1 demand, and how far
//! does the queue excursion actually swing?* One such answer is cheap
//! (~µs with the closed-form propagator), so the engineering problem is
//! throughput: answering millions of queries per second without
//! per-query allocation or lock traffic.
//!
//! * [`StabilityQuery`] / [`StabilityAnswer`] — the wire-level unit: a
//!   full parameter set plus a leg budget in; verdict, Theorem-1 required
//!   buffer, exact excursion envelope, and legs traced out.
//! * [`QueryBatch`] — the structure-of-arrays batch kernel: queries are
//!   grouped by their derived propagator key `(k, a, bC)` in first-seen
//!   order, each group's spectral decomposition is resolved **once**
//!   (through the sharded memo cache), bit-identical duplicate queries
//!   are traced once and scattered back to input order, and the
//!   per-query work runs on `parkit` with a per-worker
//!   [`QueryWorkspace`] so the steady state allocates nothing. Every
//!   answer is a pure function of its own query, so the output vector is
//!   bit-identical at any thread count and invariant under
//!   deduplication.
//! * [`query_to_jsonl`]/[`answer_from_jsonl`] and friends — a flat JSONL
//!   codec in the `telemetry::jsonl` idiom (schema-v2 header, `{v:?}`
//!   float formatting with `NaN`/`inf`/`-inf` tokens) whose
//!   decode → re-encode cycle is byte-identical, so streamed answer
//!   files can be diffed and round-tripped losslessly.
//!
//! The `dcebcn query` subcommand wraps this module as a streaming CLI
//! (JSONL in, JSONL out, bounded memory via chunked reads); `bench --bin
//! query_engine` gates its throughput against the naive per-call loop.

use std::collections::HashMap;

use telemetry::JsonlError;

use crate::params::BcnParams;
use crate::propagate::Propagator;
use crate::rounds::Leg;
use crate::stability::{exact_verdict_scratch, theorem1_required_buffer};

/// Default leg budget per query: enough for every atlas case to settle
/// or visibly diverge (spiral cases contract geometrically; node cases
/// finish in two legs).
pub const DEFAULT_MAX_LEGS: usize = 64;

/// One stability question: a full parameter set plus the leg budget for
/// the exact trace.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityQuery {
    /// The configuration being asked about.
    pub params: BcnParams,
    /// Maximum switched-trajectory legs to trace for the exact verdict.
    pub max_legs: usize,
}

impl StabilityQuery {
    /// A query with the default leg budget.
    #[must_use]
    pub fn new(params: BcnParams) -> Self {
        Self { params, max_legs: DEFAULT_MAX_LEGS }
    }
}

/// The answer to one [`StabilityQuery`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityAnswer {
    /// Whether the exact switched trajectory keeps `0 < q < B` for all
    /// `t > 0` (ground truth, not the one-sided criterion).
    pub strongly_stable: bool,
    /// The buffer Theorem 1 requires: `(1 + sqrt(a/bC)) q0`.
    pub required_buffer: f64,
    /// Largest queue excursion `x = q - q0` observed.
    pub max_x: f64,
    /// Smallest excursion observed (after the start instant).
    pub min_x: f64,
    /// Number of legs actually traced.
    pub legs: usize,
}

/// Per-worker scratch reused across queries: the leg buffer grows to the
/// workload's deepest trace once, then every further query traces into
/// it without touching the allocator.
#[derive(Debug, Default)]
pub struct QueryWorkspace {
    legs: Vec<Leg>,
}

/// A batch of queries grouped by derived propagator key, ready to
/// evaluate.
///
/// Construction walks the queries once, assigning each to the group of
/// its `(k, a, bC)` bit pattern (groups numbered in first-seen input
/// order, so the layout is input-deterministic) and deduplicating
/// bit-identical full queries. Evaluation resolves each group's
/// propagator exactly once and traces each *distinct* query exactly
/// once, scattering the answers back to input order — under a
/// Zipf-skewed query mix both the spectral-decomposition work and the
/// leg tracing collapse to the number of distinct configurations, not
/// the number of queries. Every answer is a pure function of its query
/// alone, so deduplication cannot change any result.
#[derive(Debug)]
pub struct QueryBatch<'a> {
    queries: &'a [StabilityQuery],
    /// Derived `(k, a, bC)` per group, first-seen order.
    group_consts: Vec<[f64; 3]>,
    /// Group index of each query, parallel to `queries`.
    group_of: Vec<u32>,
    /// Distinct-query slot of each query, parallel to `queries`.
    unique_of: Vec<u32>,
    /// Representative query index per distinct slot, first-seen order.
    unique_idx: Vec<u32>,
}

/// The full bit pattern of a query: every parameter field plus the leg
/// budget. Two queries with equal keys are the same question.
fn query_key(q: &StabilityQuery) -> [u64; 11] {
    let p = &q.params;
    [
        u64::from(p.n_flows),
        p.capacity.to_bits(),
        p.q0.to_bits(),
        p.buffer.to_bits(),
        p.gi.to_bits(),
        p.gd.to_bits(),
        p.ru.to_bits(),
        p.w.to_bits(),
        p.pm.to_bits(),
        p.qsc.to_bits(),
        q.max_legs as u64,
    ]
}

impl<'a> QueryBatch<'a> {
    /// Groups `queries` by derived propagator key and deduplicates
    /// bit-identical repeats.
    #[must_use]
    pub fn new(queries: &'a [StabilityQuery]) -> Self {
        let mut index: HashMap<[u64; 3], u32> = HashMap::new();
        let mut group_consts: Vec<[f64; 3]> = Vec::new();
        let mut group_of = Vec::with_capacity(queries.len());
        let mut uniques: HashMap<[u64; 11], u32> = HashMap::new();
        let mut unique_of = Vec::with_capacity(queries.len());
        let mut unique_idx: Vec<u32> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let p = &q.params;
            let consts = [p.k(), p.a(), p.b() * p.capacity];
            let key = [consts[0].to_bits(), consts[1].to_bits(), consts[2].to_bits()];
            let next = group_consts.len() as u32;
            let g = *index.entry(key).or_insert_with(|| {
                group_consts.push(consts);
                next
            });
            group_of.push(g);
            let next_u = unique_idx.len() as u32;
            let u = *uniques.entry(query_key(q)).or_insert_with(|| {
                unique_idx.push(i as u32);
                next_u
            });
            unique_of.push(u);
        }
        Self { queries, group_consts, group_of, unique_of, unique_idx }
    }

    /// Number of queries in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Number of distinct `(k, a, bC)` groups — the number of propagator
    /// resolutions evaluation will perform.
    #[must_use]
    pub fn groups(&self) -> usize {
        self.group_consts.len()
    }

    /// Number of distinct full queries — the number of traces evaluation
    /// will perform (duplicates are answered by scatter).
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.unique_idx.len()
    }

    /// Evaluates the batch at the configured `parkit` width
    /// (`--threads` > `DCE_BCN_THREADS` > all cores).
    #[must_use]
    pub fn evaluate(&self) -> Vec<StabilityAnswer> {
        let props = self.resolve_propagators();
        let uniq = parkit::par_map_init(self.unique_idx.len(), QueryWorkspace::default, |ws, u| {
            self.answer_one(&props, ws, self.unique_idx[u] as usize)
        });
        self.scatter(&uniq)
    }

    /// Evaluates the batch at an explicit worker count (0 = all cores),
    /// bypassing the global configuration — the thread-equivalence tests
    /// use this to compare widths without mutating process state.
    #[must_use]
    pub fn evaluate_in(&self, threads: usize) -> Vec<StabilityAnswer> {
        let props = self.resolve_propagators();
        let uniq = parkit::par_map_init_in(
            threads,
            self.unique_idx.len(),
            QueryWorkspace::default,
            |ws, u| self.answer_one(&props, ws, self.unique_idx[u] as usize),
        );
        self.scatter(&uniq)
    }

    /// Expands per-distinct-query answers back to input order.
    fn scatter(&self, uniq: &[StabilityAnswer]) -> Vec<StabilityAnswer> {
        self.unique_of.iter().map(|&u| uniq[u as usize]).collect()
    }

    /// One propagator per group, through the sharded memo cache. Cached
    /// and fresh builds are bit-identical, so answers do not depend on
    /// the cache's state.
    fn resolve_propagators(&self) -> Vec<Propagator> {
        self.group_consts.iter().map(|&[k, a, b_c]| Propagator::cached(k, a, b_c)).collect()
    }

    fn answer_one(
        &self,
        props: &[Propagator],
        ws: &mut QueryWorkspace,
        i: usize,
    ) -> StabilityAnswer {
        let q = &self.queries[i];
        let prop = &props[self.group_of[i] as usize];
        let v = exact_verdict_scratch(&q.params, prop, q.max_legs, &mut ws.legs);
        StabilityAnswer {
            strongly_stable: v.strongly_stable,
            required_buffer: theorem1_required_buffer(&q.params),
            max_x: v.max_x,
            min_x: v.min_x,
            legs: v.legs,
        }
    }
}

/// Answers a batch of queries; `answers[i]` corresponds to
/// `queries[i]`, bit-identical at any thread count. See [`QueryBatch`]
/// for the batching mechanics.
#[must_use]
pub fn evaluate_batch(queries: &[StabilityQuery]) -> Vec<StabilityAnswer> {
    QueryBatch::new(queries).evaluate()
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-inf".to_string()
    } else {
        format!("{v:?}")
    }
}

/// Serializes one query to a JSONL line (no trailing newline). Floats
/// use the shortest exact round-trip form, so
/// `query_to_jsonl(query_from_jsonl(line))` reproduces `line` byte for
/// byte whenever `line` came from this encoder.
#[must_use]
pub fn query_to_jsonl(q: &StabilityQuery) -> String {
    let p = &q.params;
    format!(
        r#"{{"type":"query","n":{},"capacity":{},"q0":{},"buffer":{},"gi":{},"gd":{},"ru":{},"w":{},"pm":{},"qsc":{},"max_legs":{}}}"#,
        p.n_flows,
        fmt_f64(p.capacity),
        fmt_f64(p.q0),
        fmt_f64(p.buffer),
        fmt_f64(p.gi),
        fmt_f64(p.gd),
        fmt_f64(p.ru),
        fmt_f64(p.w),
        fmt_f64(p.pm),
        fmt_f64(p.qsc),
        q.max_legs,
    )
}

/// Serializes one answer to a JSONL line (no trailing newline), with
/// the same byte-identical re-encode guarantee as [`query_to_jsonl`].
#[must_use]
pub fn answer_to_jsonl(a: &StabilityAnswer) -> String {
    format!(
        r#"{{"type":"answer","stable":{},"required_buffer":{},"max_x":{},"min_x":{},"legs":{}}}"#,
        a.strongly_stable,
        fmt_f64(a.required_buffer),
        fmt_f64(a.max_x),
        fmt_f64(a.min_x),
        a.legs,
    )
}

/// A parsed flat-JSON scalar (the only shapes the query wire format
/// uses: numbers with `NaN`/`inf`/`-inf` extensions, escape-free
/// strings, booleans).
enum Value<'a> {
    Num(f64),
    Str(&'a str),
    Bool(bool),
}

/// Minimal parser for the flat objects this module emits, mirroring
/// `telemetry::jsonl`'s (private) one: a single level of
/// `"key": scalar` pairs and nothing else.
fn parse_flat_object(line: &str) -> Result<Vec<(&str, Value<'_>)>, JsonlError> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| JsonlError("line is not a JSON object".into()))?;
    let mut fields = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        rest = rest
            .strip_prefix('"')
            .ok_or_else(|| JsonlError(format!("expected quoted key at `{rest}`")))?;
        let kq = rest.find('"').ok_or_else(|| JsonlError("unterminated key".into()))?;
        let key = &rest[..kq];
        rest = rest[kq + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| JsonlError(format!("missing `:` after key `{key}`")))?
            .trim_start();
        let (value, tail) = if let Some(r) = rest.strip_prefix('"') {
            let vq = r.find('"').ok_or_else(|| JsonlError("unterminated string value".into()))?;
            (Value::Str(&r[..vq]), &r[vq + 1..])
        } else {
            let end = rest.find(',').unwrap_or(rest.len());
            let token = rest[..end].trim();
            let v =
                match token {
                    "true" => Value::Bool(true),
                    "false" => Value::Bool(false),
                    "NaN" => Value::Num(f64::NAN),
                    "inf" => Value::Num(f64::INFINITY),
                    "-inf" => Value::Num(f64::NEG_INFINITY),
                    _ => Value::Num(token.parse::<f64>().map_err(|_| {
                        JsonlError(format!("bad scalar `{token}` for key `{key}`"))
                    })?),
                };
            (v, &rest[end..])
        };
        fields.push((key, value));
        rest = tail.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(JsonlError(format!("unexpected trailing content `{rest}`")));
        }
    }
    Ok(fields)
}

struct FieldReader<'a> {
    fields: Vec<(&'a str, Value<'a>)>,
}

impl<'a> FieldReader<'a> {
    fn parse(line: &'a str, expected_type: &str) -> Result<Self, JsonlError> {
        let fields = parse_flat_object(line)?;
        let reader = Self { fields };
        match reader.get("type")? {
            Value::Str(s) if *s == expected_type => Ok(reader),
            Value::Str(s) => {
                Err(JsonlError(format!("record type `{s}`, expected `{expected_type}`")))
            }
            _ => Err(JsonlError("field `type` is not a string".into())),
        }
    }

    fn get(&self, key: &str) -> Result<&Value<'a>, JsonlError> {
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| JsonlError(format!("missing field `{key}`")))
    }

    fn num(&self, key: &str) -> Result<f64, JsonlError> {
        match self.get(key)? {
            Value::Num(v) => Ok(*v),
            _ => Err(JsonlError(format!("field `{key}` is not a number"))),
        }
    }

    /// A numeric field that must hold an exact non-negative integer.
    fn uint(&self, key: &str) -> Result<u64, JsonlError> {
        let v = self.num(key)?;
        if v.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&v) {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Ok(v as u64)
        } else {
            Err(JsonlError(format!("field `{key}` is not a non-negative integer: {v}")))
        }
    }

    fn bool(&self, key: &str) -> Result<bool, JsonlError> {
        match self.get(key)? {
            Value::Bool(b) => Ok(*b),
            _ => Err(JsonlError(format!("field `{key}` is not a boolean"))),
        }
    }
}

/// Parses one query line. Omitted parameter fields fall back to
/// [`BcnParams::paper_defaults`] (so a minimal line like
/// `{"type":"query","gi":2.0,"gd":0.03}` asks about a gain override of
/// the paper's worked example); an omitted `max_legs` falls back to
/// [`DEFAULT_MAX_LEGS`]. The assembled parameters are validated.
///
/// # Errors
///
/// Fails on malformed JSON, a wrong `type`, an unknown field, non-scalar
/// values, or parameters that fail [`BcnParams::validate`].
pub fn query_from_jsonl(line: &str) -> Result<StabilityQuery, JsonlError> {
    const KNOWN: [&str; 12] =
        ["type", "n", "capacity", "q0", "buffer", "gi", "gd", "ru", "w", "pm", "qsc", "max_legs"];
    let r = FieldReader::parse(line, "query")?;
    if let Some((k, _)) = r.fields.iter().find(|(k, _)| !KNOWN.contains(k)) {
        return Err(JsonlError(format!("unknown query field `{k}`")));
    }
    let mut p = BcnParams::paper_defaults();
    let has = |key: &str| r.fields.iter().any(|(k, _)| *k == key);
    if has("n") {
        let n = r.uint("n")?;
        p.n_flows =
            u32::try_from(n).map_err(|_| JsonlError(format!("field `n` out of range: {n}")))?;
    }
    for (key, slot) in [
        ("capacity", &mut p.capacity),
        ("q0", &mut p.q0),
        ("buffer", &mut p.buffer),
        ("gi", &mut p.gi),
        ("gd", &mut p.gd),
        ("ru", &mut p.ru),
        ("w", &mut p.w),
        ("pm", &mut p.pm),
        ("qsc", &mut p.qsc),
    ] {
        if has(key) {
            *slot = r.num(key)?;
        }
    }
    p.validate().map_err(|e| JsonlError(format!("invalid query parameters: {e}")))?;
    let max_legs = if has("max_legs") {
        usize::try_from(r.uint("max_legs")?)
            .map_err(|_| JsonlError("field `max_legs` out of range".into()))?
    } else {
        DEFAULT_MAX_LEGS
    };
    Ok(StabilityQuery { params: p, max_legs })
}

/// Parses one answer line (the inverse of [`answer_to_jsonl`]).
///
/// # Errors
///
/// Fails on malformed JSON, a wrong `type`, an unknown field, or a
/// missing/mistyped value.
pub fn answer_from_jsonl(line: &str) -> Result<StabilityAnswer, JsonlError> {
    const KNOWN: [&str; 6] = ["type", "stable", "required_buffer", "max_x", "min_x", "legs"];
    let r = FieldReader::parse(line, "answer")?;
    if let Some((k, _)) = r.fields.iter().find(|(k, _)| !KNOWN.contains(k)) {
        return Err(JsonlError(format!("unknown answer field `{k}`")));
    }
    Ok(StabilityAnswer {
        strongly_stable: r.bool("stable")?,
        required_buffer: r.num("required_buffer")?,
        max_x: r.num("max_x")?,
        min_x: r.num("min_x")?,
        legs: usize::try_from(r.uint("legs")?)
            .map_err(|_| JsonlError("field `legs` out of range".into()))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability::exact_verdict;

    fn mixed_queries() -> Vec<StabilityQuery> {
        let base = BcnParams::test_defaults();
        let mut qs = Vec::new();
        for i in 0..40u32 {
            // A Zipf-flavoured mix: most queries revisit a handful of
            // configurations, a few are unique.
            let p = match i % 5 {
                0 | 1 => base.clone(),
                2 => base.clone().with_gi(2.0),
                3 => base.clone().with_gd(0.05),
                _ => base.clone().with_capacity(1.0e9 + f64::from(i)),
            };
            qs.push(StabilityQuery { params: p, max_legs: 48 });
        }
        qs
    }

    #[test]
    fn batch_matches_serial_loop_bitwise() {
        let qs = mixed_queries();
        let batch = evaluate_batch(&qs);
        for (q, got) in qs.iter().zip(&batch) {
            let v = exact_verdict(&q.params, q.max_legs);
            assert_eq!(got.strongly_stable, v.strongly_stable);
            assert_eq!(got.max_x.to_bits(), v.max_x.to_bits());
            assert_eq!(got.min_x.to_bits(), v.min_x.to_bits());
            assert_eq!(got.legs, v.legs);
            assert_eq!(
                got.required_buffer.to_bits(),
                theorem1_required_buffer(&q.params).to_bits()
            );
        }
    }

    #[test]
    fn batch_groups_by_derived_key_in_first_seen_order() {
        let qs = mixed_queries();
        let batch = QueryBatch::new(&qs);
        // 3 repeated configurations + 8 unique capacities (i % 5 == 4).
        assert_eq!(batch.groups(), 11);
        assert_eq!(batch.len(), 40);
        // Query 0 and query 1 share the base configuration => group 0.
        assert_eq!(batch.group_of[0], 0);
        assert_eq!(batch.group_of[1], 0);
        assert_eq!(batch.group_of[5], 0);
        // Query 2 founded group 1 (gi override).
        assert_eq!(batch.group_of[2], 1);
        assert_eq!(batch.group_of[7], 1);
        // Repeats of the base configuration dedup to one trace.
        assert_eq!(batch.distinct(), 11);
    }

    #[test]
    fn dedup_distinguishes_queries_sharing_a_propagator_group() {
        // Same parameters, different leg budgets: the derived (k, a, bC)
        // is shared — one group — but these are different questions, so
        // dedup must keep them apart and the traced leg counts differ.
        let base = BcnParams::test_defaults();
        let qs = vec![
            StabilityQuery::new(base.clone()),
            StabilityQuery { params: base.clone(), max_legs: 1 },
            StabilityQuery::new(base.clone()),
        ];
        let batch = QueryBatch::new(&qs);
        assert_eq!(batch.groups(), 1);
        assert_eq!(batch.distinct(), 2);
        let answers = batch.evaluate();
        assert_eq!(answers[0], answers[2]);
        assert_eq!(answers[0].max_x.to_bits(), answers[2].max_x.to_bits());
        assert_eq!(answers[1].legs, 1);
        assert!(answers[0].legs > 1, "default budget should trace past the first switch");
        // Dedup is invisible in the results: the per-call path agrees.
        for (q, a) in qs.iter().zip(&answers) {
            let v = exact_verdict(&q.params, q.max_legs);
            assert_eq!(a.legs, v.legs);
            assert_eq!(a.max_x.to_bits(), v.max_x.to_bits());
        }
    }

    #[test]
    fn explicit_widths_are_bit_identical() {
        let qs = mixed_queries();
        let batch = QueryBatch::new(&qs);
        let serial = batch.evaluate_in(1);
        let wide = batch.evaluate_in(4);
        assert_eq!(serial, wide);
        for (a, b) in serial.iter().zip(&wide) {
            assert_eq!(a.max_x.to_bits(), b.max_x.to_bits());
            assert_eq!(a.min_x.to_bits(), b.min_x.to_bits());
            assert_eq!(a.required_buffer.to_bits(), b.required_buffer.to_bits());
        }
    }

    #[test]
    fn query_jsonl_round_trips_byte_identically() {
        let q = StabilityQuery::new(BcnParams::paper_defaults());
        let line = query_to_jsonl(&q);
        let decoded = query_from_jsonl(&line).expect("decode");
        assert_eq!(decoded, q);
        assert_eq!(query_to_jsonl(&decoded), line, "re-encode must be byte-identical");
    }

    #[test]
    fn answer_jsonl_round_trips_byte_identically() {
        let qs = mixed_queries();
        for a in evaluate_batch(&qs) {
            let line = answer_to_jsonl(&a);
            let decoded = answer_from_jsonl(&line).expect("decode");
            assert_eq!(decoded, a);
            assert_eq!(answer_to_jsonl(&decoded), line, "re-encode must be byte-identical");
        }
        // Non-finite excursions survive the trip too.
        let weird = StabilityAnswer {
            strongly_stable: false,
            required_buffer: f64::INFINITY,
            max_x: f64::NAN,
            min_x: f64::NEG_INFINITY,
            legs: 0,
        };
        let line = answer_to_jsonl(&weird);
        let decoded = answer_from_jsonl(&line).expect("decode");
        assert_eq!(answer_to_jsonl(&decoded), line);
    }

    #[test]
    fn sparse_query_lines_inherit_paper_defaults() {
        let q = query_from_jsonl(r#"{"type":"query","gi":2.0}"#).expect("decode");
        let mut expect = BcnParams::paper_defaults();
        expect.gi = 2.0;
        assert_eq!(q.params, expect);
        assert_eq!(q.max_legs, DEFAULT_MAX_LEGS);
    }

    #[test]
    fn bad_query_lines_are_rejected() {
        for line in [
            "not json",
            r#"{"type":"answer","stable":true}"#,
            r#"{"type":"query","bogus":1}"#,
            r#"{"type":"query","n":2.5}"#,
            r#"{"type":"query","capacity":-1.0}"#,
        ] {
            assert!(query_from_jsonl(line).is_err(), "{line}");
        }
    }
}
