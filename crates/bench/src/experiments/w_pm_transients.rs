//! `w` and `pm` ablation (paper Section IV-C remark): the control
//! parameters `w` and `pm` do **not** appear in Theorem 1 — they cannot
//! make or break strong stability — but they set the switching-line slope
//! `k = w/(pm C)` and with it the damping, i.e. the convergence speed and
//! the distance to the limit-cycle boundary.

use std::path::Path;

use bcn::rounds::{first_round, round_ratio, steady_leg_duration};
use bcn::stability::theorem1_required_buffer;
use bcn::{BcnParams, Region};
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot, Table};

use crate::common::{banner, out_dir, save_plot};
use crate::ExpResult;

/// Estimated 95%-settling time: rounds needed for the amplitude to decay
/// below 5%, times the round duration.
fn settling_time(params: &BcnParams) -> Option<f64> {
    let rho = round_ratio(params)?;
    if rho >= 1.0 {
        return None;
    }
    let rounds = (0.05_f64).ln() / rho.ln();
    let t_round = steady_leg_duration(params, Region::Increase)?
        + steady_leg_duration(params, Region::Decrease)?;
    Some(rounds * t_round)
}

/// Runs the experiment; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    banner("w / pm ablation: transients change, the stability bound does not");
    let base = BcnParams::test_defaults();
    let req_base = theorem1_required_buffer(&base);

    let mut table = Table::new(&[
        "sweep",
        "value",
        "rho (round ratio)",
        "settling time (s)",
        "max_1(x) (bits)",
        "Theorem-1 buffer (bits)",
    ]);
    let mut csv = Csv::new(&["sweep", "value", "rho", "settling", "max1", "thm1_buffer"]);

    // Both sweeps evaluate independent parameterisations; measure the
    // points in parallel, then render the rows in sweep order.
    let w_mults = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let w_points = parkit::par_map(&w_mults, |&mult| measure(&base.clone().with_w(mult * base.w)));
    let mut w_vals = Vec::new();
    let mut w_settle = Vec::new();
    for (mult, m) in w_mults.iter().zip(&w_points) {
        record(&mut table, &mut csv, "w", mult * base.w, m);
        if let Some(s) = m.settle {
            w_vals.push(mult * base.w);
            w_settle.push(s);
        }
        // The invariant the paper states: the Theorem-1 bound is w-free.
        assert!((m.req - req_base).abs() < 1e-9 * req_base);
    }
    let pm_mults = [0.25, 0.5, 1.0, 2.0, 4.0];
    let pm_points = parkit::par_map(&pm_mults, |&mult| {
        measure(&base.clone().with_pm((mult * base.pm).min(1.0)))
    });
    let mut pm_vals = Vec::new();
    let mut pm_settle = Vec::new();
    for (mult, m) in pm_mults.iter().zip(&pm_points) {
        let pm = (mult * base.pm).min(1.0);
        record(&mut table, &mut csv, "pm", pm, m);
        if let Some(s) = m.settle {
            pm_vals.push(pm);
            pm_settle.push(s);
        }
        assert!((m.req - req_base).abs() < 1e-9 * req_base);
    }
    print!("{table}");
    println!("Theorem-1 requirement constant at {req_base:.3e} bits across both sweeps ✓");

    csv.save(out.join("exp_w_pm_transients.csv"))?;
    println!("wrote {}", out.join("exp_w_pm_transients.csv").display());

    let plot = SvgPlot::new("Settling time vs w (pm fixed)", "w", "settling time (s)")
        .with_series(Series::line("settling", &w_vals, &w_settle, COLOR_CYCLE[0]));
    save_plot(&plot, out, "exp_settling_vs_w.svg")?;
    let plot = SvgPlot::new("Settling time vs pm (w fixed)", "pm", "settling time (s)")
        .with_series(Series::line("settling", &pm_vals, &pm_settle, COLOR_CYCLE[1]));
    save_plot(&plot, out, "exp_settling_vs_pm.svg")?;
    Ok(())
}

/// One sweep point's transient metrics, computed off-thread.
struct Point {
    rho: Option<f64>,
    settle: Option<f64>,
    max1: Option<f64>,
    req: f64,
}

fn measure(p: &BcnParams) -> Point {
    Point {
        rho: round_ratio(p),
        settle: settling_time(p),
        max1: first_round(p).map(|fr| fr.max1_x),
        req: theorem1_required_buffer(p),
    }
}

fn record(table: &mut Table, csv: &mut Csv, sweep: &str, value: f64, m: &Point) {
    let rho = m.rho.unwrap_or(f64::NAN);
    let settle = m.settle.unwrap_or(f64::NAN);
    let max1 = m.max1.unwrap_or(f64::NAN);
    table.row(&[
        sweep.to_string(),
        format!("{value:.4}"),
        format!("{rho:.6}"),
        format!("{settle:.4}"),
        format!("{max1:.1}"),
        format!("{:.4e}", m.req),
    ]);
    let sweep_id = if sweep == "w" { 0.0 } else { 1.0 };
    csv.row(&[sweep_id, value, rho, settle, max1, m.req]);
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settling_time_shrinks_with_more_damping() {
        let base = BcnParams::test_defaults();
        let slow = settling_time(&base.clone().with_w(0.5)).unwrap();
        let fast = settling_time(&base.clone().with_w(8.0)).unwrap();
        assert!(fast < slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("wpm_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        assert!(dir.join("exp_w_pm_transients.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
