//! Minimal CSV writing.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// An in-memory CSV document with a fixed column set.
///
/// # Example
///
/// ```
/// use plotkit::Csv;
///
/// let mut csv = Csv::new(&["t", "queue"]);
/// csv.row(&[0.0, 100.0]);
/// csv.row(&[0.1, 150.0]);
/// assert!(csv.to_string().starts_with("t,queue\n0,100\n"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl Csv {
    /// Creates a document with the given column names.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given.
    #[must_use]
    pub fn new(columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "need at least one column");
        Self { header: columns.iter().map(ToString::to_string).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn row(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.header.len(), "row width must match the header");
        self.rows.push(values.to_vec());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the document has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Writes the document to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_string())
    }
}

impl std::fmt::Display for Csv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.header.join(","))?;
        let mut line = String::new();
        for row in &self.rows {
            line.clear();
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                // Trim trailing zeros for readability while keeping full
                // precision for non-round values.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(line, "{}", *v as i64);
                } else {
                    let _ = write!(line, "{v}");
                }
            }
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut c = Csv::new(&["a", "b"]);
        c.row(&[1.0, 2.5]);
        assert_eq!(c.to_string(), "a,b\n1,2.5\n");
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn saves_to_nested_path() {
        let dir = std::env::temp_dir().join("plotkit_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sub/out.csv");
        let mut c = Csv::new(&["x"]);
        c.row(&[9.0]);
        c.save(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "x\n9\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut c = Csv::new(&["a", "b"]);
        c.row(&[1.0]);
    }
}
