//! Regenerates the heterogeneous-model fairness experiment.

fn main() {
    if let Err(e) = bench::experiments::hetero_fairness::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
