//! Typed trace events with monotonic sim-time stamps.

/// Whether a queue extremum is a local maximum or minimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtremumKind {
    /// Local maximum of the queue occupancy.
    Max,
    /// Local minimum of the queue occupancy.
    Min,
}

/// The class of an injected fault (see the `dcesim::faults` module; each
/// class draws from its own deterministic decision stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// A BCN feedback message was silently dropped.
    FeedbackDrop,
    /// A BCN feedback message had a wire bit flipped in flight.
    FeedbackCorrupt,
    /// A BCN feedback message was held for a fixed extra delay.
    FeedbackDelay,
    /// A BCN feedback message was jittered out of order.
    FeedbackReorder,
    /// A data frame was lost on the wire (loss burst).
    DataLoss,
    /// The bottleneck link flapped down, deferring service.
    LinkFlap,
    /// A PAUSE assertion was amplified to a longer hold.
    PauseStorm,
}

impl FaultClass {
    /// Every class, in stable index order.
    pub const ALL: [FaultClass; 7] = [
        FaultClass::FeedbackDrop,
        FaultClass::FeedbackCorrupt,
        FaultClass::FeedbackDelay,
        FaultClass::FeedbackReorder,
        FaultClass::DataLoss,
        FaultClass::LinkFlap,
        FaultClass::PauseStorm,
    ];

    /// Stable dense index of this class (0-based, `< ALL.len()`).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FaultClass::FeedbackDrop => 0,
            FaultClass::FeedbackCorrupt => 1,
            FaultClass::FeedbackDelay => 2,
            FaultClass::FeedbackReorder => 3,
            FaultClass::DataLoss => 4,
            FaultClass::LinkFlap => 5,
            FaultClass::PauseStorm => 6,
        }
    }

    /// Stable snake_case tag (the JSONL `class` field).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::FeedbackDrop => "feedback_drop",
            FaultClass::FeedbackCorrupt => "feedback_corrupt",
            FaultClass::FeedbackDelay => "feedback_delay",
            FaultClass::FeedbackReorder => "feedback_reorder",
            FaultClass::DataLoss => "data_loss",
            FaultClass::LinkFlap => "link_flap",
            FaultClass::PauseStorm => "pause_storm",
        }
    }

    /// Parses a tag produced by [`FaultClass::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// The kind of a causal span scope (see [`Event::SpanBegin`]).
///
/// Spans tie groups of point events to the activity that caused them:
/// a PAUSE storm traced with spans renders as a causal tree (seed →
/// flows → PAUSE episodes) instead of interleaved points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One seed's simulation inside a batch run.
    BatchSeed,
    /// A flow's active lifetime (start until stop or volume exhaustion).
    FlowLifetime,
    /// A PAUSE episode on a port (assertion until scheduled resume).
    PauseEpisode,
    /// One continuous-dynamics leg between hybrid region switches.
    SolverLeg,
    /// A fluid fast-forward epoch of the hybrid co-simulation engine
    /// (packet stepping suspended, closed-form propagation in effect).
    HybridEpoch,
}

impl SpanKind {
    /// Every kind, in stable order.
    pub const ALL: [SpanKind; 5] = [
        SpanKind::BatchSeed,
        SpanKind::FlowLifetime,
        SpanKind::PauseEpisode,
        SpanKind::SolverLeg,
        SpanKind::HybridEpoch,
    ];

    /// Stable snake_case tag (the JSONL `kind` field).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::BatchSeed => "batch_seed",
            SpanKind::FlowLifetime => "flow_lifetime",
            SpanKind::PauseEpisode => "pause_episode",
            SpanKind::SolverLeg => "solver_leg",
            SpanKind::HybridEpoch => "hybrid_epoch",
        }
    }

    /// Parses a tag produced by [`SpanKind::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One instrumentation event.
///
/// Every variant carries the simulation time `t` (seconds) at which it
/// occurred; within a single producer the stamps are monotonic. The
/// enum is `Copy` so pushing into the ring trace is a plain store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// An adaptive solver accepted a step of size `h` with error-norm
    /// estimate `err` (NaN for fixed-step methods).
    SolverStepAccepted {
        /// Time at the end of the accepted step.
        t: f64,
        /// Accepted step size.
        h: f64,
        /// Scaled error-norm estimate of the step (≤ 1 means accepted).
        err: f64,
    },
    /// An adaptive solver rejected a trial step of size `h`.
    SolverStepRejected {
        /// Time at the start of the rejected trial step.
        t: f64,
        /// Rejected trial step size.
        h: f64,
    },
    /// Event location (bisection on the dense interpolant) converged on
    /// a switching-surface crossing.
    SwitchCrossingLocated {
        /// Located crossing time.
        t: f64,
        /// Bisection iterations spent locating it.
        iterations: u32,
    },
    /// A hybrid system transitioned between dynamics regions.
    RegionSwitch {
        /// Switch time.
        t: f64,
        /// Mode index before the switch.
        from: u32,
        /// Mode index after the switch.
        to: u32,
    },
    /// The queue occupancy crossed a configured threshold.
    QueueThresholdCrossed {
        /// Crossing time.
        t: f64,
        /// Queue occupancy at the crossing.
        q: f64,
        /// The threshold that was crossed.
        threshold: f64,
        /// `true` when crossing upward (filling), `false` when draining.
        rising: bool,
    },
    /// The queue occupancy passed through a local extremum.
    QueueExtremum {
        /// Time of the extremum.
        t: f64,
        /// Queue occupancy at the extremum.
        q: f64,
        /// Maximum or minimum.
        kind: ExtremumKind,
    },
    /// A congestion point emitted a BCN feedback message.
    BcnMessageEmitted {
        /// Emission time.
        t: f64,
        /// Feedback value Fb carried by the message.
        fb: f64,
        /// Index of the destination source.
        source: u32,
    },
    /// A congestion point emitted a QCN feedback message.
    QcnMessageEmitted {
        /// Emission time.
        t: f64,
        /// Feedback value Fb carried by the message.
        fb: f64,
        /// Index of the destination source.
        source: u32,
    },
    /// A PAUSE frame took effect at a port.
    PauseAsserted {
        /// Assertion time.
        t: f64,
        /// Port (source index) that was paused.
        port: u32,
    },
    /// A PAUSE expired at a port (stamped with the scheduled expiry,
    /// emitted eagerly at assertion time).
    PauseDeasserted {
        /// Scheduled deassertion time.
        t: f64,
        /// Port (source index) that resumes.
        port: u32,
    },
    /// A frame was dropped on arrival at a full buffer.
    FrameDropped {
        /// Drop time.
        t: f64,
        /// Port (source index) whose frame was dropped.
        port: u32,
    },
    /// The fault layer injected a fault.
    FaultInjected {
        /// Injection time.
        t: f64,
        /// Which fault class fired.
        class: FaultClass,
        /// The affected entity (source index, or 0 for the bottleneck).
        target: u32,
    },
    /// A causal span opened. Events recorded between a span's begin and
    /// end belong to that scope; `parent` links nested spans into a
    /// tree.
    ///
    /// Ids must stay below 2^53 so they survive the JSONL float codec
    /// (batch runs allocate per-seed bases of `(seed + 1) << 32`).
    SpanBegin {
        /// Span start time.
        t: f64,
        /// Trace-unique span id (never 0).
        id: u64,
        /// Id of the enclosing span, or 0 for a root span.
        parent: u64,
        /// What activity the span covers.
        kind: SpanKind,
        /// The entity the span is about (flow, port, mode, or seed).
        entity: u32,
    },
    /// A causal span closed (stamped with the span's end time; emitted
    /// eagerly for spans whose end is scheduled in advance, like PAUSE
    /// episodes).
    SpanEnd {
        /// Span end time.
        t: f64,
        /// Id of the span being closed.
        id: u64,
    },
}

impl Event {
    /// The simulation-time stamp carried by this event.
    #[must_use]
    pub fn time(&self) -> f64 {
        match *self {
            Event::SolverStepAccepted { t, .. }
            | Event::SolverStepRejected { t, .. }
            | Event::SwitchCrossingLocated { t, .. }
            | Event::RegionSwitch { t, .. }
            | Event::QueueThresholdCrossed { t, .. }
            | Event::QueueExtremum { t, .. }
            | Event::BcnMessageEmitted { t, .. }
            | Event::QcnMessageEmitted { t, .. }
            | Event::PauseAsserted { t, .. }
            | Event::PauseDeasserted { t, .. }
            | Event::FrameDropped { t, .. }
            | Event::FaultInjected { t, .. }
            | Event::SpanBegin { t, .. }
            | Event::SpanEnd { t, .. } => t,
        }
    }

    /// Stable snake_case tag used as the JSONL `type` field.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Event::SolverStepAccepted { .. } => "solver_step_accepted",
            Event::SolverStepRejected { .. } => "solver_step_rejected",
            Event::SwitchCrossingLocated { .. } => "switch_crossing_located",
            Event::RegionSwitch { .. } => "region_switch",
            Event::QueueThresholdCrossed { .. } => "queue_threshold_crossed",
            Event::QueueExtremum { .. } => "queue_extremum",
            Event::BcnMessageEmitted { .. } => "bcn_message_emitted",
            Event::QcnMessageEmitted { .. } => "qcn_message_emitted",
            Event::PauseAsserted { .. } => "pause_asserted",
            Event::PauseDeasserted { .. } => "pause_deasserted",
            Event::FrameDropped { .. } => "frame_dropped",
            Event::FaultInjected { .. } => "fault_injected",
            Event::SpanBegin { .. } => "span_begin",
            Event::SpanEnd { .. } => "span_end",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_extracts_the_stamp() {
        let e = Event::RegionSwitch { t: 1.5, from: 0, to: 1 };
        assert_eq!(e.time(), 1.5);
        let e = Event::FrameDropped { t: 0.25, port: 3 };
        assert_eq!(e.time(), 0.25);
    }

    #[test]
    fn type_names_are_unique() {
        let events = [
            Event::SolverStepAccepted { t: 0.0, h: 0.1, err: 0.5 },
            Event::SolverStepRejected { t: 0.0, h: 0.1 },
            Event::SwitchCrossingLocated { t: 0.0, iterations: 3 },
            Event::RegionSwitch { t: 0.0, from: 0, to: 1 },
            Event::QueueThresholdCrossed { t: 0.0, q: 1.0, threshold: 1.0, rising: true },
            Event::QueueExtremum { t: 0.0, q: 1.0, kind: ExtremumKind::Max },
            Event::BcnMessageEmitted { t: 0.0, fb: -1.0, source: 0 },
            Event::QcnMessageEmitted { t: 0.0, fb: -1.0, source: 0 },
            Event::PauseAsserted { t: 0.0, port: 0 },
            Event::PauseDeasserted { t: 0.0, port: 0 },
            Event::FrameDropped { t: 0.0, port: 0 },
            Event::FaultInjected { t: 0.0, class: FaultClass::FeedbackDrop, target: 0 },
            Event::SpanBegin { t: 0.0, id: 1, parent: 0, kind: SpanKind::BatchSeed, entity: 0 },
            Event::SpanEnd { t: 0.0, id: 1 },
        ];
        let mut names: Vec<&str> = events.iter().map(Event::type_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), events.len());
    }

    #[test]
    fn span_kind_names_round_trip() {
        for k in SpanKind::ALL {
            assert_eq!(SpanKind::from_name(k.name()), Some(k));
        }
        assert_eq!(SpanKind::from_name("no_such_span"), None);
    }

    #[test]
    fn fault_class_names_round_trip() {
        for c in FaultClass::ALL {
            assert_eq!(FaultClass::from_name(c.name()), Some(c));
        }
        assert_eq!(FaultClass::from_name("no_such_fault"), None);
        // Dense, stable indices.
        for (i, c) in FaultClass::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
