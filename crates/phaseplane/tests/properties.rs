//! Property-based tests of the phase-plane toolkit: classification
//! consistency with eigenvalues, return-map behaviour of random linear
//! flows, and switching-line geometry.

use phaseplane::poincare::ReturnMap;
use phaseplane::{classify, Eigen2, FixedPointKind, Mat2, SwitchingLine};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Classification agrees with the eigenstructure for random matrices.
    #[test]
    fn classification_matches_eigenvalues(
        a in -3.0f64..3.0, b in -3.0f64..3.0,
        c in -3.0f64..3.0, d in -3.0f64..3.0,
    ) {
        let m = Mat2::new(a, b, c, d);
        let kind = classify(&m);
        match m.eigen() {
            Eigen2::Complex { re, .. } => {
                prop_assert!(kind.is_rotational(), "complex pair gave {kind}");
                if re < 0.0 {
                    prop_assert_eq!(kind, FixedPointKind::StableFocus);
                } else if re > 0.0 {
                    prop_assert_eq!(kind, FixedPointKind::UnstableFocus);
                }
            }
            Eigen2::RealDistinct { l1, l2, v1, v2 } => {
                if l1 * l2 < 0.0 {
                    prop_assert_eq!(kind, FixedPointKind::Saddle);
                } else if l2 < 0.0 {
                    prop_assert_eq!(kind, FixedPointKind::StableNode);
                } else if l1 > 0.0 {
                    prop_assert_eq!(kind, FixedPointKind::UnstableNode);
                }
                // Eigenvector residuals vanish.
                for (l, v) in [(l1, v1), (l2, v2)] {
                    let av = m.mul_vec(v);
                    let res = ((av[0] - l * v[0]).powi(2) + (av[1] - l * v[1]).powi(2)).sqrt();
                    prop_assert!(res < 1e-7 * (1.0 + l.abs()), "residual {res}");
                }
            }
            Eigen2::RealRepeated { l, v } => {
                let av = m.mul_vec(v);
                let res = ((av[0] - l * v[0]).powi(2) + (av[1] - l * v[1]).powi(2)).sqrt();
                prop_assert!(res < 1e-6 * (1.0 + l.abs()));
            }
        }
    }

    /// Eigenvalues satisfy the characteristic polynomial.
    #[test]
    fn eigenvalues_satisfy_characteristic(
        m in 0.01f64..10.0,
        n in 0.01f64..10.0,
    ) {
        let j = Mat2::companion(m, n);
        match j.eigen() {
            Eigen2::RealDistinct { l1, l2, .. } => {
                for l in [l1, l2] {
                    let p = l * l + m * l + n;
                    prop_assert!(p.abs() < 1e-8 * (n + l * l), "residual {p}");
                }
                // Vieta.
                prop_assert!((l1 + l2 + m).abs() < 1e-9 * m.max(1.0));
                prop_assert!((l1 * l2 - n).abs() < 1e-9 * n.max(1.0));
            }
            Eigen2::Complex { re, im } => {
                prop_assert!((2.0 * re + m).abs() < 1e-9 * m.max(1.0));
                prop_assert!((re * re + im * im - n).abs() < 1e-9 * n.max(1.0));
            }
            Eigen2::RealRepeated { l, .. } => {
                prop_assert!((2.0 * l + m).abs() < 1e-9 * m.max(1.0));
            }
        }
    }

    /// Switching-line coordinates round-trip and sides are consistent.
    #[test]
    fn switching_line_geometry(k in 0.001f64..100.0, s in -50.0f64..50.0) {
        let line = SwitchingLine::bcn(k);
        let p = line.point_at(s);
        prop_assert!((line.coordinate_of(p) - s).abs() < 1e-9 * s.abs().max(1.0));
        prop_assert!(line.signed_value(p).abs() < 1e-9 * s.abs().max(1.0));
        // Normal direction really is orthogonal to the line direction.
        let nrm = line.normal();
        let dir = line.direction();
        prop_assert!((nrm[0] * dir[0] + nrm[1] * dir[1]).abs() < 1e-12 * (1.0 + k));
    }

    /// For a random linear stable focus, the Poincaré return ratio is in
    /// (0, 1) and independent of the starting coordinate (homogeneity).
    #[test]
    fn linear_focus_return_ratio(
        m in 0.05f64..1.5,
        n_extra in 0.5f64..8.0,
        s0 in 0.2f64..3.0,
    ) {
        // Ensure complex eigenvalues: n > m^2/4.
        let n = m * m / 4.0 + n_extra;
        let sys = move |p: [f64; 2]| [p[1], -n * p[0] - m * p[1]];
        let map = ReturnMap::new(&sys, SwitchingLine::new(0.0, 1.0))
            .with_tol(1e-11)
            .with_horizon(1e4);
        let rho1 = map.contraction_ratio(s0).unwrap();
        let rho2 = map.contraction_ratio(2.0 * s0).unwrap();
        prop_assert!(rho1 > 0.0 && rho1 < 1.0, "rho {rho1}");
        prop_assert!((rho1 - rho2).abs() < 1e-5 * rho1, "{rho1} vs {rho2}");
        // The analytic per-revolution contraction e^{-pi m / (2 beta)}
        // ... full revolution is 2 pi / (2 beta): ratio = exp(alpha*T).
        let beta = (n - m * m / 4.0).sqrt();
        let expect = (-m / 2.0 * std::f64::consts::TAU / beta).exp();
        prop_assert!((rho1 - expect).abs() < 1e-4 * expect,
            "measured {rho1} vs analytic {expect}");
    }
}
