//! The BCN switched vector field in deviation coordinates.

use odesolve::hybrid::HybridSystem;
use odesolve::Direction;
use phaseplane::{Mat2, PlaneSystem, SwitchingLine};

use crate::params::BcnParams;

/// The two control regions of the variable-structure rate law
/// (paper Eq. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// `sigma > 0`: additive rate increase (queue below target).
    Increase,
    /// `sigma < 0`: multiplicative rate decrease (queue above target).
    Decrease,
}

impl Region {
    /// The region governing a point with congestion measure `sigma`
    /// (boundary points are assigned to `Increase`; the flow is
    /// transversal there except at the origin, so the choice only affects
    /// a measure-zero set).
    #[must_use]
    pub fn from_sigma(sigma: f64) -> Self {
        if sigma >= 0.0 {
            Region::Increase
        } else {
            Region::Decrease
        }
    }

    /// The hybrid-mode index used by the `odesolve` adapter.
    #[must_use]
    pub fn mode_index(self) -> usize {
        match self {
            Region::Increase => 0,
            Region::Decrease => 1,
        }
    }

    /// The inverse of [`Region::mode_index`].
    ///
    /// # Panics
    ///
    /// Panics on an index other than 0 or 1.
    #[must_use]
    pub fn from_mode_index(mode: usize) -> Self {
        match mode {
            0 => Region::Increase,
            1 => Region::Decrease,
            other => panic!("invalid BCN mode index {other}"),
        }
    }

    /// The opposite region.
    #[must_use]
    pub fn other(self) -> Self {
        match self {
            Region::Increase => Region::Decrease,
            Region::Decrease => Region::Increase,
        }
    }
}

/// Whether the rate-decrease law keeps the paper's full nonlinear form or
/// its first-order Taylor approximation about the equilibrium (paper
/// Eq. 8 vs Eq. 9; the increase law is linear either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Linearity {
    /// `dy/dt = -b (y + C)(x + k y)` in the decrease region (Eq. 8).
    #[default]
    FullNonlinear,
    /// `dy/dt = -b C (x + k y)` in the decrease region (Eq. 9) — the
    /// form all the paper's closed-form analysis applies to.
    Linearized,
}

/// The BCN fluid model `dx/dt = y`, `dy/dt = f_region(x, y)` in deviation
/// coordinates `x = q - q0`, `y = N r - C` (paper Eqs. 8–9).
///
/// Implements [`PlaneSystem`] (region chosen pointwise by the sign of
/// `sigma`) for phase-plane utilities, and [`HybridSystem`] for accurate
/// event-located integration across the switching line.
///
/// # Example
///
/// ```
/// use bcn::{BcnFluid, BcnParams, Region};
///
/// let sys = BcnFluid::linearized(BcnParams::paper_defaults());
/// // Queue empty, rate at capacity: deep inside the increase region.
/// let p = sys.params().initial_point();
/// assert_eq!(sys.region_at(p), Region::Increase);
/// let d = sys.deriv_in(Region::Increase, p);
/// assert_eq!(d[0], 0.0);       // dx/dt = y = 0
/// assert!(d[1] > 0.0);         // rate accelerating
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BcnFluid {
    params: BcnParams,
    linearity: Linearity,
}

impl BcnFluid {
    /// Builds the model with the paper's full nonlinear decrease law.
    #[must_use]
    pub fn new(params: BcnParams) -> Self {
        Self { params, linearity: Linearity::FullNonlinear }
    }

    /// Builds the model with the linearised decrease law of Eq. 9 (the
    /// object of all the paper's closed-form analysis).
    #[must_use]
    pub fn linearized(params: BcnParams) -> Self {
        Self { params, linearity: Linearity::Linearized }
    }

    /// The parameter set.
    #[must_use]
    pub fn params(&self) -> &BcnParams {
        &self.params
    }

    /// Which decrease law this instance uses.
    #[must_use]
    pub fn linearity(&self) -> Linearity {
        self.linearity
    }

    /// The switching line `x + k y = 0`.
    #[must_use]
    pub fn switching_line(&self) -> SwitchingLine {
        SwitchingLine::bcn(self.params.k())
    }

    /// The region governing the dynamics at point `p = (x, y)`.
    #[must_use]
    pub fn region_at(&self, p: [f64; 2]) -> Region {
        Region::from_sigma(self.params.sigma(p[0], p[1]))
    }

    /// The vector field of a *specific* region evaluated at `p`
    /// (regardless of which region `p` actually lies in) — the primitive
    /// the closed-form and hybrid machinery builds on.
    #[must_use]
    pub fn deriv_in(&self, region: Region, p: [f64; 2]) -> [f64; 2] {
        let [x, y] = p;
        let k = self.params.k();
        let s = x + k * y; // sigma = -s
        let dy = match region {
            Region::Increase => -self.params.a() * s,
            Region::Decrease => match self.linearity {
                Linearity::FullNonlinear => -self.params.b() * (y + self.params.capacity) * s,
                Linearity::Linearized => -self.params.b() * self.params.capacity * s,
            },
        };
        [y, dy]
    }

    /// The Jacobian of the linearised dynamics of `region` at the origin:
    /// the companion matrix of `lambda^2 + k n lambda + n = 0` with
    /// `n = a` (increase) or `n = b C` (decrease) — paper Eq. 35.
    #[must_use]
    pub fn jacobian(&self, region: Region) -> Mat2 {
        let n = self.region_n(region);
        Mat2::companion(self.params.k() * n, n)
    }

    /// The characteristic constant `n` of a region: `n1 = a` for increase,
    /// `n2 = b C` for decrease.
    #[must_use]
    pub fn region_n(&self, region: Region) -> f64 {
        match region {
            Region::Increase => self.params.a(),
            Region::Decrease => self.params.b() * self.params.capacity,
        }
    }
}

impl PlaneSystem for BcnFluid {
    fn deriv(&self, p: [f64; 2]) -> [f64; 2] {
        self.deriv_in(self.region_at(p), p)
    }
}

impl HybridSystem<2> for BcnFluid {
    fn rhs(&self, mode: usize, _t: f64, y: &[f64; 2]) -> [f64; 2] {
        self.deriv_in(Region::from_mode_index(mode), *y)
    }

    fn guard(&self, _mode: usize, _t: f64, y: &[f64; 2]) -> f64 {
        // The switching surface sigma = 0, expressed as s = x + k y.
        y[0] + self.params.k() * y[1]
    }

    fn guard_direction(&self, _mode: usize) -> Direction {
        Direction::Any
    }

    fn transition(&self, mode: usize, _t: f64, y: &[f64; 2]) -> (usize, [f64; 2]) {
        (1 - mode, *y)
    }

    fn mode_at(&self, _t: f64, y: &[f64; 2]) -> usize {
        self.region_at(*y).mode_index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> BcnFluid {
        BcnFluid::new(BcnParams::test_defaults())
    }

    #[test]
    fn region_membership() {
        let s = sys();
        assert_eq!(s.region_at([-1.0, 0.0]), Region::Increase);
        assert_eq!(s.region_at([1.0, 0.0]), Region::Decrease);
        // Far above the line in y with x slightly negative: decrease.
        let k = s.params().k();
        assert_eq!(s.region_at([-1.0, 2.0 / k]), Region::Decrease);
    }

    #[test]
    fn region_round_trips_mode_index() {
        for r in [Region::Increase, Region::Decrease] {
            assert_eq!(Region::from_mode_index(r.mode_index()), r);
            assert_eq!(r.other().other(), r);
        }
    }

    #[test]
    fn origin_is_equilibrium_of_both_regions() {
        let s = sys();
        for r in [Region::Increase, Region::Decrease] {
            assert_eq!(s.deriv_in(r, [0.0, 0.0]), [0.0, 0.0]);
        }
    }

    #[test]
    fn nonlinear_and_linearized_agree_to_first_order() {
        let p = BcnParams::test_defaults();
        let nl = BcnFluid::new(p.clone());
        let lin = BcnFluid::linearized(p.clone());
        // Increase region: identical laws.
        let pt = [-100.0, 5.0];
        assert_eq!(nl.deriv_in(Region::Increase, pt), lin.deriv_in(Region::Increase, pt));
        // Decrease region: ratio of dy equals (y + C)/C.
        let pt = [100.0, 2000.0];
        let d_nl = nl.deriv_in(Region::Decrease, pt)[1];
        let d_lin = lin.deriv_in(Region::Decrease, pt)[1];
        let expected_ratio = (pt[1] + p.capacity) / p.capacity;
        assert!((d_nl / d_lin - expected_ratio).abs() < 1e-12);
        // Near the equilibrium the two converge.
        let pt = [1e-3, 1e-3];
        let d_nl = nl.deriv_in(Region::Decrease, pt)[1];
        let d_lin = lin.deriv_in(Region::Decrease, pt)[1];
        assert!((d_nl - d_lin).abs() < 1e-6 * d_lin.abs().max(1.0));
    }

    #[test]
    fn jacobian_matches_paper_eq35() {
        let s = sys();
        let p = s.params();
        let ji = s.jacobian(Region::Increase);
        assert_eq!(ji.trace(), -p.k() * p.a());
        assert_eq!(ji.det(), p.a());
        let jd = s.jacobian(Region::Decrease);
        assert_eq!(jd.trace(), -p.k() * p.b() * p.capacity);
        assert_eq!(jd.det(), p.b() * p.capacity);
        // m2 = b w / pm must equal k * b * C (the identity the paper uses
        // to unify the two regions into Eq. 35).
        let m2_paper = p.b() * p.w / p.pm;
        assert!((jd.trace() + m2_paper).abs() < 1e-12 * m2_paper.abs());
    }

    #[test]
    fn plane_system_picks_region_by_sigma() {
        let s = sys();
        let pt_inc = [-1000.0, 0.0];
        assert_eq!(PlaneSystem::deriv(&s, pt_inc), s.deriv_in(Region::Increase, pt_inc));
        let pt_dec = [1000.0, 0.0];
        assert_eq!(PlaneSystem::deriv(&s, pt_dec), s.deriv_in(Region::Decrease, pt_dec));
    }

    #[test]
    fn hybrid_guard_is_switching_function() {
        let s = sys();
        let k = s.params().k();
        let on_line = [-k * 7.0, 7.0];
        assert_eq!(HybridSystem::guard(&s, 0, 0.0, &on_line), 0.0);
        assert!(HybridSystem::guard(&s, 0, 0.0, &[1.0, 0.0]) > 0.0);
        let (m, y) = HybridSystem::transition(&s, 0, 0.0, &on_line);
        assert_eq!(m, 1);
        assert_eq!(y, on_line);
    }

    #[test]
    fn flow_crosses_switching_line_transversally_off_origin() {
        // ds/dt = y on the line in both regions, so any point with y != 0
        // crosses; this is why the hybrid mode-flip transition is sound.
        let s = sys();
        let k = s.params().k();
        for y in [-500.0, -1.0, 1.0, 500.0] {
            let p = [-k * y, y];
            for r in [Region::Increase, Region::Decrease] {
                let d = s.deriv_in(r, p);
                let ds_dt = d[0] + k * d[1];
                // dy/dt vanishes on the line, so ds/dt = y exactly.
                assert!((ds_dt - y).abs() < 1e-9 * y.abs());
            }
        }
    }
}
