//! Poincaré sections, return maps, and limit-cycle location.
//!
//! A planar limit cycle shows up as a fixed point of the *return map* on a
//! section: start on a ray through the origin, flow once around, and record
//! where the trajectory pierces the same ray again. The reproduced paper's
//! Fig. 7 limit cycle is exactly such a fixed point, with the BCN switching
//! line itself as the natural section.

use std::error::Error;
use std::fmt;

use odesolve::{Direction, EventSpec, SolveError};

use crate::switching::SwitchingLine;
use crate::system::PlaneSystem;
use crate::trajectory::{trajectory_with_events, TrajectoryOptions};

/// Failure modes of return-map evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PoincareError {
    /// The flow is tangent to the section at the start point, so a
    /// crossing orientation cannot be defined.
    TangentStart {
        /// Section coordinate of the offending start point.
        s: f64,
    },
    /// The trajectory did not return to the section within the horizon.
    NoReturn {
        /// The horizon that was exhausted.
        horizon: f64,
    },
    /// The underlying integration failed.
    Solver(SolveError),
}

impl fmt::Display for PoincareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoincareError::TangentStart { s } => {
                write!(f, "flow tangent to section at coordinate {s}")
            }
            PoincareError::NoReturn { horizon } => {
                write!(f, "no return to section within horizon {horizon}")
            }
            PoincareError::Solver(e) => write!(f, "integration failed: {e}"),
        }
    }
}

impl Error for PoincareError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PoincareError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for PoincareError {
    fn from(e: SolveError) -> Self {
        PoincareError::Solver(e)
    }
}

/// One application of the return map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReturnCrossing {
    /// Section coordinate where the trajectory pierced the section again.
    pub s: f64,
    /// Time of flight between the two crossings (the orbit period for a
    /// fixed point).
    pub period: f64,
}

/// The Poincaré return map of a planar system on a line through the origin.
///
/// The section is one *ray* of the line: a return is the next crossing with
/// the same orientation (sign of the normal velocity), which for a flow
/// winding around the origin is the next pierce of the same ray.
#[derive(Debug, Clone, PartialEq)]
pub struct ReturnMap<'a, S> {
    sys: &'a S,
    line: SwitchingLine,
    /// Maximum flow time to wait for a return.
    pub horizon: f64,
    /// Integrator tolerance.
    pub tol: f64,
}

impl<'a, S: PlaneSystem> ReturnMap<'a, S> {
    /// Creates the return map of `sys` on the ray family of `line`.
    #[must_use]
    pub fn new(sys: &'a S, line: SwitchingLine) -> Self {
        Self { sys, line, horizon: 1e3, tol: 1e-10 }
    }

    /// Sets the maximum flow time to wait for a return.
    #[must_use]
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the integrator tolerance.
    #[must_use]
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// The underlying section line.
    #[must_use]
    pub fn line(&self) -> SwitchingLine {
        self.line
    }

    /// Applies the map to the point at section coordinate `s`.
    ///
    /// # Errors
    ///
    /// [`PoincareError::TangentStart`] if the flow does not cross the
    /// section at `s`, [`PoincareError::NoReturn`] if the horizon elapses
    /// first, or [`PoincareError::Solver`] on integration failure.
    pub fn apply(&self, s: f64) -> Result<ReturnCrossing, PoincareError> {
        let p0 = self.line.point_at(s);
        let f0 = self.sys.deriv(p0);
        let n = self.line.normal();
        let normal_speed = n[0] * f0[0] + n[1] * f0[1];
        if normal_speed == 0.0 {
            return Err(PoincareError::TangentStart { s });
        }
        let dir = if normal_speed > 0.0 { Direction::Rising } else { Direction::Falling };
        let line = self.line;
        let guard = move |_t: f64, p: &[f64; 2]| line.signed_value(*p);
        let events = [EventSpec::terminal(&guard).with_direction(dir)];
        let opts = TrajectoryOptions::default().with_t_end(self.horizon).with_tol(self.tol);
        let sol = trajectory_with_events(self.sys, p0, &events, &opts)?;
        if sol.events().is_empty() {
            return Err(PoincareError::NoReturn { horizon: self.horizon });
        }
        let hit = &sol.events()[0];
        Ok(ReturnCrossing { s: self.line.coordinate_of(hit.y), period: hit.t })
    }

    /// The per-revolution contraction ratio `P(s)/s` at coordinate `s`.
    ///
    /// For a linear flow this is independent of `s`; a value below 1 means
    /// trajectories spiral inwards, above 1 outwards, and exactly 1 is the
    /// limit-cycle (center-like) condition.
    ///
    /// # Errors
    ///
    /// Same as [`Self::apply`], plus `TangentStart` for `s = 0`.
    pub fn contraction_ratio(&self, s: f64) -> Result<f64, PoincareError> {
        if s == 0.0 {
            return Err(PoincareError::TangentStart { s });
        }
        Ok(self.apply(s)?.s / s)
    }
}

/// A located limit cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LimitCycle {
    /// Fixed-point coordinate on the section.
    pub s: f64,
    /// The corresponding point in the plane.
    pub point: [f64; 2],
    /// Orbit period.
    pub period: f64,
    /// Floquet multiplier `dP/ds` at the fixed point: `|multiplier| < 1`
    /// means the cycle is orbitally stable.
    pub multiplier: f64,
}

impl LimitCycle {
    /// Whether the cycle attracts nearby trajectories.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.multiplier.abs() < 1.0
    }
}

/// Searches `[s_lo, s_hi]` for a fixed point of the return map by
/// bisection on the displacement `P(s) - s`.
///
/// Returns `Ok(None)` when the displacement has the same sign at both ends
/// (no isolated cycle crossed in the bracket).
///
/// # Errors
///
/// Propagates [`PoincareError`] from map evaluations.
///
/// # Panics
///
/// Panics if `s_lo >= s_hi`.
pub fn find_limit_cycle<S: PlaneSystem>(
    map: &ReturnMap<'_, S>,
    s_lo: f64,
    s_hi: f64,
) -> Result<Option<LimitCycle>, PoincareError> {
    assert!(s_lo < s_hi, "bracket must be ordered");
    let disp = |s: f64| -> Result<f64, PoincareError> { Ok(map.apply(s)?.s - s) };
    let mut lo = s_lo;
    let mut hi = s_hi;
    let mut g_lo = disp(lo)?;
    let g_hi = disp(hi)?;
    if g_lo == 0.0 {
        return finish(map, lo);
    }
    if g_hi == 0.0 {
        return finish(map, hi);
    }
    if g_lo.signum() == g_hi.signum() {
        return Ok(None);
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        let g_mid = disp(mid)?;
        if g_mid == 0.0 {
            return finish(map, mid);
        }
        if g_mid.signum() == g_lo.signum() {
            lo = mid;
            g_lo = g_mid;
        } else {
            hi = mid;
        }
        if (hi - lo).abs() < 1e-12 * hi.abs().max(1.0) {
            break;
        }
    }
    finish(map, 0.5 * (lo + hi))
}

fn finish<S: PlaneSystem>(
    map: &ReturnMap<'_, S>,
    s: f64,
) -> Result<Option<LimitCycle>, PoincareError> {
    let crossing = map.apply(s)?;
    // Central finite difference for the Floquet multiplier.
    let ds = 1e-6 * s.abs().max(1e-6);
    let p_plus = map.apply(s + ds)?.s;
    let p_minus = map.apply(s - ds)?.s;
    let multiplier = (p_plus - p_minus) / (2.0 * ds);
    Ok(Some(LimitCycle { s, point: map.line().point_at(s), period: crossing.period, multiplier }))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Damped rotation: spiral sink, contraction < 1, no limit cycle.
    fn damped(p: [f64; 2]) -> [f64; 2] {
        [p[1], -p[0] - 0.2 * p[1]]
    }

    /// The Van der Pol oscillator (mu = 1): the canonical stable limit
    /// cycle with amplitude ~2.
    fn van_der_pol(p: [f64; 2]) -> [f64; 2] {
        [p[1], (1.0 - p[0] * p[0]) * p[1] - p[0]]
    }

    #[test]
    fn spiral_sink_contracts() {
        let map = ReturnMap::new(&damped, SwitchingLine::new(0.0, 1.0));
        let rho = map.contraction_ratio(1.0).unwrap();
        assert!(rho < 1.0 && rho > 0.0, "contraction {rho}");
        // Ratio is s-independent for a linear flow.
        let rho2 = map.contraction_ratio(0.1).unwrap();
        assert!((rho - rho2).abs() < 1e-6);
    }

    #[test]
    fn harmonic_center_has_unit_ratio_and_period_tau() {
        let center = |p: [f64; 2]| [p[1], -p[0]];
        let map = ReturnMap::new(&center, SwitchingLine::new(0.0, 1.0)).with_tol(1e-11);
        let c = map.apply(1.0).unwrap();
        assert!((c.s - 1.0).abs() < 1e-8, "returned to {}", c.s);
        assert!((c.period - std::f64::consts::TAU).abs() < 1e-8);
    }

    #[test]
    fn finds_van_der_pol_limit_cycle() {
        // Section: the positive x-axis (line y = 0, coordinate = x up to
        // orientation).
        let line = SwitchingLine::new(0.0, 1.0);
        let map = ReturnMap::new(&van_der_pol, line).with_horizon(100.0).with_tol(1e-10);
        let lc = find_limit_cycle(&map, 0.5, 4.0).unwrap().expect("cycle exists");
        // Known amplitude ~2.0 (to a couple of decimals for mu = 1).
        assert!((lc.s.abs() - 2.0).abs() < 0.05, "amplitude {}", lc.s);
        assert!(lc.is_stable(), "multiplier {}", lc.multiplier);
        // Known period ~6.66 for mu = 1.
        assert!((lc.period - 6.66).abs() < 0.1, "period {}", lc.period);
    }

    #[test]
    fn no_cycle_in_sink() {
        let map = ReturnMap::new(&damped, SwitchingLine::new(0.0, 1.0));
        let found = find_limit_cycle(&map, 0.5, 3.0).unwrap();
        assert!(found.is_none());
    }

    #[test]
    fn tangent_start_is_detected() {
        // Field parallel to the section everywhere on it: f = (1, 0) on
        // the x-axis section.
        let shear = |_p: [f64; 2]| [1.0, 0.0];
        let map = ReturnMap::new(&shear, SwitchingLine::new(0.0, 1.0));
        let err = map.apply(1.0).unwrap_err();
        assert!(matches!(err, PoincareError::TangentStart { .. }));
    }

    #[test]
    fn no_return_reports_horizon() {
        // Pure outflow away from the section: never comes back.
        let outflow = |p: [f64; 2]| [0.0, p[1].abs() + 1.0];
        let map = ReturnMap::new(&outflow, SwitchingLine::new(0.0, 1.0)).with_horizon(1.0);
        let err = map.apply(1.0).unwrap_err();
        assert!(matches!(err, PoincareError::NoReturn { .. }), "{err}");
    }

    #[test]
    fn error_display() {
        let e = PoincareError::NoReturn { horizon: 5.0 };
        assert!(e.to_string().contains("horizon"));
        let e = PoincareError::Solver(SolveError::NonFiniteState { t: 0.0 });
        assert!(e.to_string().contains("integration failed"));
    }
}
