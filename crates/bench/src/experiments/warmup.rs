//! Start-up experiment: the warm-up duration `T0 = (C - N mu)/(a q0)`
//! and the paper's closing `q0` trade-off — a small reference point helps
//! strong stability (Theorem 1's requirement shrinks linearly in `q0`)
//! but prolongs the start-up (`T0 ~ 1/q0`).

use std::path::Path;

use bcn::simulate::SaturatingFluid;
use bcn::stability::theorem1_required_buffer;
use bcn::warmup::warmup_duration;
use bcn::BcnParams;
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot, Table};

use crate::common::{banner, out_dir, save_plot};
use crate::ExpResult;

/// Runs the experiment; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    banner("Warm-up duration and the q0 trade-off");
    let params = BcnParams::test_defaults();

    // 1. Formula vs simulation across initial rates. Each fraction's
    // saturating-fluid run is independent — fan them out and render the
    // table from the ordered results.
    let mut table =
        Table::new(&["mu / fair share", "T0 formula (s)", "T0 simulated (s)", "error %"]);
    let mut csv = Csv::new(&["mu_fraction", "t0_formula", "t0_simulated"]);
    let fracs = [0.0, 0.25, 0.5, 0.75, 0.9];
    let runs = parkit::par_map(&fracs, |&frac| {
        let mu = frac * params.fair_share();
        let t0 = warmup_duration(&params, mu)?;
        // Simulate: time for the aggregate rate to reach capacity.
        let sim = SaturatingFluid::new(params.clone());
        let run = sim.run(0.0, mu * f64::from(params.n_flows), 1.5 * t0, t0 / 20_000.0, 10);
        let t0_sim = run
            .times
            .iter()
            .zip(&run.rate)
            .find(|(_, r)| **r >= params.capacity)
            .map_or(f64::NAN, |(t, _)| *t);
        Ok::<_, bcn::BcnError>((frac, t0, t0_sim))
    });
    for r in runs {
        let (frac, t0, t0_sim) = r?;
        table.row_f64(&[frac, t0, t0_sim, (t0_sim / t0 - 1.0).abs() * 100.0]);
        csv.row(&[frac, t0, t0_sim]);
    }
    print!("{table}");

    // 2. The q0 trade-off: T0 and the Theorem-1 buffer requirement.
    let mut trade = Table::new(&["q0 (bits)", "T0 cold start (s)", "required buffer (bits)"]);
    let mut q0s = Vec::new();
    let mut t0s = Vec::new();
    let mut reqs = Vec::new();
    let mults = [0.25, 0.5, 1.0, 2.0, 3.0];
    let points = parkit::par_map(&mults, |&mult| {
        let q0 = mult * params.q0;
        let p = params.clone().with_q0(q0);
        Ok::<_, bcn::BcnError>((q0, warmup_duration(&p, 0.0)?, theorem1_required_buffer(&p)))
    });
    for point in points {
        let (q0, t0, req) = point?;
        trade.row_f64(&[q0, t0, req]);
        q0s.push(q0);
        t0s.push(t0);
        reqs.push(req);
    }
    print!("{trade}");
    csv.save(out.join("exp_warmup.csv"))?;
    println!("wrote {}", out.join("exp_warmup.csv").display());

    // Normalise both curves for one plot.
    let t0_max = t0s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let req_max = reqs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let t0n: Vec<f64> = t0s.iter().map(|v| v / t0_max).collect();
    let reqn: Vec<f64> = reqs.iter().map(|v| v / req_max).collect();
    let plot = SvgPlot::new(
        "q0 trade-off: start-up time vs buffer requirement (normalised)",
        "q0 (bits)",
        "normalised",
    )
    .with_series(Series::line("T0 (start-up)", &q0s, &t0n, COLOR_CYCLE[0]))
    .with_series(Series::line("required buffer", &q0s, &reqn, COLOR_CYCLE[1]));
    save_plot(&plot, out, "exp_warmup_tradeoff.svg")?;
    Ok(())
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("warmup_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        assert!(dir.join("exp_warmup.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
