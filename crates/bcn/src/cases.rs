//! The paper's Case 1–5 taxonomy of BCN phase portraits.
//!
//! Each control region is a second-order linear(ised) system with
//! characteristic equation `lambda^2 + k n lambda + n = 0` (paper Eq. 35),
//! `n = a` in the increase region and `n = b C` in the decrease region.
//! The discriminant `(k n)^2 - 4 n` decides the local trajectory shape:
//!
//! * negative — complex eigenvalues, **logarithmic spiral** (stable focus);
//! * positive — two distinct negative real eigenvalues, **node** whose
//!   trajectories look like parabolas;
//! * zero — the **critical** (degenerate node) boundary.
//!
//! In parameter terms the spiral condition is `a < 4 pm^2 C^2 / w^2` for
//! the increase region and `b < 4 pm^2 C / w^2` for the decrease region
//! (paper Section IV-C), which produces the paper's four open cases plus
//! the critical boundary Case 5.

use std::fmt;

use phaseplane::{classify, FixedPointKind};

use crate::model::Region;
use crate::params::BcnParams;
use crate::propagate::Propagator;

/// Local trajectory shape of one control region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionShape {
    /// Complex eigenvalues: logarithmic-spiral trajectories
    /// (`(kn)^2 < 4n`).
    Spiral,
    /// Distinct negative real eigenvalues: parabola-like node trajectories
    /// (`(kn)^2 > 4n`).
    Node,
    /// Repeated eigenvalue `lambda = -2/k` (`(kn)^2 = 4n`, i.e.
    /// `n = 4/k^2`): the critical spiral/node boundary. (The paper prints
    /// `lambda = -1/k` here; see the [`CaseId::Case5`] erratum note.)
    Critical,
}

impl RegionShape {
    /// Shape of a region with characteristic constant `n` and switching
    /// slope constant `k` (discriminant of `lambda^2 + kn lambda + n`).
    ///
    /// The critical boundary is detected with a relative tolerance of
    /// `1e-9` on the discriminant so that parameter sets constructed *to
    /// sit on* the boundary classify as [`RegionShape::Critical`] despite
    /// floating-point rounding.
    #[must_use]
    pub fn from_kn(k: f64, n: f64) -> Self {
        let kn2 = (k * n) * (k * n);
        let disc = kn2 - 4.0 * n;
        if disc.abs() <= 1e-9 * kn2.max(4.0 * n) {
            RegionShape::Critical
        } else if disc < 0.0 {
            RegionShape::Spiral
        } else {
            RegionShape::Node
        }
    }
}

impl fmt::Display for RegionShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RegionShape::Spiral => "spiral",
            RegionShape::Node => "node",
            RegionShape::Critical => "critical",
        })
    }
}

/// The paper's case taxonomy (Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseId {
    /// Spiral in both regions (`a` and `b` below their thresholds):
    /// oscillatory rounds; strong stability needs Proposition 2's bounds;
    /// the only case that can host the limit cycle of Fig. 7.
    Case1,
    /// Node in the increase region, spiral in the decrease region
    /// (`a` above, `b` below): one overshoot then spiral home;
    /// Proposition 3 bounds the single maximum.
    Case2,
    /// Spiral in the increase region, node in the decrease region
    /// (`a` below, `b` above): the queue never overshoots `q0`;
    /// strongly stable unconditionally.
    Case3,
    /// Node in both regions: monotone-like approach; strongly stable
    /// unconditionally.
    Case4,
    /// Either region exactly critical (`a = 4 pm^2 C^2 / w^2` or
    /// `b = 4 pm^2 C / w^2`).
    ///
    /// **Erratum note.** The paper claims the switching line is itself a
    /// phase trajectory here "due to `lambda_{1,2} = -1/k`" and declares
    /// the case unconditionally strongly stable. The repeated eigenvalue
    /// at the critical boundary is actually `lambda = -2/k` (solve
    /// `(kn)^2 = 4n` for `n = 4/k^2`, then `lambda = -kn/2 = -2/k`), so
    /// the eigenline is *steeper* than the switching line and the flow
    /// still crosses it. Consequently the `a`-critical branch behaves as
    /// the continuous limit of Case 2 — a single potentially large
    /// overshoot that must fit under the buffer — while the `b`-critical
    /// branch is the limit of Case 3 and is indeed unconditional. The
    /// [`crate::stability::criterion`] implements this amended rule; the
    /// reproduction's EXPERIMENTS.md records the discrepancy.
    Case5,
}

impl fmt::Display for CaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CaseId::Case1 => "case 1 (spiral/spiral)",
            CaseId::Case2 => "case 2 (node increase, spiral decrease)",
            CaseId::Case3 => "case 3 (spiral increase, node decrease)",
            CaseId::Case4 => "case 4 (node/node)",
            CaseId::Case5 => "case 5 (critical boundary)",
        })
    }
}

/// Full case analysis of a parameter set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseAnalysis {
    /// Which of the paper's cases applies.
    pub case: CaseId,
    /// Shape of the rate-increase region.
    pub increase: RegionShape,
    /// Shape of the rate-decrease region.
    pub decrease: RegionShape,
    /// The increase-region threshold `4 pm^2 C^2 / w^2` that `a` is
    /// compared against.
    pub a_threshold: f64,
    /// The decrease-region threshold `4 pm^2 C / w^2` that `b` is
    /// compared against.
    pub b_threshold: f64,
}

/// The spiral/node threshold for the increase region:
/// `a` spirals iff `a < 4 pm^2 C^2 / w^2`.
#[must_use]
pub fn a_threshold(params: &BcnParams) -> f64 {
    let pc = params.pm * params.capacity;
    4.0 * pc * pc / (params.w * params.w)
}

/// The spiral/node threshold for the decrease region:
/// `b` spirals iff `b < 4 pm^2 C / w^2`.
#[must_use]
pub fn b_threshold(params: &BcnParams) -> f64 {
    4.0 * params.pm * params.pm * params.capacity / (params.w * params.w)
}

/// Shape of one region for the given parameters.
///
/// The characteristic constant is read straight off the parameters
/// (`n = a` or `n = b C`, paper Eq. 35) — no model construction needed,
/// which keeps this hot classification path allocation-free.
#[must_use]
pub fn region_shape(params: &BcnParams, region: Region) -> RegionShape {
    let n = match region {
        Region::Increase => params.a(),
        Region::Decrease => params.b() * params.capacity,
    };
    RegionShape::from_kn(params.k(), n)
}

/// Classifies a parameter set into the paper's Case 1–5 taxonomy.
#[must_use]
pub fn classify_params(params: &BcnParams) -> CaseAnalysis {
    let increase = region_shape(params, Region::Increase);
    let decrease = region_shape(params, Region::Decrease);
    let case = match (increase, decrease) {
        (RegionShape::Critical, _) | (_, RegionShape::Critical) => CaseId::Case5,
        (RegionShape::Spiral, RegionShape::Spiral) => CaseId::Case1,
        (RegionShape::Node, RegionShape::Spiral) => CaseId::Case2,
        (RegionShape::Spiral, RegionShape::Node) => CaseId::Case3,
        (RegionShape::Node, RegionShape::Node) => CaseId::Case4,
    };
    CaseAnalysis {
        case,
        increase,
        decrease,
        a_threshold: a_threshold(params),
        b_threshold: b_threshold(params),
    }
}

/// Sanity bridge to the generic classifier: the paper's regions are always
/// *stable* foci/nodes (Proposition 1), never saddles or unstable points.
///
/// The Jacobian comes from the memo-cached [`Propagator`] decomposition,
/// so repeated classification inside a sweep does not rebuild it.
#[must_use]
pub fn fixed_point_kind(params: &BcnParams, region: Region) -> FixedPointKind {
    classify(&Propagator::for_params(params).flow(region).jacobian())
}

/// Convenience: parameter sets exhibiting each case, derived from a base
/// set by scaling the gains across the thresholds. Used by the figure
/// generators and tests.
#[must_use]
pub fn exemplar(base: &BcnParams, case: CaseId) -> BcnParams {
    let a_thr = a_threshold(base);
    let b_thr = b_threshold(base);
    let n = f64::from(base.n_flows);
    // a = ru * gi * n  =>  choose gi to place a relative to its threshold.
    let gi_for = |target_a: f64| target_a / (base.ru * n);
    let gd_for = |target_b: f64| target_b;
    match case {
        CaseId::Case1 => base.clone().with_gi(gi_for(0.25 * a_thr)).with_gd(gd_for(0.25 * b_thr)),
        CaseId::Case2 => base.clone().with_gi(gi_for(4.0 * a_thr)).with_gd(gd_for(0.25 * b_thr)),
        CaseId::Case3 => base.clone().with_gi(gi_for(0.25 * a_thr)).with_gd(gd_for(4.0 * b_thr)),
        CaseId::Case4 => base.clone().with_gi(gi_for(4.0 * a_thr)).with_gd(gd_for(4.0 * b_thr)),
        CaseId::Case5 => base.clone().with_gi(gi_for(a_thr)).with_gd(base.gd),
    }
}

/// A Case-5 exemplar on the *decrease*-critical branch
/// (`b = 4 pm^2 C / w^2`), the branch for which the paper's unconditional
/// strong-stability claim actually holds (see the [`CaseId::Case5`]
/// erratum note).
#[must_use]
pub fn exemplar_case5_decrease(base: &BcnParams) -> BcnParams {
    let a_thr = a_threshold(base);
    let n = f64::from(base.n_flows);
    // Keep the increase region spiral, put the decrease region exactly on
    // its boundary.
    base.clone().with_gi(0.25 * a_thr / (base.ru * n)).with_gd(b_threshold(base))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_case1() {
        let p = BcnParams::paper_defaults();
        let c = classify_params(&p);
        assert_eq!(c.case, CaseId::Case1);
        assert_eq!(c.increase, RegionShape::Spiral);
        assert_eq!(c.decrease, RegionShape::Spiral);
        // Thresholds from the worked numbers: 4 pm^2 C^2 / w^2 = 1e16.
        assert!((c.a_threshold - 1e16).abs() < 1.0);
        assert!((c.b_threshold - 1e6).abs() < 1e-6);
    }

    #[test]
    fn shape_from_discriminant() {
        // k = 1: n < 4 spiral, n > 4 node, n = 4 critical.
        assert_eq!(RegionShape::from_kn(1.0, 1.0), RegionShape::Spiral);
        assert_eq!(RegionShape::from_kn(1.0, 9.0), RegionShape::Node);
        assert_eq!(RegionShape::from_kn(1.0, 4.0), RegionShape::Critical);
    }

    #[test]
    fn exemplars_land_in_their_case() {
        let base = BcnParams::test_defaults();
        for case in [CaseId::Case1, CaseId::Case2, CaseId::Case3, CaseId::Case4, CaseId::Case5] {
            let p = exemplar(&base, case);
            p.validate().unwrap();
            assert_eq!(classify_params(&p).case, case, "case {case}");
        }
    }

    #[test]
    fn regions_are_always_stable_proposition_1() {
        // Proposition 1: viewed in isolation, both subsystems are stable
        // for any positive parameters.
        for p in [
            BcnParams::paper_defaults(),
            BcnParams::test_defaults(),
            exemplar(&BcnParams::test_defaults(), CaseId::Case2),
            exemplar(&BcnParams::test_defaults(), CaseId::Case4),
        ] {
            for r in [Region::Increase, Region::Decrease] {
                let kind = fixed_point_kind(&p, r);
                assert!(kind.is_attracting(), "{r:?} of {p:?} gave {kind}");
            }
        }
    }

    #[test]
    fn thresholds_scale_as_documented() {
        // a_threshold ~ C^2, b_threshold ~ C.
        let p1 = BcnParams::test_defaults();
        let p2 = p1.clone().with_capacity(2.0 * p1.capacity);
        assert!((a_threshold(&p2) / a_threshold(&p1) - 4.0).abs() < 1e-12);
        assert!((b_threshold(&p2) / b_threshold(&p1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_strings() {
        assert!(CaseId::Case1.to_string().contains("spiral/spiral"));
        assert_eq!(RegionShape::Node.to_string(), "node");
    }
}
