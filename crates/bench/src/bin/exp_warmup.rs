//! Regenerates the warm-up / q0 trade-off experiment.

fn main() {
    if let Err(e) = bench::experiments::warmup::main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
