//! Bounded ring-buffer event trace.

use crate::event::Event;

/// Default trace capacity: enough for full fluid runs at paper scale
/// while bounding memory for long packet simulations.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// A fixed-capacity ring buffer of [`Event`]s.
///
/// When full, pushing overwrites the oldest event and increments the
/// [`overwritten`](EventTrace::overwritten) counter, so the trace always
/// holds the most recent `capacity` events and callers can tell whether
/// the window is complete.
#[derive(Debug, Clone, PartialEq)]
pub struct EventTrace {
    capacity: usize,
    buf: Vec<Event>,
    /// Index of the oldest event once the buffer has wrapped.
    start: usize,
    overwritten: u64,
}

impl Default for EventTrace {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl EventTrace {
    /// Creates a trace holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self { capacity, buf: Vec::new(), start: 0, overwritten: 0 }
    }

    /// Pre-allocates backing storage for up to `events` entries (clamped
    /// to the ring capacity), so hot recording loops don't pay growth
    /// reallocations. Storage-only: holds no events and changes no
    /// semantics.
    pub fn reserve(&mut self, events: usize) {
        let want = events.min(self.capacity);
        self.buf.reserve(want.saturating_sub(self.buf.len()));
    }

    /// Appends an event, overwriting the oldest when full.
    #[inline]
    pub fn push(&mut self, e: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.start] = e;
            // Compare-and-reset instead of `% capacity`: an integer
            // division on every wrapped push is measurable in the
            // per-step budget once a long run fills the ring.
            self.start += 1;
            if self.start == self.capacity {
                self.start = 0;
            }
            self.overwritten += 1;
        }
    }

    /// Number of events currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of events held.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many old events were discarded to make room for new ones.
    #[must_use]
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Overwrites the discard counter (snapshot restore: replaying the
    /// held events through `push` cannot reproduce discards that
    /// happened before the snapshot).
    pub(crate) fn set_overwritten(&mut self, n: u64) {
        self.overwritten = n;
    }

    /// Merges another trace into this one, reordering the union by
    /// event sim-time.
    ///
    /// The sort is stable: at equal stamps, this trace's events precede
    /// the merged ones, and each shard's internal order is preserved —
    /// so merging worker shards oldest-first yields the interleaving a
    /// single sequential run would have recorded. Capacity grows to the
    /// larger of the two; if the union still overflows it, the oldest
    /// events are discarded and counted in
    /// [`overwritten`](EventTrace::overwritten), along with both sides'
    /// prior overwrite counts.
    pub fn merge_by_time(&mut self, other: &EventTrace) {
        let mut all: Vec<Event> = self.iter().chain(other.iter()).copied().collect();
        all.sort_by(|a, b| a.time().total_cmp(&b.time()));
        let capacity = self.capacity.max(other.capacity);
        let overwritten = self.overwritten + other.overwritten;
        *self = EventTrace::with_capacity(capacity);
        self.overwritten = overwritten;
        for e in all {
            self.push(e);
        }
    }

    /// Iterates events from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let (tail, head) = self.buf.split_at(self.start);
        head.iter().chain(tail.iter())
    }
}

impl<'a> IntoIterator for &'a EventTrace {
    type Item = &'a Event;
    type IntoIter = std::iter::Chain<std::slice::Iter<'a, Event>, std::slice::Iter<'a, Event>>;

    fn into_iter(self) -> Self::IntoIter {
        let (tail, head) = self.buf.split_at(self.start);
        head.iter().chain(tail.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marker(t: f64) -> Event {
        Event::FrameDropped { t, port: 0 }
    }

    fn times(trace: &EventTrace) -> Vec<f64> {
        trace.iter().map(Event::time).collect()
    }

    #[test]
    fn fills_up_to_capacity_without_loss() {
        let mut tr = EventTrace::with_capacity(4);
        for i in 0..4 {
            tr.push(marker(i as f64));
        }
        assert_eq!(tr.len(), 4);
        assert_eq!(tr.overwritten(), 0);
        assert_eq!(times(&tr), [0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn overflow_keeps_newest_in_order() {
        let mut tr = EventTrace::with_capacity(3);
        for i in 0..7 {
            tr.push(marker(i as f64));
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.overwritten(), 4);
        assert_eq!(times(&tr), [4.0, 5.0, 6.0]);
    }

    #[test]
    fn wraparound_twice_still_ordered() {
        let mut tr = EventTrace::with_capacity(2);
        for i in 0..5 {
            tr.push(marker(i as f64));
            let ts = times(&tr);
            assert!(ts.windows(2).all(|w| w[0] < w[1]), "unordered: {ts:?}");
        }
        assert_eq!(times(&tr), [3.0, 4.0]);
    }

    #[test]
    fn merge_interleaves_by_sim_time() {
        let mut a = EventTrace::with_capacity(16);
        for t in [0.1, 0.4, 0.5] {
            a.push(marker(t));
        }
        let mut b = EventTrace::with_capacity(16);
        for t in [0.2, 0.3, 0.6] {
            b.push(marker(t));
        }
        a.merge_by_time(&b);
        assert_eq!(times(&a), [0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        assert_eq!(a.overwritten(), 0);
    }

    #[test]
    fn merge_is_stable_at_equal_stamps() {
        let mut a = EventTrace::with_capacity(8);
        a.push(Event::FrameDropped { t: 1.0, port: 0 });
        let mut b = EventTrace::with_capacity(8);
        b.push(Event::FrameDropped { t: 1.0, port: 1 });
        a.merge_by_time(&b);
        let ports: Vec<u32> = a
            .iter()
            .map(|e| match e {
                Event::FrameDropped { port, .. } => *port,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ports, [0, 1], "receiver's events precede the shard's at ties");
    }

    #[test]
    fn merge_overflow_drops_oldest_and_counts() {
        let mut a = EventTrace::with_capacity(3);
        for t in [0.1, 0.3, 0.5] {
            a.push(marker(t));
        }
        let mut b = EventTrace::with_capacity(2);
        for t in [0.2, 0.4] {
            b.push(marker(t));
        }
        a.merge_by_time(&b);
        // Capacity stays at max(3, 2) = 3: the union of 5 keeps the
        // newest 3 and counts 2 more overwrites.
        assert_eq!(times(&a), [0.3, 0.4, 0.5]);
        assert_eq!(a.overwritten(), 2);
    }

    #[test]
    fn merge_with_empty_keeps_events_and_adds_overwrites() {
        let mut a = EventTrace::with_capacity(2);
        for t in [0.1, 0.2, 0.3] {
            a.push(marker(t)); // one overwrite
        }
        let b = EventTrace::with_capacity(4);
        a.merge_by_time(&b);
        assert_eq!(times(&a), [0.2, 0.3]);
        assert_eq!(a.capacity(), 4);
        assert_eq!(a.overwritten(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = EventTrace::with_capacity(0);
    }
}
