//! Regenerates the paper's Fig. 8 (Case 2 dynamics).

fn main() {
    if let Err(e) = bench::figures::fig08::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
