//! Event schedulers for the discrete-event engines.
//!
//! Both engines ([`crate::sim`] and [`crate::net`]) drive a single
//! future-event set ordered by `(time, seq)` — the timestamp plus a
//! stable tie-break sequence so simultaneous events dispatch in
//! scheduling order. This module provides two interchangeable
//! implementations behind [`EventQueue`]:
//!
//! * [`Scheduler::Heap`] — the original `BinaryHeap<Reverse<Entry>>`,
//!   kept as the reference implementation and perf baseline.
//! * [`Scheduler::Wheel`] (default) — a hierarchical timing wheel with
//!   an intrusive slab arena. Insert and pop are O(1) amortized instead
//!   of O(log n), nodes are recycled through a free list (zero
//!   steady-state allocations once the slab is warm), and the arena
//!   doubles as the frame/message pool: event payloads live inline in
//!   the recycled nodes.
//!
//! # Ordering invariant
//!
//! The wheel reproduces the heap's `(time, seq)` order *exactly*, so a
//! run is bit-identical under either scheduler (`cargo test` enforces
//! this here and in `tests/scheduler_equivalence.rs`). The argument:
//!
//! * Levels have [`LEVEL_BITS`]-bit slots; an event lands at the level
//!   of the highest bit of `t ^ cur` (the cursor), so everything at
//!   level `l` is strictly later than everything at level `l - 1`.
//! * Level-0 slots are 1 ns wide. Since time is integer nanoseconds,
//!   every event in one level-0 slot has *exactly* the same timestamp,
//!   and the slot's FIFO list orders them by insertion.
//! * Insertion order equals `seq` order for equal timestamps: a later
//!   `seq` is pushed later in wall-clock order, and cascades splice
//!   slot lists stably (an event can only move to the level/slot where
//!   an equal-time event already waits, appending behind it).
//! * The cursor only ever advances to the base of the slot being
//!   cascaded, so a cascade re-inserts strictly below its source level
//!   and pops make progress.
//! * A slot holding exactly one node needs no cascade at all: the sole
//!   occupant of the lowest live slot in the lowest live level *is*
//!   the global minimum (equal-time events always share a slot, so no
//!   tie-break is pending), and popping it directly leaves the cursor
//!   at its timestamp exactly as the cascade-to-level-0 path would.
//!   This is the hot path at the engines' shallow backlogs, where most
//!   slots are singletons.
//!
//! Far-future events (beyond the wheel's `2^42` ns ≈ 73 min horizon)
//! park in an overflow list that is sorted by `(time, seq)` — stable by
//! construction since `seq` is unique — when the wheel drains into it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

/// Bits per wheel level: 64 slots each.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of hierarchical levels; spans `2^(6*7)` = 2^42 ns.
const LEVELS: usize = 7;
/// One past the highest delta the wheel can hold directly.
const SPAN: u64 = 1 << (LEVEL_BITS * LEVELS as u32);
/// Null link in the intrusive slab.
const NIL: u32 = u32::MAX;

/// Which event-queue implementation a simulation runs on.
///
/// Both produce bit-identical runs; [`Scheduler::Wheel`] is the fast
/// default, [`Scheduler::Heap`] the `BinaryHeap` reference kept for
/// benchmarking (`bench --bin packet_engine`) and differential testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Hierarchical timing wheel with slab recycling (default).
    #[default]
    Wheel,
    /// Binary-heap priority queue (the original engine).
    Heap,
}

impl Scheduler {
    /// The CLI spelling (`wheel` / `heap`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scheduler::Wheel => "wheel",
            Scheduler::Heap => "heap",
        }
    }
}

/// Counters describing one run's scheduler activity, flushed to
/// telemetry once at the end of a run (never on the hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStats {
    /// Events pushed.
    pub scheduled: u64,
    /// Events popped.
    pub popped: u64,
    /// Node re-links performed by wheel cascades (0 on the heap).
    pub cascades: u64,
    /// Events parked in the far-future overflow list (0 on the heap).
    pub overflow_parked: u64,
    /// High-water mark of pending events.
    pub max_pending: u64,
    /// Events discarded by [`EventQueue::clear_pending`] (the hybrid
    /// engine's re-seed path) without being dispatched.
    pub cleared: u64,
}

/// A heap entry ordered by `(time, seq)` only — the payload does not
/// participate in comparisons, so `E` needs no bounds.
#[derive(Debug)]
struct HeapEntry<E> {
    time: Time,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One slab node: an event payload plus its intrusive FIFO link. The
/// payload is `Option` so pops can move it out of the arena without
/// `unsafe`; a `None` payload marks a free-list node.
#[derive(Debug)]
struct Node<E> {
    time: Time,
    seq: u64,
    next: u32,
    ev: Option<E>,
}

/// An intrusive singly-linked FIFO of slab nodes.
#[derive(Debug, Clone, Copy)]
struct Slot {
    head: u32,
    tail: u32,
}

impl Slot {
    const EMPTY: Slot = Slot { head: NIL, tail: NIL };
}

/// The hierarchical timing wheel. See the module docs for the layout
/// and the ordering argument.
#[derive(Debug)]
pub struct TimingWheel<E> {
    /// The cursor: the wheel's notion of "now", in nanoseconds. Only
    /// advances, and only to slot bases / popped timestamps.
    cur: u64,
    /// `LEVELS x SLOTS` FIFO slots.
    slots: Vec<Slot>,
    /// Per-level occupancy bitmaps (bit `i` = slot `i` non-empty).
    occupied: [u64; LEVELS],
    /// Level occupancy summary (bit `l` = level `l` has a set slot bit),
    /// so a pop finds the lowest live level in one `trailing_zeros`.
    level_mask: u8,
    /// The node arena; freed nodes are recycled via `free`.
    slab: Vec<Node<E>>,
    /// Free-list head into `slab`.
    free: u32,
    /// Far-future events (delta >= [`SPAN`]), sorted lazily on drain.
    overflow: Vec<u32>,
    len: usize,
}

impl<E> TimingWheel<E> {
    fn new() -> Self {
        Self {
            cur: 0,
            slots: vec![Slot::EMPTY; LEVELS * SLOTS],
            occupied: [0; LEVELS],
            level_mask: 0,
            slab: Vec::new(),
            free: NIL,
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Clears all events but keeps the slab / slot allocations.
    fn clear(&mut self) {
        self.cur = 0;
        self.slots.iter_mut().for_each(|s| *s = Slot::EMPTY);
        self.occupied = [0; LEVELS];
        self.level_mask = 0;
        self.slab.clear();
        self.free = NIL;
        self.overflow.clear();
        self.len = 0;
    }

    /// Takes a node from the free list or grows the slab.
    fn alloc(&mut self, time: Time, seq: u64, ev: E) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.slab[idx as usize];
            self.free = node.next;
            node.time = time;
            node.seq = seq;
            node.next = NIL;
            node.ev = Some(ev);
            idx
        } else {
            let idx = u32::try_from(self.slab.len()).expect("event arena exceeds u32 indices");
            self.slab.push(Node { time, seq, next: NIL, ev: Some(ev) });
            idx
        }
    }

    /// The level an event `t` nanoseconds belongs to, given the cursor.
    #[inline]
    fn level_of(&self, t: u64) -> usize {
        let x = t ^ self.cur;
        debug_assert!(x < SPAN);
        if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / LEVEL_BITS) as usize
        }
    }

    /// Appends node `idx` with timestamp `t` (already stored in the
    /// node) to its level/slot FIFO.
    #[inline]
    fn link_at(&mut self, idx: u32, t: u64) {
        debug_assert_eq!(t, self.slab[idx as usize].time.as_nanos());
        debug_assert!(t >= self.cur, "event scheduled in the past");
        let level = self.level_of(t);
        let slot_i = ((t >> (level as u32 * LEVEL_BITS)) & (SLOTS as u64 - 1)) as usize;
        let si = level * SLOTS + slot_i;
        let slot = self.slots[si];
        if slot.tail == NIL {
            self.slots[si] = Slot { head: idx, tail: idx };
            self.occupied[level] |= 1 << slot_i;
            self.level_mask |= 1 << level;
        } else {
            self.slab[slot.tail as usize].next = idx;
            self.slots[si].tail = idx;
        }
    }

    /// Inserts an event; far-future events park in the overflow list.
    fn insert(&mut self, time: Time, seq: u64, ev: E, stats: &mut SchedStats) {
        let t = time.as_nanos();
        let idx = self.alloc(time, seq, ev);
        if t ^ self.cur >= SPAN {
            self.overflow.push(idx);
            stats.overflow_parked += 1;
        } else {
            self.link_at(idx, t);
        }
        self.len += 1;
    }

    /// Unlinks and returns the sole/front node of slot `si` at `level`
    /// (caller guarantees the slot is non-empty and, for `level > 0`,
    /// that the node is the slot's only occupant).
    #[inline]
    fn take_front(&mut self, level: usize, slot_i: usize, si: usize) -> (Time, E) {
        let idx = self.slots[si].head;
        // Unlink, read, and free-list the node in one slab access.
        let free = self.free;
        let node = &mut self.slab[idx as usize];
        let time = node.time;
        let ev = node.ev.take().expect("live node");
        let next = node.next;
        node.next = free;
        self.free = idx;
        if next == NIL {
            self.slots[si] = Slot::EMPTY;
            self.occupied[level] &= !(1 << slot_i);
            if self.occupied[level] == 0 {
                self.level_mask &= !(1 << level);
            }
        } else {
            self.slots[si].head = next;
        }
        self.len -= 1;
        (time, ev)
    }

    /// Pops the earliest `(time, seq)` event.
    fn pop(&mut self, stats: &mut SchedStats) -> Option<(Time, E)> {
        loop {
            if self.level_mask == 0 {
                if !self.drain_overflow() {
                    return None;
                }
                continue;
            }
            let level = self.level_mask.trailing_zeros() as usize;
            let slot_i = self.occupied[level].trailing_zeros() as usize;
            if level == 0 {
                // Every event in a level-0 slot carries this exact time.
                self.cur = (self.cur & !(SLOTS as u64 - 1)) | slot_i as u64;
                let (time, ev) = self.take_front(0, slot_i, slot_i);
                debug_assert_eq!(time.as_nanos(), self.cur);
                return Some((time, ev));
            }
            let si = level * SLOTS + slot_i;
            if self.slots[si].head == self.slots[si].tail {
                // Singleton fast path: the sole node of the lowest live
                // slot in the lowest live level is the global minimum
                // (equal-time events always share one slot, so there is
                // no tie to order). Pop it directly instead of
                // cascading it down level by level; the cursor jumps to
                // its exact timestamp, just as the level-0 path would
                // have left it.
                let (time, ev) = self.take_front(level, slot_i, si);
                self.cur = time.as_nanos();
                return Some((time, ev));
            }
            // Cascade: advance the cursor to the slot's base time and
            // re-distribute its FIFO (stably) across the lower levels.
            let shift = level as u32 * LEVEL_BITS;
            let block = !((1u64 << (shift + LEVEL_BITS)) - 1);
            self.cur = (self.cur & block) | ((slot_i as u64) << shift);
            let slot = &mut self.slots[si];
            let mut idx = slot.head;
            *slot = Slot::EMPTY;
            self.occupied[level] &= !(1 << slot_i);
            if self.occupied[level] == 0 {
                self.level_mask &= !(1 << level);
            }
            while idx != NIL {
                let node = &mut self.slab[idx as usize];
                let next = node.next;
                let t = node.time.as_nanos();
                node.next = NIL;
                self.link_at(idx, t);
                stats.cascades += 1;
                idx = next;
            }
        }
    }

    /// Jumps the cursor to the earliest overflow event and re-inserts
    /// every overflow event now within the wheel's span. Returns false
    /// when there was nothing to drain.
    fn drain_overflow(&mut self) -> bool {
        if self.overflow.is_empty() {
            return false;
        }
        // Unique `seq` makes this a strict (time, seq) order, so equal
        // timestamps re-insert in seq order, preserving the invariant.
        let mut parked = std::mem::take(&mut self.overflow);
        parked.sort_unstable_by_key(|&i| (self.slab[i as usize].time, self.slab[i as usize].seq));
        self.cur = self.slab[parked[0] as usize].time.as_nanos();
        // The wheel can now hold events up to cur + SPAN (saturating:
        // near the end of representable time everything fits).
        let horizon = Time::from_nanos(self.cur)
            .checked_add(crate::time::Duration::from_nanos(SPAN - 1))
            .unwrap_or(Time::MAX);
        for idx in parked {
            let t = self.slab[idx as usize].time;
            if t <= horizon && t.as_nanos() ^ self.cur < SPAN {
                self.link_at(idx, t.as_nanos());
            } else {
                self.overflow.push(idx);
            }
        }
        true
    }
}

enum Imp<E> {
    Heap(BinaryHeap<Reverse<HeapEntry<E>>>),
    Wheel(TimingWheel<E>),
}

/// The engines' future-event set: a `(time, seq)`-ordered queue with a
/// run-time choice of implementation (see [`Scheduler`]).
///
/// The queue assigns the tie-break `seq` internally: every
/// [`EventQueue::schedule`] call gets the next sequence number, so
/// simultaneous events pop in scheduling order under either backend.
pub struct EventQueue<E> {
    imp: Imp<E>,
    seq: u64,
    stats: SchedStats,
}

impl<E> Default for EventQueue<E> {
    /// An empty queue on the default scheduler.
    fn default() -> Self {
        Self::new(Scheduler::default())
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("scheduler", &self.scheduler())
            .field("len", &self.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue on the given backend.
    #[must_use]
    pub fn new(scheduler: Scheduler) -> Self {
        let imp = match scheduler {
            Scheduler::Heap => Imp::Heap(BinaryHeap::new()),
            Scheduler::Wheel => Imp::Wheel(TimingWheel::new()),
        };
        Self { imp, seq: 0, stats: SchedStats::default() }
    }

    /// Which backend this queue runs on.
    #[must_use]
    pub fn scheduler(&self) -> Scheduler {
        match &self.imp {
            Imp::Heap(_) => Scheduler::Heap,
            Imp::Wheel(_) => Scheduler::Wheel,
        }
    }

    /// Pending event count.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.imp {
            Imp::Heap(h) => h.len(),
            Imp::Wheel(w) => w.len,
        }
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run-lifetime scheduler counters.
    #[must_use]
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Drops all pending events and resets counters/cursor but keeps
    /// the backing allocations (heap buffer or wheel slab), switching
    /// backend if `scheduler` differs — the workspace-reuse hook for
    /// batched runs.
    pub fn reset(&mut self, scheduler: Scheduler) {
        match (&mut self.imp, scheduler) {
            (Imp::Heap(h), Scheduler::Heap) => h.clear(),
            (Imp::Wheel(w), Scheduler::Wheel) => w.clear(),
            (imp, s) => *imp = EventQueue::new(s).imp,
        }
        self.seq = 0;
        self.stats = SchedStats::default();
    }

    /// Drops every pending event but — unlike [`EventQueue::reset`] —
    /// keeps the tie-break sequence counter and the run's stats (the
    /// discarded events are tallied in [`SchedStats::cleared`]). This is
    /// the hybrid engine's re-seed hook: a mid-run wheel re-population
    /// must neither restart `(time, seq)` ordering nor zero the
    /// end-of-run scheduler counters. Backing allocations (heap buffer
    /// or wheel slab) are retained, so re-seeding allocates nothing once
    /// the arena is warm.
    pub fn clear_pending(&mut self) {
        self.stats.cleared += u64::try_from(self.len()).expect("pending count fits u64");
        match &mut self.imp {
            Imp::Heap(h) => h.clear(),
            Imp::Wheel(w) => w.clear(),
        }
    }

    /// Schedules `ev` at `time`, assigning the next tie-break sequence
    /// number. Events at equal times pop in scheduling order.
    #[inline]
    pub fn schedule(&mut self, time: Time, ev: E) {
        self.seq += 1;
        self.stats.scheduled += 1;
        match &mut self.imp {
            Imp::Heap(h) => h.push(Reverse(HeapEntry { time, seq: self.seq, ev })),
            Imp::Wheel(w) => w.insert(time, self.seq, ev, &mut self.stats),
        }
        // Pending count without touching the backend: every scheduled
        // event is popped or cleared exactly once, so the difference is
        // the depth.
        let pending = self.stats.scheduled - self.stats.popped - self.stats.cleared;
        if pending > self.stats.max_pending {
            self.stats.max_pending = pending;
        }
    }

    /// Pops the earliest `(time, seq)` event.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let popped = match &mut self.imp {
            Imp::Heap(h) => h.pop().map(|Reverse(e)| (e.time, e.ev)),
            Imp::Wheel(w) => w.pop(&mut self.stats),
        };
        if popped.is_some() {
            self.stats.popped += 1;
        }
        popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::splitmix64;
    use crate::time::Duration;

    /// Drives both backends through the same schedule and asserts the
    /// pop streams are identical.
    fn assert_equivalent(ops: &[(u64, u32)]) {
        // ops: (delta_ns from current pop frontier, payload); a delta of
        // u64::MAX means "pop one" instead.
        let run = |s: Scheduler| -> Vec<(u64, u32)> {
            let mut q = EventQueue::new(s);
            let mut now = 0u64;
            let mut out = Vec::new();
            for &(delta, payload) in ops {
                if delta == u64::MAX {
                    if let Some((t, p)) = q.pop() {
                        assert!(t.as_nanos() >= now, "time went backwards");
                        now = t.as_nanos();
                        out.push((now, p));
                    }
                } else {
                    q.schedule(Time::from_nanos(now.saturating_add(delta)), payload);
                }
            }
            while let Some((t, p)) = q.pop() {
                out.push((t.as_nanos(), p));
            }
            assert!(q.is_empty());
            out
        };
        let heap = run(Scheduler::Heap);
        let wheel = run(Scheduler::Wheel);
        assert_eq!(heap, wheel);
    }

    #[test]
    fn fifo_within_equal_times() {
        let mut q = EventQueue::new(Scheduler::Wheel);
        for (t, p) in [(5u64, 1u32), (5, 2), (3, 0), (5, 3)] {
            q.schedule(Time::from_nanos(t), p);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn same_time_schedule_during_pop_appends_behind() {
        // net.rs schedules PortTx at `now`; it must pop after already
        // pending equal-time events but before anything later.
        for s in [Scheduler::Heap, Scheduler::Wheel] {
            let mut q = EventQueue::new(s);
            q.schedule(Time::from_nanos(100), 1u32);
            q.schedule(Time::from_nanos(100), 2);
            q.schedule(Time::from_nanos(101), 4);
            let (t, p) = q.pop().unwrap();
            assert_eq!((t.as_nanos(), p), (100, 1));
            q.schedule(t, 3); // "at now"
            let rest: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
            assert_eq!(rest, vec![2, 3, 4], "{s:?}");
        }
    }

    #[test]
    fn random_streams_agree_across_backends() {
        for seed in 0..20u64 {
            let mut ops = Vec::new();
            let mut z = seed;
            for i in 0..600u64 {
                z = splitmix64(z ^ i);
                if z % 3 == 0 {
                    ops.push((u64::MAX, 0)); // pop
                } else {
                    // Deltas spanning every wheel level plus exact ties.
                    let magnitude = z % 15; // up to ~2^56 ns: overflow too
                    let delta = (splitmix64(z) % 1000) << (magnitude * 4);
                    ops.push((delta, (z >> 32) as u32));
                }
            }
            assert_equivalent(&ops);
        }
    }

    #[test]
    fn far_future_events_take_the_overflow_path() {
        let mut q = EventQueue::new(Scheduler::Wheel);
        let far = Time::from_nanos(SPAN * 3 + 17);
        q.schedule(far, 7u32);
        q.schedule(Time::from_nanos(5), 1u32);
        assert_eq!(q.stats().overflow_parked, 1);
        assert_eq!(q.pop().unwrap(), (Time::from_nanos(5), 1));
        assert_eq!(q.pop().unwrap(), (far, 7));
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_preserves_seq_order_for_equal_times() {
        let mut q = EventQueue::new(Scheduler::Wheel);
        let far = Time::from_nanos(SPAN + 123);
        for p in 0..5u32 {
            q.schedule(far, p);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn saturated_timestamps_are_representable() {
        let mut q = EventQueue::new(Scheduler::Wheel);
        q.schedule(Time::ZERO.checked_add(Duration::from_nanos(3)).unwrap(), 0u32);
        q.schedule(Time::MAX, 1); // e.g. a saturated far-future schedule
        q.schedule(Time::MAX, 2);
        assert_eq!(q.pop().unwrap().1, 0);
        assert_eq!(q.pop().unwrap(), (Time::MAX, 1));
        assert_eq!(q.pop().unwrap(), (Time::MAX, 2));
    }

    #[test]
    fn reset_keeps_capacity_and_restarts_seq() {
        let mut q = EventQueue::new(Scheduler::Wheel);
        for i in 0..100u32 {
            q.schedule(Time::from_nanos(u64::from(i) * 1000), i);
        }
        let _ = q.pop();
        q.reset(Scheduler::Wheel);
        assert!(q.is_empty());
        assert_eq!(q.stats(), SchedStats::default());
        q.schedule(Time::from_nanos(1), 9);
        assert_eq!(q.pop().unwrap(), (Time::from_nanos(1), 9));
        // Switching backends through reset works too.
        q.reset(Scheduler::Heap);
        assert_eq!(q.scheduler(), Scheduler::Heap);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_pending_keeps_seq_and_stats() {
        for s in [Scheduler::Heap, Scheduler::Wheel] {
            let mut q = EventQueue::new(s);
            q.schedule(Time::from_nanos(10), 0u32);
            q.schedule(Time::from_nanos(10), 1);
            q.schedule(Time::from_nanos(20), 2);
            assert_eq!(q.pop().unwrap().1, 0);
            q.clear_pending();
            assert!(q.is_empty());
            let st = q.stats();
            assert_eq!((st.scheduled, st.popped, st.cleared), (3, 1, 2), "{s:?}");
            // The sequence counter survives: an event re-scheduled at the
            // popped frontier still orders behind any equal-time event a
            // later schedule would add, exactly as mid-run scheduling does.
            q.schedule(Time::from_nanos(10), 7);
            q.schedule(Time::from_nanos(10), 8);
            let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
            assert_eq!(order, vec![7, 8], "{s:?}");
            assert_eq!(q.stats().max_pending, 3, "{s:?}");
        }
    }

    #[test]
    fn stats_count_scheduler_activity() {
        let mut q = EventQueue::new(Scheduler::Wheel);
        // Two nodes sharing a high-level slot force a cascade (a lone
        // node would take the singleton fast path instead).
        q.schedule(Time::from_nanos(1 << 20), 0u32);
        q.schedule(Time::from_nanos((1 << 20) + 1), 1u32);
        q.schedule(Time::from_nanos(2), 2u32);
        while q.pop().is_some() {}
        let st = q.stats();
        assert_eq!(st.scheduled, 3);
        assert_eq!(st.popped, 3);
        assert_eq!(st.max_pending, 3);
        assert!(st.cascades > 0, "co-resident high-level nodes must cascade");
    }

    #[test]
    fn default_scheduler_is_the_wheel() {
        assert_eq!(Scheduler::default(), Scheduler::Wheel);
        assert_eq!(Scheduler::Wheel.name(), "wheel");
        assert_eq!(Scheduler::Heap.name(), "heap");
    }
}
