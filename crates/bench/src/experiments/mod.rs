//! Generators for the evaluation experiments beyond the literal figures.

pub mod bcn_vs_qcn;
pub mod criterion_sweep;
pub mod delay_ablation;
pub mod fb_quantization;
pub mod feedback_degradation;
pub mod fluid_vs_packet;
pub mod hetero_fairness;
pub mod incast;
pub mod pause_hol;
pub mod transient_frontier;
pub mod w_pm_transients;
pub mod warmup;
