//! Umbrella crate for the DCE-BCN reproduction.
//!
//! Re-exports the workspace crates so integration tests and examples can
//! use a single dependency:
//!
//! * [`odesolve`] — ODE solvers with event location and hybrid integration.
//! * [`phaseplane`] — 2-D phase-plane analysis toolkit.
//! * [`bcn`] — the BCN fluid model, closed forms, and stability theory
//!   (the paper's core contribution).
//! * [`dcesim`] — packet-level Data Center Ethernet simulator with BCN and
//!   QCN protocol implementations.
//! * [`plotkit`] — CSV/SVG/ASCII reporting used by the figure generators.
//! * [`telemetry`] — metrics registry, event tracing, and JSONL export
//!   shared by the solvers, the simulator, and the CLI.
//! * [`cli`] — the `dcebcn` command-line front end as a library.
//!
//! On top of the re-exports, [`Error`] unifies every typed failure the
//! workspace can report behind one conversion layer with per-family
//! process exit codes; the `dcebcn` binary is a thin wrapper over
//! [`cli::run`] plus that mapping.

mod error;

pub use bcn;
pub use cli;
pub use dcesim;
pub use error::Error;
pub use odesolve;
pub use phaseplane;
pub use plotkit;
pub use telemetry;
