//! Regenerates the transient-performance frontier.

fn main() {
    if let Err(e) = bench::experiments::transient_frontier::main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
