//! Propagation-delay extension of the BCN fluid model (assumption
//! ablation).
//!
//! The paper neglects propagation delay, arguing that in a data center it
//! is microseconds against queueing delays of tens to hundreds of
//! microseconds. This module quantifies when that assumption holds: the
//! feedback loop becomes the delay-differential system
//!
//! ```text
//! dx/dt = y(t)
//! dy/dt = F_region( s(t - tau) ),     s = x + k y
//! ```
//!
//! where `tau` lumps the backward (BCN message) and forward (rate to
//! queue) propagation delays. Integration is by the method of steps:
//! fixed-step RK4 over one delay interval at a time, with the delayed
//! state read from a linearly interpolated history buffer.

use crate::model::Linearity;
use crate::params::BcnParams;

/// The delayed BCN fluid system.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayedBcn {
    params: BcnParams,
    tau: f64,
    linearity: Linearity,
}

/// Result of a delayed-model run.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayRun {
    /// Sample times.
    pub times: Vec<f64>,
    /// States `(x, y)` in deviation coordinates.
    pub states: Vec<[f64; 2]>,
    /// Supremum of `x` over the run (excluding `t = 0`).
    pub max_x: f64,
    /// Infimum of `x` over the run (excluding `t = 0`).
    pub min_x: f64,
    /// Whether the final amplitude is below the initial amplitude
    /// (a pragmatic convergence indicator).
    pub contracting: bool,
}

impl DelayRun {
    /// Exact strong-stability check of this trace against the buffer
    /// walls of `params`.
    #[must_use]
    pub fn strongly_stable(&self, params: &BcnParams) -> bool {
        self.max_x < params.buffer - params.q0 && self.min_x > -params.q0
    }
}

impl DelayedBcn {
    /// Builds the delayed model with round-trip feedback delay `tau`
    /// seconds (full nonlinear decrease law).
    ///
    /// # Panics
    ///
    /// Panics if `tau` is negative or non-finite.
    #[must_use]
    pub fn new(params: BcnParams, tau: f64) -> Self {
        assert!(tau.is_finite() && tau >= 0.0, "delay must be non-negative");
        Self { params, tau, linearity: Linearity::FullNonlinear }
    }

    /// Switches to the linearised decrease law.
    #[must_use]
    pub fn linearized(mut self) -> Self {
        self.linearity = Linearity::Linearized;
        self
    }

    /// The configured delay.
    #[must_use]
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The parameter set.
    #[must_use]
    pub fn params(&self) -> &BcnParams {
        &self.params
    }

    /// Integrates from `p0` for `t_end` seconds with step `dt`
    /// (history before `t = 0` is frozen at `p0`).
    ///
    /// # Panics
    ///
    /// Panics if `dt` or `t_end` is non-positive, or if `dt > tau / 4`
    /// with a nonzero delay (the history interpolation needs several
    /// samples per delay interval).
    #[must_use]
    pub fn run(&self, p0: [f64; 2], t_end: f64, dt: f64) -> DelayRun {
        assert!(dt > 0.0 && t_end > 0.0, "dt and t_end must be positive");
        if self.tau > 0.0 {
            assert!(
                dt <= self.tau / 4.0,
                "dt ({dt}) too coarse for delay {}; need dt <= tau/4",
                self.tau
            );
        }
        let p = &self.params;
        let k = p.k();
        let n_steps = (t_end / dt).ceil() as usize;
        let lag = if self.tau > 0.0 { (self.tau / dt).round() as usize } else { 0 };

        let mut states: Vec<[f64; 2]> = Vec::with_capacity(n_steps + 1);
        states.push(p0);
        let mut max_x = f64::NEG_INFINITY;
        let mut min_x = f64::INFINITY;

        // Aggregate-rate form of the region law, driven by a delayed s.
        let deriv = |z: [f64; 2], s_delayed: f64| -> [f64; 2] {
            let sigma = -s_delayed;
            let dy = if sigma > 0.0 {
                p.a() * sigma
            } else {
                match self.linearity {
                    Linearity::FullNonlinear => p.b() * sigma * (z[1] + p.capacity),
                    Linearity::Linearized => p.b() * sigma * p.capacity,
                }
            };
            [z[1], dy]
        };
        let delayed_s = |states: &[[f64; 2]], step: usize| -> f64 {
            let idx = step.saturating_sub(lag);
            let z = states[idx];
            z[0] + k * z[1]
        };

        for step in 0..n_steps {
            let z = states[step];
            let s_d = delayed_s(&states, step);
            // RK4 with the delayed input held constant across the step
            // (consistent first-order treatment of the delay term; the
            // state part remains fourth-order).
            let k1 = deriv(z, s_d);
            let k2 = deriv([z[0] + 0.5 * dt * k1[0], z[1] + 0.5 * dt * k1[1]], s_d);
            let k3 = deriv([z[0] + 0.5 * dt * k2[0], z[1] + 0.5 * dt * k2[1]], s_d);
            let k4 = deriv([z[0] + dt * k3[0], z[1] + dt * k3[1]], s_d);
            let z_new = [
                z[0] + dt / 6.0 * (k1[0] + 2.0 * k2[0] + 2.0 * k3[0] + k4[0]),
                z[1] + dt / 6.0 * (k1[1] + 2.0 * k2[1] + 2.0 * k3[1] + k4[1]),
            ];
            states.push(z_new);
            max_x = max_x.max(z_new[0]);
            min_x = min_x.min(z_new[0]);
        }

        let times: Vec<f64> = (0..states.len()).map(|i| i as f64 * dt).collect();
        let amp = |z: &[f64; 2]| z[0].abs().max(k * z[1].abs());
        let initial_amp = amp(&p0).max(1e-30);
        // Compare the last tenth of the run against the start.
        let tail_start = states.len() * 9 / 10;
        let tail_amp = states[tail_start..].iter().map(amp).fold(0.0_f64, f64::max);
        DelayRun { times, states, max_x, min_x, contracting: tail_amp < initial_amp }
    }

    /// Convenience sweep: the largest queue deviation `max x` for each
    /// delay in `taus`, all starting from the canonical point.
    #[must_use]
    pub fn overshoot_vs_delay(params: &BcnParams, taus: &[f64], t_end: f64) -> Vec<(f64, f64)> {
        taus.iter()
            .map(|&tau| {
                let dt_base = 0.002 / (params.a().max(params.b() * params.capacity)).sqrt();
                let dt = if tau > 0.0 { dt_base.min(tau / 8.0) } else { dt_base };
                let run =
                    DelayedBcn::new(params.clone(), tau).run(params.initial_point(), t_end, dt);
                (tau, run.max_x)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rounds::first_round;

    fn p() -> BcnParams {
        BcnParams::test_defaults()
    }

    #[test]
    fn zero_delay_matches_undelayed_analysis() {
        let params = p();
        let fr = first_round(&params).unwrap();
        let sys = DelayedBcn::new(params.clone(), 0.0).linearized();
        let dt = 2e-5;
        let run = sys.run(params.initial_point(), 3.0, dt);
        assert!(
            (run.max_x - fr.max1_x).abs() < 5e-3 * fr.max1_x,
            "delayed(0) max {} vs closed form {}",
            run.max_x,
            fr.max1_x
        );
        assert!(run.contracting);
    }

    #[test]
    fn small_delay_barely_changes_first_round_overshoot() {
        // tau far below the rotation period: the paper's assumption. The
        // *first-round* maximum (which the strong-stability criterion is
        // built from) is essentially unchanged. Over long horizons even a
        // tiny delay matters because the loop's own damping per round is
        // comparable to the delay-induced phase lag — that sensitivity is
        // quantified by `large_delay_inflates_the_overshoot` and the
        // delay-ablation experiment.
        let params = p();
        let fr = first_round(&params).unwrap();
        let period = std::f64::consts::TAU / params.a().sqrt();
        let tau = period / 500.0;
        let one_round = fr.t_i1 + fr.t_d1 + 0.25 * period;
        let run = DelayedBcn::new(params.clone(), tau).linearized().run(
            params.initial_point(),
            one_round,
            tau / 8.0,
        );
        assert!(
            (run.max_x - fr.max1_x).abs() < 0.02 * fr.max1_x,
            "delayed({tau}) first-round max {} vs {}",
            run.max_x,
            fr.max1_x
        );
    }

    #[test]
    fn large_delay_inflates_the_overshoot() {
        // tau comparable to the rotation period destabilises the loop.
        let params = p();
        let fr = first_round(&params).unwrap();
        let period = std::f64::consts::TAU / params.a().sqrt();
        let tau = 0.5 * period;
        let run = DelayedBcn::new(params.clone(), tau).linearized().run(
            params.initial_point(),
            3.0,
            tau / 64.0,
        );
        assert!(
            run.max_x > 1.3 * fr.max1_x,
            "expected inflated overshoot: {} vs {}",
            run.max_x,
            fr.max1_x
        );
    }

    #[test]
    fn overshoot_sweep_is_monotone_ish() {
        let params = p();
        let period = std::f64::consts::TAU / params.a().sqrt();
        let taus = [0.0, period / 100.0, period / 10.0, period / 3.0];
        let sweep = DelayedBcn::overshoot_vs_delay(&params, &taus, 2.0);
        assert_eq!(sweep.len(), 4);
        // The largest tested delay must hurt more than the zero-delay run.
        assert!(sweep[3].1 > sweep[0].1, "{sweep:?}");
    }

    #[test]
    #[should_panic(expected = "too coarse")]
    fn rejects_coarse_step_for_delay() {
        let params = p();
        let _ = DelayedBcn::new(params.clone(), 1e-3).run(params.initial_point(), 1.0, 1e-3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_delay() {
        let _ = DelayedBcn::new(p(), -1.0);
    }
}
