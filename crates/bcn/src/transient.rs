//! Transient-performance analysis — the paper's declared future work
//! (Section V: "investigate the transient behaviors of BCN system and
//! evaluate the impact of parameters on the transient performance").
//!
//! Strong stability says the queue *stays* inside `(0, B)`; transient
//! performance says how *well* it gets to `q0`: overshoot magnitude,
//! oscillation period, per-round decay, and settling time. For Case 1
//! every one of these has a closed form through the round analysis, so a
//! parameter search over transient targets is interactive-speed.

use crate::cases::{classify_params, CaseId};
use crate::model::Region;
use crate::params::BcnParams;
use crate::rounds::{round_ratio, steady_leg_duration, trace_legs};

/// Transient-performance summary of a parameter set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientMetrics {
    /// Which case the parameters fall into.
    pub case: CaseId,
    /// Largest queue overshoot above `q0`, as a fraction of `q0`
    /// (`max x / q0`); zero when the trajectory never overshoots
    /// (Cases 3/4).
    pub overshoot_ratio: f64,
    /// Deepest dip below `q0` after the first crossing, as a fraction of
    /// `q0` (positive number; `1` would mean the queue empties).
    pub undershoot_ratio: f64,
    /// One full oscillation round `T_i + T_d`, if rounds repeat
    /// (Case 1 / limit-cycle regimes).
    pub round_period: Option<f64>,
    /// Per-round amplitude ratio `rho` (Case 1).
    pub rho: Option<f64>,
    /// Rounds until the amplitude falls below 5%.
    pub rounds_to_settle: Option<f64>,
    /// Wall-clock settling time (5% criterion), if the system settles by
    /// repeated rounds; `None` for non-repeating (node) approaches,
    /// which settle within their single pass, or for `rho >= 1`.
    pub settling_time: Option<f64>,
}

/// Computes the transient metrics of a parameter set.
#[must_use]
pub fn analyze(params: &BcnParams) -> TransientMetrics {
    let case = classify_params(params).case;
    let legs = trace_legs(params, params.initial_point(), 4);
    let mut max_x = 0.0_f64;
    let mut min_x = 0.0_f64;
    for leg in &legs {
        if let Some(e) = leg.extremum {
            max_x = max_x.max(e.x);
            min_x = min_x.min(e.x);
        }
    }
    let (round_period, rho) = if case == CaseId::Case1 {
        let period = match (
            steady_leg_duration(params, Region::Increase),
            steady_leg_duration(params, Region::Decrease),
        ) {
            (Some(ti), Some(td)) => Some(ti + td),
            _ => None,
        };
        (period, round_ratio(params))
    } else {
        (None, None)
    };
    let rounds_to_settle =
        rho.and_then(|r| if r > 0.0 && r < 1.0 { Some((0.05_f64).ln() / r.ln()) } else { None });
    let settling_time = match (rounds_to_settle, round_period) {
        (Some(n), Some(t)) => Some(n * t),
        _ => None,
    };
    TransientMetrics {
        case,
        overshoot_ratio: max_x / params.q0,
        undershoot_ratio: -min_x.min(0.0) / params.q0,
        round_period,
        rho,
        rounds_to_settle,
        settling_time,
    }
}

/// Searches (by bisection over `Gi`) for the largest additive-increase
/// gain whose overshoot stays below `target_ratio * q0` — the
/// gain-tuning question a deployment faces with a fixed buffer.
///
/// Returns `None` if even the smallest probed gain overshoots too much.
///
/// # Panics
///
/// Panics if `gi_lo >= gi_hi` or either is non-positive.
#[must_use]
pub fn max_gi_for_overshoot(
    params: &BcnParams,
    target_ratio: f64,
    gi_lo: f64,
    gi_hi: f64,
) -> Option<f64> {
    assert!(gi_lo > 0.0 && gi_lo < gi_hi, "need 0 < gi_lo < gi_hi");
    let over = |gi: f64| analyze(&params.clone().with_gi(gi)).overshoot_ratio;
    if over(gi_lo) > target_ratio {
        return None;
    }
    if over(gi_hi) <= target_ratio {
        return Some(gi_hi);
    }
    let (mut lo, mut hi) = (gi_lo, gi_hi);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        if over(mid) <= target_ratio {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Settling-vs-overshoot frontier: for each `w` in the sweep, the
/// (overshoot ratio, settling time) pair — the two-objective trade
/// surface an operator tunes on.
#[must_use]
pub fn w_frontier(params: &BcnParams, ws: &[f64]) -> Vec<(f64, f64, Option<f64>)> {
    // Each frontier point re-analyzes an independent parameterisation;
    // fan out across the configured worker count (input order kept).
    parkit::par_map(ws, |&w| {
        let m = analyze(&params.clone().with_w(w));
        (w, m.overshoot_ratio, m.settling_time)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::exemplar;

    fn p() -> BcnParams {
        BcnParams::test_defaults()
    }

    #[test]
    fn case1_metrics_are_complete() {
        let m = analyze(&p());
        assert_eq!(m.case, CaseId::Case1);
        assert!(m.overshoot_ratio > 0.0);
        assert!(m.undershoot_ratio > 0.0 && m.undershoot_ratio < 1.0);
        let rho = m.rho.expect("case 1 has a round ratio");
        assert!(rho > 0.0 && rho < 1.0);
        let n = m.rounds_to_settle.unwrap();
        assert!((n - (0.05_f64).ln() / rho.ln()).abs() < 1e-12);
        let t = m.settling_time.unwrap();
        assert!((t - n * m.round_period.unwrap()).abs() < 1e-12);
    }

    #[test]
    fn cases_3_and_4_report_no_overshoot() {
        for case in [CaseId::Case3, CaseId::Case4] {
            let m = analyze(&exemplar(&p(), case));
            assert!(m.overshoot_ratio <= 0.0 + 1e-12, "{case}: {m:?}");
            assert!(m.rho.is_none());
            assert!(m.settling_time.is_none());
        }
    }

    #[test]
    fn overshoot_grows_with_gi() {
        let small = analyze(&p().with_gi(0.25)).overshoot_ratio;
        let large = analyze(&p().with_gi(4.0)).overshoot_ratio;
        assert!(large > small, "{large} vs {small}");
    }

    #[test]
    fn gi_search_meets_target() {
        let params = p();
        let target = 1.5;
        let gi = max_gi_for_overshoot(&params, target, 1e-3, 50.0).expect("achievable");
        let at = analyze(&params.clone().with_gi(gi)).overshoot_ratio;
        assert!(at <= target + 1e-6, "overshoot {at} at gi {gi}");
        // And it is maximal: slightly larger gain violates the target.
        let above = analyze(&params.clone().with_gi(gi * 1.05)).overshoot_ratio;
        assert!(above > target, "not maximal: {above} at {}", gi * 1.05);
    }

    #[test]
    fn gi_search_handles_unreachable_target() {
        assert!(max_gi_for_overshoot(&p(), 1e-9, 1.0, 2.0).is_none());
    }

    #[test]
    fn w_frontier_is_monotone_in_settling() {
        let ws = [0.5, 1.0, 2.0, 4.0, 8.0];
        let frontier = w_frontier(&p(), &ws);
        assert_eq!(frontier.len(), 5);
        for pair in frontier.windows(2) {
            let (t0, t1) = (pair[0].2.unwrap(), pair[1].2.unwrap());
            assert!(t1 < t0, "settling not improving: {frontier:?}");
        }
    }
}
