//! Fluid model vs packet-level simulation (model-validity experiment).
//!
//! Runs the same BCN configuration three ways — the paper's linearised
//! fluid model, the full nonlinear fluid model, and the packet-level
//! discrete-event simulator with real frames and BCN messages — and
//! overlays the queue traces. The fluid-flow approximation (paper
//! Section III-A) predicts they agree when packets are small against the
//! queue scale and feedback is frequent against the loop's natural
//! frequency; the run quantifies the residual gap.

use std::path::Path;

use bcn::simulate::SaturatingFluid;
use dcesim::sim::{fluid_validation_params, SimConfig, Simulation};
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot, Table};

use crate::common::{banner, out_dir, save_plot};
use crate::ExpResult;

/// Runs the experiment; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    banner("Fluid model vs packet-level simulation");
    let params = fluid_validation_params();
    let t_end = 0.5;
    let frame_bits = 8_000.0;

    // Packet-level run.
    let cfg =
        SimConfig::from_fluid(&params, frame_bits, dcesim::time::Duration::from_secs(2e-6), t_end);
    let report = Simulation::new(cfg).run();
    let des_t = report.metrics.queue.times().to_vec();
    let des_q = report.metrics.queue.values().to_vec();

    // Fluid runs (physical/saturating form so all three see the walls).
    // The linearised and nonlinear integrations are independent; run
    // them concurrently (index 0 = linearised, 1 = nonlinear).
    let mut fluid = parkit::par_map_indexed(2, |i| {
        if i == 0 {
            SaturatingFluid::linearized(params.clone()).run_canonical(t_end)
        } else {
            SaturatingFluid::new(params.clone()).run_canonical(t_end)
        }
    });
    let non = fluid.pop().expect("two fluid runs");
    let lin = fluid.pop().expect("two fluid runs");

    // Compare on the DES sampling grid.
    let sample = |ts: &[f64], qs: &[f64], t: f64| -> f64 {
        match ts.binary_search_by(|v| v.partial_cmp(&t).unwrap()) {
            Ok(i) => qs[i],
            Err(0) => qs[0],
            Err(i) if i >= ts.len() => *qs.last().unwrap(),
            Err(i) => {
                let w = (t - ts[i - 1]) / (ts[i] - ts[i - 1]);
                qs[i - 1] + w * (qs[i] - qs[i - 1])
            }
        }
    };
    let mut csv = Csv::new(&["t", "q_des", "q_fluid_linear", "q_fluid_nonlinear"]);
    let mut err_lin = 0.0;
    let mut err_non = 0.0;
    for (i, &t) in des_t.iter().enumerate() {
        let ql = sample(&lin.times, &lin.queue, t);
        let qn = sample(&non.times, &non.queue, t);
        csv.row(&[t, des_q[i], ql, qn]);
        err_lin += (des_q[i] - ql).powi(2);
        err_non += (des_q[i] - qn).powi(2);
    }
    let rms_lin = (err_lin / des_t.len() as f64).sqrt();
    let rms_non = (err_non / des_t.len() as f64).sqrt();
    csv.save(out.join("exp_fluid_vs_packet.csv"))?;
    println!("wrote {}", out.join("exp_fluid_vs_packet.csv").display());

    let mut table =
        Table::new(&["model", "max queue (bits)", "min queue tail", "drops", "RMS vs DES (bits)"]);
    table.row(&[
        "packet-level DES".into(),
        format!("{:.3e}", report.metrics.queue.max()),
        format!("{:.3e}", report.metrics.queue.min_after(0.3 * t_end)),
        report.metrics.dropped_frames.to_string(),
        "-".into(),
    ]);
    let tail_min = |ts: &[f64], qs: &[f64]| {
        ts.iter()
            .zip(qs)
            .filter(|(t, _)| **t >= 0.3 * t_end)
            .map(|(_, q)| *q)
            .fold(f64::INFINITY, f64::min)
    };
    table.row(&[
        "fluid (linearised)".into(),
        format!("{:.3e}", lin.max_queue),
        format!("{:.3e}", tail_min(&lin.times, &lin.queue)),
        format!("{:.0}", lin.dropped_bits / 8_000.0),
        format!("{rms_lin:.3e}"),
    ]);
    table.row(&[
        "fluid (nonlinear)".into(),
        format!("{:.3e}", non.max_queue),
        format!("{:.3e}", tail_min(&non.times, &non.queue)),
        format!("{:.0}", non.dropped_bits / 8_000.0),
        format!("{rms_non:.3e}"),
    ]);
    print!("{table}");
    println!(
        "relative max-queue error: linearised {:.2}%, nonlinear {:.2}%",
        (lin.max_queue / report.metrics.queue.max() - 1.0).abs() * 100.0,
        (non.max_queue / report.metrics.queue.max() - 1.0).abs() * 100.0,
    );

    let plot = SvgPlot::new("Queue: fluid models vs packet-level DES", "t (s)", "q (bits)")
        .with_series(Series::line("packet DES", &des_t, &des_q, COLOR_CYCLE[0]))
        .with_series(Series::line("fluid linearised", &lin.times, &lin.queue, COLOR_CYCLE[1]))
        .with_series(Series::line("fluid nonlinear", &non.times, &non.queue, COLOR_CYCLE[2]))
        .with_hline(params.q0, "#999999");
    save_plot(&plot, out, "exp_fluid_vs_packet.svg")?;
    Ok(())
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("fvp_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        assert!(dir.join("exp_fluid_vs_packet.svg").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
