//! Strong stability of the BCN system (paper Definition 1,
//! Propositions 2–4, Theorem 1).
//!
//! *Strong stability* demands more than convergence: after some time the
//! queue must stay strictly inside `(0, B)` — never emptying (wasted link)
//! and never overflowing (dropped packets). The paper derives sufficient
//! conditions case by case:
//!
//! * **Proposition 2** (Case 1): the first-round extrema
//!   `max_1{x}` / `min_1{x}` must respect the buffer walls.
//! * **Proposition 3** (Case 2): the single overshoot `max_2{x}` must.
//! * **Proposition 4** (Cases 3–5): strong stability is unconditional.
//! * **Theorem 1**: the case-free sufficient condition
//!   `(1 + sqrt(Ru Gi N / (Gd C))) q0 < B`.
//!
//! Alongside the criteria this module provides [`exact_verdict`], the
//! ground-truth check obtained by tracing the actual switched trajectory,
//! used by the criterion-tightness experiments.

use crate::cases::RegionShape;
use crate::cases::{classify_params, region_shape, CaseId};
use crate::closed_form::Spectrum;
use crate::model::Region;
use crate::params::BcnParams;
use crate::propagate::Propagator;
use crate::rounds::{first_round, trace_legs, trace_legs_into, FirstRound, Leg};

/// Why the criterion declares a system strongly stable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Justification {
    /// Case 1: both first-round extrema fit inside the buffer
    /// (Proposition 2).
    Proposition2 {
        /// First-round maximum of `x = q - q0`.
        max1: f64,
        /// First-round minimum of `x`.
        min1: f64,
    },
    /// Case 2: the single overshoot fits below the buffer
    /// (Proposition 3).
    Proposition3 {
        /// The overshoot maximum of `x`.
        max2: f64,
    },
    /// Cases 3, 4, and the decrease-critical branch of Case 5:
    /// unconditional (Proposition 4).
    Proposition4 {
        /// Which unconditional case applied.
        case: CaseId,
    },
    /// The increase-critical branch of Case 5 — conditional, contrary to
    /// the paper's printed Proposition 4 (see the [`CaseId::Case5`]
    /// erratum note): the single overshoot must fit under the buffer,
    /// exactly as in the Case 2 limit it is.
    Case5Amended {
        /// The overshoot maximum of `x`.
        max2: f64,
    },
}

/// Outcome of the paper's case-by-case sufficient criterion.
#[derive(Debug, Clone, PartialEq)]
pub enum StabilityVerdict {
    /// The criterion guarantees strong stability.
    StronglyStable(Justification),
    /// The sufficient condition fails — the system *may* still be
    /// strongly stable (the criterion is one-sided); the string explains
    /// which bound failed.
    NotGuaranteed(String),
}

impl StabilityVerdict {
    /// Whether the verdict is a strong-stability guarantee.
    #[must_use]
    pub fn is_guaranteed(&self) -> bool {
        matches!(self, StabilityVerdict::StronglyStable(_))
    }
}

/// The buffer Theorem 1 requires:
/// `B_required = (1 + sqrt(Ru Gi N / (Gd C))) q0`.
#[must_use]
pub fn theorem1_required_buffer(params: &BcnParams) -> f64 {
    let a = params.a();
    let bc = params.b() * params.capacity;
    (1.0 + (a / bc).sqrt()) * params.q0
}

/// Whether Theorem 1's sufficient condition holds for the configured
/// buffer.
#[must_use]
pub fn theorem1_holds(params: &BcnParams) -> bool {
    theorem1_required_buffer(params) < params.buffer
}

/// The intermediate bound in the Theorem 1 proof:
/// `max q(t) - q0 < sqrt(a / (b C)) q0` (and symmetrically
/// `min > -q0`), i.e. the overshoot estimate the explicit criterion is
/// built from.
#[must_use]
pub fn overshoot_bound(params: &BcnParams) -> f64 {
    (params.a() / (params.b() * params.capacity)).sqrt() * params.q0
}

/// Case-1 first-round extrema per Proposition 2, computed exactly from
/// the region flows. Returns `None` outside Case 1.
#[must_use]
pub fn proposition2_bounds(params: &BcnParams) -> Option<FirstRound> {
    first_round(params)
}

/// The paper's explicit transcription of Eqs. 36–37 (`max_1{x}`,
/// `min_1{x}`) through the printed coefficient chain
/// `A_i^1, phi_i^1, T_i^1, x_d^1(0), A_d^1, phi_d^1, x_i^2(0)`.
///
/// Returns `None` outside Case 1. Kept alongside the robust
/// [`proposition2_bounds`] for paper fidelity; the test suite checks both
/// agree.
#[must_use]
pub fn proposition2_bounds_paper(params: &BcnParams) -> Option<(f64, f64)> {
    if classify_params(params).case != CaseId::Case1 {
        return None;
    }
    let a = params.a();
    let k = params.k();
    let bc = params.b() * params.capacity;
    let q0 = params.q0;

    let root_i = (4.0 * a - a * a * k * k).sqrt(); // 2 beta_i
    let root_d = (4.0 * bc - (k * bc) * (k * bc)).sqrt(); // 2 beta_d
    let alpha_i_over_beta_i = -a * k / root_i;
    let alpha_d_over_beta_d = -bc * k / root_d;

    // First increase leg.
    let a_i1 = 2.0 * q0 * a.sqrt() / root_i;
    let phi_i1 = -(a * k / root_i).atan();
    let t_i1 = 2.0 / root_i * (((2.0 - a * k * k) / (k * root_i)).atan() - phi_i1);
    let x_d1 = -k * a_i1 * root_i / 2.0 * (-a * k / 2.0 * t_i1).exp();

    // Decrease leg: Eq. 36.
    let phi_d1 = ((2.0 - params.b() * k * k * params.capacity) / (k * root_d)).atan();
    let max1 = x_d1.abs() / (k * bc.sqrt())
        * (alpha_d_over_beta_d * (std::f64::consts::PI + alpha_d_over_beta_d.atan() - phi_d1))
            .exp();

    // Second increase leg: Eq. 37.
    let a_d1 = 2.0 * (x_d1.abs() / k) / root_d;
    let t_d1 = std::f64::consts::TAU / root_d;
    let x_i2 = -a_d1 * k * root_d / 2.0 * (-bc * k / 2.0 * t_d1).exp();
    let phi_i2 = ((2.0 - a * k * k) / (k * root_i)).atan();
    let min1 = -(x_i2.abs() / (k * a.sqrt()))
        * (alpha_i_over_beta_i * (std::f64::consts::PI + alpha_i_over_beta_i.atan() - phi_i2))
            .exp();
    Some((max1, min1))
}

/// Case-2 overshoot maximum per Proposition 3 (Eq. 38), computed exactly
/// from the region flows. Returns `None` outside Case 2.
#[must_use]
pub fn proposition3_max(params: &BcnParams) -> Option<f64> {
    if classify_params(params).case != CaseId::Case2 {
        return None;
    }
    let legs = trace_legs(params, params.initial_point(), 2);
    legs.get(1)?.extremum.map(|e| e.x)
}

/// The paper's explicit transcription of Eq. 38 for Case 2.
///
/// Returns `None` outside Case 2.
#[must_use]
pub fn proposition3_max_paper(params: &BcnParams) -> Option<f64> {
    if classify_params(params).case != CaseId::Case2 {
        return None;
    }
    let k = params.k();
    let bc = params.b() * params.capacity;
    let q0 = params.q0;
    // Increase-region node eigenvalues, from the memo-cached spectral
    // decomposition shared with the trajectory hot path.
    let prop = Propagator::for_params(params);
    let Spectrum::Node { l1, l2 } = prop.flow(Region::Increase).spectrum() else { return None };
    // y_d^1(0) = q0 [ (k + 1/l1)^{l1} / (k + 1/l2)^{l2} ]^{1/(l2 - l1)};
    // both bases are positive because l1 < l2 < -1/k.
    let base1 = k + 1.0 / l1;
    let base2 = k + 1.0 / l2;
    debug_assert!(base1 > 0.0 && base2 > 0.0);
    let y_d1 = q0 * ((l1 * base1.ln() - l2 * base2.ln()) / (l2 - l1)).exp();
    // Decrease-region spiral quantities.
    let root_d = (4.0 * bc - (k * bc) * (k * bc)).sqrt();
    let alpha_d_over_beta_d = -bc * k / root_d;
    let phi_d1 = ((2.0 - params.b() * k * k * params.capacity) / (k * root_d)).atan();
    let max2 = y_d1 / bc.sqrt()
        * (alpha_d_over_beta_d * (std::f64::consts::PI + alpha_d_over_beta_d.atan() - phi_d1))
            .exp();
    Some(max2)
}

/// Applies the paper's case-by-case sufficient criterion
/// (Propositions 2–4).
#[must_use]
pub fn criterion(params: &BcnParams) -> StabilityVerdict {
    let analysis = classify_params(params);
    let wall_hi = params.buffer - params.q0;
    let wall_lo = -params.q0;
    match analysis.case {
        CaseId::Case1 => match proposition2_bounds(params) {
            Some(fr) => {
                if fr.max1_x < wall_hi && fr.min1_x > wall_lo {
                    StabilityVerdict::StronglyStable(Justification::Proposition2 {
                        max1: fr.max1_x,
                        min1: fr.min1_x,
                    })
                } else if fr.max1_x >= wall_hi {
                    StabilityVerdict::NotGuaranteed(format!(
                        "first-round maximum {:.3e} reaches the buffer wall {:.3e}",
                        fr.max1_x, wall_hi
                    ))
                } else {
                    StabilityVerdict::NotGuaranteed(format!(
                        "first-round minimum {:.3e} empties the queue (wall {:.3e})",
                        fr.min1_x, wall_lo
                    ))
                }
            }
            None => StabilityVerdict::NotGuaranteed("first-round analysis did not complete".into()),
        },
        CaseId::Case2 => match proposition3_max(params) {
            Some(max2) if max2 < wall_hi => {
                StabilityVerdict::StronglyStable(Justification::Proposition3 { max2 })
            }
            Some(max2) => StabilityVerdict::NotGuaranteed(format!(
                "overshoot {max2:.3e} reaches the buffer wall {wall_hi:.3e}"
            )),
            None => {
                // No interior extremum at all: the trajectory cannot
                // overshoot, which is even safer than the bound.
                StabilityVerdict::StronglyStable(Justification::Proposition3 { max2: 0.0 })
            }
        },
        case @ (CaseId::Case3 | CaseId::Case4) => {
            StabilityVerdict::StronglyStable(Justification::Proposition4 { case })
        }
        CaseId::Case5 => {
            // Amended rule (paper erratum): only the decrease-critical
            // branch (increase region still spiral) inherits Case 3's
            // unconditional stability; an increase region at or past its
            // threshold behaves like Case 2 and needs the overshoot
            // check.
            if region_shape(params, crate::model::Region::Increase) == RegionShape::Spiral {
                StabilityVerdict::StronglyStable(Justification::Proposition4 {
                    case: CaseId::Case5,
                })
            } else {
                let legs = trace_legs(params, params.initial_point(), 3);
                let max2 = legs
                    .iter()
                    .filter_map(|l| l.extremum)
                    .map(|e| e.x)
                    .fold(f64::NEG_INFINITY, f64::max);
                if !max2.is_finite() || max2 < wall_hi {
                    StabilityVerdict::StronglyStable(Justification::Case5Amended {
                        max2: if max2.is_finite() { max2 } else { 0.0 },
                    })
                } else {
                    StabilityVerdict::NotGuaranteed(format!(
                        "case-5 overshoot {max2:.3e} reaches the buffer wall {wall_hi:.3e}"
                    ))
                }
            }
        }
    }
}

/// Ground truth by trajectory tracing: the supremum/infimum of
/// `x = q - q0` over the switched trajectory from the canonical start
/// `(-q0, 0)`, excluding the start instant itself (Definition 1 allows an
/// initial transient at the boundary).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactVerdict {
    /// Whether `0 < q < B` holds for all `t > 0` along the trace.
    pub strongly_stable: bool,
    /// Largest `x` observed.
    pub max_x: f64,
    /// Smallest `x` observed (after the start).
    pub min_x: f64,
    /// Number of legs traced.
    pub legs: usize,
}

/// Traces the switched linearised trajectory for up to `max_legs` legs
/// and reports the exact strong-stability verdict.
#[must_use]
pub fn exact_verdict(params: &BcnParams, max_legs: usize) -> ExactVerdict {
    let prop = Propagator::for_params(params);
    let mut legs = Vec::new();
    exact_verdict_scratch(params, &prop, max_legs, &mut legs)
}

/// The allocation-free core of [`exact_verdict`]: the caller supplies
/// the resolved propagator and a reusable leg buffer, so a worker
/// answering many queries allocates nothing once the buffer has grown
/// to the workload's deepest trace.
///
/// `prop` must be the propagator of `params`; cached and fresh builds
/// are bit-identical, so either source yields the same verdict bits.
#[must_use]
pub fn exact_verdict_scratch(
    params: &BcnParams,
    prop: &Propagator,
    max_legs: usize,
    legs: &mut Vec<Leg>,
) -> ExactVerdict {
    trace_legs_into(params, prop, params.initial_point(), max_legs, legs, None);
    let mut max_x = f64::NEG_INFINITY;
    let mut min_x = f64::INFINITY;
    for (i, leg) in legs.iter().enumerate() {
        if i > 0 {
            max_x = max_x.max(leg.start[0]);
            min_x = min_x.min(leg.start[0]);
        }
        if let Some(e) = leg.extremum {
            max_x = max_x.max(e.x);
            min_x = min_x.min(e.x);
        }
        if let Some(end) = leg.end {
            max_x = max_x.max(end[0]);
            min_x = min_x.min(end[0]);
        }
    }
    if !max_x.is_finite() || !min_x.is_finite() {
        // Trajectory never produced a comparison point beyond the start:
        // it slid directly to the equilibrium.
        max_x = 0.0;
        min_x = 0.0;
    }
    let strongly_stable = max_x < params.buffer - params.q0 && min_x > -params.q0;
    ExactVerdict { strongly_stable, max_x, min_x, legs: legs.len() }
}

/// [`exact_verdict`] over a whole frontier scan at once, fanned out
/// across the configured `parkit` worker count.
///
/// Tracing a switched trajectory is the expensive cell of every atlas
/// and buffer-frontier sweep; the scans are embarrassingly parallel, so
/// batching them here lets every caller (criterion atlases, CLI sweeps)
/// share one well-tested fan-out. Each worker reuses one leg buffer
/// across its cells, so the steady state allocates nothing. Verdict `i`
/// corresponds to `params_list[i]`; each verdict is a pure function of
/// its parameters, so the output is identical to the serial loop at any
/// thread count.
#[must_use]
pub fn exact_verdicts(params_list: &[BcnParams], max_legs: usize) -> Vec<ExactVerdict> {
    parkit::par_map_init(params_list.len(), Vec::new, |legs: &mut Vec<Leg>, i| {
        let p = &params_list[i];
        exact_verdict_scratch(p, &Propagator::for_params(p), max_legs, legs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::exemplar;
    use crate::units::MBIT;

    #[test]
    fn theorem1_reproduces_the_worked_example() {
        // Paper Section IV-C: N = 50, C = 10 Gbit/s, q0 = 2.5 Mbit,
        // Gi = 4, Gd = 1/128, Ru = 8 Mbit/s => required buffer
        // (1 + sqrt(20.48)) * 2.5 Mbit ~ 13.8 Mbit (paper rounds 13.75),
        // vs the 5 Mbit bandwidth-delay product.
        let p = BcnParams::paper_defaults();
        let req = theorem1_required_buffer(&p);
        assert!((req - 13.814e6).abs() < 0.05e6, "required {req}");
        assert!(!theorem1_holds(&p), "BDP buffer must be insufficient");
        assert!(theorem1_holds(&p.clone().with_buffer(14.0 * MBIT)));
    }

    #[test]
    fn theorem1_scales_with_sqrt_n_over_c() {
        // The paper remark: max overshoot grows with sqrt(N/C) and with q0.
        let p = BcnParams::paper_defaults();
        let b0 = overshoot_bound(&p);
        let b_4n = overshoot_bound(&p.clone().with_n_flows(p.n_flows * 4));
        assert!((b_4n / b0 - 2.0).abs() < 1e-9);
        let b_4c = overshoot_bound(&p.clone().with_capacity(4.0 * p.capacity));
        assert!((b_4c / b0 - 0.5).abs() < 1e-9);
        let b_2q = overshoot_bound(&p.clone().with_q0(2.0 * p.q0));
        assert!((b_2q / b0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn theorem1_bounds_the_exact_first_round() {
        // Theorem 1's overshoot bound must dominate the exact extrema.
        for p in [BcnParams::test_defaults(), BcnParams::paper_defaults()] {
            let fr = proposition2_bounds(&p).expect("case 1");
            let bound = overshoot_bound(&p);
            assert!(fr.max1_x < bound, "max1 {} vs bound {bound}", fr.max1_x);
            assert!(fr.min1_x > -p.q0, "min1 {}", fr.min1_x);
        }
    }

    #[test]
    fn proposition2_paper_chain_matches_exact() {
        for p in [BcnParams::test_defaults(), BcnParams::paper_defaults()] {
            let fr = proposition2_bounds(&p).unwrap();
            let (max1_paper, min1_paper) = proposition2_bounds_paper(&p).unwrap();
            assert!(
                (fr.max1_x - max1_paper).abs() < 1e-6 * fr.max1_x.abs(),
                "max1 exact {} vs paper {max1_paper}",
                fr.max1_x
            );
            assert!(
                (fr.min1_x - min1_paper).abs() < 1e-6 * fr.min1_x.abs(),
                "min1 exact {} vs paper {min1_paper}",
                fr.min1_x
            );
        }
    }

    #[test]
    fn proposition3_paper_matches_exact() {
        let p = exemplar(&BcnParams::test_defaults(), CaseId::Case2);
        let exact = proposition3_max(&p).expect("case-2 overshoot");
        let paper = proposition3_max_paper(&p).expect("case-2 paper bound");
        // Eq. 38 describes the same decrease-leg maximum.
        assert!((exact - paper).abs() < 1e-6 * exact.abs(), "exact {exact} vs paper {paper}");
    }

    #[test]
    fn criterion_dispatches_per_case() {
        let base = BcnParams::test_defaults();
        // Case 1 with a roomy buffer: Proposition 2.
        let p1 = exemplar(&base, CaseId::Case1).with_buffer(1.0e6);
        match criterion(&p1) {
            StabilityVerdict::StronglyStable(Justification::Proposition2 { .. }) => {}
            v => panic!("case 1 verdict {v:?}"),
        }
        // Case 2: Proposition 3.
        let p2 = exemplar(&base, CaseId::Case2).with_buffer(1.0e6);
        match criterion(&p2) {
            StabilityVerdict::StronglyStable(Justification::Proposition3 { .. }) => {}
            v => panic!("case 2 verdict {v:?}"),
        }
        // Cases 3-4: Proposition 4 unconditionally.
        for c in [CaseId::Case3, CaseId::Case4] {
            let p = exemplar(&base, c);
            match criterion(&p) {
                StabilityVerdict::StronglyStable(Justification::Proposition4 { case }) => {
                    assert_eq!(case, c);
                }
                v => panic!("{c} verdict {v:?}"),
            }
        }
        // Case 5, increase-critical branch (paper erratum): conditional —
        // approved only when the overshoot fits, via the amended rule.
        let p5 = exemplar(&base, CaseId::Case5).with_buffer(1.0e7);
        match criterion(&p5) {
            StabilityVerdict::StronglyStable(Justification::Case5Amended { max2 }) => {
                assert!(max2 > 0.0 && max2 < p5.buffer - p5.q0);
            }
            v => panic!("case 5 roomy verdict {v:?}"),
        }
        assert!(!criterion(&exemplar(&base, CaseId::Case5)).is_guaranteed());
        // Case 5, decrease-critical branch: unconditional like Case 3.
        let p5d = crate::cases::exemplar_case5_decrease(&base);
        match criterion(&p5d) {
            StabilityVerdict::StronglyStable(Justification::Proposition4 { case }) => {
                assert_eq!(case, CaseId::Case5);
            }
            v => panic!("case 5 decrease verdict {v:?}"),
        }
    }

    #[test]
    fn tight_buffer_fails_the_criterion() {
        // Shrink the buffer to just above q0: Case 1 must refuse.
        let p = BcnParams::test_defaults();
        let fr = proposition2_bounds(&p).unwrap();
        let tight = p.clone().with_buffer(p.q0 + 0.5 * fr.max1_x);
        let v = criterion(&tight);
        assert!(!v.is_guaranteed(), "verdict {v:?}");
    }

    #[test]
    fn exact_verdict_agrees_with_criterion_when_granted() {
        // Whenever the sufficient criterion grants stability, the exact
        // trace must confirm it (soundness of the criterion).
        let base = BcnParams::test_defaults();
        for case in [CaseId::Case1, CaseId::Case2, CaseId::Case3, CaseId::Case4] {
            let p = exemplar(&base, case).with_buffer(2.0e6);
            if criterion(&p).is_guaranteed() {
                let ev = exact_verdict(&p, 30);
                assert!(ev.strongly_stable, "{case}: exact says {ev:?}");
            }
        }
    }

    #[test]
    fn batched_verdicts_match_the_serial_loop() {
        let base = BcnParams::test_defaults();
        let scan: Vec<BcnParams> = (1..=6)
            .map(|i| {
                let mut p = base.clone();
                p.gi = base.gi * 0.5 * f64::from(i);
                p
            })
            .collect();
        let batched = exact_verdicts(&scan, 30);
        assert_eq!(batched.len(), scan.len());
        for (p, got) in scan.iter().zip(&batched) {
            assert_eq!(*got, exact_verdict(p, 30));
        }
    }

    #[test]
    fn exact_verdict_detects_overflow() {
        // A buffer barely above q0 cannot absorb the Case-1 overshoot.
        let p = BcnParams::test_defaults();
        let fr = proposition2_bounds(&p).unwrap();
        let tight = p.clone().with_buffer(p.q0 + 0.5 * fr.max1_x);
        let ev = exact_verdict(&tight, 30);
        assert!(!ev.strongly_stable);
        assert!(ev.max_x >= tight.buffer - tight.q0);
    }

    #[test]
    fn criterion_bounds_match_exact_extrema() {
        // For Case 1 the criterion's numbers ARE the exact first-round
        // extrema, hence must match the traced extrema.
        let p = BcnParams::test_defaults();
        let fr = proposition2_bounds(&p).unwrap();
        let ev = exact_verdict(&p, 40);
        assert!((ev.max_x - fr.max1_x).abs() < 1e-6 * fr.max1_x.abs());
        assert!((ev.min_x - fr.min1_x).abs() < 1e-6 * fr.min1_x.abs());
    }

    #[test]
    fn theorem1_is_conservative_relative_to_exact() {
        // Theorem 1 requiring more buffer than the exact trace needs.
        let p = BcnParams::test_defaults();
        let ev = exact_verdict(&p, 40);
        let exact_needed = p.q0 + ev.max_x;
        let thm1_needed = theorem1_required_buffer(&p);
        assert!(thm1_needed >= exact_needed, "theorem1 {thm1_needed} vs exact {exact_needed}");
    }
}
