//! The BCN (Backward Congestion Notification) congestion-control fluid
//! model and its phase-plane stability theory.
//!
//! This crate is the core of the reproduction of *Ren & Jiang, "Phase Plane
//! Analysis of Congestion Control in Data Center Ethernet Networks", ICDCS
//! 2010*. BCN is the rate-based closed-loop congestion-management mechanism
//! underlying the IEEE 802.1Qau proposal family (ECM, E2CM, QCN): core
//! switches sample packets, compute the congestion measure
//! `sigma = (q0 - q) - w * dq` and feed it back to reaction points, which
//! apply additive increase (`sigma > 0`) or multiplicative decrease
//! (`sigma < 0`) to their sending rate.
//!
//! Under the paper's fluid-flow approximation the closed loop is the planar
//! switched system (paper Eq. 8, in deviation coordinates `x = q - q0`,
//! `y = N r - C`):
//!
//! ```text
//! dx/dt = y
//! dy/dt = -a (x + k y)                 where sigma > 0   (rate increase)
//! dy/dt = -b (y + C)(x + k y)          where sigma < 0   (rate decrease)
//! ```
//!
//! with `a = Ru Gi N`, `b = Gd`, `k = w / (pm C)` and switching line
//! `x + k y = 0`.
//!
//! # Module map
//!
//! * [`params`] — [`BcnParams`]: the full parameter set with validation,
//!   the paper's defaults, and the derived `a`, `b`, `k` constants.
//! * [`model`] — the switched vector field (linearised and full nonlinear),
//!   region membership, and hybrid-system adapters for `odesolve`.
//! * [`cases`] — the paper's Case 1–5 taxonomy from the per-region
//!   discriminants (spiral / node / critical shapes).
//! * [`closed_form`] — exact region-local solutions: matrix exponential
//!   flows plus the paper's spiral (Eq. 12), node (Eq. 21) and critical
//!   (Eq. 29) forms.
//! * [`extrema`] — the queue-extrema formulas (Eqs. 18–20, 28, 34) and
//!   numerically robust equivalents.
//! * [`propagate`] — the semi-analytic engine: memo-cached spectral
//!   decompositions per parameter set, closed-form switching-line
//!   crossing times (Newton-polished), and analytic leg-by-leg
//!   trajectory integration — the fast path of every sweep.
//! * [`query`] — the batched stability-query engine: structure-of-arrays
//!   batches grouped by propagator key, per-worker workspaces, and the
//!   JSONL wire codec behind `dcebcn query`.
//! * [`rounds`] — round-by-round switching analysis: crossing points,
//!   durations `T_i`, `T_d`, per-round amplitudes and the contraction
//!   ratio of the round map.
//! * [`stability`] — strong stability (Definition 1): Propositions 2–4,
//!   Theorem 1, and exact trajectory-based verdicts.
//! * [`limit_cycle`] — limit-cycle analysis (paper Fig. 7) via the round
//!   map and Poincaré sections on the switching line.
//! * [`linear_baseline`] — the prior linear analysis of Lu et al. \[4\]
//!   (Routh–Hurwitz on the isolated subsystems) that the paper improves
//!   upon.
//! * [`simulate`] — fluid trajectory simulation, including the
//!   buffer-saturating variant that predicts packet drops.
//! * [`warmup`] — the start-up stage (`T0 = (C - N mu)/(a q0)`).
//! * [`delay`] — propagation-delay extension (DDE by method of steps),
//!   an ablation of the paper's zero-delay assumption.
//! * [`hetero`] — the full `N+1`-dimensional heterogeneous fluid model,
//!   an ablation of the paper's homogeneity assumption (and the AIMD
//!   fairness dynamics).
//! * [`transient`] — transient-performance metrics (settling time,
//!   overshoot, round period): the paper's declared future work.
//! * [`buffer`] — buffer-sizing helpers (Theorem 1 bound vs the
//!   bandwidth-delay product rule).
//! * [`units`] — unit conversion constants (bits, seconds).
//!
//! # Quickstart
//!
//! ```
//! use bcn::{BcnParams, stability};
//!
//! // The paper's worked example: N = 50 flows over a 10 Gbit/s link.
//! let params = BcnParams::paper_defaults();
//! let required = stability::theorem1_required_buffer(&params);
//! // Theorem 1 asks for ~13.8 Mbit, nearly 3x the 5 Mbit BDP example.
//! assert!(required > 13.0e6 && required < 14.0e6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod cases;
pub mod closed_form;
pub mod delay;
mod error;
pub mod extrema;
pub mod hetero;
pub mod limit_cycle;
pub mod linear_baseline;
pub mod model;
pub mod params;
pub mod propagate;
pub mod query;
pub mod rounds;
pub mod simulate;
pub mod stability;
pub mod transient;
pub mod units;
pub mod warmup;

pub use cases::{CaseId, RegionShape};
pub use error::BcnError;
pub use model::{BcnFluid, Linearity, Region};
pub use params::BcnParams;
pub use simulate::Engine;
