//! Regenerates the PAUSE head-of-line-blocking vs BCN comparison.

fn main() {
    if let Err(e) = bench::experiments::pause_hol::main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
