//! Recorded integration output.

use crate::event::EventOccurrence;

/// The recorded output of an integration run: accepted step points plus any
/// located events.
///
/// Points are stored in increasing time order; the first point is the
/// initial condition and the last is where the driver stopped (end time or
/// terminal event).
#[derive(Debug, Clone, PartialEq)]
pub struct Solution<const N: usize> {
    ts: Vec<f64>,
    ys: Vec<[f64; N]>,
    events: Vec<EventOccurrence<N>>,
}

impl<const N: usize> Solution<N> {
    /// Creates a solution seeded with the initial condition.
    #[must_use]
    pub fn new(t0: f64, y0: [f64; N]) -> Self {
        Self { ts: vec![t0], ys: vec![y0], events: Vec::new() }
    }

    /// Appends an accepted point. Times must be non-decreasing.
    pub fn push(&mut self, t: f64, y: [f64; N]) {
        debug_assert!(t >= *self.ts.last().expect("solution is never empty"));
        self.ts.push(t);
        self.ys.push(y);
    }

    /// Records a located event.
    pub fn push_event(&mut self, ev: EventOccurrence<N>) {
        self.events.push(ev);
    }

    /// The recorded times.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.ts
    }

    /// The recorded states (same length as [`Self::times`]).
    #[must_use]
    pub fn states(&self) -> &[[f64; N]] {
        &self.ys
    }

    /// All located events in time order.
    #[must_use]
    pub fn events(&self) -> &[EventOccurrence<N>] {
        &self.events
    }

    /// Number of recorded points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether the solution holds only the initial point.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ts.len() <= 1
    }

    /// The final recorded time.
    #[must_use]
    pub fn last_time(&self) -> f64 {
        *self.ts.last().expect("solution is never empty")
    }

    /// The final recorded state.
    #[must_use]
    pub fn last_state(&self) -> [f64; N] {
        *self.ys.last().expect("solution is never empty")
    }

    /// Component `i` of every recorded state, in time order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    #[must_use]
    pub fn component(&self, i: usize) -> Vec<f64> {
        assert!(i < N, "component index {i} out of range for dimension {N}");
        self.ys.iter().map(|y| y[i]).collect()
    }

    /// Linearly interpolates the state at an arbitrary time inside the
    /// recorded range. Returns `None` outside the range.
    #[must_use]
    pub fn sample(&self, t: f64) -> Option<[f64; N]> {
        if !t.is_finite() || t < self.ts[0] || t > self.last_time() {
            return None;
        }
        let idx = match self.ts.binary_search_by(|v| v.total_cmp(&t)) {
            Ok(i) => return Some(self.ys[i]),
            Err(i) => i,
        };
        let (t0, t1) = (self.ts[idx - 1], self.ts[idx]);
        let w = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
        let (y0, y1) = (&self.ys[idx - 1], &self.ys[idx]);
        let mut out = [0.0; N];
        for k in 0..N {
            out[k] = y0[k] + w * (y1[k] - y0[k]);
        }
        Some(out)
    }

    /// Maximum of component `i` over the recorded points.
    #[must_use]
    pub fn max_component(&self, i: usize) -> f64 {
        self.ys.iter().map(|y| y[i]).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum of component `i` over the recorded points.
    #[must_use]
    pub fn min_component(&self, i: usize) -> f64 {
        self.ys.iter().map(|y| y[i]).fold(f64::INFINITY, f64::min)
    }

    /// Appends another solution that continues this one (its first point
    /// must coincide in time with this solution's last point; the duplicate
    /// junction point is dropped).
    pub fn extend_with(&mut self, other: &Solution<N>) {
        for (i, (&t, y)) in other.ts.iter().zip(other.ys.iter()).enumerate() {
            if i == 0 {
                continue;
            }
            self.push(t, *y);
        }
        self.events.extend(other.events.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_accessors() {
        let mut s = Solution::new(0.0, [1.0, 2.0]);
        s.push(1.0, [3.0, 4.0]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.last_time(), 1.0);
        assert_eq!(s.last_state(), [3.0, 4.0]);
        assert_eq!(s.component(0), vec![1.0, 3.0]);
        assert_eq!(s.component(1), vec![2.0, 4.0]);
    }

    #[test]
    fn sampling_interpolates_linearly() {
        let mut s = Solution::new(0.0, [0.0]);
        s.push(2.0, [4.0]);
        assert_eq!(s.sample(1.0), Some([2.0]));
        assert_eq!(s.sample(0.0), Some([0.0]));
        assert_eq!(s.sample(2.0), Some([4.0]));
        assert_eq!(s.sample(-0.1), None);
        assert_eq!(s.sample(2.1), None);
        assert_eq!(s.sample(f64::NAN), None);
        assert_eq!(s.sample(f64::INFINITY), None);
    }

    #[test]
    fn extrema_over_components() {
        let mut s = Solution::new(0.0, [0.0]);
        s.push(1.0, [5.0]);
        s.push(2.0, [-3.0]);
        assert_eq!(s.max_component(0), 5.0);
        assert_eq!(s.min_component(0), -3.0);
    }

    #[test]
    fn extend_drops_junction_duplicate() {
        let mut a = Solution::new(0.0, [0.0]);
        a.push(1.0, [1.0]);
        let mut b = Solution::new(1.0, [1.0]);
        b.push(2.0, [2.0]);
        a.extend_with(&b);
        assert_eq!(a.times(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn component_bound_check() {
        let s = Solution::new(0.0, [0.0]);
        let _ = s.component(1);
    }
}
