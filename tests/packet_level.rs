//! Packet-level integration tests: protocol behaviour of the DCE
//! simulator under BCN, QCN, PAUSE, and failure/perturbation scenarios.

use dcesim::qcn::{QcnCpConfig, QcnRpConfig};
use dcesim::sim::{fluid_validation_params, Control, SimConfig, Simulation};
use dcesim::time::{Duration, Time};
use dcesim::workload;

fn bcn_cfg(t_end: f64) -> SimConfig {
    let params = fluid_validation_params();
    SimConfig::from_fluid(&params, 8_000.0, Duration::from_secs(2e-6), t_end)
}

/// Two identical runs produce byte-identical metrics (integer-time event
/// engine determinism).
#[test]
fn determinism_across_runs() {
    let a = Simulation::new(bcn_cfg(0.3)).run();
    let b = Simulation::new(bcn_cfg(0.3)).run();
    assert_eq!(a.metrics.queue.values(), b.metrics.queue.values());
    assert_eq!(a.metrics.feedback_messages, b.metrics.feedback_messages);
    assert_eq!(a.final_rates, b.final_rates);
}

/// Staggered joiners converge to the fair share: the AIMD fairness claim
/// (Chiu-Jain) the paper cites for adopting the law.
#[test]
fn staggered_flows_converge_to_fairness() {
    let mut cfg = bcn_cfg(2.0);
    cfg.t_end = Time::from_secs(2.0);
    let n = cfg.flows.len();
    cfg.flows = workload::staggered(n, cfg.capacity / (2.0 * n as f64), 0.1);
    let report = Simulation::new(cfg).run();
    let fairness = dcesim::metrics::jain_fairness(&report.final_rates);
    assert!(fairness > 0.85, "fairness {fairness}: {:?}", report.final_rates);
    assert_eq!(report.metrics.dropped_frames, 0);
}

/// A flow departing mid-run frees capacity that the survivors reclaim
/// through positive feedback.
#[test]
fn departures_redistribute_capacity() {
    let mut cfg = bcn_cfg(1.5);
    cfg.t_end = Time::from_secs(1.5);
    let n = cfg.flows.len();
    let fair = cfg.capacity / n as f64;
    cfg.flows = workload::with_departures(n, n / 2, fair, 0.6);
    let report = Simulation::new(cfg).run();
    let survivors = &report.final_rates[n / 2..];
    let mean: f64 = survivors.iter().sum::<f64>() / survivors.len() as f64;
    assert!(mean > 1.3 * fair, "survivors did not grow: mean {mean} vs fair {fair}");
}

/// PAUSE is a last-resort guard: with BCN active and a sane q_sc it
/// never fires; with a crippled reaction (huge sampling divisor) and a
/// burst start it does, and still prevents drops.
#[test]
fn pause_backstop_prevents_drops() {
    // Healthy: no PAUSE.
    let report = Simulation::new(bcn_cfg(0.3)).run();
    assert_eq!(report.metrics.pause_events, 0, "healthy run paused");

    // Crippled feedback + overload: PAUSE fires.
    let mut cfg = bcn_cfg(0.3);
    if let Control::Bcn { cp, .. } = &mut cfg.control {
        cp.sample_every = 100_000; // feedback effectively disabled
        cp.qsc_bits = 3.0e6;
    }
    for f in &mut cfg.flows {
        f.initial_rate = cfg.capacity / 2.0;
    }
    let paused = Simulation::new(cfg).run();
    assert!(paused.metrics.pause_events > 0, "expected PAUSE");
}

/// The drop-tail baseline drops under overload; BCN and QCN both avoid
/// drops on the identical workload.
#[test]
fn three_schemes_same_overload() {
    let params = fluid_validation_params();
    let overload = params.capacity / 2.0;
    let run = |control: Control| {
        let mut cfg = bcn_cfg(0.8);
        cfg.t_end = Time::from_secs(0.8);
        cfg.control = control;
        for f in &mut cfg.flows {
            f.initial_rate = overload;
        }
        Simulation::new(cfg).run()
    };

    let none = run(Control::None);
    assert!(none.metrics.dropped_frames > 0, "drop-tail must drop");

    let bcn_control = match bcn_cfg(0.8).control {
        c @ Control::Bcn { .. } => c,
        _ => unreachable!(),
    };
    let bcn = run(bcn_control);
    assert_eq!(bcn.metrics.dropped_frames, 0, "BCN must not drop");

    let qcn = run(Control::Qcn {
        cp: QcnCpConfig {
            q_eq_bits: params.q0,
            w: 2.0,
            sample_every: (1.0 / params.pm).round() as u64,
        },
        rp: QcnRpConfig::standard(params.capacity),
    });
    assert_eq!(qcn.metrics.dropped_frames, 0, "QCN must not drop");

    // All three keep the link busy.
    for (name, r) in [("none", &none), ("bcn", &bcn), ("qcn", &qcn)] {
        let util = r.metrics.utilization(params.capacity, 0.8);
        assert!(util > 0.7, "{name} utilisation {util}");
    }
}

/// Frame accounting: delivered bits equal the per-source totals, and
/// offered = delivered + dropped + still-queued/in-flight (bounded).
#[test]
fn conservation_of_frames() {
    let report = Simulation::new(bcn_cfg(0.4)).run();
    let m = &report.metrics;
    let per_source: f64 = m.per_source_bits.iter().sum();
    assert!((per_source - m.delivered_bits).abs() < 1e-6);
    // Deliveries cannot exceed capacity * time (plus one frame of slack).
    assert!(m.delivered_bits <= 1.0e9 * 0.4 + 8_000.0);
}

/// The queue settles near q0 under calibrated BCN: time-weighted tail
/// mean within a factor of 2.
#[test]
fn queue_settles_near_reference() {
    let params = fluid_validation_params();
    let report = Simulation::new(bcn_cfg(0.6)).run();
    let q = &report.metrics.queue;
    let tail: Vec<f64> =
        q.times().iter().zip(q.values()).filter(|(t, _)| **t > 0.3).map(|(_, v)| *v).collect();
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(
        (0.5 * params.q0..2.0 * params.q0).contains(&mean),
        "tail mean {mean} vs q0 {}",
        params.q0
    );
}

/// Shrinking the buffer below the fluid model's predicted overshoot
/// makes the packet simulation drop — strong stability is the right
/// no-drop criterion at packet level too.
#[test]
fn packet_drops_track_strong_stability() {
    let params = fluid_validation_params();
    let exact = bcn::stability::exact_verdict(&params, 40);
    let peak = params.q0 + exact.max_x;
    assert!(exact.strongly_stable, "validation params should be stable");

    // Roomy buffer: no drops (checked elsewhere). Tight buffer: drops.
    // Keep q0 < buffer valid and put q_sc at the buffer so the PAUSE
    // backstop cannot mask the drops this test is about.
    let tight_buffer = params.q0 + 0.3 * exact.max_x;
    let tight = params.clone().with_buffer(tight_buffer).with_qsc(tight_buffer);
    let mut cfg = SimConfig::from_fluid(&tight, 8_000.0, Duration::from_secs(2e-6), 0.4);
    cfg.t_end = Time::from_secs(0.4);
    let report = Simulation::new(cfg).run();
    assert!(
        report.metrics.dropped_frames > 0,
        "expected drops with buffer {} below peak {peak}",
        tight.buffer
    );
}

/// Crash-recovery contract end to end through the public API: a batch
/// killed after any prefix of its seeds and resumed from its checkpoint
/// merges a report byte-identical to an uninterrupted run — including
/// across different worker widths for the killed and resumed halves,
/// and with a quarantined seed and watchdog demotions in the mix.
#[test]
fn checkpointed_batches_resume_bit_identically_across_widths() {
    use dcesim::batch::{run_batch, run_batch_checkpointed, BatchConfig, BatchReport};
    use dcesim::checkpoint::{encode_seed_outcome, BatchCheckpoint};
    use dcesim::faults::FaultConfig;

    let fingerprint = |r: &BatchReport| {
        let mut s = String::new();
        for (&seed, out) in r.seeds.iter().zip(&r.outcomes) {
            encode_seed_outcome(seed, out, &mut s);
        }
        if let Some(tel) = &r.telemetry {
            s.push_str(&telemetry::snapshot_to_jsonl(tel));
        }
        s
    };

    let mut base = bcn_cfg(0.02);
    base.faults = FaultConfig { seed: 9, feedback_loss: 0.15, ..FaultConfig::none() };
    let mut cfg = BatchConfig::quick(base, 5);
    cfg.level = telemetry::TelemetryLevel::Full;
    cfg.panic_seeds = vec![3];
    cfg.max_seed_retries = 1;

    parkit::set_threads(1);
    let clean = fingerprint(&run_batch(&cfg));
    parkit::set_threads(4);
    assert_eq!(fingerprint(&run_batch(&cfg)), clean, "batch is width-sensitive");

    for (kill_after, first_width, resume_width) in [(0, 1, 4), (2, 4, 1), (5, 1, 1)] {
        let dir = std::env::temp_dir().join(format!(
            "dcesim_it_resume-{}-{kill_after}-{first_width}x{resume_width}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // The "killed" half: only the first `kill_after` seeds ran and
        // were acknowledged before the crash.
        parkit::set_threads(first_width);
        let partial = BatchConfig { seeds: cfg.seeds[..kill_after].to_vec(), ..cfg.clone() };
        let ck = BatchCheckpoint::create(&dir, &cfg).unwrap();
        run_batch_checkpointed(&partial, &ck).unwrap();
        drop(ck);

        parkit::set_threads(resume_width);
        let ck = BatchCheckpoint::resume(&dir, &cfg).unwrap();
        assert_eq!(ck.restored_seeds().len(), kill_after);
        let resumed = run_batch_checkpointed(&cfg, &ck).unwrap();
        assert_eq!(resumed.supervisor.timed_out, 0);
        assert_eq!(
            fingerprint(&resumed),
            clean,
            "resume after {kill_after} seeds at widths {first_width}->{resume_width} diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    parkit::set_threads(0);
}

/// The watchdog's event budget is part of the checkpointed contract
/// too: demoted seeds persist as `timed_out`, restore as `timed_out`,
/// and the resumed aggregate carries the same `batch.timed_out` count.
#[test]
fn watchdog_demotions_survive_checkpoint_resume() {
    use dcesim::batch::{run_batch, run_batch_checkpointed, BatchConfig, SeedOutcome};
    use dcesim::checkpoint::BatchCheckpoint;

    let mut cfg = BatchConfig::quick(bcn_cfg(0.02), 3);
    cfg.level = telemetry::TelemetryLevel::Summary;
    cfg.max_events_per_seed = Some(150);

    let clean = run_batch(&cfg);
    assert_eq!(clean.supervisor.timed_out, 3);

    let dir =
        std::env::temp_dir().join(format!("dcesim_it_watchdog_resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ck = BatchCheckpoint::create(&dir, &cfg).unwrap();
    run_batch_checkpointed(&cfg, &ck).unwrap();
    drop(ck);

    let ck = BatchCheckpoint::resume(&dir, &cfg).unwrap();
    assert_eq!(ck.restored_seeds().len(), 3);
    let resumed = run_batch_checkpointed(&cfg, &ck).unwrap();
    assert_eq!(resumed.supervisor.timed_out, 3);
    for out in &resumed.outcomes {
        assert!(matches!(out, SeedOutcome::TimedOut { events: 150, .. }), "{out:?}");
    }
    let (clean_tel, resumed_tel) = (clean.telemetry.unwrap(), resumed.telemetry.unwrap());
    assert_eq!(
        telemetry::snapshot_to_jsonl(&clean_tel),
        telemetry::snapshot_to_jsonl(&resumed_tel)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
