//! Fixed-capacity, per-entity time series with deterministic
//! downsampling.
//!
//! A [`TimeSeries`] accepts an unbounded stream of `(t, v)` samples but
//! never holds more than its capacity: it keeps every `stride`-th
//! offered sample, and when the buffer fills it halves the kept points
//! and doubles the stride. Both operations are pure functions of the
//! sample stream, so two runs that offer the same samples keep the same
//! points — the property the parallel batch runner relies on for
//! bit-identical output at any thread count.
//!
//! A [`SeriesBank`] keys series by `(kind, entity)` — queue depth per
//! switch, rate per flow, Fb per source — and merges across worker
//! shards like the histogram registry does.

/// Default number of points a series retains.
///
/// 512 points is enough to draw a 760-px-wide timeline lane without
/// visible decimation artifacts while bounding a batch shard's memory.
pub const SERIES_CAPACITY: usize = 512;

/// What quantity a series tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeriesKind {
    /// Queue occupancy (bits), keyed by switch/queue index.
    QueueDepth,
    /// Source send rate (bits/s), keyed by flow index.
    FlowRate,
    /// BCN/QCN feedback value Fb, keyed by destination source index.
    Fb,
}

impl SeriesKind {
    /// Every kind, in stable order.
    pub const ALL: [SeriesKind; 3] = [SeriesKind::QueueDepth, SeriesKind::FlowRate, SeriesKind::Fb];

    /// Stable snake_case tag (used in JSON summaries and metric names).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SeriesKind::QueueDepth => "queue_depth",
            SeriesKind::FlowRate => "flow_rate",
            SeriesKind::Fb => "fb",
        }
    }

    /// Parses a tag produced by [`SeriesKind::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<SeriesKind> {
        SeriesKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// A bounded time series that downsamples deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    capacity: usize,
    stride: u64,
    offered: u64,
    points: Vec<(f64, f64)>,
}

impl Default for TimeSeries {
    fn default() -> Self {
        Self::with_capacity(SERIES_CAPACITY)
    }
}

impl TimeSeries {
    /// Creates a series holding at most `capacity` points.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (decimation needs room to halve).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 2, "series capacity must be at least 2");
        Self { capacity, stride: 1, offered: 0, points: Vec::new() }
    }

    /// Offers a sample; it is kept iff it falls on the current stride.
    #[inline]
    pub fn record(&mut self, t: f64, v: f64) {
        if self.offered.is_multiple_of(self.stride) {
            if self.points.len() == self.capacity {
                self.decimate();
            }
            self.points.push((t, v));
        }
        self.offered += 1;
    }

    /// Drops every other kept point and doubles the stride.
    fn decimate(&mut self) {
        let mut i = 0usize;
        self.points.retain(|_| {
            let keep = i.is_multiple_of(2);
            i += 1;
            keep
        });
        self.stride *= 2;
    }

    /// The kept `(t, v)` points, oldest first.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points currently kept.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points are kept.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total samples offered (kept or skipped).
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Current downsampling stride (1 until the first decimation).
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Maximum number of points retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rebuilds a series from raw state (snapshot restore): the public
    /// `record` path cannot reproduce an arbitrary `stride`/`offered`
    /// pair without replaying the entire discarded sample stream.
    pub(crate) fn from_parts(
        capacity: usize,
        stride: u64,
        offered: u64,
        points: Vec<(f64, f64)>,
    ) -> Self {
        Self { capacity, stride, offered, points }
    }

    /// Merges a shard into this series.
    ///
    /// Points interleave by time (stable: at equal stamps this series'
    /// points precede the shard's), then decimate until the union fits
    /// the larger of the two capacities. Offered counts add and the
    /// stride widens to cover both inputs, so merging is deterministic
    /// in merge order — the batch runner folds shards in seed order
    /// regardless of worker count.
    pub fn merge(&mut self, other: &TimeSeries) {
        let mut all = Vec::with_capacity(self.points.len() + other.points.len());
        let (mut i, mut j) = (0, 0);
        while i < self.points.len() && j < other.points.len() {
            if self.points[i].0 <= other.points[j].0 {
                all.push(self.points[i]);
                i += 1;
            } else {
                all.push(other.points[j]);
                j += 1;
            }
        }
        all.extend_from_slice(&self.points[i..]);
        all.extend_from_slice(&other.points[j..]);
        self.capacity = self.capacity.max(other.capacity);
        self.stride = self.stride.max(other.stride);
        self.offered += other.offered;
        self.points = all;
        while self.points.len() > self.capacity {
            self.decimate();
        }
    }
}

/// A set of [`TimeSeries`] keyed by `(kind, entity)`.
///
/// Lookup is a linear scan: banks hold one series per switch, flow, or
/// source, so entries stay in the single digits and a scan beats a hash
/// on the hot path. Iteration follows first-record order, which the
/// seed-ordered batch merge keeps deterministic across thread counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SeriesBank {
    entries: Vec<(SeriesKind, u32, TimeSeries)>,
}

impl SeriesBank {
    /// Creates an empty bank.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a sample to the `(kind, entity)` series, creating it at
    /// [`SERIES_CAPACITY`] on first use.
    #[inline]
    pub fn record(&mut self, kind: SeriesKind, entity: u32, t: f64, v: f64) {
        if let Some((_, _, s)) =
            self.entries.iter_mut().find(|(k, e, _)| *k == kind && *e == entity)
        {
            s.record(t, v);
        } else {
            let mut s = TimeSeries::default();
            s.record(t, v);
            self.entries.push((kind, entity, s));
        }
    }

    /// The series for `(kind, entity)`, if any samples were recorded.
    #[must_use]
    pub fn get(&self, kind: SeriesKind, entity: u32) -> Option<&TimeSeries> {
        self.entries.iter().find(|(k, e, _)| *k == kind && *e == entity).map(|(_, _, s)| s)
    }

    /// Iterates `(kind, entity, series)` in first-record order.
    pub fn iter(&self) -> impl Iterator<Item = (SeriesKind, u32, &TimeSeries)> {
        self.entries.iter().map(|(k, e, s)| (*k, *e, s))
    }

    /// Number of distinct series.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no series exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends a fully-built series under `(kind, entity)` (snapshot
    /// restore; insertion order must follow the snapshot to reproduce
    /// first-record iteration order).
    pub(crate) fn insert(&mut self, kind: SeriesKind, entity: u32, series: TimeSeries) {
        self.entries.push((kind, entity, series));
    }

    /// Merges a shard bank: matching `(kind, entity)` series merge
    /// point-wise, unmatched shard series are appended.
    pub fn merge(&mut self, other: &SeriesBank) {
        for (kind, entity, shard) in other.iter() {
            if let Some((_, _, s)) =
                self.entries.iter_mut().find(|(k, e, _)| *k == kind && *e == entity)
            {
                s.merge(shard);
            } else {
                self.entries.push((kind, entity, shard.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_up_to_capacity_verbatim() {
        let mut s = TimeSeries::with_capacity(4);
        for i in 0..4 {
            s.record(i as f64, 10.0 * i as f64);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.stride(), 1);
        assert_eq!(s.points()[3], (3.0, 30.0));
    }

    #[test]
    fn overflow_decimates_and_doubles_stride() {
        let mut s = TimeSeries::with_capacity(4);
        for i in 0..9 {
            s.record(i as f64, 0.0);
        }
        // Sample 4 overflows: decimate to {0,2}, stride 2, keep 4 and 6.
        // Sample 8 overflows again: decimate to {0,4}, stride 4, keep 8.
        assert_eq!(s.stride(), 4);
        let ts: Vec<f64> = s.points().iter().map(|p| p.0).collect();
        assert_eq!(ts, [0.0, 4.0, 8.0]);
        assert_eq!(s.offered(), 9);
    }

    #[test]
    fn long_stream_stays_bounded_and_ordered() {
        let mut s = TimeSeries::with_capacity(8);
        for i in 0..10_000 {
            s.record(f64::from(i), f64::from(i));
        }
        assert!(s.len() <= 8, "len {}", s.len());
        assert!(s.len() > 8 / 2, "decimation overshot: {}", s.len());
        let ts: Vec<f64> = s.points().iter().map(|p| p.0).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]), "unordered: {ts:?}");
        assert_eq!(s.offered(), 10_000);
    }

    #[test]
    fn downsampling_is_deterministic() {
        let run = || {
            let mut s = TimeSeries::with_capacity(16);
            for i in 0..1000 {
                s.record(f64::from(i) * 0.01, f64::from(i % 13));
            }
            s
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn merge_interleaves_by_time() {
        let mut a = TimeSeries::with_capacity(16);
        let mut b = TimeSeries::with_capacity(16);
        for t in [0.1, 0.4, 0.5] {
            a.record(t, 1.0);
        }
        for t in [0.2, 0.3, 0.6] {
            b.record(t, 2.0);
        }
        a.merge(&b);
        let ts: Vec<f64> = a.points().iter().map(|p| p.0).collect();
        assert_eq!(ts, [0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        assert_eq!(a.offered(), 6);
    }

    #[test]
    fn merge_is_stable_at_equal_stamps() {
        let mut a = TimeSeries::with_capacity(8);
        a.record(1.0, 10.0);
        let mut b = TimeSeries::with_capacity(8);
        b.record(1.0, 20.0);
        a.merge(&b);
        assert_eq!(a.points(), [(1.0, 10.0), (1.0, 20.0)]);
    }

    #[test]
    fn merge_overflow_decimates_to_capacity() {
        let mut a = TimeSeries::with_capacity(4);
        let mut b = TimeSeries::with_capacity(4);
        for i in 0..4 {
            a.record(f64::from(i), 0.0);
            b.record(f64::from(i) + 0.5, 1.0);
        }
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.stride(), 2);
        let ts: Vec<f64> = a.points().iter().map(|p| p.0).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]), "unordered: {ts:?}");
    }

    #[test]
    fn bank_keys_by_kind_and_entity() {
        let mut bank = SeriesBank::new();
        bank.record(SeriesKind::QueueDepth, 0, 0.0, 1.0);
        bank.record(SeriesKind::QueueDepth, 1, 0.0, 2.0);
        bank.record(SeriesKind::FlowRate, 0, 0.0, 3.0);
        bank.record(SeriesKind::QueueDepth, 0, 1.0, 4.0);
        assert_eq!(bank.len(), 3);
        assert_eq!(bank.get(SeriesKind::QueueDepth, 0).unwrap().len(), 2);
        assert_eq!(bank.get(SeriesKind::FlowRate, 0).unwrap().points(), [(0.0, 3.0)]);
        assert!(bank.get(SeriesKind::Fb, 0).is_none());
    }

    #[test]
    fn bank_merge_matches_sequential_recording() {
        let mut reference = SeriesBank::new();
        let mut shard_a = SeriesBank::new();
        let mut shard_b = SeriesBank::new();
        for i in 0..40u32 {
            let t = f64::from(i) * 0.1;
            reference.record(SeriesKind::QueueDepth, i % 2, t, f64::from(i));
            let shard = if i % 2 == 0 { &mut shard_a } else { &mut shard_b };
            shard.record(SeriesKind::QueueDepth, i % 2, t, f64::from(i));
        }
        let mut merged = SeriesBank::new();
        merged.merge(&shard_a);
        merged.merge(&shard_b);
        for entity in [0, 1] {
            let m = merged.get(SeriesKind::QueueDepth, entity).unwrap();
            let r = reference.get(SeriesKind::QueueDepth, entity).unwrap();
            assert_eq!(m.points(), r.points(), "entity {entity}");
        }
    }

    #[test]
    fn series_kind_names_round_trip() {
        for k in SeriesKind::ALL {
            assert_eq!(SeriesKind::from_name(k.name()), Some(k));
        }
        assert_eq!(SeriesKind::from_name("no_such_series"), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 2")]
    fn tiny_capacity_rejected() {
        let _ = TimeSeries::with_capacity(1);
    }
}
