//! Criterion atlas over the gain plane `(Gi, Gd)`.
//!
//! For a grid of gain pairs, compares four verdicts:
//!
//! 1. the prior **linear baseline** of Lu et al. \[4\] (always "stable" —
//!    Proposition 1);
//! 2. the paper's **Theorem 1** sufficient condition;
//! 3. the paper's sharper **case criterion** (Propositions 2–4);
//! 4. the **exact** switched-trajectory verdict (ground truth for the
//!    linearised model) cross-checked against the drop count of the
//!    buffer-saturating fluid run.
//!
//! The expected shape: baseline ⊇ exact ⊇ criterion ⊇ Theorem 1 — the
//! baseline over-approves (its verdict is blind to `B`), the paper's
//! criteria are sound (never approve an unstable cell) and increasingly
//! conservative.

use std::path::Path;

use bcn::cases::classify_params;
use bcn::simulate::SaturatingFluid;
use bcn::stability::{criterion, exact_verdict, theorem1_holds};
use bcn::{linear_baseline, BcnParams};
use plotkit::{Csv, Table};

use crate::common::{banner, out_dir};
use crate::ExpResult;

/// One grid cell's verdicts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Additive-increase gain.
    pub gi: f64,
    /// Multiplicative-decrease gain.
    pub gd: f64,
    /// Case id (1–5) as a number.
    pub case_no: u8,
    /// Baseline \[4\] approves.
    pub baseline: bool,
    /// Theorem 1 approves.
    pub theorem1: bool,
    /// Case criterion (Props. 2–4) approves.
    pub case_criterion: bool,
    /// Exact trace is strongly stable.
    pub exact: bool,
    /// The saturating fluid run dropped bits.
    pub fluid_drops: bool,
}

/// The gain axis of the atlas: `n` log-spaced multipliers of `base`
/// from 0.05x to 20x, hoisted out of the cell loop so the `powf` chain
/// runs once per axis point instead of once per cell.
fn gain_axis(base: f64, n: usize) -> Vec<f64> {
    (0..n).map(|i| base * 0.05 * (400.0_f64).powf(i as f64 / (n - 1) as f64)).collect()
}

/// The parameter set of every cell of the `n x n` atlas, in row-major
/// grid order — the work-list shared by [`compute_atlas`] and the
/// `fluid_engine` benchmark, so both measure exactly the same cells.
///
/// # Panics
///
/// Panics if `n < 2`, like [`compute_atlas`].
#[must_use]
pub fn atlas_params(base: &BcnParams, n: usize) -> Vec<BcnParams> {
    assert!(n >= 2, "atlas grid must be at least 2x2 (got n = {n})");
    let gis = gain_axis(base.gi, n);
    let gds: Vec<f64> = gain_axis(base.gd, n).into_iter().map(|g| g.min(1.0)).collect();
    (0..n * n)
        .map(|idx| {
            let (i, j) = (idx / n, idx % n);
            base.clone().with_gi(gis[i]).with_gd(gds[j])
        })
        .collect()
}

/// Computes the atlas on an `n x n` log-spaced gain grid.
///
/// Cells are classified in parallel across the configured `parkit`
/// worker count, each worker reusing one scratch [`BcnParams`] instead
/// of rebuilding the parameter struct per cell; every cell is a pure
/// function of its grid index, so the atlas is identical (bitwise) at
/// any thread count. The exact verdict runs on the semi-analytic
/// propagator (`bcn::propagate`), so per-cell cost is dominated by the
/// saturating-fluid drop check rather than trajectory integration.
///
/// # Panics
///
/// Panics if `n < 2` — a one-point "grid" has no spacing
/// (`(n - 1)` would divide to NaN gains) and a zero-point grid no
/// cells; callers wanting a single point should evaluate `base`
/// directly.
#[must_use]
pub fn compute_atlas(base: &BcnParams, n: usize) -> Vec<Cell> {
    assert!(
        n >= 2,
        "atlas grid must be at least 2x2 (got n = {n}); evaluate the base point directly instead"
    );
    // Gi from 0.05x to 20x the base; Gd likewise (capped at 1).
    let gis = gain_axis(base.gi, n);
    let gds: Vec<f64> = gain_axis(base.gd, n).into_iter().map(|g| g.min(1.0)).collect();
    parkit::par_map_init(
        n * n,
        || base.clone(),
        |scratch, idx| {
            let (i, j) = (idx / n, idx % n);
            let (gi, gd) = (gis[i], gds[j]);
            scratch.gi = gi;
            scratch.gd = gd;
            let p = &*scratch;
            let case_no = match classify_params(p).case {
                bcn::CaseId::Case1 => 1,
                bcn::CaseId::Case2 => 2,
                bcn::CaseId::Case3 => 3,
                bcn::CaseId::Case4 => 4,
                bcn::CaseId::Case5 => 5,
            };
            let exact = exact_verdict(p, 40);
            let run = SaturatingFluid::linearized(p.clone()).run_canonical(fluid_horizon(p));
            Cell {
                gi,
                gd,
                case_no,
                baseline: linear_baseline::analyze(p).overall_stable,
                theorem1: theorem1_holds(p),
                case_criterion: criterion(p).is_guaranteed(),
                exact: exact.strongly_stable,
                fluid_drops: run.has_drops(),
            }
        },
    )
}

/// Simulation horizon for one cell: a few rounds of the slowest
/// oscillation covers the transient peak. Shared with the `fluid_engine`
/// benchmark so its per-cell timings integrate the same span the atlas
/// does.
#[must_use]
pub fn fluid_horizon(p: &BcnParams) -> f64 {
    let beta_slow = (p.a().min(p.b() * p.capacity)).sqrt();
    (8.0 * std::f64::consts::PI / beta_slow).min(5.0)
}

/// Runs the experiment; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    banner("Criterion atlas over (Gi, Gd)");
    let base = BcnParams::test_defaults().with_buffer(1.5e5);
    let cells = compute_atlas(&base, 13);

    let mut csv = Csv::new(&[
        "gi",
        "gd",
        "case",
        "baseline",
        "theorem1",
        "case_criterion",
        "exact",
        "fluid_drops",
    ]);
    for c in &cells {
        csv.row(&[
            c.gi,
            c.gd,
            f64::from(c.case_no),
            f64::from(u8::from(c.baseline)),
            f64::from(u8::from(c.theorem1)),
            f64::from(u8::from(c.case_criterion)),
            f64::from(u8::from(c.exact)),
            f64::from(u8::from(c.fluid_drops)),
        ]);
    }
    csv.save(out.join("exp_criterion_sweep.csv"))?;
    println!("wrote {}", out.join("exp_criterion_sweep.csv").display());

    // Aggregate shape checks.
    let total = cells.len();
    let count = |f: &dyn Fn(&Cell) -> bool| cells.iter().filter(|c| f(c)).count();
    let baseline_ok = count(&|c| c.baseline);
    let thm1_ok = count(&|c| c.theorem1);
    let crit_ok = count(&|c| c.case_criterion);
    let exact_ok = count(&|c| c.exact);
    let unsound_crit = count(&|c| c.case_criterion && !c.exact);
    let unsound_thm1 = count(&|c| c.theorem1 && !c.exact);
    let baseline_false_pos = count(&|c| c.baseline && !c.exact);
    let drops_agree = count(&|c| c.exact != c.fluid_drops);

    let mut table = Table::new(&["metric", "count", "of"]);
    table.row(&["baseline [4] approves".into(), baseline_ok.to_string(), total.to_string()]);
    table.row(&["Theorem 1 approves".into(), thm1_ok.to_string(), total.to_string()]);
    table.row(&["case criterion approves".into(), crit_ok.to_string(), total.to_string()]);
    table.row(&["exactly strongly stable".into(), exact_ok.to_string(), total.to_string()]);
    table.row(&["criterion unsound cells".into(), unsound_crit.to_string(), "0 expected".into()]);
    table.row(&["Theorem 1 unsound cells".into(), unsound_thm1.to_string(), "0 expected".into()]);
    table.row(&[
        "baseline false positives".into(),
        baseline_false_pos.to_string(),
        "the paper's motivating gap".into(),
    ]);
    table.row(&[
        "exact verdict == fluid no-drop".into(),
        (total - drops_agree).to_string(),
        total.to_string(),
    ]);
    print!("{table}");

    if unsound_crit > 0 || unsound_thm1 > 0 {
        return Err("criterion approved an unstable cell — soundness violation".into());
    }
    Ok(())
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atlas_orderings_hold_on_a_small_grid() {
        let base = BcnParams::test_defaults().with_buffer(1.5e5);
        let cells = compute_atlas(&base, 5);
        for c in &cells {
            // Baseline approves everything (Proposition 1).
            assert!(c.baseline, "{c:?}");
            // Soundness: criterion implies exact; Theorem 1 implies exact.
            assert!(!c.case_criterion || c.exact, "criterion unsound: {c:?}");
            assert!(!c.theorem1 || c.exact, "theorem 1 unsound: {c:?}");
            // Theorem 1 is at most as permissive as the case criterion.
            assert!(!c.theorem1 || c.case_criterion, "ordering broke: {c:?}");
        }
        // The gap exists: some exact-stable cells and some unstable ones.
        assert!(cells.iter().any(|c| c.exact));
        assert!(cells.iter().any(|c| !c.exact), "grid too easy");
    }

    #[test]
    fn atlas_params_matches_cell_gains() {
        // The bench work-list and the atlas itself must agree cell by
        // cell, or the benchmark times different systems than it claims.
        let base = BcnParams::test_defaults().with_buffer(1.5e5);
        let cells = compute_atlas(&base, 4);
        let params = atlas_params(&base, 4);
        assert_eq!(cells.len(), params.len());
        for (c, p) in cells.iter().zip(&params) {
            assert_eq!(c.gi, p.gi);
            assert_eq!(c.gd, p.gd);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_one_point_grid_is_rejected() {
        // Regression: n == 1 used to divide by (n - 1) and fill the
        // atlas with NaN gains instead of failing loudly.
        let base = BcnParams::test_defaults().with_buffer(1.5e5);
        let _ = compute_atlas(&base, 1);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn empty_grid_is_rejected() {
        let base = BcnParams::test_defaults().with_buffer(1.5e5);
        let _ = compute_atlas(&base, 0);
    }

    #[test]
    fn atlas_is_identical_at_any_thread_count() {
        let base = BcnParams::test_defaults().with_buffer(1.5e5);
        // Pin the width through the public override; the assertion is
        // exact equality, so any nondeterminism in placement or float
        // paths fails loudly.
        parkit::set_threads(1);
        let serial = compute_atlas(&base, 4);
        parkit::set_threads(4);
        let parallel = compute_atlas(&base, 4);
        parkit::set_threads(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn fluid_drops_track_exact_verdict_mostly() {
        let base = BcnParams::test_defaults().with_buffer(1.5e5);
        let cells = compute_atlas(&base, 4);
        let mismatches = cells.iter().filter(|c| c.exact == c.fluid_drops).count();
        // exact stable <=> no drops; allow a small boundary fringe.
        assert!(
            mismatches * 5 <= cells.len(),
            "fluid/exact disagreement on {mismatches}/{} cells",
            cells.len()
        );
    }
}
