//! Hunting the limit cycle: why does a BCN queue sometimes oscillate
//! forever instead of settling at `q0`?
//!
//! The linear analysis of the original BCN proposal cannot answer this —
//! each subsystem is provably stable. The phase-plane view can: the
//! round map on the switching line contracts by a fixed ratio `rho`, and
//! `rho -> 1` exactly as the queue-derivative feedback (`w`) vanishes.
//! This example measures `rho` across `w`, tunes `w` for a target decay,
//! and probes the full nonlinear model with a Poincaré return map.
//!
//! Run with `cargo run --example limit_cycle_hunt`.

use bcn::limit_cycle::{find_w_for_ratio, nonlinear_round_ratio};
use bcn::rounds::{round_ratio, round_ratio_analytic};
use bcn::{BcnFluid, BcnParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = BcnParams::test_defaults();

    println!("round-map contraction ratio rho vs derivative weight w:");
    for w in [8.0, 2.0, 0.5, 0.125, 0.03125, 0.0078125] {
        let p = base.clone().with_w(w);
        let rho = round_ratio(&p).ok_or("round did not close")?;
        let analytic = round_ratio_analytic(&p).ok_or("not case 1")?;
        println!(
            "  w = {w:<10}: rho = {rho:.6} (closed form {analytic:.6}) -> amplitude after 10 rounds: {:.1}%",
            rho.powi(10) * 100.0
        );
    }
    println!("  as w -> 0 the ratio approaches 1: every orbit becomes a limit cycle.\n");

    // Inverse design: what w gives a 10x decay per 10 rounds?
    let target = 0.1_f64.powf(0.1);
    if let Some(w) = find_w_for_ratio(&base, target, 1e-4, 50.0) {
        let check = round_ratio(&base.clone().with_w(w)).unwrap();
        println!("to decay 10x every 10 rounds, set w = {w:.4} (rho = {check:.6})\n");
    }

    // Does the *nonlinear* decrease law change the verdict? Measure the
    // amplitude-dependent ratio.
    let sys = BcnFluid::new(base.clone());
    println!("nonlinear model: return-map ratio by orbit amplitude:");
    for frac in [0.05, 0.25, 0.5, 1.0] {
        let s = -frac * base.q0;
        let rho = nonlinear_round_ratio(&sys, s)?;
        println!("  amplitude {:.0}% of q0: P(s)/s = {rho:.6}", frac * 100.0);
    }
    println!(
        "the nonlinear ratio *decreases* with amplitude (the (y + C) factor\n\
         damps large excursions harder), so the physical BCN loop has no\n\
         isolated limit cycle: sustained oscillation requires the w -> 0\n\
         degeneracy the paper's Fig. 7 illustrates."
    );
    Ok(())
}
