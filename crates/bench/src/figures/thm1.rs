//! Theorem 1 — the worked buffer-sizing example (the paper's only
//! "table") and the parameter sweeps behind its remarks.
//!
//! Reproduces Section IV-C's numbers: with `N = 50`, `C = 10 Gbit/s`,
//! `q0 = 2.5 Mbit`, `Gi = 4`, `Gd = 1/128`, `Ru = 8 Mbit/s` the strongly
//! stable buffer requirement is `(1 + sqrt(Ru Gi N/(Gd C))) q0 ~ 13.8
//! Mbit`, nearly three times the 5 Mbit bandwidth-delay product — the
//! classical buffer rule is unsustainable for lossless operation. The
//! sweeps verify the remarks: the overshoot term grows as `sqrt(N/C)`
//! and linearly in `q0`, and the exact trajectory maximum stays below
//! the bound (the criterion is sufficient, with measurable slack).

use std::path::Path;

use bcn::buffer::{paper_example, required_vs_capacity, required_vs_n, required_vs_q0};
use bcn::stability::{exact_verdict, overshoot_bound, theorem1_holds, theorem1_required_buffer};
use bcn::units::{GBPS, MBIT};
use bcn::BcnParams;
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot, Table};

use crate::common::{banner, out_dir, save_plot};
use crate::ExpResult;

/// Runs the generator; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    banner("Theorem 1: worked example and buffer-sizing sweeps");
    let params = BcnParams::paper_defaults();

    // The worked example.
    let ex = paper_example();
    let mut table = Table::new(&["quantity", "value"]);
    table.row(&["bandwidth-delay product (bits)".into(), format!("{:.3e}", ex.bdp)]);
    table.row(&["Theorem 1 required buffer (bits)".into(), format!("{:.3e}", ex.required)]);
    table.row(&["ratio required / BDP".into(), format!("{:.3}", ex.ratio)]);
    table.row(&["paper quotes".into(), "13.75 Mbit, 'nearly three times' the 5 Mbit BDP".into()]);
    table.row(&["BDP buffer passes Theorem 1?".into(), theorem1_holds(&params).to_string()]);
    print!("{table}");

    // Criterion vs exact trajectory (tightness of the bound).
    let exact = exact_verdict(&params, 30);
    let exact_needed = params.q0 + exact.max_x;
    println!(
        "exact trajectory needs {:.3e} bits; Theorem 1 asks {:.3e} (slack {:.1}%), proof bound sqrt(a/bC) q0 = {:.3e}",
        exact_needed,
        theorem1_required_buffer(&params),
        (theorem1_required_buffer(&params) / exact_needed - 1.0) * 100.0,
        overshoot_bound(&params),
    );

    // Sweeps.
    let ns: Vec<u32> = (1..=16).map(|i| 25 * i).collect();
    let sweep_n = required_vs_n(&params, &ns);
    let caps: Vec<f64> = (1..=16).map(|i| 2.5 * GBPS * f64::from(i)).collect();
    let sweep_c = required_vs_capacity(&params, &caps);
    let q0s: Vec<f64> = (1..=16).map(|i| 0.5 * MBIT * f64::from(i)).collect();
    let sweep_q = required_vs_q0(&params, &q0s);

    let mut csv = Csv::new(&["sweep", "parameter", "required_buffer_bits"]);
    for (n, b) in &sweep_n {
        csv.row(&[0.0, f64::from(*n), *b]);
    }
    for (c, b) in &sweep_c {
        csv.row(&[1.0, *c, *b]);
    }
    for (q, b) in &sweep_q {
        csv.row(&[2.0, *q, *b]);
    }
    csv.save(out.join("thm1_buffer_sizing.csv"))?;
    println!("wrote {}", out.join("thm1_buffer_sizing.csv").display());

    let xs: Vec<f64> = sweep_n.iter().map(|(n, _)| f64::from(*n)).collect();
    let ys: Vec<f64> = sweep_n.iter().map(|(_, b)| *b).collect();
    let plot_n =
        SvgPlot::new("Theorem 1: required buffer vs N", "flows N", "required buffer (bits)")
            .with_series(Series::line("required", &xs, &ys, COLOR_CYCLE[0]))
            .with_hline(ex.bdp, "#d62728");
    save_plot(&plot_n, out, "thm1_required_vs_n.svg")?;

    let xs: Vec<f64> = sweep_c.iter().map(|(c, _)| *c).collect();
    let ys: Vec<f64> = sweep_c.iter().map(|(_, b)| *b).collect();
    let plot_c = SvgPlot::new(
        "Theorem 1: required buffer vs C",
        "capacity (bit/s)",
        "required buffer (bits)",
    )
    .with_series(Series::line("required", &xs, &ys, COLOR_CYCLE[1]));
    save_plot(&plot_c, out, "thm1_required_vs_c.svg")?;

    let xs: Vec<f64> = sweep_q.iter().map(|(q, _)| *q).collect();
    let ys: Vec<f64> = sweep_q.iter().map(|(_, b)| *b).collect();
    let plot_q =
        SvgPlot::new("Theorem 1: required buffer vs q0", "q0 (bits)", "required buffer (bits)")
            .with_series(Series::line("required", &xs, &ys, COLOR_CYCLE[2]));
    save_plot(&plot_q, out, "thm1_required_vs_q0.svg")?;
    Ok(())
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("thm1_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        assert!(dir.join("thm1_buffer_sizing.csv").exists());
        assert!(dir.join("thm1_required_vs_n.svg").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
