//! Error type shared by all solvers in this crate.

use std::error::Error;
use std::fmt;

/// Failure modes of an integration run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// The adaptive stepper shrank the step below the representable
    /// minimum without meeting the error tolerance (usually a sign of a
    /// discontinuity inside the integration interval or an unreasonable
    /// tolerance).
    StepSizeUnderflow {
        /// Time at which the underflow occurred.
        t: f64,
        /// Step size at the time of failure.
        h: f64,
    },
    /// The right-hand side produced a non-finite value.
    NonFiniteState {
        /// Time at which the state became non-finite.
        t: f64,
    },
    /// The step budget was exhausted before reaching the end time.
    MaxStepsExceeded {
        /// Time reached when the budget ran out.
        t: f64,
        /// The configured step budget.
        max_steps: usize,
    },
    /// Invalid user-provided configuration (non-positive tolerance, zero
    /// step, end time not after start time, ...).
    BadInput(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::StepSizeUnderflow { t, h } => {
                write!(f, "step size underflow at t = {t} (h = {h})")
            }
            SolveError::NonFiniteState { t } => {
                write!(f, "state became non-finite at t = {t}")
            }
            SolveError::MaxStepsExceeded { t, max_steps } => {
                write!(f, "exceeded {max_steps} steps at t = {t}")
            }
            SolveError::BadInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            SolveError::StepSizeUnderflow { t: 1.0, h: 1e-18 },
            SolveError::NonFiniteState { t: 2.0 },
            SolveError::MaxStepsExceeded { t: 0.5, max_steps: 10 },
            SolveError::BadInput("rtol must be positive".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolveError>();
    }
}
