//! Propagation-delay ablation (paper Section III-A assumption).
//!
//! The paper argues the data-center propagation delay (microseconds) is
//! negligible against queueing delays. This experiment quantifies when
//! that breaks: the feedback delay `tau` is swept from zero to a loop
//! period, measuring the overshoot inflation and the point where the
//! queue stops contracting — the boundary of the zero-delay model's
//! validity. The finding worth reporting: because the default loop is
//! *lightly damped*, delays far below the oscillation period already
//! erase the contraction over long horizons, even though the first-round
//! overshoot (and hence the strong-stability criterion) moves very
//! little.

use std::path::Path;

use bcn::delay::DelayedBcn;
use bcn::rounds::first_round;
use bcn::BcnParams;
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot, Table};

use crate::common::{banner, out_dir, save_plot};
use crate::ExpResult;

/// Runs the experiment; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    banner("Propagation-delay ablation");
    let params = BcnParams::test_defaults();
    let fr = first_round(&params).expect("case 1");
    let period = std::f64::consts::TAU / params.a().sqrt();
    println!(
        "loop period (increase region): {period:.5} s; zero-delay max_1(x) = {:.1} bits",
        fr.max1_x
    );

    let fracs = [0.0, 0.002, 0.01, 0.05, 0.1, 0.2, 0.35, 0.5];
    let mut table = Table::new(&[
        "tau / period",
        "tau (s)",
        "max x (bits)",
        "inflation %",
        "still contracting",
    ]);
    let mut csv = Csv::new(&["tau", "max_x", "contracting"]);
    let mut taus = Vec::new();
    let mut maxes = Vec::new();
    for frac in fracs {
        let tau = frac * period;
        let dt_base = 0.002 / params.a().sqrt();
        let dt = if tau > 0.0 { dt_base.min(tau / 8.0) } else { dt_base };
        let run =
            DelayedBcn::new(params.clone(), tau).linearized().run(params.initial_point(), 3.0, dt);
        // Once the loop diverges the raw supremum is astronomically
        // large; cap reporting at 100x the buffer ("diverged").
        let cap = 100.0 * params.buffer;
        let diverged = run.max_x > cap;
        let shown = run.max_x.min(cap);
        table.row(&[
            format!("{frac:.3}"),
            format!("{tau:.6}"),
            if diverged { format!(">{cap:.1e} (diverged)") } else { format!("{shown:.1}") },
            if diverged { "-".into() } else { format!("{:.1}", (shown / fr.max1_x - 1.0) * 100.0) },
            run.contracting.to_string(),
        ]);
        csv.row(&[tau, shown, f64::from(u8::from(run.contracting))]);
        taus.push(tau);
        maxes.push(shown);
    }
    print!("{table}");

    csv.save(out.join("exp_delay_ablation.csv"))?;
    println!("wrote {}", out.join("exp_delay_ablation.csv").display());
    let plot = SvgPlot::new("Overshoot vs feedback delay", "tau (s)", "max x (bits)")
        .with_series(Series::line("max x", &taus, &maxes, COLOR_CYCLE[0]))
        .with_hline(fr.max1_x, "#999999")
        .with_hline(params.buffer - params.q0, "#d62728");
    save_plot(&plot, out, "exp_delay_ablation.svg")?;
    Ok(())
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("delay_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        assert!(dir.join("exp_delay_ablation.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
