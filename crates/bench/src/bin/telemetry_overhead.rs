//! Offline telemetry-overhead check.
//!
//! The Criterion benches (`benches/solvers.rs`) need a network fetch,
//! so this binary provides the no-dependency version of the same
//! guarantee: it integrates the paper's worked example repeatedly with
//! (a) no telemetry argument, (b) an `Off` sink, (c) a `Summary` sink,
//! and (d) a `Full` sink, and reports median wall times.
//!
//! All four configurations are pinned to the Dopri5 engine: the default
//! dispatch hands uninstrumented linearized runs to the closed-form
//! analytic engine, which would make (a) vs (d) an engine comparison,
//! not a telemetry one. The contracts are:
//!
//! - `Off` stays within 2% of no-argument (the hooks must be free when
//!   disabled);
//! - `Full` stays within 10% of `Summary` (the documented budget for
//!   what trace-level recording — span begin/end records and the ring
//!   of per-step events — adds on top of the counters, histograms, and
//!   series that `Summary` already collects).
//!
//! The second budget is deliberately relative to `Summary`, not to the
//! baseline: a DOPRI5 step on the 2-D fluid model is ~150 ns of work,
//! so *any* per-step accounting is a double-digit fraction of it — the
//! per-op hook costs (~20-40 ns, see the scratch numbers in DESIGN §8)
//! are what the gate protects, not the ratio against an integrator with
//! no accounting at all.
//!
//! Run release builds only — debug timings are meaningless:
//!
//! ```console
//! $ cargo run --release -p bench --bin telemetry_overhead
//! ```
//!
//! Set `DCE_BCN_QUICK=1` for the CI smoke variant (shorter horizon,
//! fewer repetitions; same gates).

use std::time::Instant;

use bcn::simulate::{fluid_trajectory_telemetry, Engine, FluidOptions};
use bcn::{BcnFluid, BcnParams};
use telemetry::{Telemetry, TelemetryLevel};

/// One timed integration with the requested sink (constructed outside
/// the timed region, as the CLI does).
fn one_run_secs(sys: &BcnFluid, p0: [f64; 2], t_end: f64, level: Option<TelemetryLevel>) -> f64 {
    let opts = FluidOptions::default().with_t_end(t_end).with_engine(Engine::Dopri5);
    let mut tel = level.map(Telemetry::new);
    let t0 = Instant::now();
    let run = fluid_trajectory_telemetry(sys, p0, &opts, tel.as_mut()).expect("fluid integration");
    let dt = t0.elapsed().as_secs_f64();
    assert!(!run.solution.is_empty(), "integration produced no samples");
    dt
}

fn best(samples: &[f64]) -> f64 {
    // The minimum is the robust estimator for "how fast can this code
    // go" — every slower sample is the same code plus scheduler or
    // clock noise.
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Median of a slice (destructive on order).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// One A/B/B/A round for a gated pair: runs `a, b, b, a` back to back
/// and returns `(sum_b / sum_a, a_samples, b_samples)`.
///
/// The mirrored order cancels both linear machine-speed drift within
/// the round and position effects (whatever state the preceding run
/// leaves behind lands on each configuration once) — on shared CI
/// boxes those biases are larger than the effect being measured, which
/// makes a min-over-all-rounds comparison between two configurations
/// flaky.
fn abba_round(
    sys: &BcnFluid,
    p0: [f64; 2],
    t_end: f64,
    a: Option<TelemetryLevel>,
    b: Option<TelemetryLevel>,
) -> (f64, [f64; 2], [f64; 2]) {
    let a1 = one_run_secs(sys, p0, t_end, a);
    let b1 = one_run_secs(sys, p0, t_end, b);
    let b2 = one_run_secs(sys, p0, t_end, b);
    let a2 = one_run_secs(sys, p0, t_end, a);
    ((b1 + b2) / (a1 + a2), [a1, a2], [b1, b2])
}

fn main() {
    let quick = std::env::var("DCE_BCN_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let (t_end, reps) = if quick { (0.05, 15) } else { (0.1, 25) };

    let p = BcnParams::paper_defaults();
    let sys = BcnFluid::linearized(p.clone());
    let p0 = p.initial_point();

    // Warm up caches and the allocator before timing.
    for _ in 0..3 {
        let _ = one_run_secs(&sys, p0, t_end, None);
    }

    // Each gate compares exactly two configurations, so measure them as
    // paired A/B/B/A rounds and take the median per-round ratio.
    let mut samples: [Vec<f64>; 4] = Default::default();
    let mut off_ratios = Vec::with_capacity(reps);
    let mut trace_ratios = Vec::with_capacity(reps);
    for _ in 0..reps {
        let (r, base_s, off_s) = abba_round(&sys, p0, t_end, None, Some(TelemetryLevel::Off));
        off_ratios.push(r);
        samples[0].extend(base_s);
        samples[1].extend(off_s);
        let (r, summary_s, full_s) =
            abba_round(&sys, p0, t_end, Some(TelemetryLevel::Summary), Some(TelemetryLevel::Full));
        trace_ratios.push(r);
        samples[2].extend(summary_s);
        samples[3].extend(full_s);
    }
    let [base, off, summary, full] = [&samples[0], &samples[1], &samples[2], &samples[3]];
    let [base_t, off_t, summary_t, full_t] = [best(base), best(off), best(summary), best(full)];

    let off_pct = (median(&mut off_ratios) - 1.0) * 100.0;
    let trace_pct = (median(&mut trace_ratios) - 1.0) * 100.0;
    let pct = |t: f64| (t / base_t - 1.0) * 100.0;
    let mode = if quick { " [quick]" } else { "" };
    println!("telemetry overhead on fluid_trajectory ({t_end} s horizon, median of {reps} A/B/B/A rounds){mode}:");
    println!("  none (baseline):  {:.3} ms", base_t * 1e3);
    println!("  level off:        {:.3} ms  ({:+.2}%)", off_t * 1e3, pct(off_t));
    println!("  level summary:    {:.3} ms  ({:+.2}%)", summary_t * 1e3, pct(summary_t));
    println!("  level full:       {:.3} ms  ({:+.2}%)", full_t * 1e3, pct(full_t));
    println!("  off vs none:       {off_pct:+.2}% (median A/B/B/A ratio)");
    println!("  full over summary: {trace_pct:+.2}% (median A/B/B/A ratio, trace-level budget)");

    let mut failed = false;
    if off_pct > 2.0 {
        telemetry::log_line!("FAIL: off-level overhead {off_pct:.2}% exceeds the 2% budget");
        failed = true;
    }
    if trace_pct > 10.0 {
        telemetry::log_line!(
            "FAIL: trace-level overhead {trace_pct:.2}% over summary exceeds the 10% budget"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("off within the 2% budget; trace level within 10% of summary");
}
