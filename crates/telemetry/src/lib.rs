//! Zero-dependency observability layer for the DCE-BCN workspace.
//!
//! Three pieces, all allocation-light and cheap enough for solver and
//! simulator hot loops:
//!
//! * a [`Registry`] of named counters, gauges, and log-linear
//!   [`Histogram`]s (p50/p90/p99/max at ~4.4% relative resolution);
//! * a bounded ring-buffer [`EventTrace`] of typed [`Event`]s with
//!   monotonic sim-time stamps;
//! * JSONL export ([`event_to_jsonl`]/[`event_from_jsonl`]) so traces
//!   can be dumped, diffed, and parsed back losslessly.
//!
//! The [`Telemetry`] facade bundles them behind a [`TelemetryLevel`]:
//! `Off` turns every hook into a single branch, `Summary` keeps only
//! aggregates, `Full` also records the event trace. Instrumented code
//! threads an `Option<&mut Telemetry>` so the disabled path stays a
//! near-no-op:
//!
//! ```
//! use telemetry::{Telemetry, TelemetryLevel};
//!
//! let mut tel = Telemetry::new(TelemetryLevel::Full);
//! tel.step_accepted(0.1, 1e-3, 0.4);
//! tel.region_switch(0.2, 0, 1);
//! assert_eq!(tel.metrics.counter_by_name("hybrid.region_switches"), Some(1));
//! assert_eq!(tel.trace.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod histogram;
mod jsonl;
mod level;
mod logging;
mod metrics;
mod series;
mod snapshot;
mod trace;

pub use event::{Event, ExtremumKind, FaultClass, SpanKind};
pub use histogram::Histogram;
pub use jsonl::{
    check_schema_header, event_from_jsonl, event_to_jsonl, fmt_num, parse_scalars, schema_header,
    JsonlError, Scalar, TRACE_SCHEMA_VERSION,
};
pub use level::TelemetryLevel;
pub use logging::{quiet, set_quiet};
pub use metrics::{CounterId, Gauge, GaugeId, HistogramId, Registry};
pub use series::{SeriesBank, SeriesKind, TimeSeries, SERIES_CAPACITY};
pub use snapshot::{snapshot_from_jsonl, snapshot_to_jsonl};
pub use trace::{EventTrace, DEFAULT_TRACE_CAPACITY};

/// An open (begun but not yet ended) causal span.
///
/// The stack of open spans at a crash is the flight recorder's "span
/// stack": it names the batch seed, the flows still active, and any
/// scope that was in progress when the panic unwound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanInfo {
    /// Trace-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// What activity the span covers.
    pub kind: SpanKind,
    /// The entity the span is about (flow, port, mode, or seed).
    pub entity: u32,
    /// When the span was opened (sim seconds).
    pub t_begin: f64,
}

/// Pre-registered handles for the core instrumentation points, so hot
/// loops never pay a name lookup.
#[derive(Debug, Clone, PartialEq)]
struct CoreIds {
    steps_accepted: CounterId,
    steps_rejected: CounterId,
    events_located: CounterId,
    region_switches: CounterId,
    queue_threshold_crossings: CounterId,
    queue_extrema: CounterId,
    bcn_messages: CounterId,
    qcn_messages: CounterId,
    pause_events: CounterId,
    frames_dropped: CounterId,
    faults: [CounterId; FaultClass::ALL.len()],
    spans: CounterId,
    cache_hits: CounterId,
    cache_misses: CounterId,
    cache_evictions: CounterId,
    query_batches: CounterId,
    query_queries: CounterId,
    sched_scheduled: CounterId,
    sched_popped: CounterId,
    sched_cascades: CounterId,
    sched_overflow: CounterId,
    batch_resumed: CounterId,
    batch_retried: CounterId,
    batch_timed_out: CounterId,
    hybrid_epochs: CounterId,
    hybrid_reseeds: CounterId,
    hybrid_ff_ns: CounterId,
    hybrid_packet_ns: CounterId,
    step_size: HistogramId,
    step_error: HistogramId,
    event_iters: HistogramId,
    queue_occupancy: HistogramId,
    fb_value: HistogramId,
    query_batch_qps: HistogramId,
    queue_gauge: GaugeId,
    sched_max_pending: GaugeId,
}

/// The facade instrumented code records into.
///
/// Construct with a [`TelemetryLevel`]; pass as `Option<&mut Telemetry>`
/// (use `None` or level `Off` to disable). The `metrics` registry and
/// `trace` ring are public for custom metrics and post-run inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    level: TelemetryLevel,
    /// The metrics registry (public for custom metrics and summaries).
    pub metrics: Registry,
    /// The bounded event trace (populated only at level `Full`).
    pub trace: EventTrace,
    /// Per-entity downsampled time series (populated from `Summary` up).
    pub series: SeriesBank,
    ids: CoreIds,
    open_spans: Vec<SpanInfo>,
    next_span_id: u64,
}

impl Telemetry {
    /// Creates a telemetry sink at the given level with the default
    /// trace capacity.
    #[must_use]
    pub fn new(level: TelemetryLevel) -> Self {
        Self::with_trace_capacity(level, DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a telemetry sink with an explicit trace capacity.
    #[must_use]
    pub fn with_trace_capacity(level: TelemetryLevel, capacity: usize) -> Self {
        let mut metrics = Registry::new();
        let ids = CoreIds {
            steps_accepted: metrics.counter("solver.steps_accepted"),
            steps_rejected: metrics.counter("solver.steps_rejected"),
            events_located: metrics.counter("solver.events_located"),
            region_switches: metrics.counter("hybrid.region_switches"),
            queue_threshold_crossings: metrics.counter("queue.threshold_crossings"),
            queue_extrema: metrics.counter("queue.extrema"),
            bcn_messages: metrics.counter("sim.bcn_messages"),
            qcn_messages: metrics.counter("sim.qcn_messages"),
            pause_events: metrics.counter("sim.pause_events"),
            frames_dropped: metrics.counter("sim.frames_dropped"),
            faults: FaultClass::ALL.map(|c| metrics.counter(&format!("faults.{}", c.name()))),
            spans: metrics.counter("trace.spans"),
            cache_hits: metrics.counter("propagator.cache.hits"),
            cache_misses: metrics.counter("propagator.cache.misses"),
            cache_evictions: metrics.counter("propagator.cache.evictions"),
            query_batches: metrics.counter("query.batches"),
            query_queries: metrics.counter("query.queries"),
            sched_scheduled: metrics.counter("scheduler.events_scheduled"),
            sched_popped: metrics.counter("scheduler.events_popped"),
            sched_cascades: metrics.counter("scheduler.cascades"),
            sched_overflow: metrics.counter("scheduler.overflow_parked"),
            batch_resumed: metrics.counter("batch.resumed"),
            batch_retried: metrics.counter("batch.retried"),
            batch_timed_out: metrics.counter("batch.timed_out"),
            hybrid_epochs: metrics.counter("hybrid.epochs"),
            hybrid_reseeds: metrics.counter("hybrid.reseeds"),
            hybrid_ff_ns: metrics.counter("hybrid.ff_ns"),
            hybrid_packet_ns: metrics.counter("hybrid.packet_ns"),
            step_size: metrics.histogram("solver.step_size_s"),
            step_error: metrics.histogram("solver.step_error"),
            event_iters: metrics.histogram("solver.event_location_iters"),
            queue_occupancy: metrics.histogram("queue.occupancy_bits"),
            fb_value: metrics.histogram("sim.fb_value"),
            query_batch_qps: metrics.histogram("query.batch_qps"),
            queue_gauge: metrics.gauge("queue.occupancy_bits"),
            sched_max_pending: metrics.gauge("scheduler.max_pending"),
        };
        let mut trace = EventTrace::with_capacity(capacity);
        if level.traces() {
            // Trace-level sinks feed solver/simulator hot loops; growth
            // reallocations mid-run are measurable there (the default
            // ring is ~2.5 MB — cheap for a sink that exists to record
            // a full trace), so pre-allocate the whole ring.
            trace.reserve(capacity);
        }
        Self {
            level,
            metrics,
            trace,
            series: SeriesBank::new(),
            ids,
            open_spans: Vec::new(),
            next_span_id: 0,
        }
    }

    /// Sets the base from which subsequent span ids are allocated (the
    /// next span gets `base + 1`).
    ///
    /// The batch runner gives each seed the base `(seed + 1) << 32` so
    /// span ids are unique and deterministic across merged shards at
    /// any thread count. Bases must stay below 2^53 so ids survive the
    /// JSONL float codec.
    pub fn set_span_id_base(&mut self, base: u64) {
        self.next_span_id = base;
    }

    #[inline]
    fn alloc_span_id(&mut self) -> u64 {
        self.next_span_id += 1;
        self.next_span_id
    }

    /// The id of the outermost open span, or 0 when none is open.
    ///
    /// Instrumented code uses this as the default `parent` so activity
    /// attributes to the enclosing scope (e.g. the batch seed).
    #[must_use]
    pub fn root_span(&self) -> u64 {
        self.open_spans.first().map_or(0, |s| s.id)
    }

    /// Opens a causal span of `kind` about `entity` at time `t`, nested
    /// under `parent` (0 for a root span). Returns the span id, or 0
    /// when collection is disabled (safe to pass to [`span_end`]).
    ///
    /// The open-span stack is maintained from `Summary` up; the
    /// [`Event::SpanBegin`] trace record is kept only at `Full`.
    ///
    /// [`span_end`]: Telemetry::span_end
    pub fn span_begin(&mut self, t: f64, kind: SpanKind, entity: u32, parent: u64) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let id = self.alloc_span_id();
        self.metrics.inc(self.ids.spans, 1);
        self.open_spans.push(SpanInfo { id, parent, kind, entity, t_begin: t });
        self.push(Event::SpanBegin { t, id, parent, kind, entity });
        id
    }

    /// Closes span `id` at time `t`. A no-op for id 0 or when
    /// collection is disabled.
    pub fn span_end(&mut self, t: f64, id: u64) {
        if !self.enabled() || id == 0 {
            return;
        }
        if let Some(pos) = self.open_spans.iter().rposition(|s| s.id == id) {
            self.open_spans.remove(pos);
        }
        self.push(Event::SpanEnd { t, id });
    }

    /// The currently open spans, outermost first (the crash flight
    /// recorder's span stack).
    #[must_use]
    pub fn open_spans(&self) -> &[SpanInfo] {
        &self.open_spans
    }

    /// The configured collection level.
    #[must_use]
    pub fn level(&self) -> TelemetryLevel {
        self.level
    }

    /// Whether any collection is enabled.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.level.enabled()
    }

    #[inline]
    fn push(&mut self, e: Event) {
        if self.level.traces() {
            self.trace.push(e);
        }
    }

    /// Records an accepted solver step of size `h` ending at time `t`
    /// with scaled error-norm estimate `err` (NaN for fixed-step
    /// methods).
    #[inline]
    pub fn step_accepted(&mut self, t: f64, h: f64, err: f64) {
        if !self.enabled() {
            return;
        }
        self.metrics.inc(self.ids.steps_accepted, 1);
        self.metrics.record(self.ids.step_size, h);
        if err.is_finite() {
            self.metrics.record(self.ids.step_error, err);
        }
        self.push(Event::SolverStepAccepted { t, h, err });
    }

    /// Records `n` rejected trial steps at time `t`, the last of size `h`.
    #[inline]
    pub fn steps_rejected(&mut self, t: f64, h: f64, n: u32) {
        if !self.enabled() || n == 0 {
            return;
        }
        self.metrics.inc(self.ids.steps_rejected, u64::from(n));
        self.push(Event::SolverStepRejected { t, h });
    }

    /// Records a located switching-surface crossing at `t` after
    /// `iterations` bisection iterations.
    #[inline]
    pub fn event_located(&mut self, t: f64, iterations: u32) {
        if !self.enabled() {
            return;
        }
        self.metrics.inc(self.ids.events_located, 1);
        self.metrics.record(self.ids.event_iters, f64::from(iterations));
        self.push(Event::SwitchCrossingLocated { t, iterations });
    }

    /// Records a hybrid-system region switch at `t`.
    #[inline]
    pub fn region_switch(&mut self, t: f64, from: u32, to: u32) {
        if !self.enabled() {
            return;
        }
        self.metrics.inc(self.ids.region_switches, 1);
        self.push(Event::RegionSwitch { t, from, to });
    }

    /// Samples the queue occupancy `q` (bits) at time `t` into the
    /// gauge, histogram, and the entity-0 queue-depth series.
    #[inline]
    pub fn queue_sample(&mut self, t: f64, q: f64) {
        if !self.enabled() {
            return;
        }
        self.metrics.set_gauge(self.ids.queue_gauge, q);
        self.metrics.record(self.ids.queue_occupancy, q);
        self.series.record(SeriesKind::QueueDepth, 0, t, q);
    }

    /// Samples queue occupancy for a specific switch/queue `entity`
    /// (multi-hop engine): histogram plus the per-entity series, no
    /// single-queue gauge.
    #[inline]
    pub fn queue_sample_entity(&mut self, t: f64, entity: u32, q: f64) {
        if !self.enabled() {
            return;
        }
        self.metrics.record(self.ids.queue_occupancy, q);
        self.series.record(SeriesKind::QueueDepth, entity, t, q);
    }

    /// Records a per-entity time-series sample (e.g. a flow's send
    /// rate) without touching any counter or histogram.
    #[inline]
    pub fn series_sample(&mut self, kind: SeriesKind, entity: u32, t: f64, v: f64) {
        if !self.enabled() {
            return;
        }
        self.series.record(kind, entity, t, v);
    }

    /// Records the queue crossing `threshold` at time `t`.
    #[inline]
    pub fn queue_threshold(&mut self, t: f64, q: f64, threshold: f64, rising: bool) {
        if !self.enabled() {
            return;
        }
        self.metrics.inc(self.ids.queue_threshold_crossings, 1);
        self.push(Event::QueueThresholdCrossed { t, q, threshold, rising });
    }

    /// Records a local queue extremum at time `t`.
    #[inline]
    pub fn queue_extremum(&mut self, t: f64, q: f64, kind: ExtremumKind) {
        if !self.enabled() {
            return;
        }
        self.metrics.inc(self.ids.queue_extrema, 1);
        self.push(Event::QueueExtremum { t, q, kind });
    }

    /// Records a BCN feedback message with value `fb` sent to `source`.
    #[inline]
    pub fn bcn_message(&mut self, t: f64, fb: f64, source: u32) {
        if !self.enabled() {
            return;
        }
        self.metrics.inc(self.ids.bcn_messages, 1);
        self.metrics.record(self.ids.fb_value, fb.abs());
        self.series.record(SeriesKind::Fb, source, t, fb);
        self.push(Event::BcnMessageEmitted { t, fb, source });
    }

    /// Records a QCN feedback message with value `fb` sent to `source`.
    #[inline]
    pub fn qcn_message(&mut self, t: f64, fb: f64, source: u32) {
        if !self.enabled() {
            return;
        }
        self.metrics.inc(self.ids.qcn_messages, 1);
        self.metrics.record(self.ids.fb_value, fb.abs());
        self.series.record(SeriesKind::Fb, source, t, fb);
        self.push(Event::QcnMessageEmitted { t, fb, source });
    }

    /// Records a PAUSE taking effect at `port` from time `t` until
    /// `until` (the deassert event is emitted eagerly, stamped `until`).
    ///
    /// The episode is also wrapped in a `PauseEpisode` span (begin and
    /// end emitted eagerly, parented to the outermost open span) so a
    /// PAUSE storm renders as bands in a causal tree rather than
    /// interleaved points.
    #[inline]
    pub fn pause(&mut self, t: f64, until: f64, port: u32) {
        if !self.enabled() {
            return;
        }
        self.metrics.inc(self.ids.pause_events, 1);
        self.metrics.inc(self.ids.spans, 1);
        let parent = self.root_span();
        let id = self.alloc_span_id();
        self.push(Event::SpanBegin { t, id, parent, kind: SpanKind::PauseEpisode, entity: port });
        self.push(Event::PauseAsserted { t, port });
        self.push(Event::PauseDeasserted { t: until, port });
        self.push(Event::SpanEnd { t: until, id });
    }

    /// Records a frame dropped at `port` at time `t`.
    #[inline]
    pub fn frame_dropped(&mut self, t: f64, port: u32) {
        if !self.enabled() {
            return;
        }
        self.metrics.inc(self.ids.frames_dropped, 1);
        self.push(Event::FrameDropped { t, port });
    }

    /// Records an injected fault of `class` hitting `target` at time `t`
    /// (per-class counters `faults.<class>` plus a trace event).
    #[inline]
    pub fn fault_injected(&mut self, t: f64, class: FaultClass, target: u32) {
        if !self.enabled() {
            return;
        }
        self.metrics.inc(self.ids.faults[class.index()], 1);
        self.push(Event::FaultInjected { t, class, target });
    }

    /// Folds a delta of the analytic propagator's process-global
    /// memo-cache counters into the
    /// `propagator.cache.{hits,misses,evictions}` metrics, so cache
    /// efficacy (and CLOCK churn past the shard capacity) shows up in
    /// reports.
    ///
    /// Callers snapshot `bcn::propagate::cache_stats()` around an
    /// analytic run and pass the difference; batch workers must not
    /// call this (the global counters race across worker threads and
    /// would break bit-identical merges).
    #[inline]
    pub fn propagator_cache(&mut self, hits: u64, misses: u64, evictions: u64) {
        if !self.enabled() {
            return;
        }
        self.metrics.inc(self.ids.cache_hits, hits);
        self.metrics.inc(self.ids.cache_misses, misses);
        self.metrics.inc(self.ids.cache_evictions, evictions);
    }

    /// Records one batched stability-query run: the `query.*` counters
    /// plus a sample of the batch's achieved queries-per-second in the
    /// `query.batch_qps` histogram.
    ///
    /// Flushed once per batch (never per query); pair with
    /// [`Telemetry::propagator_cache`] to attribute the cache traffic
    /// the batch generated.
    #[inline]
    pub fn query_stats(&mut self, batches: u64, queries: u64, batch_qps: f64) {
        if !self.enabled() {
            return;
        }
        self.metrics.inc(self.ids.query_batches, batches);
        self.metrics.inc(self.ids.query_queries, queries);
        self.metrics.record(self.ids.query_batch_qps, batch_qps);
    }

    /// Records one simulation run's event-scheduler activity
    /// (`scheduler.*` counters plus the pending-event high-water mark).
    ///
    /// Flushed once when a run finalizes, never on the hot path. Note
    /// that `cascades` and `overflow_parked` are implementation detail
    /// of the timing-wheel backend and legitimately differ between
    /// schedulers even for bit-identical runs; equivalence checks must
    /// compare the simulation counters, not `scheduler.*`.
    #[inline]
    pub fn scheduler_stats(
        &mut self,
        scheduled: u64,
        popped: u64,
        cascades: u64,
        overflow_parked: u64,
        max_pending: u64,
    ) {
        if !self.enabled() {
            return;
        }
        self.metrics.inc(self.ids.sched_scheduled, scheduled);
        self.metrics.inc(self.ids.sched_popped, popped);
        self.metrics.inc(self.ids.sched_cascades, cascades);
        self.metrics.inc(self.ids.sched_overflow, overflow_parked);
        self.metrics.set_gauge(self.ids.sched_max_pending, max_pending as f64);
    }

    /// Records one fluid fast-forward epoch of the hybrid co-simulation
    /// engine covering `[t0, t1)` (sim seconds): a `HybridEpoch` span
    /// (begin and end emitted eagerly, like PAUSE episodes, since the
    /// epoch's extent is known when it commits) parented to the
    /// outermost open span, plus the `hybrid.epochs` counter. `entity`
    /// is the epoch's ordinal within the run.
    #[inline]
    pub fn hybrid_epoch(&mut self, t0: f64, t1: f64, entity: u32) {
        if !self.enabled() {
            return;
        }
        self.metrics.inc(self.ids.hybrid_epochs, 1);
        self.metrics.inc(self.ids.spans, 1);
        let parent = self.root_span();
        let id = self.alloc_span_id();
        self.push(Event::SpanBegin { t: t0, id, parent, kind: SpanKind::HybridEpoch, entity });
        self.push(Event::SpanEnd { t: t1, id });
    }

    /// Records one hybrid run's epoch accounting: packet→fluid reseeds
    /// (`hybrid.reseeds`) and the split of simulated time between the
    /// fluid fast-forward path (`hybrid.ff_ns`) and the packet engine
    /// (`hybrid.packet_ns`), both in simulated nanoseconds.
    ///
    /// Flushed once when a hybrid run finishes, never on the hot path.
    #[inline]
    pub fn hybrid_stats(&mut self, reseeds: u64, ff_ns: u64, packet_ns: u64) {
        if !self.enabled() {
            return;
        }
        self.metrics.inc(self.ids.hybrid_reseeds, reseeds);
        self.metrics.inc(self.ids.hybrid_ff_ns, ff_ns);
        self.metrics.inc(self.ids.hybrid_packet_ns, packet_ns);
    }

    /// Records batch-supervision activity: seeds skipped because a
    /// checkpoint already held their outcome (`batch.resumed`), retry
    /// attempts spent on failing seeds (`batch.retried`), and seeds the
    /// watchdog demoted (`batch.timed_out`).
    ///
    /// `retried`/`timed_out` are deterministic facts of the batch and
    /// are folded into the merged aggregate by the runner; `resumed` is
    /// a property of *this* process's execution and is bumped by the
    /// CLI into its rendering copy only, so a resumed run's merged
    /// artifact stays byte-identical to an uninterrupted one.
    #[inline]
    pub fn batch_supervision(&mut self, resumed: u64, retried: u64, timed_out: u64) {
        if !self.enabled() {
            return;
        }
        self.metrics.inc(self.ids.batch_resumed, resumed);
        self.metrics.inc(self.ids.batch_retried, retried);
        self.metrics.inc(self.ids.batch_timed_out, timed_out);
    }

    /// Merges a worker shard into this sink.
    ///
    /// Counters add, gauge envelopes widen (`last` taken from the shard
    /// when it recorded anything — merge shards oldest-first), and
    /// histogram buckets add exactly, so p50/p90/p99 summaries are
    /// identical to what single-sink recording would have produced. The
    /// event traces are re-interleaved by sim-time (stable, this sink
    /// first at ties). The collection level stays this sink's; merging
    /// is pure data transfer and never changes what future hooks record.
    ///
    /// This is the aggregation half of the workspace's parallel-sweep
    /// telemetry: each worker records into its own `Telemetry` with no
    /// locks on the hot path, and the coordinator folds the shards
    /// together afterwards.
    pub fn merge(&mut self, other: &Telemetry) {
        self.metrics.merge(&other.metrics);
        self.trace.merge_by_time(&other.trace);
        self.series.merge(&other.series);
    }

    /// Serializes the event trace to JSONL: a schema header line
    /// followed by one event per line (oldest first), with a trailing
    /// newline.
    #[must_use]
    pub fn trace_to_jsonl(&self) -> String {
        let mut out = schema_header();
        out.push('\n');
        for e in self.trace.iter() {
            out.push_str(&event_to_jsonl(e));
            out.push('\n');
        }
        out
    }
}

impl Default for Telemetry {
    /// An `Off` sink: every hook short-circuits.
    fn default() -> Self {
        Self::new(TelemetryLevel::Off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_level_records_nothing() {
        let mut tel = Telemetry::new(TelemetryLevel::Off);
        tel.step_accepted(0.1, 1e-3, 0.5);
        tel.region_switch(0.2, 0, 1);
        tel.frame_dropped(0.3, 1);
        assert_eq!(tel.metrics.counter_by_name("solver.steps_accepted"), Some(0));
        assert_eq!(tel.metrics.counter_by_name("hybrid.region_switches"), Some(0));
        assert!(tel.trace.is_empty());
    }

    #[test]
    fn summary_level_records_metrics_but_no_trace() {
        let mut tel = Telemetry::new(TelemetryLevel::Summary);
        tel.step_accepted(0.1, 1e-3, 0.5);
        tel.steps_rejected(0.1, 5e-4, 2);
        assert_eq!(tel.metrics.counter_by_name("solver.steps_accepted"), Some(1));
        assert_eq!(tel.metrics.counter_by_name("solver.steps_rejected"), Some(2));
        assert_eq!(tel.metrics.histogram_by_name("solver.step_size_s").unwrap().count(), 1);
        assert!(tel.trace.is_empty());
    }

    #[test]
    fn full_level_records_trace_in_order() {
        let mut tel = Telemetry::new(TelemetryLevel::Full);
        tel.step_accepted(0.1, 1e-3, 0.5);
        tel.event_located(0.15, 12);
        tel.region_switch(0.15, 1, 0);
        tel.queue_extremum(0.2, 1e6, ExtremumKind::Max);
        tel.pause(0.3, 0.4, 2);
        let kinds: Vec<&str> = tel.trace.iter().map(Event::type_name).collect();
        assert_eq!(
            kinds,
            [
                "solver_step_accepted",
                "switch_crossing_located",
                "region_switch",
                "queue_extremum",
                "span_begin",
                "pause_asserted",
                "pause_deasserted",
                "span_end",
            ]
        );
        let jsonl = tel.trace_to_jsonl();
        assert_eq!(jsonl.lines().count(), 1 + 8);
        let mut lines = jsonl.lines();
        check_schema_header(lines.next().unwrap()).unwrap();
        for line in lines {
            event_from_jsonl(line).unwrap();
        }
    }

    #[test]
    fn spans_nest_and_track_the_open_stack() {
        let mut tel = Telemetry::new(TelemetryLevel::Full);
        let seed = tel.span_begin(0.0, SpanKind::BatchSeed, 7, 0);
        assert_ne!(seed, 0);
        assert_eq!(tel.root_span(), seed);
        let flow = tel.span_begin(0.1, SpanKind::FlowLifetime, 2, tel.root_span());
        assert_eq!(tel.open_spans().len(), 2);
        assert_eq!(tel.open_spans()[1].parent, seed);
        tel.span_end(0.5, flow);
        assert_eq!(tel.open_spans().len(), 1);
        tel.span_end(1.0, seed);
        assert!(tel.open_spans().is_empty());
        assert_eq!(tel.metrics.counter_by_name("trace.spans"), Some(2));
        let kinds: Vec<&str> = tel.trace.iter().map(Event::type_name).collect();
        assert_eq!(kinds, ["span_begin", "span_begin", "span_end", "span_end"]);
    }

    #[test]
    fn span_ids_follow_the_configured_base() {
        let mut tel = Telemetry::new(TelemetryLevel::Summary);
        tel.set_span_id_base((7 + 1) << 32);
        let id = tel.span_begin(0.0, SpanKind::BatchSeed, 7, 0);
        assert_eq!(id, ((7 + 1) << 32) + 1);
        // Summary keeps the stack but not the trace.
        assert_eq!(tel.open_spans().len(), 1);
        assert!(tel.trace.is_empty());
    }

    #[test]
    fn disabled_spans_are_free_and_id_zero_is_inert() {
        let mut tel = Telemetry::new(TelemetryLevel::Off);
        let id = tel.span_begin(0.0, SpanKind::SolverLeg, 0, 0);
        assert_eq!(id, 0);
        tel.span_end(1.0, id);
        assert!(tel.open_spans().is_empty());
        assert!(tel.trace.is_empty());
        assert_eq!(tel.metrics.counter_by_name("trace.spans"), Some(0));
    }

    #[test]
    fn queue_samples_feed_the_entity_series() {
        let mut tel = Telemetry::new(TelemetryLevel::Summary);
        tel.queue_sample(0.0, 100.0);
        tel.queue_sample(0.1, 200.0);
        tel.queue_sample_entity(0.2, 3, 50.0);
        tel.series_sample(SeriesKind::FlowRate, 1, 0.3, 1e6);
        assert_eq!(tel.series.get(SeriesKind::QueueDepth, 0).unwrap().len(), 2);
        assert_eq!(tel.series.get(SeriesKind::QueueDepth, 3).unwrap().points(), [(0.2, 50.0)]);
        assert_eq!(tel.series.get(SeriesKind::FlowRate, 1).unwrap().points(), [(0.3, 1e6)]);
        // Entity samples feed the occupancy histogram but not the gauge.
        assert_eq!(tel.metrics.histogram_by_name("queue.occupancy_bits").unwrap().count(), 3);
        assert_eq!(tel.metrics.gauge_by_name("queue.occupancy_bits").unwrap().samples, 2);
    }

    #[test]
    fn propagator_cache_counters_accumulate() {
        let mut tel = Telemetry::new(TelemetryLevel::Summary);
        tel.propagator_cache(10, 3, 1);
        tel.propagator_cache(5, 0, 0);
        assert_eq!(tel.metrics.counter_by_name("propagator.cache.hits"), Some(15));
        assert_eq!(tel.metrics.counter_by_name("propagator.cache.misses"), Some(3));
        assert_eq!(tel.metrics.counter_by_name("propagator.cache.evictions"), Some(1));
        let mut off = Telemetry::new(TelemetryLevel::Off);
        off.propagator_cache(10, 3, 0);
        assert_eq!(off.metrics.counter_by_name("propagator.cache.hits"), Some(0));
    }

    #[test]
    fn query_stats_feed_counters_and_qps_histogram() {
        let mut tel = Telemetry::new(TelemetryLevel::Summary);
        tel.query_stats(1, 1024, 2.0e6);
        tel.query_stats(1, 256, 1.5e6);
        assert_eq!(tel.metrics.counter_by_name("query.batches"), Some(2));
        assert_eq!(tel.metrics.counter_by_name("query.queries"), Some(1280));
        assert_eq!(tel.metrics.histogram_by_name("query.batch_qps").unwrap().count(), 2);
        let mut off = Telemetry::new(TelemetryLevel::Off);
        off.query_stats(1, 8, 1.0);
        assert_eq!(off.metrics.counter_by_name("query.batches"), Some(0));
    }

    #[test]
    fn queue_sample_feeds_gauge_and_histogram() {
        let mut tel = Telemetry::new(TelemetryLevel::Summary);
        for q in [100.0, 300.0, 200.0] {
            tel.queue_sample(0.0, q);
        }
        let g = tel.metrics.gauge_by_name("queue.occupancy_bits").unwrap();
        assert_eq!(g.last, 200.0);
        assert_eq!(g.min, 100.0);
        assert_eq!(g.max, 300.0);
        assert_eq!(tel.metrics.histogram_by_name("queue.occupancy_bits").unwrap().count(), 3);
    }

    #[test]
    fn merged_shards_equal_sequential_recording() {
        // Two workers each record half of an interleaved run; the merge
        // must equal one sink that saw everything, in time order.
        let mut reference = Telemetry::new(TelemetryLevel::Full);
        let mut shard_a = Telemetry::new(TelemetryLevel::Full);
        let mut shard_b = Telemetry::new(TelemetryLevel::Full);
        for i in 0..100u32 {
            let t = f64::from(i) * 0.01;
            let h = 1e-4 * f64::from(i % 7 + 1);
            reference.step_accepted(t, h, 0.3);
            if i % 2 == 0 { &mut shard_a } else { &mut shard_b }.step_accepted(t, h, 0.3);
            if i % 10 == 0 {
                reference.region_switch(t, 0, 1);
                if i % 2 == 0 { &mut shard_a } else { &mut shard_b }.region_switch(t, 0, 1);
            }
        }
        let mut merged = Telemetry::new(TelemetryLevel::Full);
        merged.merge(&shard_a);
        merged.merge(&shard_b);
        assert_eq!(
            merged.metrics.counter_by_name("solver.steps_accepted"),
            reference.metrics.counter_by_name("solver.steps_accepted")
        );
        assert_eq!(
            merged.metrics.counter_by_name("hybrid.region_switches"),
            reference.metrics.counter_by_name("hybrid.region_switches")
        );
        let mh = merged.metrics.histogram_by_name("solver.step_size_s").unwrap();
        let rh = reference.metrics.histogram_by_name("solver.step_size_s").unwrap();
        assert_eq!(mh.count(), rh.count());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(mh.quantile(q), rh.quantile(q), "q={q}");
        }
        // Trace: same length, and globally ordered by sim-time.
        assert_eq!(merged.trace.len(), reference.trace.len());
        let ts: Vec<f64> = merged.trace.iter().map(Event::time).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "merged trace out of order: {ts:?}");
    }

    #[test]
    fn fault_hook_feeds_per_class_counters_and_trace() {
        let mut tel = Telemetry::new(TelemetryLevel::Full);
        tel.fault_injected(0.1, FaultClass::FeedbackDrop, 2);
        tel.fault_injected(0.2, FaultClass::FeedbackDrop, 3);
        tel.fault_injected(0.3, FaultClass::PauseStorm, 0);
        assert_eq!(tel.metrics.counter_by_name("faults.feedback_drop"), Some(2));
        assert_eq!(tel.metrics.counter_by_name("faults.pause_storm"), Some(1));
        assert_eq!(tel.metrics.counter_by_name("faults.data_loss"), Some(0));
        assert_eq!(tel.trace.len(), 3);
        // Off level stays a no-op.
        let mut off = Telemetry::new(TelemetryLevel::Off);
        off.fault_injected(0.1, FaultClass::DataLoss, 1);
        assert_eq!(off.metrics.counter_by_name("faults.data_loss"), Some(0));
    }

    #[test]
    fn hybrid_hooks_feed_counters_and_epoch_spans() {
        let mut tel = Telemetry::new(TelemetryLevel::Full);
        tel.hybrid_epoch(0.1, 0.4, 0);
        tel.hybrid_epoch(0.6, 0.9, 1);
        tel.hybrid_stats(2, 600_000_000, 400_000_000);
        assert_eq!(tel.metrics.counter_by_name("hybrid.epochs"), Some(2));
        assert_eq!(tel.metrics.counter_by_name("hybrid.reseeds"), Some(2));
        assert_eq!(tel.metrics.counter_by_name("hybrid.ff_ns"), Some(600_000_000));
        assert_eq!(tel.metrics.counter_by_name("hybrid.packet_ns"), Some(400_000_000));
        assert_eq!(tel.metrics.counter_by_name("trace.spans"), Some(2));
        // Eager span pairs: no epoch span stays open.
        assert!(tel.open_spans().is_empty());
        let kinds: Vec<&str> = tel.trace.iter().map(Event::type_name).collect();
        assert_eq!(kinds, ["span_begin", "span_end", "span_begin", "span_end"]);
        let mut off = Telemetry::new(TelemetryLevel::Off);
        off.hybrid_epoch(0.0, 1.0, 0);
        off.hybrid_stats(1, 2, 3);
        assert_eq!(off.metrics.counter_by_name("hybrid.epochs"), Some(0));
        assert!(off.trace.is_empty());
    }

    #[test]
    fn zero_rejections_are_not_counted() {
        let mut tel = Telemetry::new(TelemetryLevel::Full);
        tel.steps_rejected(0.1, 1e-3, 0);
        assert_eq!(tel.metrics.counter_by_name("solver.steps_rejected"), Some(0));
        assert!(tel.trace.is_empty());
    }
}
