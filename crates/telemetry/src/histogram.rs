//! Log-linear histogram with constant-time recording.
//!
//! Values are bucketed by their binary exponent (from the IEEE-754 bit
//! pattern — no `log2` call) refined with [`SUB_PER_OCTAVE`] linear
//! sub-buckets per octave, giving ~4.4% relative resolution across the
//! full double range. Recording is a handful of integer ops, cheap
//! enough for solver and simulator hot loops.

/// Sub-bucket resolution: each power-of-two octave is split linearly
/// into `2^SUB_BITS` slices.
const SUB_BITS: u32 = 4;
/// Number of linear sub-buckets per octave (16 → ~4.4% worst-case
/// relative error at the bucket midpoint).
pub const SUB_PER_OCTAVE: usize = 1 << SUB_BITS;
/// Lowest tracked binary exponent; values below `2^MIN_EXP` land in the
/// first bucket. `2^-128 ≈ 2.9e-39` — far below any step size or queue
/// occupancy this workspace produces.
const MIN_EXP: i32 = -128;
/// Highest tracked binary exponent (`2^127 ≈ 1.7e38`).
const MAX_EXP: i32 = 127;

/// A log-linear histogram over non-negative finite samples.
///
/// Zero and negative samples are tallied in a dedicated side bucket
/// (they have no binary exponent); non-finite samples are ignored.
/// Quantiles are answered by a nearest-rank walk over the buckets and
/// clamped to the exact observed `[min, max]` range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Samples `<= 0.0` (no exponent to bucket by).
    nonpositive: u64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            nonpositive: 0,
            buckets: Vec::new(),
        }
    }

    /// Bucket index for a strictly positive finite value.
    fn bucket_index(v: f64) -> usize {
        let bits = v.to_bits();
        let exp = (((bits >> 52) & 0x7ff) as i32 - 1023).clamp(MIN_EXP, MAX_EXP);
        // Top SUB_BITS bits of the mantissa select the linear sub-bucket.
        // Subnormals (biased exponent 0) clamp to the lowest octave.
        let sub = ((bits >> (52 - SUB_BITS)) & (SUB_PER_OCTAVE as u64 - 1)) as usize;
        (exp - MIN_EXP) as usize * SUB_PER_OCTAVE + sub
    }

    /// Midpoint value represented by a bucket index.
    fn bucket_value(idx: usize) -> f64 {
        let exp = (idx / SUB_PER_OCTAVE) as i32 + MIN_EXP;
        let sub = (idx % SUB_PER_OCTAVE) as f64;
        let mantissa = 1.0 + (sub + 0.5) / SUB_PER_OCTAVE as f64;
        mantissa * (exp as f64).exp2()
    }

    /// Records one sample. Non-finite values are ignored.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v <= 0.0 {
            self.nonpositive += 1;
            return;
        }
        let idx = Self::bucket_index(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded sample, or NaN when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or NaN when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Arithmetic mean, or NaN when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merges another histogram into this one, bucket by bucket.
    ///
    /// Because both sides bucket values identically, the merged bucket
    /// counts, min/max envelope, and therefore every quantile estimate
    /// are *exactly* what single-instance recording of both sample
    /// streams would have produced, in any order. Only `sum` (and so
    /// `mean`) is subject to floating-point association, since the
    /// shards pre-reduce their own partial sums.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.nonpositive += other.nonpositive;
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// The raw internal state `(count, sum, min, max, nonpositive,
    /// buckets)` for the snapshot codec. The public `min()`/`max()`
    /// accessors mask the empty-histogram `±inf` sentinels as NaN, so
    /// an exact round trip needs the raw fields.
    pub(crate) fn parts(&self) -> (u64, f64, f64, f64, u64, &[u64]) {
        (self.count, self.sum, self.min, self.max, self.nonpositive, &self.buckets)
    }

    /// Rebuilds a histogram from raw state captured by [`Self::parts`].
    pub(crate) fn from_parts(
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        nonpositive: u64,
        buckets: Vec<u64>,
    ) -> Self {
        Self { count, sum, min, max, nonpositive, buckets }
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`.
    ///
    /// Resolution is the bucket width (~4.4% relative); the result is
    /// clamped into the exact observed `[min, max]`. Returns NaN when
    /// the histogram is empty or `q` is not finite.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || !q.is_finite() {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        // The endpoints are known exactly; skip the bucket walk.
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        // Nearest-rank: the k-th smallest sample, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if rank <= self.nonpositive {
            // All non-positive samples sit below every bucketed one; the
            // best point estimate we keep for them is `min`.
            return self.min;
        }
        let mut seen = self.nonpositive;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (`quantile(0.5)`).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    #[must_use]
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_nan() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.min().is_nan());
        assert!(h.max().is_nan());
        assert!(h.mean().is_nan());
        assert!(h.quantile(0.5).is_nan());
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = Histogram::new();
        h.record(3.25);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 3.25);
        }
        assert_eq!(h.mean(), 3.25);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // Any positive value must land in a bucket whose representative
        // is within one sub-bucket width (1/16 of an octave ≈ 4.4%).
        for &v in &[1e-30, 1e-9, 0.001, 0.5, 1.0, 1.5, 7.0, 1234.5, 1e12] {
            let idx = Histogram::bucket_index(v);
            let rep = Histogram::bucket_value(idx);
            let rel = (rep - v).abs() / v;
            assert!(rel < 1.0 / SUB_PER_OCTAVE as f64, "v={v} rep={rep} rel={rel}");
        }
    }

    #[test]
    fn quantiles_match_sorted_reference_within_bucket_width() {
        // Deterministic skewed data: v_i = 0.01 * 1.01^i.
        let mut h = Histogram::new();
        let mut vals: Vec<f64> = (0..1000).map(|i| 0.01 * 1.01f64.powi(i)).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_by(f64::total_cmp);
        for q in [0.10, 0.50, 0.90, 0.99] {
            let rank = ((q * vals.len() as f64).ceil() as usize).max(1);
            let exact = vals[rank - 1];
            let est = h.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.07, "q={q}: est {est} vs exact {exact} (rel {rel})");
        }
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn zero_and_negative_fall_in_side_bucket() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(10.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -5.0);
        assert_eq!(h.max(), 10.0);
        // Rank-1 and rank-2 samples are non-positive → reported as min.
        assert_eq!(h.quantile(0.3), -5.0);
        assert_eq!(h.quantile(1.0), 10.0);
    }

    #[test]
    fn merge_equals_single_instance_recording() {
        // Shard a deterministic skewed stream across three histograms,
        // merge, and demand the quantile summaries match the unsharded
        // reference exactly (bucket counts are integers — no tolerance).
        let vals: Vec<f64> = (0..3000).map(|i| 0.003 * 1.004_f64.powi(i % 1500)).collect();
        let mut reference = Histogram::new();
        let mut shards = [Histogram::new(), Histogram::new(), Histogram::new()];
        for (i, &v) in vals.iter().enumerate() {
            reference.record(v);
            shards[i % 3].record(v);
        }
        let mut merged = shards[0].clone();
        merged.merge(&shards[1]);
        merged.merge(&shards[2]);
        assert_eq!(merged.count(), reference.count());
        assert_eq!(merged.min(), reference.min());
        assert_eq!(merged.max(), reference.max());
        for q in [0.01, 0.25, 0.50, 0.90, 0.99] {
            assert_eq!(merged.quantile(q), reference.quantile(q), "q={q}");
        }
        assert!((merged.sum() - reference.sum()).abs() <= 1e-9 * reference.sum());
    }

    #[test]
    fn merge_sums_buckets_and_side_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1.0, 2.0, -1.0] {
            a.record(v);
        }
        for v in [1.0, 0.0, 4.0] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.min(), -1.0);
        assert_eq!(a.max(), 4.0);
        // The shared 1.0 bucket now holds two samples: rank walk must
        // see both (ranks 3 and 4 of 6 are the two 1.0 samples), to
        // bucket-midpoint resolution.
        let est = a.quantile(4.0 / 6.0);
        assert!((est - 1.0).abs() < 1.0 / SUB_PER_OCTAVE as f64, "rank-4 estimate {est}");
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(3.0);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0);
        h.record(2.0);
        assert_eq!(h.count(), 1);
    }
}
