#!/usr/bin/env bash
# The offline CI gauntlet: formatting, lints, release build, full test
# suite. Mirrors .github/workflows/ci.yml so it can run anywhere
# without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test (serial: DCE_BCN_THREADS=1) =="
DCE_BCN_THREADS=1 cargo test --workspace -q

echo "== cargo test (parallel: DCE_BCN_THREADS=4) =="
DCE_BCN_THREADS=4 cargo test --workspace -q

echo "== sweep scaling smoke (equivalence check) =="
# Reduced grid; write to a scratch directory so the committed
# full-grid BENCH_sweeps.json is not overwritten by smoke numbers.
DCE_BCN_SWEEP_GRID=8 DCE_BCN_SWEEP_REPS=1 DCE_BCN_RESULTS=$(mktemp -d) \
  cargo run --release -p bench --bin sweep_scaling

echo "== fluid engine smoke (analytic vs DOPRI5 agreement) =="
# Quick mode: 5x5 grid, agreement + verdict gates only (the 5x speedup
# gate applies to the full 13x13 run that produces BENCH_fluid.json).
DCE_BCN_QUICK=1 DCE_BCN_RESULTS=$(mktemp -d) \
  cargo run --release -p bench --bin fluid_engine

echo "== fault-injection smoke (Theorem 1 degradation gap + campaign resume) =="
# Quick mode writes a reduced grid; keep it out of the committed results/.
# Run once journalling every grid point, then resume from the populated
# journal into a fresh results dir: all points restore (no sims re-run)
# and the artifacts must match byte-for-byte.
fd_results=$(mktemp -d)
fd_ckpt=$(mktemp -d)
DCE_BCN_QUICK=1 DCE_BCN_RESULTS="$fd_results" DCE_BCN_CHECKPOINT_DIR="$fd_ckpt" \
  cargo run --release -p bench --bin exp_feedback_degradation
fd_resume=$(mktemp -d)
fd_out=$(DCE_BCN_QUICK=1 DCE_BCN_RESULTS="$fd_resume" DCE_BCN_CHECKPOINT_DIR="$fd_ckpt" \
  cargo run --release -p bench --bin exp_feedback_degradation)
echo "$fd_out" | grep -q "checkpoint: restored 4 of 4 grid points"
cmp "$fd_results/exp_feedback_degradation.csv" "$fd_resume/exp_feedback_degradation.csv"
cmp "$fd_results/feedback_degradation.json" "$fd_resume/feedback_degradation.json"

echo "== packet engine smoke (wheel/heap equivalence + zero allocs) =="
# Quick mode: short horizons, replay-speedup gate skipped; every
# bit-identity check (schedulers x worker counts x fault plans) and the
# steady-state allocation gate still run in full.
DCE_BCN_QUICK=1 DCE_BCN_RESULTS=$(mktemp -d) \
  cargo run --release -p bench --bin packet_engine

echo "== topo engine smoke (fabric equivalence + zero allocs) =="
# Quick mode: fat-tree k=4 scale, the end-to-end and route-lookup
# speedup gates skipped; every bit-identity check (schedulers x worker
# counts x fault plans) and the steady-state allocation gate still run.
DCE_BCN_QUICK=1 DCE_BCN_RESULTS=$(mktemp -d) \
  cargo run --release -p bench --bin topo_engine

echo "== hybrid engine smoke (bounded divergence + always-packet identity) =="
# Quick mode: short horizons, the 3x end-to-end speedup gate skipped;
# the divergence bound, always-packet bit-identity (single runs and
# batches x worker counts) and zero-allocation gates still run.
DCE_BCN_QUICK=1 DCE_BCN_RESULTS=$(mktemp -d) \
  cargo run --release -p bench --bin hybrid_engine

echo "== query engine smoke (batched vs naive answer equality) =="
# Quick mode: smoke-sized workloads, the 3x hot-speedup gate skipped;
# the bitwise answer-equality and zero-allocation gates still run.
DCE_BCN_QUICK=1 DCE_BCN_RESULTS=$(mktemp -d) \
  cargo run --release -p bench --bin query_engine

echo "== telemetry overhead gate (quick mode) =="
# Off-level hooks within 2% of uninstrumented; trace level within the
# documented 10% budget over summary (DESIGN.md section 8.5).
DCE_BCN_QUICK=1 cargo run --release -p bench --bin telemetry_overhead

echo "== report pipeline smoke (limit-cycle scenario) =="
report_dir=$(mktemp -d)
./target/release/dcebcn report limit-cycle --t-end 0.01 --out-dir "$report_dir"
grep -q '"scenario": "limit-cycle"' "$report_dir/report.json"
grep -q '"kind": "solver_leg"' "$report_dir/report.json"
grep -q "# TYPE solver_steps_accepted counter" "$report_dir/metrics.prom"
for svg in timeline_queue.svg timeline_rate.svg; do
  if [ ! -s "$report_dir/$svg" ]; then
    echo "report smoke: $svg missing or empty" >&2
    exit 1
  fi
done

echo "== scheduler equivalence smoke (heap reference vs wheel CLI) =="
# The two backends must render byte-identical packet summaries,
# faulted and clean alike.
for faults in "" "--faults feedback-loss=0.05,seed=7"; do
  a=$(./target/release/dcebcn packet --t-end 0.02 --scheduler wheel $faults)
  b=$(./target/release/dcebcn packet --t-end 0.02 --scheduler heap $faults)
  if [ "$a" != "$b" ]; then
    echo "scheduler outputs diverged (faults: '$faults')" >&2
    exit 1
  fi
done

echo "== fabric CLI smoke (--topo under both schedulers, byte-diffed) =="
# A generator-compiled leaf-spine incast must render byte-identical
# summaries under both schedulers, faulted and clean alike.
topo_spec="leaf-spine:leaves=4,spines=2,hosts-per-leaf=8"
for faults in "" "--faults feedback-loss=0.05,seed=7"; do
  a=$(./target/release/dcebcn packet --topo "$topo_spec" \
    --traffic incast:senders=16 --t-end 0.004 --scheduler wheel $faults)
  b=$(./target/release/dcebcn packet --topo "$topo_spec" \
    --traffic incast:senders=16 --t-end 0.004 --scheduler heap $faults)
  if [ "$a" != "$b" ]; then
    echo "fabric scheduler outputs diverged (faults: '$faults')" >&2
    exit 1
  fi
done
echo "$a" | grep -q "fabric run over 0.004 s: 32 hosts, 6 switches, 16 flows"

echo "== hybrid always-packet smoke (wrapper vs pure engine CLI) =="
# With the always-packet guard the hybrid wrapper must render the same
# packet summary byte for byte (no epochs, so no hybrid stats line).
a=$(./target/release/dcebcn packet --t-end 0.02)
b=$(./target/release/dcebcn packet --t-end 0.02 --engine hybrid --hybrid-guard always-packet)
if [ "$a" != "$b" ]; then
  echo "hybrid always-packet output diverged from the pure engine" >&2
  exit 1
fi

echo "== query round-trip smoke (JSONL in -> out -> decode -> re-encode) =="
# The answer stream must re-encode byte-identically and be invariant
# under chunk size (batch boundaries cannot change any answer).
q_dir=$(mktemp -d)
printf '%s\n' '{"type":"schema","version":2}' \
  '{"type":"query","gi":2.0}' \
  '{"type":"query","gi":2.0,"gd":0.03}' \
  '{"type":"query","n":100,"buffer":2.0e7}' > "$q_dir/q.jsonl"
./target/release/dcebcn query --in "$q_dir/q.jsonl" --out "$q_dir/a.jsonl" \
  | grep -q "answered 3 queries"
./target/release/dcebcn query --chunk 1 < "$q_dir/q.jsonl" > "$q_dir/a_chunked.jsonl"
cmp "$q_dir/a.jsonl" "$q_dir/a_chunked.jsonl"
test "$(grep -c '"type":"answer"' "$q_dir/a.jsonl")" = 3
# Answers decode as queries' inverse stream: feeding them back through
# the tool under --strict must fail loudly (wrong record type), proving
# the decoder actually parses rather than passing bytes through. (The
# default streams past bad lines as inline error records.)
if ./target/release/dcebcn query --strict < "$q_dir/a.jsonl" >/dev/null 2>&1; then
  echo "query accepted an answer stream as input" >&2
  exit 1
fi

echo "== batch quarantine smoke (panicking seed isolated + postmortem) =="
# One intentionally panicking seed must be quarantined (exit 0, 7 of 8
# seeds complete) and leave a flight-recorder postmortem; --fail-fast
# must turn the same run into exit 9.
pm_dir=$(mktemp -d)
out=$(./target/release/dcebcn batch --seeds 8 --t-end 0.01 \
  --faults panic-seed=3 --postmortem-dir "$pm_dir" 2>/dev/null)
echo "$out" | grep -q "quarantined 1 of 8 seeds"
grep -q '"type":"postmortem"' "$pm_dir/postmortem-3.jsonl"
grep -q '"kind":"batch_seed"' "$pm_dir/postmortem-3.jsonl"
if ./target/release/dcebcn batch --seeds 8 --t-end 0.01 \
  --faults panic-seed=3 --fail-fast >/dev/null 2>&1; then
  echo "fail-fast unexpectedly succeeded" >&2
  exit 1
elif [ "$(./target/release/dcebcn batch --seeds 8 --t-end 0.01 \
  --faults panic-seed=3 --fail-fast >/dev/null 2>&1; echo $?)" != "9" ]; then
  echo "fail-fast exited with the wrong code" >&2
  exit 1
fi

echo "== kill-and-resume smoke (SIGKILL mid-batch, byte-identical artifact) =="
# A checkpointed batch killed with SIGKILL at an arbitrary point must
# resume to a merged CSV byte-identical to an uninterrupted run. The
# check is kill-point agnostic: whether the signal lands before the
# first shard, mid-seed, or after completion, resume replays only the
# missing seeds and the artifact cannot differ.
kr_dir=$(mktemp -d)
kr_flags="--seeds 48 --t-end 0.02 --faults feedback-loss=0.1,seed=9"
./target/release/dcebcn batch $kr_flags --out "$kr_dir/clean.csv" >/dev/null
./target/release/dcebcn batch $kr_flags --checkpoint-dir "$kr_dir/ckpt" \
  --out "$kr_dir/killed.csv" >/dev/null 2>&1 &
kr_pid=$!
sleep 0.3
kill -9 "$kr_pid" 2>/dev/null || true
wait "$kr_pid" 2>/dev/null || true
./target/release/dcebcn batch $kr_flags --checkpoint-dir "$kr_dir/ckpt" \
  --resume --out "$kr_dir/resumed.csv" >/dev/null
cmp "$kr_dir/clean.csv" "$kr_dir/resumed.csv"
# A second resume restores every seed from the journal (no re-runs)
# and must still render the identical artifact.
out=$(./target/release/dcebcn batch $kr_flags --checkpoint-dir "$kr_dir/ckpt" \
  --resume --out "$kr_dir/resumed2.csv")
echo "$out" | grep -q "supervision: 48 seed(s) restored from checkpoint"
cmp "$kr_dir/clean.csv" "$kr_dir/resumed2.csv"

echo "== replay smoke (postmortem dumps re-run deterministically) =="
# The quarantine smoke's postmortem embeds the seeded config and fault
# plan; replay must re-run it and reproduce the recorded panic.
./target/release/dcebcn replay "$pm_dir/postmortem-3.jsonl" \
  | grep -q "recorded failure reproduced"
# A tampered cause must be caught as a divergence: exit 11.
sed 's/intentional panic/a different failure/' "$pm_dir/postmortem-3.jsonl" \
  > "$pm_dir/tampered.jsonl"
code=0
./target/release/dcebcn replay "$pm_dir/tampered.jsonl" >/dev/null 2>&1 || code=$?
if [ "$code" != "11" ]; then
  echo "tampered replay exited with code $code, expected 11" >&2
  exit 1
fi

echo "== watchdog smoke (event-budget demotion, typed exit 10) =="
wd_dir=$(mktemp -d)
out=$(./target/release/dcebcn batch --seeds 4 --t-end 0.01 --max-seed-events 200 \
  --telemetry full --postmortem-dir "$wd_dir")
echo "$out" | grep -q "watchdog demoted 4 of 4 seeds"
# The demotion is deterministic, so its postmortem replays too.
./target/release/dcebcn replay "$wd_dir/postmortem-0.jsonl" \
  | grep -q "event budget exhausted"
code=0
./target/release/dcebcn batch --seeds 4 --t-end 0.01 --max-seed-events 200 \
  --fail-fast >/dev/null 2>&1 || code=$?
if [ "$code" != "10" ]; then
  echo "watchdog fail-fast exited with code $code, expected 10" >&2
  exit 1
fi

echo "== query streaming smoke (malformed lines become error records) =="
printf '%s\n' '{"type":"schema","version":2}' \
  '{"type":"query","gi":2.0}' \
  'garbage' \
  '{"type":"query","gd":0.03}' > "$q_dir/bad.jsonl"
./target/release/dcebcn query --in "$q_dir/bad.jsonl" --out "$q_dir/bad_a.jsonl" \
  | grep -q "skipped 1 malformed line"
test "$(grep -c '"type":"answer"' "$q_dir/bad_a.jsonl")" = 2
grep -q '"type":"error","line":3' "$q_dir/bad_a.jsonl"
code=0
./target/release/dcebcn query --in "$q_dir/bad.jsonl" --strict >/dev/null 2>&1 || code=$?
if [ "$code" != "3" ]; then
  echo "strict query exited with code $code, expected 3" >&2
  exit 1
fi

echo "CI OK"
