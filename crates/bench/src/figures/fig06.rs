//! Fig. 6 — Case 1 dynamics: (a) the switched phase trajectory, (b) the
//! queue-deviation time series `x(t)`, (c) the rate-deviation series
//! `y(t)`; plus the per-round table (`T_i^k`, `T_d^k`, extrema) and the
//! contraction ratio.

use std::path::Path;

use bcn::cases::classify_params;
use bcn::model::Region;
use bcn::rounds::{
    first_round, round_ratio, round_ratio_analytic, steady_leg_duration, trace_legs,
};
use bcn::{BcnFluid, BcnParams, CaseId};
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot, Table};

use crate::common::{banner, out_dir, phase_plot, save_plot, trace};
use crate::ExpResult;

/// Runs the generator; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts, or reports a
/// misclassified parameter set.
pub fn run(out: &Path) -> ExpResult {
    banner("Fig. 6: Case 1 (spiral/spiral) round dynamics");
    let params = BcnParams::test_defaults().with_buffer(2.0e5);
    if classify_params(&params).case != CaseId::Case1 {
        return Err("expected a Case 1 parameter set".into());
    }

    // Round table from the exact leg analysis.
    let legs = trace_legs(&params, params.initial_point(), 8);
    let mut table =
        Table::new(&["leg", "region", "duration (s)", "extremum x (bits)", "exit y (bit/s)"]);
    for (i, leg) in legs.iter().enumerate() {
        table.row(&[
            format!("{}", i + 1),
            format!("{:?}", leg.region),
            leg.duration.map_or("-".into(), |d| format!("{d:.5}")),
            leg.extremum.map_or("-".into(), |e| format!("{:.1}", e.x)),
            leg.end.map_or("-".into(), |e| format!("{:.1}", e[1])),
        ]);
    }
    print!("{table}");

    let fr = first_round(&params).expect("case 1 first round");
    println!(
        "T_i^1 = {:.5} s, T_d^1 = {:.5} s (steady legs: Ti = {:.5}, Td = {:.5})",
        fr.t_i1,
        fr.t_d1,
        steady_leg_duration(&params, Region::Increase).unwrap(),
        steady_leg_duration(&params, Region::Decrease).unwrap(),
    );
    println!(
        "max_1(x) = {:.1} bits, min_1(x) = {:.1} bits (walls at {:.1} / {:.1})",
        fr.max1_x,
        fr.min1_x,
        params.buffer - params.q0,
        -params.q0
    );
    let rho = round_ratio(&params).expect("case-1 round ratio");
    println!(
        "round ratio rho = {rho:.6} (analytic {:.6}): amplitude shrinks {:.1}% per round",
        round_ratio_analytic(&params).unwrap(),
        (1.0 - rho) * 100.0
    );

    // Traced switched trajectory for the three panels.
    let sys = BcnFluid::linearized(params.clone());
    let horizon = 4.0 * (fr.t_i1 + fr.t_d1);
    let tr = trace(&sys, params.initial_point(), horizon, 3000);

    let mut csv = Csv::new(&["t", "x", "y"]);
    for i in 0..tr.ts.len() {
        csv.row(&[tr.ts[i], tr.xs[i], tr.ys[i]]);
    }
    csv.save(out.join("fig06_case1.csv"))?;
    println!("wrote {}", out.join("fig06_case1.csv").display());

    let plot_a = phase_plot(
        "Fig. 6a: Case 1 phase trajectory",
        &params,
        vec![Series::line("trajectory", &tr.xs, &tr.ys, COLOR_CYCLE[0])],
    );
    save_plot(&plot_a, out, "fig06a_phase.svg")?;

    let plot_b = SvgPlot::new("Fig. 6b: queue deviation x(t)", "t (s)", "x (bits)")
        .with_series(Series::line("x(t)", &tr.ts, &tr.xs, COLOR_CYCLE[0]))
        .with_hline(0.0, "#999999")
        .with_hline(fr.max1_x, "#d62728")
        .with_hline(fr.min1_x, "#d62728");
    save_plot(&plot_b, out, "fig06b_queue.svg")?;

    let plot_c = SvgPlot::new("Fig. 6c: rate deviation y(t)", "t (s)", "y (bit/s)")
        .with_series(Series::line("y(t)", &tr.ts, &tr.ys, COLOR_CYCLE[1]))
        .with_hline(0.0, "#999999");
    save_plot(&plot_c, out, "fig06c_rate.svg")?;
    Ok(())
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("fig06_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        for f in ["fig06a_phase.svg", "fig06b_queue.svg", "fig06c_rate.svg", "fig06_case1.csv"] {
            assert!(dir.join(f).exists(), "{f}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
