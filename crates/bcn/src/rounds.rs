//! Round-by-round switching analysis of the linearised BCN system
//! (paper Section IV-C, Figs. 6–10).
//!
//! A *leg* is one maximal sojourn in a control region, ending at the
//! switching line `x + k y = 0`; a *round* is an increase leg followed by a
//! decrease leg. Because both linearised region flows are homogeneous of
//! degree one, the amplitude ratio between consecutive rounds — the
//! **round ratio** `rho` — is a parameter-only constant: `rho < 1` means
//! the rounds shrink towards the equilibrium, `rho = 1` is the limit-cycle
//! condition of Fig. 7, and `rho > 1` would mean growing oscillations.
//!
//! For Case 1 (both regions spiral) each leg after the first advances the
//! region's winding angle by exactly `pi`, which yields the closed form
//! `rho = exp(pi (alpha_i / beta_i + alpha_d / beta_d))`
//! ([`round_ratio_analytic`]) — cross-checked against the flow-composition
//! computation ([`round_ratio`]).

use crate::cases::{classify_params, CaseId};
use crate::closed_form::{RegionFlow, Spectrum};
use crate::extrema::{region_extremum, Extremum};
use crate::model::Region;
use crate::params::BcnParams;
use crate::propagate::Propagator;
use telemetry::{ExtremumKind, Telemetry};

/// One maximal sojourn in a control region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Leg {
    /// Which region the leg runs in.
    pub region: Region,
    /// Entry state.
    pub start: [f64; 2],
    /// Exit state on the switching line, or `None` if the leg approaches
    /// the equilibrium without leaving the region (node asymptote).
    pub end: Option<[f64; 2]>,
    /// Leg duration; `None` iff `end` is `None`.
    pub duration: Option<f64>,
    /// The queue extremum reached strictly inside the leg, if any.
    pub extremum: Option<Extremum>,
}

/// The region flows of the linearised system, through the propagator's
/// process-wide memo cache (sweeps re-analyse the same parameter point
/// many times; the spectral decompositions are shared).
fn flows(params: &BcnParams) -> (RegionFlow, RegionFlow) {
    let prop = Propagator::for_params(params);
    (*prop.flow(Region::Increase), *prop.flow(Region::Decrease))
}

fn flow_of(params: &BcnParams, region: Region) -> RegionFlow {
    *Propagator::for_params(params).flow(region)
}

/// The region a trajectory occupies when *leaving* state `p`: off the
/// switching line this is the sign of `sigma`; exactly on the line the
/// flow moves towards `s = x + k y` of the sign of `y`, so `y > 0` enters
/// the decrease region and `y < 0` the increase region.
#[must_use]
pub fn departing_region(params: &BcnParams, p: [f64; 2]) -> Region {
    let s = p[0] + params.k() * p[1];
    if s > 0.0 {
        Region::Decrease
    } else if s < 0.0 {
        Region::Increase
    } else if p[1] > 0.0 {
        Region::Decrease
    } else {
        Region::Increase
    }
}

/// Traces up to `max_legs` legs of the linearised system from `start`.
///
/// Tracing stops early when a leg fails to return to the switching line
/// (asymptotic approach to the equilibrium — Cases 2–4 tails) or when the
/// state has contracted to within `1e-12` of the equilibrium.
#[must_use]
pub fn trace_legs(params: &BcnParams, start: [f64; 2], max_legs: usize) -> Vec<Leg> {
    trace_legs_telemetry(params, start, max_legs, None)
}

/// Like [`trace_legs`], recording a region-switch event at every leg
/// boundary and a queue-extremum event for every interior extremum into
/// `tel` when provided. Event times are absolute (cumulative over legs);
/// queue values are physical bits (`q0 + x`).
#[must_use]
pub fn trace_legs_telemetry(
    params: &BcnParams,
    start: [f64; 2],
    max_legs: usize,
    tel: Option<&mut Telemetry>,
) -> Vec<Leg> {
    let prop = Propagator::for_params(params);
    let mut legs = Vec::new();
    trace_legs_into(params, &prop, start, max_legs, &mut legs, tel);
    legs
}

/// The allocation-free tracing core every other entry point wraps: walks
/// up to `max_legs` legs from `start` using a caller-resolved `prop`,
/// appending into a caller-owned buffer. `legs` is cleared first; once it
/// has grown to the workload's deepest trace, re-use allocates nothing —
/// the property the batched query engine's per-worker workspaces rely on.
///
/// `prop` must be the propagator of `params` (cached and fresh builds are
/// bit-identical, so either source is fine).
pub fn trace_legs_into(
    params: &BcnParams,
    prop: &Propagator,
    start: [f64; 2],
    max_legs: usize,
    legs: &mut Vec<Leg>,
    mut tel: Option<&mut Telemetry>,
) {
    let k = params.k();
    legs.clear();
    let mut p = start;
    let mut t_abs = 0.0;
    let mut prev_region: Option<Region> = None;
    for _ in 0..max_legs {
        // Stop once the state has contracted to numerical noise relative
        // to the problem's own scales (q0 for x, C for y).
        if p[0].abs() / params.q0 + p[1].abs() / params.capacity < 1e-12 {
            break;
        }
        let region = departing_region(params, p);
        if let (Some(tel), Some(prev)) = (tel.as_deref_mut(), prev_region) {
            if prev != region {
                tel.region_switch(t_abs, prev.mode_index() as u32, region.mode_index() as u32);
            }
        }
        prev_region = Some(region);
        let flow = prop.flow(region);
        let t_max = leg_horizon(flow);
        let duration = prop.crossing_time(region, p, t_max);
        let end = duration.map(|t| {
            let mut z = flow.at(t, p);
            // Land exactly on the line to keep the next leg's region
            // decision clean.
            z[0] = -k * z[1];
            z
        });
        let extremum = region_extremum(flow, p).filter(|e| match duration {
            Some(d) => e.t > 0.0 && e.t <= d,
            None => e.t > 0.0,
        });
        if let (Some(tel), Some(e)) = (tel.as_deref_mut(), extremum) {
            // Queue maxima happen while the rate decays (decrease region),
            // minima while it recovers (increase region).
            let kind = match region {
                Region::Decrease => ExtremumKind::Max,
                Region::Increase => ExtremumKind::Min,
            };
            tel.queue_extremum(t_abs + e.t, params.q0 + e.x, kind);
        }
        legs.push(Leg { region, start: p, end, duration, extremum });
        match end {
            Some(z) => {
                p = z;
                t_abs += duration.unwrap_or(0.0);
            }
            None => break,
        }
    }
}

fn leg_horizon(flow: &RegionFlow) -> f64 {
    match flow.spectrum() {
        // Crossings happen every half winding; four full windings is ample.
        Spectrum::Focus { beta, .. } => 4.0 * std::f64::consts::TAU / beta,
        // A node leg either crosses within a few slow time constants or
        // never does.
        Spectrum::Node { l2, .. } => 60.0 / l2.abs(),
        Spectrum::Critical { l } => 60.0 / l.abs(),
    }
}

/// The quantities of the paper's first-round analysis (Case 1, Fig. 6)
/// starting from the canonical point `(-q0, 0)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FirstRound {
    /// Duration `T_i^1` of the first increase leg.
    pub t_i1: f64,
    /// Entry point `(x_d^1(0), y_d^1(0))` into the decrease region.
    pub enter_decrease: [f64; 2],
    /// The first-round queue maximum `max_1{x}` (paper Eq. 36), reached
    /// inside the decrease leg.
    pub max1_x: f64,
    /// Duration `T_d^1` of the first decrease leg.
    pub t_d1: f64,
    /// Entry point `(x_i^2(0), y_i^2(0))` of the second increase leg.
    pub enter_increase2: [f64; 2],
    /// The first-round queue minimum `min_1{x}` (paper Eq. 37), reached
    /// inside the second increase leg.
    pub min1_x: f64,
}

/// Computes the paper's first-round extrema exactly (Case 1 only).
///
/// Returns `None` if the parameters are not Case 1 or a leg unexpectedly
/// fails to cross the switching line.
#[must_use]
pub fn first_round(params: &BcnParams) -> Option<FirstRound> {
    if classify_params(params).case != CaseId::Case1 {
        return None;
    }
    let legs = trace_legs(params, params.initial_point(), 3);
    if legs.len() < 3 {
        return None;
    }
    let (i1, d1, i2) = (&legs[0], &legs[1], &legs[2]);
    Some(FirstRound {
        t_i1: i1.duration?,
        enter_decrease: i1.end?,
        max1_x: d1.extremum?.x,
        t_d1: d1.duration?,
        enter_increase2: d1.end?,
        min1_x: i2.extremum?.x,
    })
}

/// The per-round amplitude contraction ratio `rho`, computed by composing
/// one increase leg and one decrease leg starting from the switching line
/// and comparing same-ray line coordinates.
///
/// Returns `None` when a leg does not return to the switching line (the
/// node-asymptote cases, where rounds do not repeat).
#[must_use]
pub fn round_ratio(params: &BcnParams) -> Option<f64> {
    let k = params.k();
    // Start on the increase-side ray: points on the line with y < 0.
    let y0 = -1.0;
    let p0 = [-k * y0, y0];
    let legs = trace_legs(params, p0, 2);
    if legs.len() < 2 {
        return None;
    }
    let end = legs[1].end?;
    // Same ray: y has the sign of y0 again; the coordinate ratio is the
    // amplitude ratio (any homogeneous coordinate works; use y).
    debug_assert!(end[1] < 0.0, "round did not return to the same ray: {end:?}");
    Some(end[1] / y0)
}

/// Closed-form round ratio for Case 1:
/// `rho = exp(pi (alpha_i/beta_i + alpha_d/beta_d))` — each spiral leg
/// advances its region's winding angle by exactly `pi` and scales the
/// region radius by `exp(alpha pi / beta)`.
///
/// Returns `None` outside Case 1.
#[must_use]
pub fn round_ratio_analytic(params: &BcnParams) -> Option<f64> {
    if classify_params(params).case != CaseId::Case1 {
        return None;
    }
    let (fi, fd) = flows(params);
    let (Spectrum::Focus { alpha: ai, beta: bi }, Spectrum::Focus { alpha: ad, beta: bd }) =
        (fi.spectrum(), fd.spectrum())
    else {
        return None;
    };
    Some((std::f64::consts::PI * (ai / bi + ad / bd)).exp())
}

/// Duration of a *steady* spiral leg (entered from the switching line):
/// exactly half a winding, `pi / beta` — the paper's
/// `T_d = 2 pi / sqrt(4 b C - (k b C)^2)` for the decrease region.
///
/// Returns `None` if the region is not spiral-shaped.
#[must_use]
pub fn steady_leg_duration(params: &BcnParams, region: Region) -> Option<f64> {
    match flow_of(params, region).spectrum() {
        Spectrum::Focus { beta, .. } => Some(std::f64::consts::PI / beta),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::exemplar;

    fn p() -> BcnParams {
        BcnParams::test_defaults()
    }

    #[test]
    fn legs_alternate_regions_in_case1() {
        let legs = trace_legs(&p(), p().initial_point(), 6);
        assert_eq!(legs.len(), 6);
        for (i, leg) in legs.iter().enumerate() {
            let expect = if i % 2 == 0 { Region::Increase } else { Region::Decrease };
            assert_eq!(leg.region, expect, "leg {i}");
        }
    }

    #[test]
    fn leg_endpoints_lie_on_switching_line() {
        let params = p();
        let k = params.k();
        let legs = trace_legs(&params, params.initial_point(), 6);
        for leg in &legs {
            let end = leg.end.expect("case-1 legs cross");
            assert!(
                (end[0] + k * end[1]).abs() < 1e-9 * end[1].abs().max(1.0),
                "end {end:?} off line"
            );
        }
    }

    #[test]
    fn steady_spiral_legs_last_half_winding() {
        let params = p();
        let legs = trace_legs(&params, params.initial_point(), 7);
        let ti = steady_leg_duration(&params, Region::Increase).unwrap();
        let td = steady_leg_duration(&params, Region::Decrease).unwrap();
        // All decrease legs, and increase legs after the first, should
        // last exactly pi/beta of their region.
        for (i, leg) in legs.iter().enumerate() {
            if i == 0 {
                continue;
            }
            let expect = if leg.region == Region::Increase { ti } else { td };
            let got = leg.duration.unwrap();
            assert!((got - expect).abs() < 1e-6 * expect, "leg {i} duration {got} vs {expect}");
        }
        // And the paper's printed form for T_d.
        let (b, c, k) = (params.b(), params.capacity, params.k());
        let paper_td = std::f64::consts::TAU / (4.0 * b * c - (k * b * c).powi(2)).sqrt();
        assert!((td - paper_td).abs() < 1e-9 * paper_td);
    }

    #[test]
    fn first_round_quantities_are_consistent() {
        let params = p();
        let fr = first_round(&params).expect("case 1");
        assert!(fr.t_i1 > 0.0 && fr.t_d1 > 0.0);
        // Entry to decrease: second quadrant (x < 0 < y) on the line.
        assert!(fr.enter_decrease[0] < 0.0 && fr.enter_decrease[1] > 0.0);
        // Back to increase: fourth quadrant.
        assert!(fr.enter_increase2[0] > 0.0 && fr.enter_increase2[1] < 0.0);
        // Max is positive (overshoot past q0), min negative but above -q0
        // by strong-stability margins for the defaults.
        assert!(fr.max1_x > 0.0);
        assert!(fr.min1_x < 0.0);
        assert!(fr.min1_x > -params.q0, "queue would empty: {}", fr.min1_x);
    }

    #[test]
    fn round_ratio_contracts_and_matches_analytic() {
        let params = p();
        let num = round_ratio(&params).expect("case 1 rounds repeat");
        let ana = round_ratio_analytic(&params).expect("case 1");
        assert!(num > 0.0 && num < 1.0, "rho = {num}");
        assert!((num - ana).abs() < 1e-6 * ana, "numeric {num} vs analytic {ana}");
    }

    #[test]
    fn round_ratio_is_amplitude_independent() {
        // Homogeneity: tracing from a 100x larger start still contracts
        // by the same per-round factor.
        let params = p();
        let k = params.k();
        let rho = round_ratio(&params).unwrap();
        let y0 = -250.0;
        let legs = trace_legs(&params, [-k * y0, y0], 2);
        let end = legs[1].end.unwrap();
        assert!((end[1] / y0 - rho).abs() < 1e-6 * rho);
    }

    #[test]
    fn successive_round_amplitudes_decay_by_rho() {
        let params = p();
        let rho = round_ratio(&params).unwrap();
        let legs = trace_legs(&params, params.initial_point(), 9);
        // Crossings into the decrease region (end of increase legs):
        let xs: Vec<f64> = legs
            .iter()
            .filter(|l| l.region == Region::Increase)
            .filter_map(|l| l.end.map(|e| e[1]))
            .collect();
        assert!(xs.len() >= 3);
        for w in xs.windows(2) {
            let r = w[1] / w[0];
            assert!((r - rho).abs() < 1e-4 * rho, "per-round {r} vs {rho}");
        }
    }

    #[test]
    fn undamped_w_zero_gives_unit_ratio() {
        // w = 0 removes the derivative term: both regions become centers
        // and every orbit is a limit cycle (rho = 1).
        let mut params = p();
        params.w = 1e-30; // effectively zero while passing validation
        let rho = round_ratio(&params).unwrap();
        assert!((rho - 1.0).abs() < 1e-6, "rho = {rho}");
    }

    #[test]
    fn case3_decrease_leg_never_returns() {
        let params = exemplar(&p(), CaseId::Case3);
        let legs = trace_legs(&params, params.initial_point(), 10);
        // Increase leg crosses, decrease leg is asymptotic: exactly 2 legs.
        assert_eq!(legs.len(), 2);
        assert_eq!(legs[1].region, Region::Decrease);
        assert!(legs[1].end.is_none());
        assert!(round_ratio(&params).is_none());
        // And no overshoot: the decrease leg has no interior extremum
        // above zero (paper Fig. 9: the trajectory stays in the second
        // quadrant).
        if let Some(e) = legs[1].extremum {
            assert!(e.x <= 0.0, "case-3 overshoot {e:?}");
        }
    }

    #[test]
    fn case2_has_single_overshoot_then_spiral() {
        let params = exemplar(&p(), CaseId::Case2);
        let legs = trace_legs(&params, params.initial_point(), 4);
        assert!(legs.len() >= 2);
        // Node-shaped increase leg still crosses the line (paper: the
        // trajectory must traverse it because -1/k > lambda_{1,2}).
        assert_eq!(legs[0].region, Region::Increase);
        assert!(legs[0].end.is_some());
        // The decrease leg carries the overshoot maximum.
        assert_eq!(legs[1].region, Region::Decrease);
        let e = legs[1].extremum.expect("overshoot extremum");
        assert!(e.x > 0.0);
    }

    #[test]
    fn departing_region_on_the_line_follows_y() {
        let params = p();
        let k = params.k();
        assert_eq!(departing_region(&params, [-k, 1.0]), Region::Decrease);
        assert_eq!(departing_region(&params, [k, -1.0]), Region::Increase);
        assert_eq!(departing_region(&params, [-1.0, 0.0]), Region::Increase);
        assert_eq!(departing_region(&params, [1.0, 0.0]), Region::Decrease);
    }
}
