//! Hybrid fluid–packet co-simulation benchmark and agreement gate.
//!
//! Exercises [`HybridSim`] against the pure packet engine on the Fig. 7
//! limit-cycle scenario and a 16-server incast, and enforces the PR's
//! guarantees:
//!
//! 1. **Bounded divergence** — hybrid-vs-pure queue extrema agree within
//!    [`DIVERGENCE_BOUND_FRAC`]` * q0` on both scenarios. On the incast
//!    (flow churn, drops, PAUSE pressure) the guards never admit an
//!    epoch, so the hybrid run degenerates to pure packet simulation
//!    and the divergence is exactly zero — gated as bit-identity.
//! 2. **Always-packet bit-identity** — with the `always_packet` guard
//!    the wrapper matches the pure engine byte for byte: single runs on
//!    both scenarios, and batched runs across worker counts (1 vs 4).
//! 3. **Zero steady-state allocations** — with a warm [`SimWorkspace`],
//!    the hybrid engine performs no heap allocations after warm-up,
//!    *including across epoch switches* (scratch buffer, record series,
//!    and the wheel's slab arena are all pre-sized and recycled).
//! 4. **End-to-end speedup** — on a quiescence-heavy horizon (the
//!    limit-cycle scenario run long past convergence) the hybrid engine
//!    must finish at least 3x faster than the pure packet engine
//!    (full mode only; `DCE_BCN_QUICK` reports the ratio without
//!    gating it).
//!
//! Results land in `BENCH_hybrid.json` under the usual results
//! directory. Run release builds only:
//!
//! ```console
//! $ cargo run --release -p bench --bin hybrid_engine
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bench::common::out_dir;
use dcesim::batch::{run_batch, BatchConfig};
use dcesim::hybrid::{HybridGuards, HybridSim, HybridSpec, DIVERGENCE_BOUND_FRAC};
use dcesim::metrics::SimMetrics;
use dcesim::sim::{fluid_validation_params, SimConfig, SimWorkspace, Simulation};
use dcesim::time::Duration;
use dcesim::workload;
use telemetry::TelemetryLevel;

/// End-to-end speedup gate on the quiescence-heavy scenario.
const MIN_SPEEDUP: f64 = 3.0;
/// Frame size used throughout (bits).
const FRAME: f64 = 8_000.0;

// --- counting allocator (bench binary only) -------------------------------

/// Counts allocation events (alloc + realloc) on top of the system
/// allocator; proves the hybrid warm path allocates nothing. Never
/// enabled in the library, which forbids unsafe code.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System` unchanged; the counter is
// a relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// --- scenarios ------------------------------------------------------------

fn quick() -> bool {
    std::env::var_os("DCE_BCN_QUICK").is_some()
}

/// The Fig. 7 limit-cycle parameterisation on the packet engine.
fn limit_cycle(t_end: f64) -> SimConfig {
    SimConfig::from_fluid(&fluid_validation_params(), FRAME, Duration::from_secs(2e-6), t_end)
}

/// 16 servers answering a parallel read into the same bottleneck at 4x
/// overload: flow churn and drop/PAUSE pressure keep the structural
/// guards shut, so the hybrid engine must degenerate to pure packet.
fn incast16(t_end: f64) -> (bcn::BcnParams, SimConfig) {
    let mut params = fluid_validation_params();
    let mut cfg = limit_cycle(t_end);
    cfg.flows = workload::incast(16, params.capacity / 4.0, 300.0 * FRAME);
    params.n_flows = 16;
    (params, cfg)
}

fn run_pure(cfg: &SimConfig) -> (SimMetrics, Vec<f64>) {
    let report = Simulation::new(cfg.clone()).run();
    (report.metrics, report.final_rates)
}

fn run_hybrid(
    params: &bcn::BcnParams,
    cfg: &SimConfig,
    guards: HybridGuards,
) -> (SimMetrics, Vec<f64>, dcesim::hybrid::HybridStats) {
    let report = HybridSim::new(params.clone(), cfg.clone(), guards).run();
    (report.sim.metrics, report.sim.final_rates, report.stats)
}

/// Best-of-`reps` wall time of one run through either engine.
fn time_run(params: &bcn::BcnParams, cfg: &SimConfig, hybrid: bool, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        if hybrid {
            black_box(HybridSim::new(params.clone(), cfg.clone(), HybridGuards::default()).run());
        } else {
            black_box(Simulation::new(cfg.clone()).run());
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

// --- gates ----------------------------------------------------------------

/// Queue-extrema divergence of a hybrid run vs the pure engine, as
/// `(d_max, d_min, stats)`; the min is compared past a warm-up window
/// so the empty-queue start does not mask a divergent floor.
fn divergence(
    name: &str,
    params: &bcn::BcnParams,
    cfg: &SimConfig,
    warmup: f64,
) -> (f64, f64, dcesim::hybrid::HybridStats) {
    let (pure, _) = run_pure(cfg);
    let (hyb, _, stats) = run_hybrid(params, cfg, HybridGuards::default());
    let dmax = (pure.queue.max() - hyb.queue.max()).abs();
    let dmin = (pure.queue.min_after(warmup) - hyb.queue.min_after(warmup)).abs();
    println!(
        "  {name}: {} epoch(s), {:.1}% analytic — divergence max {dmax:.0} / min {dmin:.0} bits",
        stats.epochs,
        ff_frac(&stats) * 100.0
    );
    (dmax, dmin, stats)
}

#[allow(clippy::cast_precision_loss)]
fn ff_frac(stats: &dcesim::hybrid::HybridStats) -> f64 {
    let total = stats.ff_ns + stats.packet_ns;
    if total > 0 {
        stats.ff_ns as f64 / total as f64
    } else {
        0.0
    }
}

/// Always-packet bit-identity: single runs on both scenarios, plus
/// batched runs across worker counts.
fn check_always_packet(failures: &mut Vec<String>, t_end: f64, batch_t_end: f64) {
    let ap = HybridGuards { always_packet: true, ..HybridGuards::default() };
    let lc = limit_cycle(t_end);
    let (ic_params, ic_cfg) = incast16(t_end);
    for (name, params, cfg) in
        [("limit-cycle", fluid_validation_params(), &lc), ("incast-16", ic_params, &ic_cfg)]
    {
        let (pm, pr) = run_pure(cfg);
        let (hm, hr, stats) = run_hybrid(&params, cfg, ap);
        if stats.epochs != 0 {
            failures.push(format!("always-packet {name}: committed {} epoch(s)", stats.epochs));
        }
        if pm != hm || pr != hr {
            failures.push(format!("always-packet {name}: hybrid wrapper diverged"));
        }
    }
    // Batched: pure batch vs always-packet hybrid batch, 1 vs 4 workers.
    let run = |hybrid: Option<HybridSpec>, threads: usize| {
        parkit::set_threads(threads);
        let mut cfg = BatchConfig::quick(limit_cycle(batch_t_end), 6);
        cfg.level = TelemetryLevel::Off;
        cfg.hybrid = hybrid;
        let report = run_batch(&cfg);
        let out: Vec<(u64, SimMetrics, Vec<f64>)> = report
            .completed()
            .map(|(seed, r)| (seed, r.metrics.clone(), r.final_rates.clone()))
            .collect();
        parkit::set_threads(0);
        out
    };
    let spec = HybridSpec { params: fluid_validation_params(), guards: ap };
    let baseline = run(None, 1);
    for threads in [1, 4] {
        if run(Some(spec.clone()), threads) != baseline {
            failures.push(format!(
                "always-packet batch ({threads} workers) diverged from the pure batch"
            ));
        }
    }
}

/// Steady-state allocation count of a warm hybrid run: run once to grow
/// every buffer, rebuild from the recycled workspace, step past
/// warm-up, then count allocations to completion — a stretch that
/// includes every fast-forward epoch and reseed.
fn steady_state_allocations(t_end: f64) -> (u64, u64) {
    let params = fluid_validation_params();
    let cfg = limit_cycle(t_end);
    let mut ws = SimWorkspace::new();
    let warm = HybridSim::new_in(params.clone(), cfg.clone(), HybridGuards::default(), &mut ws);
    black_box(warm.run_into(&mut ws));
    let mut sim = HybridSim::new_in(params, cfg, HybridGuards::default(), &mut ws);
    for _ in 0..1_000 {
        if !sim.step() {
            break;
        }
    }
    let before = allocations();
    while sim.step() {}
    let after = allocations();
    let report = sim.finish_into(&mut ws);
    (after - before, report.stats.epochs)
}

// --- main -----------------------------------------------------------------

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() {
    let (agree_t_end, speed_t_end, batch_t_end, reps) =
        if quick() { (0.3, 0.5, 0.02, 1) } else { (0.5, 1.5, 0.05, 3) };
    println!("hybrid engine benchmark: agreement over {agree_t_end} s, best of {reps}");

    let mut failures: Vec<String> = Vec::new();
    let params = fluid_validation_params();
    let bound = DIVERGENCE_BOUND_FRAC * params.q0;

    // 1. Bounded divergence on the limit cycle; exact degeneration on
    // the incast.
    println!("divergence vs pure packet (bound {bound:.0} bits):");
    let lc = limit_cycle(agree_t_end);
    let (lc_dmax, lc_dmin, lc_stats) = divergence("limit_cycle", &params, &lc, 0.05);
    if lc_stats.epochs == 0 {
        failures.push("limit-cycle run committed no fast-forward epoch".into());
    }
    if lc_dmax > bound || lc_dmin > bound {
        failures.push(format!(
            "limit-cycle divergence (max {lc_dmax:.0}, min {lc_dmin:.0}) exceeds {bound:.0} bits"
        ));
    }
    let (ic_params, ic_cfg) = incast16(agree_t_end);
    let (ic_dmax, ic_dmin, ic_stats) = divergence("incast_16", &ic_params, &ic_cfg, 0.05);
    if ic_stats.epochs != 0 {
        failures.push(format!(
            "incast guards admitted {} epoch(s); churn must stay packet-simulated",
            ic_stats.epochs
        ));
    }
    if ic_dmax != 0.0 || ic_dmin != 0.0 {
        failures.push(format!(
            "incast divergence (max {ic_dmax:.0}, min {ic_dmin:.0}) non-zero without epochs"
        ));
    }

    // 2. Always-packet bit-identity, single runs and batches x workers.
    check_always_packet(&mut failures, agree_t_end, batch_t_end);
    println!(
        "always-packet equivalence: {}",
        if failures.iter().any(|f| f.contains("always-packet")) {
            "FAILURES (see below)"
        } else {
            "bit-identical (single runs + batches x 1/4 workers)"
        }
    );

    // 3. End-to-end speedup on the quiescence-heavy horizon.
    let speed_cfg = limit_cycle(speed_t_end);
    let packet_s = time_run(&params, &speed_cfg, false, reps);
    let hybrid_s = time_run(&params, &speed_cfg, true, reps);
    let speedup = packet_s / hybrid_s;
    let (_, _, speed_stats) = run_hybrid(&params, &speed_cfg, HybridGuards::default());
    println!(
        "speedup over {speed_t_end} s: packet {:.1} ms vs hybrid {:.1} ms — {speedup:.2}x \
         ({:.1}% analytic)",
        packet_s * 1e3,
        hybrid_s * 1e3,
        ff_frac(&speed_stats) * 100.0
    );
    if !quick() && speedup < MIN_SPEEDUP {
        failures.push(format!("end-to-end speedup {speedup:.2}x below the {MIN_SPEEDUP}x gate"));
    }

    // 4. Steady-state allocations across epoch switches.
    let (allocs, epochs_covered) = steady_state_allocations(agree_t_end);
    println!("steady-state allocations: {allocs} across {epochs_covered} epoch(s)");
    if allocs != 0 {
        failures.push(format!("hybrid steady state performed {allocs} allocation(s)"));
    }
    if epochs_covered == 0 {
        failures.push("allocation gate covered no epoch switch".into());
    }

    let note = "Divergence compares hybrid vs pure queue extrema on the fluid-calibrated \
                limit cycle (guards admit epochs) and the 16-flow incast (churn keeps the \
                guards shut, so the hybrid run is the pure run and diverges by exactly \
                zero). Speedup is end-to-end wall time on the limit-cycle scenario run \
                long past convergence, where the quiescent tail dominates; quick mode \
                reports it without gating. Allocations are counted by this binary's \
                wrapping allocator on a warm SimWorkspace over a stretch that includes \
                every fast-forward reseed.";
    let json = format!(
        "{{\n  \"quick\": {},\n  \"reps\": {reps},\n  \"divergence_bound_bits\": {bound:.0},\n  \
         \"divergence\": [\n    {{\"scenario\": \"limit_cycle\", \"epochs\": {}, \
         \"analytic_frac\": {:.4}, \"d_max_bits\": {lc_dmax:.1}, \"d_min_bits\": {lc_dmin:.1}}},\n    \
         {{\"scenario\": \"incast_16\", \"epochs\": {}, \"analytic_frac\": {:.4}, \
         \"d_max_bits\": {ic_dmax:.1}, \"d_min_bits\": {ic_dmin:.1}}}\n  ],\n  \
         \"speedup\": {{\"t_end\": {speed_t_end}, \"packet_s\": {packet_s:.4}, \
         \"hybrid_s\": {hybrid_s:.4}, \"speedup\": {speedup:.3}, \"gate\": {MIN_SPEEDUP}, \
         \"analytic_frac\": {:.4}}},\n  \
         \"steady_state_allocations\": {{\"hybrid\": {allocs}, \"epochs_covered\": {epochs_covered}}},\n  \
         \"equivalence_failures\": {},\n  \"note\": \"{note}\"\n}}\n",
        quick(),
        lc_stats.epochs,
        ff_frac(&lc_stats),
        ic_stats.epochs,
        ff_frac(&ic_stats),
        ff_frac(&speed_stats),
        failures.len(),
    );
    let out = out_dir();
    let path = out.join("BENCH_hybrid.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("FAIL: could not write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
