//! Regenerates the FB-field quantization ablation.

fn main() {
    if let Err(e) = bench::experiments::fb_quantization::main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
