//! Buffer sizing for a lossless fabric: how much switch buffer does a
//! BCN deployment need, and how does that compare to the classical
//! bandwidth-delay-product rule?
//!
//! This walks a capacity-planning scenario: a storage cluster scales from
//! 25 to 400 parallel writers over one 10 Gbit/s uplink, and the operator
//! wants zero drops (Fibre-Channel-over-Ethernet storage traffic).
//!
//! Run with `cargo run --example buffer_sizing`.

use bcn::buffer::{bandwidth_delay_product, paper_example, required_vs_n};
use bcn::stability::exact_verdict;
use bcn::units::{MBIT, USEC};
use bcn::BcnParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's headline numbers first.
    let ex = paper_example();
    println!("paper worked example:");
    println!("  bandwidth-delay product: {:.2} Mbit", ex.bdp / MBIT);
    println!("  Theorem 1 requirement:  {:.2} Mbit", ex.required / MBIT);
    println!("  ratio: {:.2}x the BDP rule\n", ex.ratio);

    // Scaling the writer count.
    let params = BcnParams::paper_defaults();
    let rtt = 2.0 * 0.5 * 250.0 * USEC; // 250 us of end-to-end headroom
    println!("scaling parallel writers on a 10 Gbit/s uplink:");
    println!(
        "{:>8} {:>16} {:>16} {:>12}",
        "writers", "required (Mbit)", "BDP rule (Mbit)", "exact need"
    );
    for (n, required) in required_vs_n(&params, &[25, 50, 100, 200, 400]) {
        let p = params.clone().with_n_flows(n);
        let exact = exact_verdict(&p, 30);
        let exact_need = p.q0 + exact.max_x;
        println!(
            "{n:>8} {:>16.2} {:>16.2} {:>12.2}",
            required / MBIT,
            bandwidth_delay_product(p.capacity, rtt) / MBIT,
            exact_need / MBIT,
        );
    }

    println!("\nthe requirement grows with sqrt(N); the BDP rule does not see N at all.");

    // What if we can't add buffer? Retune the gains instead: shrinking
    // Gi (or growing Gd) shrinks a/(b C) and with it the overshoot.
    let base = params.clone().with_n_flows(200);
    println!("\ngain retuning at N = 200 (buffer fixed at 5 Mbit):");
    for gi in [4.0, 1.0, 0.25, 0.0625, 0.03125] {
        let p = base.clone().with_gi(gi);
        let needed = bcn::stability::theorem1_required_buffer(&p);
        let settles = bcn::rounds::round_ratio(&p).unwrap_or(f64::NAN);
        println!(
            "  Gi = {gi:<7}: requires {:>7.2} Mbit, round ratio {settles:.4} {}",
            needed / MBIT,
            if needed < p.buffer { "<- fits" } else { "" }
        );
    }
    println!("smaller Gi fits the buffer but slows convergence (the paper's trade-off).");
    Ok(())
}
