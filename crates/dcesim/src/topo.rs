//! Parameterised scale-out topology generator: k-ary fat-trees and
//! leaf–spine fabrics compiled down to [`NetConfig`].
//!
//! The hand-wired scenarios in [`crate::net`] top out at a few switches
//! and tens of flows — exactly the shallow-backlog regime where the
//! timing wheel has nothing to win. The congestion phenomena the paper
//! analyses (PAUSE trees, victim flows, Theorem-1 buffer headroom) only
//! get interesting at data-center scale, so this module generates the
//! fabrics to run them on:
//!
//! * **k-ary fat-tree** (`k` even): `k` pods of `k/2` edge and `k/2`
//!   aggregation switches over `(k/2)²` cores, `k³/4` hosts, every link
//!   at the same speed (rearrangeably non-blocking).
//! * **leaf–spine**: `leaves × spines` two-tier Clos with
//!   `hosts_per_leaf` hosts per leaf and a configurable oversubscription
//!   factor (uplink capacity = `hosts_per_leaf · link / (spines ·
//!   oversub)`).
//!
//! Routing is deterministic single-path: the next hop for a destination
//! is selected by destination index (`dst % fanout` at each up-stage),
//! which spreads load like ECMM hashing but keeps every run
//! reproducible. Each switch's route table covers *every* host, so the
//! compiled config passes the engine's full-reachability validation by
//! construction (see `NetSim::try_new`).
//!
//! Per-hop PFC thresholds follow the Theorem-1 recipe, summed over a
//! switch's ingress ports: each incoming link contributes its
//! `BDP + 2·MTU` (round-trip bandwidth–delay product plus two maximum
//! frames — the in-flight data a PAUSE cannot recall), the XOFF point
//! `qsc` is that sum, and the per-port buffer doubles it so a full
//! post-PAUSE round from every ingress still fits above the threshold.
//! The compiled fabrics run lossless under PAUSE by construction
//! (verified by the incast tests below at 4× overload).
//!
//! For irregular fabrics (the victim scenarios), [`auto_routes`] derives
//! the same dense route tables from the link list alone: per-destination
//! reverse BFS with a deterministic lowest-link-index tie-break.

use crate::cp::CpConfig;
use crate::error::ConfigError;
use crate::faults::FaultConfig;
use crate::net::{Endpoint, LinkSpec, NetConfig, NetFlow, PauseConfig, SwitchSpec};
use crate::rp::RpConfig;
use crate::sched::Scheduler;
use crate::time::{Duration, Time};

/// Which fabric family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoKind {
    /// A k-ary fat-tree (`k` even, `k ≥ 4`): `k³/4` hosts.
    FatTree {
        /// The arity: pods, and ports per switch.
        k: usize,
    },
    /// A two-tier leaf–spine Clos.
    LeafSpine {
        /// Number of leaf (top-of-rack) switches.
        leaves: usize,
        /// Number of spine switches.
        spines: usize,
        /// Hosts attached to each leaf.
        hosts_per_leaf: usize,
    },
}

/// A parameterised fabric: family plus link speeds and delays.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoSpec {
    /// The fabric family and its dimensions.
    pub kind: TopoKind,
    /// Host access-link capacity in bit/s (fat-tree fabric links run at
    /// the same speed; leaf–spine uplinks derive from the
    /// oversubscription factor).
    pub link_bps: f64,
    /// Leaf–spine uplink oversubscription factor (`1.0` =
    /// non-blocking); ignored by fat-trees, whose uniform link speed
    /// already fixes the ratio.
    pub oversub: f64,
    /// Per-link propagation delay.
    pub delay: Duration,
    /// Data frame (MTU) size in bits; enters the PFC threshold
    /// derivation.
    pub frame_bits: f64,
}

impl TopoSpec {
    /// A fat-tree with 1 Gbit/s links, 1 µs hops, 8 kbit frames.
    #[must_use]
    pub fn fat_tree(k: usize) -> Self {
        Self {
            kind: TopoKind::FatTree { k },
            link_bps: 1.0e9,
            oversub: 1.0,
            delay: Duration::from_secs(1e-6),
            frame_bits: 8_000.0,
        }
    }

    /// A leaf–spine fabric with 1 Gbit/s access links, 1 µs hops,
    /// 8 kbit frames, non-blocking uplinks.
    #[must_use]
    pub fn leaf_spine(leaves: usize, spines: usize, hosts_per_leaf: usize) -> Self {
        Self {
            kind: TopoKind::LeafSpine { leaves, spines, hosts_per_leaf },
            link_bps: 1.0e9,
            oversub: 1.0,
            delay: Duration::from_secs(1e-6),
            frame_bits: 8_000.0,
        }
    }

    /// Number of hosts the fabric attaches.
    #[must_use]
    pub fn hosts(&self) -> usize {
        match self.kind {
            TopoKind::FatTree { k } => k * k * k / 4,
            TopoKind::LeafSpine { leaves, hosts_per_leaf, .. } => leaves * hosts_per_leaf,
        }
    }

    /// Number of switches the fabric uses.
    #[must_use]
    pub fn switches(&self) -> usize {
        match self.kind {
            TopoKind::FatTree { k } => k * k + k * k / 4,
            TopoKind::LeafSpine { leaves, spines, .. } => leaves + spines,
        }
    }

    /// Parses a CLI topology spec: `fat-tree:k=8[,link=1e9][,delay=1e-6]
    /// [,frame=8000]` or `leaf-spine:leaves=16,spines=4,hosts-per-leaf=32
    /// [,oversub=2][,link=...][,delay=...][,frame=...]`.
    ///
    /// # Errors
    ///
    /// Rejects unknown families, unknown keys, unparsable values, and
    /// dimensions [`validate`](Self::validate) refuses.
    pub fn parse(spec: &str) -> Result<Self, ConfigError> {
        let (family, rest) = spec.split_once(':').unwrap_or((spec, ""));
        let mut out = match family {
            "fat-tree" => Self::fat_tree(0),
            "leaf-spine" => Self::leaf_spine(0, 0, 0),
            other => {
                return Err(ConfigError::new(
                    "topo",
                    format!("unknown topology `{other}` (expected fat-tree or leaf-spine)"),
                ));
            }
        };
        for item in rest.split(',').filter(|s| !s.is_empty()) {
            let (key, value) = item.split_once('=').ok_or_else(|| {
                ConfigError::new("topo", format!("expected key=value items, got `{item}`"))
            })?;
            let num = || {
                value.parse::<f64>().map_err(|_| {
                    ConfigError::new("topo", format!("{key} expects a number, got `{value}`"))
                })
            };
            let int = || {
                value.parse::<usize>().map_err(|_| {
                    ConfigError::new("topo", format!("{key} expects an integer, got `{value}`"))
                })
            };
            match (&mut out.kind, key) {
                (TopoKind::FatTree { k }, "k") => *k = int()?,
                (TopoKind::LeafSpine { leaves, .. }, "leaves") => *leaves = int()?,
                (TopoKind::LeafSpine { spines, .. }, "spines") => *spines = int()?,
                (TopoKind::LeafSpine { hosts_per_leaf, .. }, "hosts-per-leaf") => {
                    *hosts_per_leaf = int()?;
                }
                (_, "link") => out.link_bps = num()?,
                (_, "oversub") => out.oversub = num()?,
                (_, "delay") => out.delay = Duration::from_secs(num()?),
                (_, "frame") => out.frame_bits = num()?,
                (_, other) => {
                    return Err(ConfigError::new(
                        "topo",
                        format!("unknown key `{other}` for `{family}`"),
                    ));
                }
            }
        }
        out.validate()?;
        Ok(out)
    }

    /// Checks the dimensions and physical parameters.
    ///
    /// # Errors
    ///
    /// Rejects odd or tiny fat-tree arity, empty leaf–spine tiers,
    /// non-positive speeds, frames, or oversubscription.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self.kind {
            TopoKind::FatTree { k } => {
                if k < 4 || k % 2 != 0 {
                    return Err(ConfigError::new(
                        "topo.k",
                        format!("fat-tree arity must be even and at least 4, got {k}"),
                    ));
                }
            }
            TopoKind::LeafSpine { leaves, spines, hosts_per_leaf } => {
                if leaves == 0 || hosts_per_leaf == 0 {
                    return Err(ConfigError::new(
                        "topo.leaves",
                        "leaf–spine needs at least one leaf with at least one host",
                    ));
                }
                if spines == 0 && leaves > 1 {
                    return Err(ConfigError::new(
                        "topo.spines",
                        "a multi-leaf fabric needs at least one spine",
                    ));
                }
            }
        }
        if !(self.link_bps.is_finite() && self.link_bps > 0.0) {
            return Err(ConfigError::new("topo.link", "link capacity must be positive"));
        }
        if !(self.frame_bits.is_finite() && self.frame_bits > 0.0) {
            return Err(ConfigError::new("topo.frame", "frame size must be positive"));
        }
        if !(self.oversub.is_finite() && self.oversub > 0.0) {
            return Err(ConfigError::new("topo.oversub", "oversubscription must be positive"));
        }
        Ok(())
    }

    /// One link's contribution to a PFC PAUSE threshold: its
    /// bandwidth–delay product (round trip) plus two maximum frames —
    /// the in-flight data a PAUSE issued now cannot recall. A switch's
    /// XOFF point is this summed over its ingress links.
    #[must_use]
    pub fn pfc_threshold_bits(&self, cap_bps: f64) -> f64 {
        cap_bps * 2.0 * self.delay.as_secs() + 2.0 * self.frame_bits
    }

    /// Builds the fabric: hosts, switches (route tables covering every
    /// host), and links. Flows come from a [`Traffic`] pattern via
    /// [`compile`].
    ///
    /// # Errors
    ///
    /// Propagates [`validate`](Self::validate) failures.
    pub fn build(&self) -> Result<Fabric, ConfigError> {
        self.validate()?;
        match self.kind {
            TopoKind::FatTree { k } => Ok(self.build_fat_tree(k)),
            TopoKind::LeafSpine { leaves, spines, hosts_per_leaf } => {
                Ok(self.build_leaf_spine(leaves, spines, hosts_per_leaf))
            }
        }
    }

    fn build_fat_tree(&self, k: usize) -> Fabric {
        let half = k / 2;
        let hosts = k * half * half;
        let hosts_per_pod = half * half;
        let n_edge = k * half;
        let n_agg = k * half;
        let edge = |p: usize, i: usize| p * half + i;
        let agg = |p: usize, j: usize| n_edge + p * half + j;
        let core = |g: usize, m: usize| n_edge + n_agg + g * half + m;
        let mut links = Vec::new();
        // Host access pairs: up-link 2h, down-link 2h+1.
        for h in 0..hosts {
            let e = edge(h / hosts_per_pod, (h % hosts_per_pod) / half);
            links.push(self.link(Endpoint::Host(h), Endpoint::Switch(e), self.link_bps));
            links.push(self.link(Endpoint::Switch(e), Endpoint::Host(h), self.link_bps));
        }
        // Edge <-> aggregation, per pod.
        let mut up_edge_agg = vec![0usize; n_edge * half];
        let mut down_agg_edge = vec![0usize; n_agg * half];
        for p in 0..k {
            for i in 0..half {
                for j in 0..half {
                    up_edge_agg[edge(p, i) * half + j] = links.len();
                    links.push(self.link(
                        Endpoint::Switch(edge(p, i)),
                        Endpoint::Switch(agg(p, j)),
                        self.link_bps,
                    ));
                    down_agg_edge[(p * half + j) * half + i] = links.len();
                    links.push(self.link(
                        Endpoint::Switch(agg(p, j)),
                        Endpoint::Switch(edge(p, i)),
                        self.link_bps,
                    ));
                }
            }
        }
        // Aggregation <-> core: agg (p, j) serves core group j.
        let mut up_agg_core = vec![0usize; n_agg * half];
        let mut down_core_agg = vec![0usize; half * half * k];
        for p in 0..k {
            for j in 0..half {
                for m in 0..half {
                    up_agg_core[(p * half + j) * half + m] = links.len();
                    links.push(self.link(
                        Endpoint::Switch(agg(p, j)),
                        Endpoint::Switch(core(j, m)),
                        self.link_bps,
                    ));
                    down_core_agg[(j * half + m) * k + p] = links.len();
                    links.push(self.link(
                        Endpoint::Switch(core(j, m)),
                        Endpoint::Switch(agg(p, j)),
                        self.link_bps,
                    ));
                }
            }
        }
        // Route tables: deterministic destination-indexed up-paths.
        let n_switches = n_edge + n_agg + half * half;
        let mut switches = Vec::with_capacity(n_switches);
        for si in 0..n_switches {
            let mut routes = Vec::with_capacity(hosts);
            for dst in 0..hosts {
                let (dp, de) = (dst / hosts_per_pod, (dst % hosts_per_pod) / half);
                let link = if si < n_edge {
                    let (p, i) = (si / half, si % half);
                    if dp == p && de == i {
                        2 * dst + 1
                    } else {
                        up_edge_agg[si * half + dst % half]
                    }
                } else if si < n_edge + n_agg {
                    let a = si - n_edge;
                    let p = a / half;
                    if dp == p {
                        down_agg_edge[a * half + de]
                    } else {
                        up_agg_core[a * half + (dst / half) % half]
                    }
                } else {
                    down_core_agg[(si - n_edge - n_agg) * k + dp]
                };
                routes.push((dst, link));
            }
            switches.push(self.switch_spec(routes, &links, Endpoint::Switch(si)));
        }
        Fabric { hosts, switches, links }
    }

    fn build_leaf_spine(&self, leaves: usize, spines: usize, hosts_per_leaf: usize) -> Fabric {
        let hosts = leaves * hosts_per_leaf;
        let uplink_bps = if spines == 0 {
            self.link_bps
        } else {
            self.link_bps * hosts_per_leaf as f64 / (spines as f64 * self.oversub)
        };
        let mut links = Vec::new();
        for h in 0..hosts {
            let leaf = h / hosts_per_leaf;
            links.push(self.link(Endpoint::Host(h), Endpoint::Switch(leaf), self.link_bps));
            links.push(self.link(Endpoint::Switch(leaf), Endpoint::Host(h), self.link_bps));
        }
        let mut up = vec![0usize; leaves * spines];
        let mut down = vec![0usize; spines * leaves];
        for l in 0..leaves {
            for s in 0..spines {
                up[l * spines + s] = links.len();
                links.push(self.link(
                    Endpoint::Switch(l),
                    Endpoint::Switch(leaves + s),
                    uplink_bps,
                ));
                down[s * leaves + l] = links.len();
                links.push(self.link(
                    Endpoint::Switch(leaves + s),
                    Endpoint::Switch(l),
                    uplink_bps,
                ));
            }
        }
        let mut switches = Vec::with_capacity(leaves + spines);
        for l in 0..leaves {
            let mut routes = Vec::with_capacity(hosts);
            for dst in 0..hosts {
                let link = if dst / hosts_per_leaf == l {
                    2 * dst + 1
                } else {
                    up[l * spines + dst % spines]
                };
                routes.push((dst, link));
            }
            switches.push(self.switch_spec(routes, &links, Endpoint::Switch(l)));
        }
        for s in 0..spines {
            let routes =
                (0..hosts).map(|dst| (dst, down[s * leaves + dst / hosts_per_leaf])).collect();
            switches.push(self.switch_spec(routes, &links, Endpoint::Switch(leaves + s)));
        }
        Fabric { hosts, switches, links }
    }

    fn link(&self, from: Endpoint, to: Endpoint, capacity: f64) -> LinkSpec {
        LinkSpec { from, to, capacity, delay: self.delay }
    }

    /// A switch spec with Theorem-1 thresholds summed over ingress
    /// ports: each incoming link contributes `BDP + 2·MTU` (the
    /// in-flight data a PAUSE cannot recall), the XOFF point `qsc` is
    /// that sum, and the buffer doubles it so one full post-PAUSE
    /// round from every ingress still fits above the threshold. A
    /// single-link threshold is too shallow for this engine: PAUSE
    /// re-asserts at most once per hold, and under that refractory a
    /// BDP-deep XOFF point lets upstream line-rate bursts ratchet the
    /// queue into the buffer (measured on the k=4 incast at 4× load;
    /// the summed threshold runs it lossless at 0.998 goodput).
    fn switch_spec(
        &self,
        routes: Vec<(usize, usize)>,
        links: &[LinkSpec],
        me: Endpoint,
    ) -> SwitchSpec {
        let qsc_bits: f64 =
            links.iter().filter(|l| l.to == me).map(|l| self.pfc_threshold_bits(l.capacity)).sum();
        SwitchSpec { buffer_bits: 2.0 * qsc_bits, qsc_bits, routes, cps: Vec::new() }
    }
}

/// A compiled fabric: everything in a [`NetConfig`] except flows and
/// run-control fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Fabric {
    /// Number of attached hosts.
    pub hosts: usize,
    /// The switches, route tables covering every host.
    pub switches: Vec<SwitchSpec>,
    /// The links (host access pairs first: up-link `2h`, down-link
    /// `2h+1`).
    pub links: Vec<LinkSpec>,
}

/// A traffic pattern over a fabric's hosts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Traffic {
    /// The cluster-file-system pattern: `senders` hosts answer a
    /// parallel read into host `dst` simultaneously, collectively
    /// offering `load ×` the destination access-link capacity.
    Incast {
        /// Number of responding servers (the first `senders` hosts,
        /// skipping `dst`).
        senders: usize,
        /// Receiving host (`usize::MAX` = the last host).
        dst: usize,
        /// Aggregate offered load as a multiple of the destination
        /// link's capacity.
        load: f64,
    },
    /// Host `i` sends to host `(i + hosts/2) mod hosts` — every flow
    /// crosses the fabric, none collide at their destination.
    Permutation {
        /// Per-flow offered load as a fraction of the access-link
        /// capacity.
        load: f64,
    },
    /// Each of the first `hosts` hosts sends to every other.
    AllToAll {
        /// Number of participating hosts.
        hosts: usize,
        /// Aggregate per-destination offered load as a multiple of the
        /// access-link capacity.
        load: f64,
    },
}

impl Traffic {
    /// Parses a CLI traffic spec: `incast[:senders=512][,dst=0]
    /// [,load=2]`, `permutation[:load=0.9]`, or
    /// `all-to-all[:hosts=16][,load=2]`.
    ///
    /// # Errors
    ///
    /// Rejects unknown patterns, unknown keys, and unparsable values.
    pub fn parse(spec: &str) -> Result<Self, ConfigError> {
        let (family, rest) = spec.split_once(':').unwrap_or((spec, ""));
        let mut out = match family {
            "incast" => Traffic::Incast { senders: 0, dst: usize::MAX, load: 2.0 },
            "permutation" => Traffic::Permutation { load: 0.9 },
            "all-to-all" => Traffic::AllToAll { hosts: 8, load: 2.0 },
            other => {
                return Err(ConfigError::new(
                    "traffic",
                    format!(
                        "unknown traffic `{other}` (expected incast, permutation, or all-to-all)"
                    ),
                ));
            }
        };
        for item in rest.split(',').filter(|s| !s.is_empty()) {
            let (key, value) = item.split_once('=').ok_or_else(|| {
                ConfigError::new("traffic", format!("expected key=value items, got `{item}`"))
            })?;
            let num = || {
                value.parse::<f64>().map_err(|_| {
                    ConfigError::new("traffic", format!("{key} expects a number, got `{value}`"))
                })
            };
            let int = || {
                value.parse::<usize>().map_err(|_| {
                    ConfigError::new("traffic", format!("{key} expects an integer, got `{value}`"))
                })
            };
            match (&mut out, key) {
                (Traffic::Incast { senders, .. }, "senders") => *senders = int()?,
                (Traffic::Incast { dst, .. }, "dst") => *dst = int()?,
                (Traffic::AllToAll { hosts, .. }, "hosts") => *hosts = int()?,
                (
                    Traffic::Incast { load, .. }
                    | Traffic::Permutation { load }
                    | Traffic::AllToAll { load, .. },
                    "load",
                ) => *load = num()?,
                (_, other) => {
                    return Err(ConfigError::new(
                        "traffic",
                        format!("unknown key `{other}` for `{family}`"),
                    ));
                }
            }
        }
        Ok(out)
    }

    /// Materialises the flow list over `fabric` (unmanaged sources;
    /// install reaction points afterwards if the scenario runs BCN).
    ///
    /// # Errors
    ///
    /// Rejects patterns that do not fit the fabric (more senders than
    /// hosts, out-of-range destination, non-positive load).
    pub fn flows(&self, fabric: &Fabric) -> Result<Vec<NetFlow>, ConfigError> {
        let n = fabric.hosts;
        let flow = |src: usize, dst: usize, rate: f64| NetFlow {
            src_host: src,
            dst_host: dst,
            initial_rate: rate,
            rp: None,
            priority: 0,
        };
        match *self {
            Traffic::Incast { senders, dst, load } => {
                let dst = if dst == usize::MAX { n - 1 } else { dst };
                if dst >= n {
                    return Err(ConfigError::new(
                        "traffic.dst",
                        format!("destination host {dst} outside 0..{n}"),
                    ));
                }
                if senders == 0 || senders >= n {
                    return Err(ConfigError::new(
                        "traffic.senders",
                        format!("incast needs 1..{n} senders, got {senders}"),
                    ));
                }
                if !(load.is_finite() && load > 0.0) {
                    return Err(ConfigError::new("traffic.load", "load must be positive"));
                }
                let dst_cap = fabric.links[2 * dst + 1].capacity;
                let rate = load * dst_cap / senders as f64;
                Ok((0..n).filter(|&h| h != dst).take(senders).map(|h| flow(h, dst, rate)).collect())
            }
            Traffic::Permutation { load } => {
                if !(load.is_finite() && load > 0.0) {
                    return Err(ConfigError::new("traffic.load", "load must be positive"));
                }
                if n < 2 {
                    return Err(ConfigError::new(
                        "traffic",
                        "permutation needs at least two hosts",
                    ));
                }
                Ok((0..n)
                    .map(|h| {
                        let rate = load * fabric.links[2 * h].capacity;
                        flow(h, (h + n / 2) % n, rate)
                    })
                    .collect())
            }
            Traffic::AllToAll { hosts, load } => {
                if hosts < 2 || hosts > n {
                    return Err(ConfigError::new(
                        "traffic.hosts",
                        format!("all-to-all needs 2..={n} hosts, got {hosts}"),
                    ));
                }
                if !(load.is_finite() && load > 0.0) {
                    return Err(ConfigError::new("traffic.load", "load must be positive"));
                }
                let mut flows = Vec::with_capacity(hosts * (hosts - 1));
                for src in 0..hosts {
                    for dst in 0..hosts {
                        if src != dst {
                            let rate =
                                load * fabric.links[2 * dst + 1].capacity / (hosts - 1) as f64;
                            flows.push(flow(src, dst, rate));
                        }
                    }
                }
                Ok(flows)
            }
        }
    }
}

/// Compiles a fabric plus traffic pattern into a runnable [`NetConfig`]
/// with PAUSE enabled (hold = 40 frame times on the access link) and
/// metrics sampled 500 times over the horizon.
///
/// # Errors
///
/// Propagates spec validation and traffic-fit failures.
pub fn compile(spec: &TopoSpec, traffic: &Traffic, t_end: f64) -> Result<NetConfig, ConfigError> {
    let fabric = spec.build()?;
    let flows = traffic.flows(&fabric)?;
    Ok(NetConfig {
        hosts: fabric.hosts,
        switches: fabric.switches,
        links: fabric.links,
        flows,
        frame_bits: spec.frame_bits,
        t_end: Time::from_secs(t_end),
        record_interval: Duration::from_secs(t_end / 500.0),
        pause: PauseConfig {
            enabled: true,
            hold: Duration::from_secs(10.0 * spec.frame_bits / spec.link_bps),
            per_priority: false,
        },
        faults: FaultConfig::none(),
        scheduler: Scheduler::default(),
    })
}

/// Derives dense per-switch route tables for an irregular fabric from
/// its link list alone: for every destination host, a reverse
/// breadth-first search over the directed links finds the hop distance
/// from each switch, and each switch's next hop is the lowest-indexed
/// outgoing link that decreases the distance. Unreachable destinations
/// are simply omitted (the engine's construction-time validation
/// rejects them only if a flow actually needs one).
///
/// The tie-break makes the result deterministic, and shortest-path
/// next-hops can never revisit a node, so the tables are loop-free by
/// construction.
#[must_use]
pub fn auto_routes(
    hosts: usize,
    n_switches: usize,
    links: &[LinkSpec],
) -> Vec<Vec<(usize, usize)>> {
    // Node ids: switches then hosts.
    let node = |e: Endpoint| match e {
        Endpoint::Switch(s) => s,
        Endpoint::Host(h) => n_switches + h,
    };
    let n_nodes = n_switches + hosts;
    // Reverse adjacency: for each node, the links arriving at it.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    for (li, l) in links.iter().enumerate() {
        rev[node(l.to)].push(li);
    }
    let mut routes: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_switches];
    let mut dist = vec![usize::MAX; n_nodes];
    let mut queue = std::collections::VecDeque::new();
    for dst in 0..hosts {
        dist.fill(usize::MAX);
        queue.clear();
        dist[n_switches + dst] = 0;
        queue.push_back(n_switches + dst);
        while let Some(v) = queue.pop_front() {
            for &li in &rev[v] {
                let u = node(links[li].from);
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        for (si, table) in routes.iter_mut().enumerate() {
            if dist[si] == usize::MAX {
                continue;
            }
            let next = links
                .iter()
                .enumerate()
                .find(|(_, l)| l.from == Endpoint::Switch(si) && dist[node(l.to)] < dist[si])
                .map(|(li, _)| li);
            if let Some(li) = next {
                table.push((dst, li));
            }
        }
    }
    routes
}

/// Re-expresses the hand-wired victim scenario of
/// [`crate::net::victim_topology`] as a generator instance: the same
/// hosts, links, buffers, and flows, with the route tables derived by
/// [`auto_routes`] instead of written by hand. Kept as a regression
/// oracle: the compiled config must produce a bit-identical
/// [`crate::net::NetReport`].
#[must_use]
pub fn victim_fabric(
    n_culprits: usize,
    trunk_capacity: f64,
    frame_bits: f64,
    prop: Duration,
    t_end: f64,
    pause: PauseConfig,
    bcn: Option<(CpConfig, RpConfig)>,
) -> (NetConfig, usize) {
    let (mut cfg, victim) = crate::net::victim_topology(
        n_culprits,
        trunk_capacity,
        frame_bits,
        prop,
        t_end,
        pause,
        bcn,
    );
    let routes = auto_routes(cfg.hosts, cfg.switches.len(), &cfg.links);
    for (sw, table) in cfg.switches.iter_mut().zip(routes) {
        // Only sinks are routable (culprits and the victim have no
        // down-links), matching the hand-wired tables entry for entry.
        sw.routes = table;
    }
    (cfg, victim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetSim;

    #[test]
    fn fat_tree_dimensions() {
        let spec = TopoSpec::fat_tree(4);
        assert_eq!(spec.hosts(), 16);
        assert_eq!(spec.switches(), 20);
        let fabric = spec.build().expect("valid spec");
        assert_eq!(fabric.hosts, 16);
        assert_eq!(fabric.switches.len(), 20);
        // 16 host pairs + 16 edge-agg pairs + 16 agg-core pairs.
        assert_eq!(fabric.links.len(), 2 * 16 + 2 * 16 + 2 * 16);
        // Every switch routes every host.
        for sw in &fabric.switches {
            assert_eq!(sw.routes.len(), 16);
        }
    }

    #[test]
    fn leaf_spine_dimensions_and_oversubscription() {
        let mut spec = TopoSpec::leaf_spine(4, 2, 8);
        spec.oversub = 2.0;
        let fabric = spec.build().expect("valid spec");
        assert_eq!(fabric.hosts, 32);
        assert_eq!(fabric.switches.len(), 6);
        // Uplink capacity = 8 hosts x 1G / (2 spines x oversub 2) = 2G.
        let uplink = fabric
            .links
            .iter()
            .find(|l| matches!((l.from, l.to), (Endpoint::Switch(_), Endpoint::Switch(_))))
            .expect("an uplink");
        assert!((uplink.capacity - 2.0e9).abs() < 1.0, "uplink {}", uplink.capacity);
    }

    /// Walks the route tables from `src` to `dst`, asserting loop
    /// freedom, and returns the hop count (switches visited).
    fn walk(fabric: &Fabric, src: usize, dst: usize) -> usize {
        let uplink =
            fabric.links.iter().position(|l| l.from == Endpoint::Host(src)).expect("host uplink");
        let mut at = fabric.links[uplink].to;
        let mut hops = 0;
        let mut seen = vec![false; fabric.switches.len()];
        loop {
            match at {
                Endpoint::Host(h) => {
                    assert_eq!(h, dst, "{src}->{dst} delivered to the wrong host");
                    return hops;
                }
                Endpoint::Switch(si) => {
                    assert!(!seen[si], "{src}->{dst} loops through switch {si}");
                    seen[si] = true;
                    hops += 1;
                    let (_, link) = fabric.switches[si]
                        .routes
                        .iter()
                        .find(|(d, _)| *d == dst)
                        .unwrap_or_else(|| panic!("switch {si} lacks a route to {dst}"));
                    at = fabric.links[*link].to;
                }
            }
        }
    }

    #[test]
    fn every_fat_tree_host_pair_routes_loop_free() {
        let fabric = TopoSpec::fat_tree(4).build().expect("valid spec");
        for src in 0..fabric.hosts {
            for dst in 0..fabric.hosts {
                if src == dst {
                    continue;
                }
                let hops = walk(&fabric, src, dst);
                // Same edge: 1 switch; same pod: 3; cross-pod: 5.
                assert!(hops == 1 || hops == 3 || hops == 5, "{src}->{dst}: {hops} hops");
            }
        }
    }

    #[test]
    fn every_leaf_spine_host_pair_routes_loop_free() {
        let fabric = TopoSpec::leaf_spine(4, 3, 4).build().expect("valid spec");
        for src in 0..fabric.hosts {
            for dst in 0..fabric.hosts {
                if src == dst {
                    continue;
                }
                let hops = walk(&fabric, src, dst);
                // Same leaf: 1 switch; cross-leaf: leaf-spine-leaf.
                assert!(hops == 1 || hops == 3, "{src}->{dst}: {hops} hops");
            }
        }
    }

    /// Floyd–Warshall hop distances over the fabric graph (switches and
    /// hosts as nodes, directed links as unit edges) — the independent
    /// reference the route tables must agree with.
    fn floyd_warshall(fabric: &Fabric) -> Vec<Vec<usize>> {
        let s = fabric.switches.len();
        let n = s + fabric.hosts;
        let idx = |e: Endpoint| match e {
            Endpoint::Switch(i) => i,
            Endpoint::Host(h) => s + h,
        };
        const INF: usize = usize::MAX / 4;
        let mut d = vec![vec![INF; n]; n];
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = 0;
        }
        for l in &fabric.links {
            d[idx(l.from)][idx(l.to)] = 1;
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = d[i][k] + d[k][j];
                    if via < d[i][j] {
                        d[i][j] = via;
                    }
                }
            }
        }
        d
    }

    #[test]
    fn route_tables_agree_with_floyd_warshall() {
        for fabric in [
            TopoSpec::fat_tree(4).build().expect("fat-tree"),
            TopoSpec::leaf_spine(3, 2, 3).build().expect("leaf-spine"),
        ] {
            let d = floyd_warshall(&fabric);
            let s = fabric.switches.len();
            for src in 0..fabric.hosts {
                for dst in 0..fabric.hosts {
                    if src == dst {
                        continue;
                    }
                    // Table path = access hop + switch hops + final hop.
                    let hops = walk(&fabric, src, dst) + 1;
                    assert_eq!(
                        hops,
                        d[s + src][s + dst],
                        "{src}->{dst}: table path {hops} vs shortest {}",
                        d[s + src][s + dst]
                    );
                }
            }
        }
    }

    #[test]
    fn pfc_thresholds_are_monotone_in_bdp() {
        let base = TopoSpec::fat_tree(4);
        let mut q_prev = 0.0;
        for scale in [0.5, 1.0, 2.0, 4.0] {
            let mut spec = base.clone();
            spec.link_bps = 1.0e9 * scale;
            let q = spec.pfc_threshold_bits(spec.link_bps);
            assert!(q > q_prev, "threshold must grow with capacity: {q} after {q_prev}");
            q_prev = q;
        }
        q_prev = 0.0;
        for delay_us in [0.5, 1.0, 2.0, 4.0] {
            let mut spec = base.clone();
            spec.delay = Duration::from_secs(delay_us * 1e-6);
            let q = spec.pfc_threshold_bits(spec.link_bps);
            assert!(q > q_prev, "threshold must grow with delay: {q} after {q_prev}");
            q_prev = q;
        }
    }

    #[test]
    fn compiled_buffers_keep_pause_lossless() {
        // A 16-into-1 incast on a compiled fat-tree must drop nothing:
        // the Theorem-1 thresholds pause the sources before any port
        // buffer overflows.
        let spec = TopoSpec::fat_tree(4);
        let traffic = Traffic::Incast { senders: 8, dst: usize::MAX, load: 4.0 };
        let cfg = compile(&spec, &traffic, 0.02).expect("compile");
        let report = NetSim::new(cfg).run();
        let drops: u64 = report.flows.iter().map(|f| f.dropped_frames).sum();
        assert_eq!(drops, 0, "PFC-thresholded fabric must stay lossless");
        assert!(report.pause_counts.iter().sum::<u64>() > 0, "incast must trigger PAUSE");
        let delivered: f64 = report.flows.iter().map(|f| f.delivered_bits).sum();
        assert!(delivered > 0.0);
    }

    #[test]
    fn spec_parser_round_trips() {
        let spec = TopoSpec::parse("fat-tree:k=8,link=1e9,delay=2e-6,frame=12000").expect("parse");
        assert_eq!(spec.kind, TopoKind::FatTree { k: 8 });
        assert_eq!(spec.link_bps, 1e9);
        assert_eq!(spec.delay, Duration::from_secs(2e-6));
        assert_eq!(spec.frame_bits, 12_000.0);
        let spec = TopoSpec::parse("leaf-spine:leaves=16,spines=4,hosts-per-leaf=32,oversub=2")
            .expect("parse");
        assert_eq!(spec.kind, TopoKind::LeafSpine { leaves: 16, spines: 4, hosts_per_leaf: 32 });
        assert_eq!(spec.oversub, 2.0);
        for bad in [
            "ring:k=4",
            "fat-tree:k=3",
            "fat-tree:k",
            "fat-tree:k=4,bogus=1",
            "leaf-spine:leaves=0",
            "leaf-spine:leaves=2,spines=0,hosts-per-leaf=4",
            "fat-tree:k=4,link=-1",
        ] {
            assert!(TopoSpec::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn traffic_parser_and_flows() {
        let fabric = TopoSpec::leaf_spine(2, 1, 4).build().expect("build");
        let t = Traffic::parse("incast:senders=5,load=2").expect("parse");
        let flows = t.flows(&fabric).expect("flows");
        assert_eq!(flows.len(), 5);
        assert!(flows.iter().all(|f| f.dst_host == 7));
        let agg: f64 = flows.iter().map(|f| f.initial_rate).sum();
        assert!((agg - 2.0e9).abs() < 1.0, "aggregate offered {agg}");
        let t = Traffic::parse("permutation:load=0.5").expect("parse");
        let flows = t.flows(&fabric).expect("flows");
        assert_eq!(flows.len(), 8);
        assert!(flows.iter().all(|f| f.dst_host == (f.src_host + 4) % 8));
        let t = Traffic::parse("all-to-all:hosts=3,load=1").expect("parse");
        assert_eq!(t.flows(&fabric).expect("flows").len(), 6);
        for bad in ["storm", "incast:senders=0", "incast:senders=99", "incast:bogus=1"] {
            let t = Traffic::parse(bad);
            assert!(t.is_err() || t.unwrap().flows(&fabric).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn victim_fabric_matches_the_hand_wired_topology() {
        let pause = PauseConfig {
            enabled: true,
            hold: Duration::from_secs(40.0 * 8_000.0 / 1e9),
            per_priority: false,
        };
        let (legacy, v1) = crate::net::victim_topology(
            4,
            1e9,
            8_000.0,
            Duration::from_secs(1e-6),
            0.05,
            pause,
            None,
        );
        let (generated, v2) =
            victim_fabric(4, 1e9, 8_000.0, Duration::from_secs(1e-6), 0.05, pause, None);
        assert_eq!(v1, v2);
        assert_eq!(generated, legacy, "auto-routed victim config must equal the hand wiring");
        let a = NetSim::new(legacy).run();
        let b = NetSim::new(generated).run();
        assert_eq!(a, b, "generator and legacy wiring must produce bit-identical reports");
    }

    #[test]
    fn single_switch_incast_16_matches_hand_wiring() {
        // The incast-16 scenario as a generator instance (one leaf, one
        // spine, 17 hosts; all traffic stays on the leaf) against the
        // same scenario wired by hand.
        let spec = TopoSpec::leaf_spine(1, 1, 17);
        let traffic = Traffic::Incast { senders: 16, dst: usize::MAX, load: 4.0 };
        let generated = compile(&spec, &traffic, 0.02).expect("compile");
        let mut hand = generated.clone();
        // Hand-wire the leaf's routes exactly as the generator lays
        // them out: direct down-link per host.
        hand.switches[0].routes = (0..17).map(|h| (h, 2 * h + 1)).collect();
        assert_eq!(hand, generated);
        let a = NetSim::new(hand).run();
        let b = NetSim::new(generated).run();
        assert_eq!(a, b);
    }

    #[test]
    fn auto_routes_omit_unreachable_destinations() {
        // Hosts 0 and 1 feed a switch that only reaches host 2.
        let links = vec![
            LinkSpec {
                from: Endpoint::Host(0),
                to: Endpoint::Switch(0),
                capacity: 1e9,
                delay: Duration::from_secs(1e-6),
            },
            LinkSpec {
                from: Endpoint::Host(1),
                to: Endpoint::Switch(0),
                capacity: 1e9,
                delay: Duration::from_secs(1e-6),
            },
            LinkSpec {
                from: Endpoint::Switch(0),
                to: Endpoint::Host(2),
                capacity: 1e9,
                delay: Duration::from_secs(1e-6),
            },
        ];
        let routes = auto_routes(3, 1, &links);
        assert_eq!(routes[0], vec![(2, 2)], "only the sink is routable");
    }
}
